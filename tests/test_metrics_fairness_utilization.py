"""Fairness and mining power utilization on hand-built executions."""

import pytest

from repro.metrics.collector import BlockInfo, ObservationLog
from repro.metrics.fairness import fairness
from repro.metrics.throughput import (
    block_rate,
    goodput_bytes,
    transaction_frequency,
)
from repro.metrics.utilization import (
    mining_power_utilization,
    wasted_work_fraction,
)


def _info(h, parent, miner, kind="block", work=1, n_tx=0, size=100, t=0.0):
    return BlockInfo(h, parent, miner, t, work, kind, n_tx, size)


def _log_with_chain(main, pruned=(), n_nodes=2):
    """main/pruned: lists of BlockInfo; all nodes adopt the main tip."""
    log = ObservationLog(n_nodes)
    for info in list(main) + list(pruned):
        log.index.add(info)
    for node in range(n_nodes):
        log.record_tip(node, main[-1].hash, 1.0)
    log.finalize(10.0)
    return log


def test_fairness_perfect():
    # Miner 0 has half the power and half the main chain blocks.
    main = [
        _info(b"a", b"g", 0),
        _info(b"b", b"a", 1),
        _info(b"c", b"b", 0),
        _info(b"d", b"c", 1),
    ]
    log = _log_with_chain(main)
    assert fairness(log, power_shares=[0.5, 0.5]) == pytest.approx(1.0)


def test_fairness_below_one_when_largest_overrepresented():
    # Largest (miner 0, 50% power) takes 3 of 4 main blocks.
    main = [
        _info(b"a", b"g", 0),
        _info(b"b", b"a", 0),
        _info(b"c", b"b", 0),
        _info(b"d", b"c", 1),
    ]
    log = _log_with_chain(main)
    # others' main share 0.25 / others' power share 0.5 = 0.5.
    assert fairness(log, power_shares=[0.5, 0.5]) == pytest.approx(0.5)


def test_fairness_generated_blocks_denominator():
    # Without power shares: denominator is generated-block share.
    main = [_info(b"a", b"g", 0), _info(b"b", b"a", 0)]
    pruned = [_info(b"x", b"g", 1), _info(b"y", b"g", 1), _info(b"z", b"g", 1)]
    log = _log_with_chain(main, pruned)
    # Largest by generated blocks is miner 1 (3 of 5) but holds 0 of 2
    # main blocks: main_others = 1.0, generated_others = 2/5.
    assert fairness(log) == pytest.approx(1.0 / (2 / 5))


def test_fairness_excludes_microblocks():
    main = [
        _info(b"k1", b"g", 0, kind="key"),
        _info(b"m1", b"k1", 0, kind="micro", work=0),
        _info(b"k2", b"m1", 1, kind="key"),
    ]
    log = _log_with_chain(main)
    # Only the two key blocks count: one each.
    assert fairness(log, power_shares=[0.5, 0.5]) == pytest.approx(1.0)


def test_fairness_explicit_largest():
    main = [_info(b"a", b"g", 0), _info(b"b", b"a", 1)]
    log = _log_with_chain(main)
    value = fairness(log, power_shares=[0.75, 0.25], largest_miner=0)
    # others main 0.5 / others power 0.25 = 2.0 (largest under-represented)
    assert value == pytest.approx(2.0)


def test_utilization_counts_main_work_only():
    main = [_info(b"a", b"g", 0, work=2), _info(b"b", b"a", 1, work=2)]
    pruned = [_info(b"x", b"g", 2, work=2)]
    log = _log_with_chain(main, pruned)
    assert mining_power_utilization(log) == pytest.approx(4 / 6)
    assert wasted_work_fraction(log) == pytest.approx(2 / 6)


def test_utilization_ignores_microblock_forks():
    # Pruned microblocks carry no work: utilization stays 1.0, exactly
    # the paper's point about Bitcoin-NG.
    main = [
        _info(b"k1", b"g", 0, kind="key", work=2),
        _info(b"k2", b"k1", 1, kind="key", work=2),
    ]
    pruned = [_info(b"m", b"k1", 0, kind="micro", work=0)]
    log = _log_with_chain(main, pruned)
    assert mining_power_utilization(log) == pytest.approx(1.0)


def test_transaction_frequency():
    main = [
        _info(b"a", b"g", 0, n_tx=30),
        _info(b"b", b"a", 1, n_tx=20),
    ]
    log = _log_with_chain(main)  # duration 10 s
    assert transaction_frequency(log) == pytest.approx(5.0)


def test_transaction_frequency_excludes_pruned():
    main = [_info(b"a", b"g", 0, n_tx=10)]
    pruned = [_info(b"x", b"g", 1, n_tx=1000)]
    log = _log_with_chain(main, pruned)
    assert transaction_frequency(log) == pytest.approx(1.0)


def test_goodput_and_block_rate():
    main = [_info(b"a", b"g", 0, size=500), _info(b"b", b"a", 0, size=500)]
    pruned = [_info(b"m", b"a", 0, kind="micro", size=100)]
    log = _log_with_chain(main, pruned)
    assert goodput_bytes(log) == pytest.approx(100.0)
    assert block_rate(log) == pytest.approx(0.3)
    assert block_rate(log, kind="micro") == pytest.approx(0.1)


def test_fairness_errors():
    log = ObservationLog(1)
    log.record_tip(0, b"g", 0.0)
    log.finalize(10.0)
    with pytest.raises(ValueError):
        fairness(log)
