"""Mining power distributions and the exponential fit."""

import math

import pytest

from repro.mining.power import (
    PAPER_EXPONENT,
    exponential_shares,
    fit_exponential,
    largest_share,
    single_large_miner,
    uniform_shares,
)


def test_exponential_shares_normalized():
    shares = exponential_shares(20)
    assert sum(shares) == pytest.approx(1.0)


def test_exponential_shares_descending():
    shares = exponential_shares(20)
    assert shares == sorted(shares, reverse=True)


def test_paper_exponent_largest_miner_near_quarter():
    # With the paper's fit, the top pool holds a bit under 1/4 — the
    # boundary of the threat model.
    shares = exponential_shares(20, PAPER_EXPONENT)
    assert 0.20 <= shares[0] <= 0.25


def test_consecutive_ratio_matches_exponent():
    shares = exponential_shares(10, -0.3)
    for a, b in zip(shares, shares[1:]):
        assert b / a == pytest.approx(math.exp(-0.3))


def test_uniform_shares():
    shares = uniform_shares(4)
    assert shares == [0.25] * 4


def test_single_large_miner():
    shares = single_large_miner(5, 0.4)
    assert shares[0] == pytest.approx(0.4)
    assert sum(shares) == pytest.approx(1.0)
    assert all(s == pytest.approx(0.15) for s in shares[1:])


def test_fit_recovers_exponent_exactly():
    shares = exponential_shares(20, -0.27)
    exponent, r_squared = fit_exponential(shares)
    assert exponent == pytest.approx(-0.27, abs=1e-9)
    assert r_squared == pytest.approx(1.0)


def test_fit_on_noisy_data():
    shares = [s * (1 + 0.01 * ((-1) ** i)) for i, s in enumerate(exponential_shares(20, -0.27))]
    exponent, r_squared = fit_exponential(shares)
    assert exponent == pytest.approx(-0.27, abs=0.01)
    assert r_squared > 0.99


def test_largest_share():
    assert largest_share([0.1, 0.5, 0.4]) == 0.5


def test_validation():
    with pytest.raises(ValueError):
        exponential_shares(0)
    with pytest.raises(ValueError):
        uniform_shares(0)
    with pytest.raises(ValueError):
        single_large_miner(1, 0.5)
    with pytest.raises(ValueError):
        single_large_miner(5, 1.5)
    with pytest.raises(ValueError):
        fit_exponential([0.5])
    with pytest.raises(ValueError):
        fit_exponential([0.5, 0.0])
    with pytest.raises(ValueError):
        largest_share([])
