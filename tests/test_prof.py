"""The deterministic profiler: schema, spans, reports, diffs, CLI.

Determinism of profiled runs (bit-identical to bare runs) is pinned in
``tests/test_determinism.py``; this module covers the artifacts — the
``.prof.json`` schema round-trip, folded-stack export, epoch span
tracking, and the golden report/diff formats the ``repro prof`` family
renders.
"""

import json

import pytest

from repro.cli import main
from repro.prof import (
    PROFILE_VERSION,
    EpochSpan,
    PhaseStat,
    Profile,
    ProfileError,
    ProfilerRuntime,
    TapTracer,
    load_profile,
    profile_experiment,
    to_folded,
)
from repro.prof.report import compare_profiles, format_diff, format_report


def _sample_profile() -> Profile:
    """A hand-built profile with stable numbers for golden assertions."""
    return Profile(
        meta={"slug": "ng-n60-s0", "protocol": "bitcoin-ng", "seed": 0},
        wall_setup_seconds=0.25,
        wall_simulate_seconds=2.0,
        loop_wall_seconds=1.9,
        events_processed=10_000,
        phases={
            "deliver:inv:micro": PhaseStat(calls=6_000, seconds=1.2),
            "mining:block": PhaseStat(calls=40, seconds=0.3),
            "heappop": PhaseStat(calls=10_000, seconds=0.15),
            "sanitize": PhaseStat(calls=150, seconds=0.2),
            "dispatch": PhaseStat(calls=10_000, seconds=0.05),
        },
        checkers={
            "INV104": PhaseStat(calls=150, seconds=0.15),
            "INV101": PhaseStat(calls=150, seconds=0.02),
        },
        nodes=[[100, 0.01], [9_000, 1.4], [0, 0.0]],
        spans=[
            EpochSpan(leader=1, key_block="ab12", start=5.0, end=25.0, micros=40),
            EpochSpan(
                leader=2,
                key_block="cd34",
                start=25.0,
                end=30.0,
                micros=8,
                closed=False,
            ),
        ],
    )


# -- schema round-trip ------------------------------------------------------


def test_profile_round_trip(tmp_path):
    profile = _sample_profile()
    path = profile.save(tmp_path / "run.prof.json")
    loaded = load_profile(path)
    assert loaded.meta == profile.meta
    assert loaded.events_processed == profile.events_processed
    assert loaded.phases.keys() == profile.phases.keys()
    for name, stat in profile.phases.items():
        assert loaded.phases[name].calls == stat.calls
        assert loaded.phases[name].seconds == pytest.approx(stat.seconds)
    assert loaded.checkers.keys() == profile.checkers.keys()
    assert loaded.nodes == [[100, 0.01], [9_000, 1.4], [0, 0.0]]
    assert [s.to_dict() for s in loaded.spans] == [
        s.to_dict() for s in profile.spans
    ]
    assert loaded.attributed_seconds == pytest.approx(
        profile.attributed_seconds
    )


def test_profile_json_is_schema_versioned(tmp_path):
    path = _sample_profile().save(tmp_path / "run.prof.json")
    data = json.loads(path.read_text())
    assert data["profile_version"] == PROFILE_VERSION
    assert data["coverage"] == pytest.approx(0.95)
    assert data["attributed_seconds"] == pytest.approx(1.9)


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "future.prof.json"
    path.write_text(json.dumps({"profile_version": 999}))
    with pytest.raises(ProfileError, match="unsupported profile version"):
        load_profile(path)


def test_load_rejects_garbage(tmp_path):
    missing = tmp_path / "nope.prof.json"
    with pytest.raises(ProfileError, match="cannot read"):
        load_profile(missing)
    bad = tmp_path / "bad.prof.json"
    bad.write_text("not json {")
    with pytest.raises(ProfileError, match="not valid JSON"):
        load_profile(bad)


def test_coverage_and_top_rankings():
    profile = _sample_profile()
    assert profile.coverage == pytest.approx(0.95)
    assert [name for name, _ in profile.top_phases(2)] == [
        "deliver:inv:micro",
        "mining:block",
    ]
    # Node 2 never handled an event, so it is not ranked.
    assert [node for node, _, _ in profile.top_nodes()] == [1, 0]


# -- folded-stack export ----------------------------------------------------


def test_folded_export():
    folded = to_folded(_sample_profile())
    lines = folded.strip().split("\n")
    assert "setup 250000" in lines
    assert "simulate;deliver:inv:micro 1200000" in lines
    assert "simulate;heappop 150000" in lines
    # Sanitize splits per checker plus the sweep-machinery remainder.
    assert "simulate;sanitize;INV104 150000" in lines
    assert "simulate;sanitize;INV101 20000" in lines
    assert "simulate;sanitize;(sweep) 30000" in lines
    assert not any(line.startswith("simulate;sanitize ") for line in lines)
    # Every line is "frames count" with integer microseconds.
    for line in lines:
        frames, count = line.rsplit(" ", 1)
        assert frames
        assert int(count) > 0
    assert folded.endswith("\n")


def test_folded_skips_zero_phases():
    profile = Profile(
        wall_simulate_seconds=1.0,
        phases={"dispatch": PhaseStat(calls=5, seconds=0.0)},
    )
    assert to_folded(profile) == ""


# -- epoch span tracking ----------------------------------------------------


class _RecordingSink:
    def __init__(self):
        self.records = []
        self.records_written = 0

    def emit(self, ev, t, **fields):
        self.records.append((ev, t, fields))
        self.records_written += 1

    def close(self):
        pass


def test_span_lifecycle_via_tap_tracer():
    runtime = ProfilerRuntime()
    sink = _RecordingSink()
    runtime._span_sink = sink
    tap = TapTracer(sink, runtime)
    tap.emit("epoch_start", 5.0, leader=1, key_block="ab12")
    tap.emit("block_gen", 6.0, kind="micro", miner=1, hash="m1")
    tap.emit("block_gen", 7.0, kind="micro", miner=1, hash="m2")
    tap.emit("block_gen", 7.5, kind="micro", miner=9, hash="m3")  # not leader
    tap.emit("block_gen", 8.0, kind="key", miner=2, hash="cd34")
    tap.emit("epoch_end", 8.5, leader=1, key_block="ab12")
    tap.emit("epoch_start", 8.5, leader=2, key_block="cd34")

    assert len(runtime.spans) == 1
    span = runtime.spans[0]
    assert (span.leader, span.key_block, span.micros) == (1, "ab12", 2)
    assert span.start == 5.0 and span.end == 8.5 and span.closed

    # Closing emitted a prof_span record through the sink; the forwarded
    # originals are also there (TapTracer is an interposer, not a filter).
    prof_spans = [r for r in sink.records if r[0] == "prof_span"]
    assert len(prof_spans) == 1
    _, t, fields = prof_spans[0]
    assert t == 8.5
    assert fields == {
        "leader": 1,
        "key_block": "ab12",
        "start": 5.0,
        "micros": 2,
        "closed": True,
    }
    assert sum(1 for r in sink.records if r[0] == "epoch_start") == 2

    # The still-open epoch closes unclosed at profile build time.
    profile = runtime.build_profile({}, 0.0, 1.0, 0, end_time=12.0)
    assert len(profile.spans) == 2
    assert profile.spans[1].leader == 2
    assert profile.spans[1].end == 12.0
    assert not profile.spans[1].closed


def test_reelected_leader_closes_stale_span():
    runtime = ProfilerRuntime()
    tap = TapTracer(None, runtime)
    tap.emit("epoch_start", 1.0, leader=3, key_block="aa")
    tap.emit("epoch_start", 4.0, leader=3, key_block="bb")
    assert len(runtime.spans) == 1
    assert runtime.spans[0].key_block == "aa"
    assert runtime.spans[0].end == 4.0
    assert runtime.spans[0].closed


def test_dispatch_phase_absorbs_loop_residual():
    runtime = ProfilerRuntime()
    runtime._loop_wall = 1.0
    runtime._pop_calls = 10
    runtime._pop_seconds = 0.2
    runtime._phases["mining:block"] = [3, 0.5]
    profile = runtime.build_profile({"slug": "x"}, 0.1, 1.2, 10)
    assert profile.phases["dispatch"].seconds == pytest.approx(0.3)
    assert profile.attributed_seconds == pytest.approx(1.0)
    assert "sanitize" not in profile.phases  # no probe ran


# -- report and diff golden output ------------------------------------------


def test_report_golden():
    report = format_report(_sample_profile())
    lines = report.split("\n")
    assert lines[0] == "== profile: ng-n60-s0 =="
    assert "run:                 protocol=bitcoin-ng, seed=0" in report
    assert "events processed:    10,000" in report
    assert "wall simulate:       2.000 s" in report
    assert "attributed:          1.900 s (95.0% of simulate wall)" in report
    assert "deliver:inv:micro                   1.200   60.0%       6,000     200.0" in report
    assert "INV104                              0.150    7.5%         150" in report
    assert "(sweep machinery)                   0.030    1.5%" in report
    assert "node 1                              1.400   70.0%       9,000" in report
    assert (
        "epochs:              2 spans, mean 20.0 s, "
        "mean 40.0 microblocks (1 open at run end)" in report
    )


def test_report_truncates_phase_table():
    profile = _sample_profile()
    report = format_report(profile, top=2)
    assert "(3 more phases totalling 0.400 s)" in report


def test_diff_flags_regressions():
    base = _sample_profile()
    cand = _sample_profile()
    cand.phases["deliver:inv:micro"] = PhaseStat(calls=6_000, seconds=1.8)
    cand.phases["other:new_handler"] = PhaseStat(calls=5, seconds=0.5)
    rows = compare_profiles(base, cand)
    by_phase = {row["phase"]: row for row in rows}
    assert by_phase["deliver:inv:micro"]["regression"]
    assert by_phase["deliver:inv:micro"]["delta"] == pytest.approx(0.6)
    assert by_phase["other:new_handler"]["regression"]
    assert by_phase["other:new_handler"]["ratio"] == float("inf")
    assert not by_phase["heappop"]["regression"]

    text = format_diff(base, cand, label_a="base", label_b="cand")
    assert "== profile diff ==" in text
    assert "A: base" in text
    assert "deliver:inv:micro                   1.200      1.800     +0.600    1.50x  ***" in text
    assert "other:new_handler                   0.000      0.500     +0.500      new  ***" in text
    assert "flagged 2 regressions (>= +25% and >= +0.010 s)" in text


def test_diff_absolute_floor_mutes_noise():
    base = _sample_profile()
    cand = _sample_profile()
    # 2x relative, but only 2 ms absolute: under the 10 ms floor.
    base.phases["gossip:timeout"] = PhaseStat(calls=10, seconds=0.002)
    cand.phases["gossip:timeout"] = PhaseStat(calls=10, seconds=0.004)
    rows = compare_profiles(base, cand)
    row = next(r for r in rows if r["phase"] == "gossip:timeout")
    assert not row["regression"]


# -- profiled experiment end to end -----------------------------------------


def _small_config(**overrides):
    from repro.experiments import ExperimentConfig

    base = dict(
        protocol="bitcoin-ng",
        n_nodes=12,
        target_blocks=12,
        target_key_blocks=4,
        block_rate=0.2,
        block_size_bytes=4_000,
        cooldown=15.0,
        seed=3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def test_profile_experiment_attributes_phases():
    result, _log, profile = profile_experiment(_small_config())
    assert profile.events_processed == result.events_processed
    assert profile.phases["heappop"].calls == result.events_processed
    # Phase sums exactly equal the loop wall by construction.
    assert profile.attributed_seconds == pytest.approx(
        profile.loop_wall_seconds
    )
    assert 0.5 < profile.coverage <= 1.0
    assert any(name.startswith("deliver:") for name in profile.phases)
    assert "mining:block" in profile.phases
    assert profile.spans, "an NG run must produce epoch spans"
    # Per-node attribution covers the handler work.
    assert sum(calls for calls, _ in profile.nodes) > 0


def test_profile_experiment_checked_run_attributes_checkers():
    _result, _log, profile = profile_experiment(
        _small_config(check=True, check_stride=16)
    )
    assert "sanitize" in profile.phases
    assert profile.checkers
    assert all(code.startswith("INV") for code in profile.checkers)
    checker_total = sum(s.seconds for s in profile.checkers.values())
    assert checker_total <= profile.phases["sanitize"].seconds + 1e-9


def test_prof_span_records_land_in_trace(tmp_path):
    from repro.obs import Observability
    from repro.obs.trace import MemorySink, Tracer

    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink))
    runtime = ProfilerRuntime()
    from repro.experiments import run_experiment

    run_experiment(_small_config(), obs=obs, profiler=runtime)
    spans = [r for r in sink.records if r["ev"] == "prof_span"]
    closed = [s for s in runtime.spans if s.closed]
    assert len(spans) == len(closed) > 0
    for record, span in zip(spans, closed):
        assert record["leader"] == span.leader
        assert record["micros"] == span.micros
        assert record["closed"] is True


# -- CLI --------------------------------------------------------------------


def _run_args(out_dir, *extra):
    return [
        "prof", "run",
        "--protocol", "bitcoin-ng",
        "--nodes", "12",
        "--blocks", "10",
        "--key-blocks", "4",
        "--block-rate", "0.2",
        "--block-size", "4000",
        "--seed", "3",
        "--out", str(out_dir),
        *extra,
    ]


def test_cli_prof_run_writes_artifacts(tmp_path, capsys):
    code = main(_run_args(tmp_path))
    assert code == 0
    out = capsys.readouterr().out
    assert "== profile:" in out
    assert "heappop" in out
    profiles = list(tmp_path.glob("*.prof.json"))
    folded = list(tmp_path.glob("*.folded"))
    assert len(profiles) == 1 and len(folded) == 1
    loaded = load_profile(profiles[0])
    assert loaded.events_processed > 0
    assert "simulate;heappop " in folded[0].read_text()


def test_cli_prof_report_and_diff(tmp_path, capsys):
    assert main(_run_args(tmp_path / "a")) == 0
    assert main(_run_args(tmp_path / "b", "--seed", "4")) == 0
    capsys.readouterr()
    path_a = str(next((tmp_path / "a").glob("*.prof.json")))
    path_b = str(next((tmp_path / "b").glob("*.prof.json")))

    assert main(["prof", "report", path_a]) == 0
    assert "== profile:" in capsys.readouterr().out

    code = main(["prof", "diff", path_a, path_b])
    out = capsys.readouterr().out
    assert "== profile diff ==" in out
    assert code in (0, 1)  # seeds differ; regression flag is data-dependent

    # Identical profiles never flag.
    assert main(["prof", "diff", path_a, path_a]) == 0


def test_cli_prof_report_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.prof.json"
    bad.write_text("{}")
    assert main(["prof", "report", str(bad)]) == 2
    assert "unsupported profile version" in capsys.readouterr().err


def test_trace_summarize_counts_prof_spans(tmp_path, capsys):
    out = tmp_path / "trace"
    assert main(_run_args(tmp_path / "prof", "--obs", str(out))) == 0
    capsys.readouterr()
    trace_file = next(out.glob("*.jsonl*"))
    assert main(["trace", "summarize", str(trace_file)]) == 0
    summary = capsys.readouterr().out
    assert "prof_span" in summary
    assert "epoch spans:" in summary
