"""GHOST heaviest-subtree fork choice."""

from repro.bitcoin.blocks import SyntheticPayload, build_block, make_genesis
from repro.bitcoin.chain import TieBreak
from repro.ghost.chain import GhostTree

GENESIS = make_genesis()


def _block(prev, salt):
    return build_block(
        prev_hash=prev,
        payload=SyntheticPayload(n_tx=0, salt=salt.encode()),
        timestamp=0.0,
        bits=0x207FFFFF,
        miner_id=0,
        reward=0,
    )


def _grow(tree, start, labels):
    blocks = []
    prev = start
    for label in labels:
        block = _block(prev, label)
        tree.add_block(block, 0.0)
        blocks.append(block)
        prev = block.hash
    return blocks


def test_simple_extension():
    tree = GhostTree(GENESIS)
    blocks = _grow(tree, GENESIS.hash, ["a", "b"])
    assert tree.tip == blocks[-1].hash


def test_subtree_work_propagates_to_ancestors():
    tree = GhostTree(GENESIS)
    blocks = _grow(tree, GENESIS.hash, ["a", "b", "c"])
    unit = blocks[0].header.work
    assert tree.subtree_work(blocks[0].hash) == 3 * unit
    assert tree.subtree_work(blocks[2].hash) == unit


def test_ghost_prefers_heavy_subtree_over_long_chain():
    # The defining difference from Bitcoin: a bushy short side wins.
    tree = GhostTree(GENESIS)
    long_chain = _grow(tree, GENESIS.hash, ["a", "b", "c"])
    fork_root = _grow(tree, GENESIS.hash, ["x"])[0]
    # Three siblings under x: subtree(x) = 4 > subtree(a) = 3.
    for salt in ("x1", "x2", "x3"):
        tree.add_block(_block(fork_root.hash, salt), 0.0)
    assert tree.main_chain()[1] == fork_root.hash
    # Bitcoin would have chosen the longer chain.
    from repro.bitcoin.chain import BlockTree

    bitcoin = BlockTree(GENESIS)
    prev = GENESIS.hash
    for label in ["a", "b", "c"]:
        block = _block(prev, label)
        bitcoin.add_block(block, 0.0)
        prev = block.hash
    x = _block(GENESIS.hash, "x")
    bitcoin.add_block(x, 0.0)
    for salt in ("x1", "x2", "x3"):
        bitcoin.add_block(_block(x.hash, salt), 0.0)
    assert bitcoin.main_chain()[1] == _block(GENESIS.hash, "a").hash


def test_equal_subtrees_first_seen():
    tree = GhostTree(GENESIS, tie_break=TieBreak.FIRST_SEEN)
    first = _block(GENESIS.hash, "first")
    second = _block(GENESIS.hash, "second")
    tree.add_block(first, 0.0)
    tree.add_block(second, 1.0)
    assert tree.tip == first.hash


def test_reorg_reported():
    tree = GhostTree(GENESIS)
    a = _block(GENESIS.hash, "a")
    tree.add_block(a, 0.0)
    x = _block(GENESIS.hash, "x")
    tree.add_block(x, 0.0)
    x1 = _block(x.hash, "x1")
    reorgs = tree.add_block(x1, 0.0)
    assert len(reorgs) == 1
    assert reorgs[0].disconnected == (a.hash,)
    assert reorgs[0].connected == (x.hash, x1.hash)


def test_orphans_buffered():
    tree = GhostTree(GENESIS)
    parent = _block(GENESIS.hash, "p")
    child = _block(parent.hash, "c")
    tree.add_block(child, 0.0)
    assert child.hash not in tree
    tree.add_block(parent, 0.0)
    assert tree.tip == child.hash


def test_duplicate_ignored():
    tree = GhostTree(GENESIS)
    block = _block(GENESIS.hash, "a")
    tree.add_block(block, 0.0)
    assert tree.add_block(block, 0.0) == []


def test_consistency_invariant():
    tree = GhostTree(GENESIS)
    _grow(tree, GENESIS.hash, ["a", "b"])
    x = _grow(tree, GENESIS.hash, ["x"])[0]
    _grow(tree, x.hash, ["x1"])
    tree.assert_consistent()
