"""NG node rejection paths: malformed and malicious inputs."""

import pytest

from repro.bitcoin.blocks import SyntheticPayload
from repro.core.blocks import (
    Microblock,
    build_key_block,
    build_microblock,
)
from repro.core.genesis import make_ng_genesis
from repro.core.node import KIND_KEY, KIND_MICRO, MicroblockPolicy, NGNode
from repro.core.params import NGParams
from repro.core.remuneration import build_ng_coinbase
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.net.gossip import StoredObject
from repro.net.latency import constant_histogram
from repro.net.network import Message, Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology

PARAMS = NGParams(
    key_block_interval=100.0,
    min_microblock_interval=10.0,
    max_microblock_bytes=10_000,
)
GENESIS = make_ng_genesis()
EVIL = PrivateKey.from_seed("evil")


def _cluster(n=3):
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(n), constant_histogram(0.05), 1e6)
    nodes = [
        NGNode(
            i, sim, net, GENESIS, PARAMS,
            policy=MicroblockPolicy(target_bytes=2000),
        )
        for i in range(n)
    ]
    return sim, net, nodes


def _inject(node, sender, kind, block):
    stored = StoredObject(block.hash, kind, block, block.size)
    node.on_message(sender, Message("object", stored, stored.size))


def test_oversized_microblock_rejected_by_node():
    sim, net, nodes = _cluster()
    nodes[0].generate_key_block()
    sim.run(until=1.0)
    huge = build_microblock(
        nodes[1].tip,
        timestamp=20.0,
        payload=SyntheticPayload(n_tx=100, tx_size=1000, salt=b"big"),
        leader_key=nodes[0].key,
    )
    assert huge.size > PARAMS.max_microblock_bytes
    _inject(nodes[1], 0, KIND_MICRO, huge)
    sim.run(until=2.0)
    assert nodes[1].blocks_rejected == 1
    assert huge.hash not in nodes[1].chain


def test_microblock_with_forged_root_rejected():
    sim, net, nodes = _cluster()
    nodes[0].generate_key_block()
    sim.run(until=1.0)
    genuine = build_microblock(
        nodes[1].tip, 20.0, SyntheticPayload(n_tx=2, salt=b"ok"), nodes[0].key
    )
    forged = Microblock(
        genuine.header, genuine.signature, SyntheticPayload(n_tx=9, salt=b"no")
    )
    _inject(nodes[1], 0, KIND_MICRO, forged)
    assert nodes[1].blocks_rejected == 1


def test_microblock_from_non_leader_rejected_by_node():
    sim, net, nodes = _cluster()
    nodes[0].generate_key_block()
    sim.run(until=1.0)
    forged = build_microblock(
        nodes[1].tip, 20.0, SyntheticPayload(n_tx=1, salt=b"f"), EVIL
    )
    _inject(nodes[1], 0, KIND_MICRO, forged)
    sim.run(until=2.0)
    assert nodes[1].blocks_rejected == 1
    assert forged.hash not in nodes[1].chain


def test_rate_violating_microblock_rejected_by_node():
    sim, net, nodes = _cluster()
    nodes[0].generate_key_block()
    sim.run(until=15.0)  # one legit microblock at t=10
    tip = nodes[1].tip
    tip_ts = nodes[1].chain.tip_record.timestamp
    too_soon = build_microblock(
        tip, tip_ts + 1.0, SyntheticPayload(n_tx=1, salt=b"fast"), nodes[0].key
    )
    _inject(nodes[1], 0, KIND_MICRO, too_soon)
    assert nodes[1].blocks_rejected == 1


def test_key_block_with_garbled_pubkey_rejected():
    sim, net, nodes = _cluster()
    coinbase = build_ng_coinbase(
        miner_id=9,
        timestamp=5.0,
        self_pubkey_hash=hash160(EVIL.public_key().to_bytes()),
        prev_leader_pubkey_hash=None,
        prev_epoch_fees=0,
        params=PARAMS,
    )
    bad = build_key_block(
        prev_hash=GENESIS.hash,
        timestamp=5.0,
        bits=0x207FFFFF,
        leader_pubkey=b"\x09" + b"\x11" * 32,  # undecodable point
        coinbase=coinbase,
    )
    _inject(nodes[1], 0, KIND_KEY, bad)
    assert nodes[1].blocks_rejected == 1
    assert bad.hash not in nodes[1].chain


def test_rejected_blocks_not_relayed():
    sim, net, nodes = _cluster()
    nodes[0].generate_key_block()
    sim.run(until=1.0)
    forged = build_microblock(
        nodes[1].tip, 20.0, SyntheticPayload(n_tx=1, salt=b"f"), EVIL
    )
    _inject(nodes[1], 0, KIND_MICRO, forged)
    sim.run(until=5.0)
    # Node 2 never received it via node 1 because node 1 refused it at
    # validation... note the gossip layer relays *accepted* objects;
    # rejection happens in deliver, after the store. The chain is the
    # arbiter: no honest chain adopted the forgery.
    assert forged.hash not in nodes[2].chain
    assert forged.hash not in nodes[1].chain


def test_malicious_flood_gets_peer_banned_honest_traffic_continues():
    sim, net, nodes = _cluster()
    nodes[0].generate_key_block()
    sim.run(until=1.0)
    # Attacker node 2 floods node 1 with invalid microblocks.  Each
    # costs it 20 misbehavior points; at 100 it is banned and the rest
    # of the flood is dropped before validation.
    for i in range(30):
        junk = build_microblock(
            nodes[1].tip, 20.0 + i, SyntheticPayload(n_tx=1, salt=bytes([i])), EVIL
        )
        _inject(nodes[1], 2, KIND_MICRO, junk)
    assert nodes[1].blocks_rejected == 5
    assert nodes[1].is_banned(2)
    # Honest operation continues: the leader's microblocks still land.
    sim.run(until=35.0)
    assert nodes[1].chain.tip_record.height >= 3
