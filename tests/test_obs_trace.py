"""The tracer and its sinks: schema-versioned JSONL records."""

import json

import pytest

from repro.obs.analyze import iter_records, load_records
from repro.obs.trace import (
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    TraceError,
    Tracer,
    short_hash,
)


def test_emit_stamps_version_event_and_time():
    sink = MemorySink()
    tracer = Tracer(sink)
    tracer.emit("block_gen", 12.5, miner=3, size=1000)
    assert sink.records == [
        {"v": SCHEMA_VERSION, "ev": "block_gen", "t": 12.5,
         "miner": 3, "size": 1000}
    ]
    assert tracer.records_written == 1


def test_short_hash_is_twelve_hex_chars():
    digest = bytes(range(32))
    assert short_hash(digest) == digest.hex()[:12]
    assert len(short_hash(digest)) == 12


def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "nested" / "run.trace.jsonl"
    tracer = Tracer(JsonlSink(path))
    tracer.emit("trace_start", 0.0, seed=7)
    tracer.emit("send", 1.0, src=0, dst=1, kind="inv", size=61)
    tracer.close()
    assert path.exists()  # parent dir created lazily
    records = load_records(path)
    assert [r["ev"] for r in records] == ["trace_start", "send"]
    assert records[1]["size"] == 61


def test_jsonl_sink_writes_compact_lines(tmp_path):
    path = tmp_path / "t.trace.jsonl"
    sink = JsonlSink(path)
    sink.write({"v": 1, "ev": "x", "t": 0.0})
    sink.close()
    line = path.read_text().strip()
    assert " " not in line  # compact separators, one object per line
    assert sink.records_written == 1


def test_iter_records_rejects_unknown_schema_version(tmp_path):
    path = tmp_path / "bad.trace.jsonl"
    path.write_text(json.dumps({"v": 999, "ev": "x", "t": 0.0}) + "\n")
    with pytest.raises(TraceError, match="schema version"):
        list(iter_records(path))


def test_iter_records_rejects_malformed_json(tmp_path):
    path = tmp_path / "bad.trace.jsonl"
    path.write_text('{"v": 1, "ev": "ok", "t": 0.0}\nnot json\n')
    with pytest.raises(TraceError, match="not valid JSON"):
        list(iter_records(path))


def test_iter_records_skips_blank_lines(tmp_path):
    path = tmp_path / "t.trace.jsonl"
    path.write_text('{"v": 1, "ev": "a", "t": 0.0}\n\n{"v": 1, "ev": "b", "t": 1.0}\n')
    assert [r["ev"] for r in iter_records(path)] == ["a", "b"]
