"""Bitcoin reorg double-spend race: state rolls forward and back.

A classic attack shape exercised against the full-validation Bitcoin
node: the same coin is spent differently on two competing branches, and
a reorganization must atomically swap which spend is "real".
"""

import pytest

from repro.bitcoin.blocks import make_genesis
from repro.bitcoin.node import BitcoinNode, BlockPolicy
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import (
    COIN,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.ledger.utxo import UtxoSet
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology

OWNER = PrivateKey.from_seed("reorg-owner")
OWNER_PKH = hash160(OWNER.public_key().to_bytes())
MERCHANT_A = bytes(range(20))
MERCHANT_B = bytes(range(20, 40))
SEED_OUTPOINT = OutPoint(b"\xee" * 32, 0)


@pytest.fixture()
def nodes():
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(2), constant_histogram(0.01), 1e6)
    genesis = make_genesis()
    cluster = [
        BitcoinNode(
            i,
            sim,
            net,
            genesis,
            policy=BlockPolicy(max_block_bytes=100_000, synthetic=False),
        )
        for i in range(2)
    ]
    for node in cluster:
        node.utxo.credit(TxOutput(10 * COIN, OWNER_PKH), SEED_OUTPOINT, 0)
    return sim, cluster


def _spend(to, value=10 * COIN):
    return Transaction(
        inputs=(TxInput(SEED_OUTPOINT),),
        outputs=(TxOutput(value, to),),
    ).sign_input(0, OWNER)


def test_reorg_swaps_conflicting_spends(nodes):
    sim, (node0, node1) = nodes
    pay_a = _spend(MERCHANT_A)
    pay_b = _spend(MERCHANT_B)

    # Branch A: node 0 mines pay_a while node 1 is isolated.
    node0.network.set_offline(1)
    node0.submit_transaction(pay_a)
    block_a = node0.generate_block()
    sim.run()
    assert node0.balance_of(MERCHANT_A) == 10 * COIN

    # Branch B: node 1, never having seen branch A, mines pay_b twice —
    # the heavier branch.
    node0.network.set_offline(1, offline=False)
    node0.network.set_offline(0)
    node1.submit_transaction(pay_b)
    node1.generate_block()
    sim.run()
    block_b2 = node1.generate_block()
    sim.run()
    assert node1.balance_of(MERCHANT_B) == 10 * COIN

    # Reconnect: node 0 hears the heavier branch and must reorg.
    node0.network.set_offline(0, offline=False)
    stored1 = node1.get_object(node1.tree.main_chain()[1])
    stored2 = node1.get_object(block_b2.hash)
    from repro.net.network import Message

    node0.on_message(1, Message("object", stored1, stored1.size))
    node0.on_message(1, Message("object", stored2, stored2.size))
    sim.run()
    assert node0.tip == block_b2.hash
    # The A-spend was rolled back; the B-spend is now the real one.
    assert node0.balance_of(MERCHANT_A) == 0
    assert node0.balance_of(MERCHANT_B) == 10 * COIN
    # The conflicting A-spend cannot re-enter the mempool (its coin is
    # gone), so it is not resurrected.
    assert pay_a.txid not in node0.mempool


def test_utxo_identical_across_nodes_after_convergence(nodes):
    sim, (node0, node1) = nodes
    node0.submit_transaction(_spend(MERCHANT_A, 10 * COIN))
    node0.generate_block()
    sim.run()
    node1.generate_block()
    sim.run()
    assert node0.tip == node1.tip
    assert node0.utxo.snapshot().keys() == node1.utxo.snapshot().keys()
