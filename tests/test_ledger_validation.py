"""Full spend validation: structure, value, ownership signatures."""

import pytest

from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.errors import BadSignature, MalformedTransaction, ValueError_
from repro.ledger.transactions import (
    MAX_MONEY,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.ledger.utxo import UtxoSet
from repro.ledger import validation
from repro.ledger.validation import (
    check_transaction,
    compute_fee,
    validate_spend,
    verify_input_signatures,
)

OWNER = PrivateKey.from_seed("owner")
THIEF = PrivateKey.from_seed("thief")
OWNER_PKH = hash160(OWNER.public_key().to_bytes())
DEST = bytes(range(20, 40))
COIN_OUTPOINT = OutPoint(b"\xdd" * 32, 0)


def _utxo(value=100):
    utxo = UtxoSet()
    utxo.credit(TxOutput(value, OWNER_PKH), COIN_OUTPOINT, height=0)
    return utxo


def _spend(value_out=90, key=OWNER, sign=True):
    tx = Transaction(
        inputs=(TxInput(COIN_OUTPOINT),),
        outputs=(TxOutput(value_out, DEST),),
    )
    if sign:
        tx = tx.sign_input(0, key)
    return tx


def test_valid_spend_returns_fee():
    assert validate_spend(_spend(90), _utxo(100), height=1) == 10


def test_zero_fee_spend_valid():
    assert validate_spend(_spend(100), _utxo(100), height=1) == 0


def test_overspend_rejected():
    with pytest.raises(ValueError_):
        validate_spend(_spend(101), _utxo(100), height=1)


def test_unsigned_spend_rejected():
    with pytest.raises(BadSignature):
        validate_spend(_spend(sign=False), _utxo(), height=1)


def test_wrong_key_rejected():
    with pytest.raises(BadSignature):
        validate_spend(_spend(key=THIEF), _utxo(), height=1)


def test_signature_check_can_be_disabled():
    # The paper's testbed mode: ownership still enforced structurally
    # elsewhere, but no ECDSA work.
    fee = validate_spend(
        _spend(sign=False), _utxo(), height=1, check_signatures=False
    )
    assert fee == 10


def test_tampered_outputs_invalidate_signature():
    tx = _spend(90)
    tampered = Transaction(tx.inputs, (TxOutput(90, bytes(20)),), tx.padding)
    with pytest.raises(BadSignature):
        validate_spend(tampered, _utxo(), height=1)


def test_coinbase_cannot_be_validated_as_spend():
    from repro.ledger.transactions import make_coinbase

    with pytest.raises(MalformedTransaction):
        validate_spend(make_coinbase([(DEST, 1)]), _utxo(), height=1)


def test_check_transaction_rejects_duplicate_inputs():
    tx = Transaction(
        inputs=(TxInput(COIN_OUTPOINT), TxInput(COIN_OUTPOINT)),
        outputs=(TxOutput(1, DEST),),
    )
    with pytest.raises(MalformedTransaction):
        check_transaction(tx)


def test_check_transaction_rejects_oversize():
    tx = Transaction(
        inputs=(),
        outputs=(TxOutput(1, DEST),),
        padding=b"\x00" * 200_000,
    )
    with pytest.raises(MalformedTransaction):
        check_transaction(tx)


def test_verify_input_signatures_needs_known_coin():
    tx = _spend()
    with pytest.raises(BadSignature):
        verify_input_signatures(tx, UtxoSet())


def test_compute_fee():
    assert compute_fee(_spend(75), _utxo(100), height=1) == 25


def test_compute_fee_coinbase_is_zero():
    from repro.ledger.transactions import make_coinbase

    assert compute_fee(make_coinbase([(DEST, 5)]), _utxo(), height=1) == 0


def test_zero_value_output_is_structurally_legal():
    # Zero-value outputs are odd but valid (data-carrier style); only
    # strictly negative values are malformed.
    tx = Transaction(
        inputs=(TxInput(COIN_OUTPOINT),), outputs=(TxOutput(0, DEST),)
    )
    check_transaction(tx)


def test_output_total_of_exactly_max_money_is_legal():
    tx = Transaction(
        inputs=(TxInput(COIN_OUTPOINT),),
        outputs=(TxOutput(MAX_MONEY - 1, DEST), TxOutput(1, DEST)),
    )
    check_transaction(tx)


def test_size_cap_is_inclusive(monkeypatch):
    tx = _spend(90)
    # A transaction of exactly MAX_TX_SIZE bytes is standard; one byte
    # more is not.
    monkeypatch.setattr(validation, "MAX_TX_SIZE", tx.size)
    check_transaction(tx)
    monkeypatch.setattr(validation, "MAX_TX_SIZE", tx.size - 1)
    with pytest.raises(MalformedTransaction):
        check_transaction(tx)
