"""The UTXO set: apply, undo, maturity, balances."""

import pytest

from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.errors import (
    DoubleSpend,
    ImmatureSpend,
    MissingInput,
    ValueError_,
)
from repro.ledger.transactions import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
)
from repro.ledger.utxo import UtxoSet

KEY = PrivateKey.from_seed("utxo-tests")
PKH = hash160(KEY.public_key().to_bytes())
OTHER = bytes(range(20))


def _seeded_utxo(value=100):
    utxo = UtxoSet(coinbase_maturity=10)
    seed = Transaction(
        inputs=(TxInput(OutPoint(b"\xaa" * 32, 0)),),
        outputs=(TxOutput(value, PKH),),
    )
    # Install as a plain (non-coinbase) credit via apply on a synthetic
    # parent: credit directly instead.
    utxo.credit(TxOutput(value, PKH), OutPoint(b"\xbb" * 32, 0), height=0)
    return utxo


def test_apply_creates_outputs():
    utxo = UtxoSet()
    cb = make_coinbase([(PKH, 50)])
    utxo.apply(cb, height=1)
    assert OutPoint(cb.txid, 0) in utxo
    assert utxo.total_value() == 50


def test_apply_consumes_inputs():
    utxo = _seeded_utxo(100)
    spend = Transaction(
        inputs=(TxInput(OutPoint(b"\xbb" * 32, 0)),),
        outputs=(TxOutput(60, OTHER), TxOutput(40, PKH)),
    )
    utxo.apply(spend, height=1)
    assert OutPoint(b"\xbb" * 32, 0) not in utxo
    assert utxo.balance(OTHER) == 60
    assert utxo.balance(PKH) == 40


def test_undo_restores_exact_state():
    utxo = _seeded_utxo(100)
    before = utxo.snapshot()
    spend = Transaction(
        inputs=(TxInput(OutPoint(b"\xbb" * 32, 0)),),
        outputs=(TxOutput(100, OTHER),),
    )
    undo = utxo.apply(spend, height=1)
    assert utxo.snapshot() != before
    utxo.undo(undo)
    assert utxo.snapshot() == before


def test_missing_input_rejected():
    utxo = UtxoSet()
    spend = Transaction(
        inputs=(TxInput(OutPoint(b"\xcc" * 32, 0)),),
        outputs=(TxOutput(1, PKH),),
    )
    with pytest.raises(MissingInput):
        utxo.apply(spend, height=1)


def test_overspend_rejected():
    utxo = _seeded_utxo(100)
    spend = Transaction(
        inputs=(TxInput(OutPoint(b"\xbb" * 32, 0)),),
        outputs=(TxOutput(101, OTHER),),
    )
    with pytest.raises(ValueError_):
        utxo.apply(spend, height=1)


def test_duplicate_input_within_tx_rejected():
    utxo = _seeded_utxo(100)
    spend = Transaction(
        inputs=(
            TxInput(OutPoint(b"\xbb" * 32, 0)),
            TxInput(OutPoint(b"\xbb" * 32, 0)),
        ),
        outputs=(TxOutput(1, OTHER),),
    )
    with pytest.raises(DoubleSpend):
        utxo.apply(spend, height=1)


def test_coinbase_maturity_enforced():
    utxo = UtxoSet(coinbase_maturity=10)
    cb = make_coinbase([(PKH, 50)])
    utxo.apply(cb, height=5)
    spend = Transaction(
        inputs=(TxInput(OutPoint(cb.txid, 0)),),
        outputs=(TxOutput(50, OTHER),),
    )
    with pytest.raises(ImmatureSpend):
        utxo.apply(spend, height=14)  # only 9 blocks deep
    utxo.apply(spend, height=15)  # exactly mature
    assert utxo.balance(OTHER) == 50


def test_non_coinbase_not_subject_to_maturity():
    utxo = _seeded_utxo(100)
    spend = Transaction(
        inputs=(TxInput(OutPoint(b"\xbb" * 32, 0)),),
        outputs=(TxOutput(100, OTHER),),
    )
    utxo.apply(spend, height=0)  # same height, fine
    assert utxo.balance(OTHER) == 100


def test_fee_is_implicit():
    utxo = _seeded_utxo(100)
    spend = Transaction(
        inputs=(TxInput(OutPoint(b"\xbb" * 32, 0)),),
        outputs=(TxOutput(90, OTHER),),
    )
    utxo.apply(spend, height=1)
    # 10 units vanish into fees; total value reflects that.
    assert utxo.total_value() == 90


def test_credit_rejects_duplicates():
    utxo = _seeded_utxo()
    with pytest.raises(DoubleSpend):
        utxo.credit(TxOutput(1, PKH), OutPoint(b"\xbb" * 32, 0))


def test_outpoints_for_owner():
    utxo = _seeded_utxo(100)
    assert utxo.outpoints_for(PKH) == [OutPoint(b"\xbb" * 32, 0)]
    assert utxo.outpoints_for(OTHER) == []


def test_chained_undo_lifo():
    utxo = _seeded_utxo(100)
    before = utxo.snapshot()
    spend1 = Transaction(
        inputs=(TxInput(OutPoint(b"\xbb" * 32, 0)),),
        outputs=(TxOutput(100, PKH),),
    )
    undo1 = utxo.apply(spend1, height=1)
    spend2 = Transaction(
        inputs=(TxInput(OutPoint(spend1.txid, 0)),),
        outputs=(TxOutput(100, OTHER),),
    )
    undo2 = utxo.apply(spend2, height=2)
    utxo.undo(undo2)
    utxo.undo(undo1)
    assert utxo.snapshot() == before


def test_credit_of_exactly_max_money_is_legal():
    from repro.ledger.transactions import MAX_MONEY

    utxo = UtxoSet()
    outpoint = OutPoint(b"\xcc" * 32, 0)
    utxo.credit(TxOutput(MAX_MONEY, PKH), outpoint, height=0)
    assert outpoint in utxo
    assert utxo.total_value() == MAX_MONEY
