"""Simulator clock, scheduling, determinism."""

import pytest

from repro.net.simulator import Simulator


def test_time_advances_with_events():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.schedule(2.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.0, 5.0]


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [1]


def test_events_scheduled_during_run():
    sim = Simulator()
    seen = []

    def chain(depth):
        seen.append(sim.now)
        if depth > 0:
            sim.schedule(1.0, lambda: chain(depth - 1))

    sim.schedule(0.0, lambda: chain(3))
    sim.run()
    assert seen == [0.0, 1.0, 2.0, 3.0]


def test_max_events_bound():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    sim.run(max_events=10)
    assert sim.events_processed == 10


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1.0, lambda: None)


def test_seeded_rng_deterministic():
    a = Simulator(seed=99)
    b = Simulator(seed=99)
    assert [a.exponential(1.0) for _ in range(5)] == [
        b.exponential(1.0) for _ in range(5)
    ]


def test_exponential_mean():
    sim = Simulator(seed=1)
    samples = [sim.exponential(0.1) for _ in range(20_000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(10.0, rel=0.05)


def test_exponential_rejects_bad_rate():
    with pytest.raises(ValueError):
        Simulator().exponential(0.0)
