"""Simulator clock, scheduling, determinism."""

import pytest

from repro.net.simulator import Simulator


def test_time_advances_with_events():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.schedule(2.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.0, 5.0]


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [1]


def test_events_scheduled_during_run():
    sim = Simulator()
    seen = []

    def chain(depth):
        seen.append(sim.now)
        if depth > 0:
            sim.schedule(1.0, lambda: chain(depth - 1))

    sim.schedule(0.0, lambda: chain(3))
    sim.run()
    assert seen == [0.0, 1.0, 2.0, 3.0]


def test_max_events_bound():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    sim.run(max_events=10)
    assert sim.events_processed == 10


def test_cancelled_event_at_heap_top_with_until():
    """A cancelled head event is reaped, not mistaken for the horizon."""
    sim = Simulator()
    fired = []
    doomed = sim.schedule(5.0, lambda: fired.append("doomed"))
    sim.schedule(10.0, lambda: fired.append("live"))
    doomed.cancel()
    sim.run(until=7.0)
    # The cancelled event at t=5 sat at the heap top; the loop must
    # skip it and still honour the time bound for the t=10 event.
    assert fired == []
    assert sim.now == 7.0
    assert sim.events_processed == 0
    sim.run()
    assert fired == ["live"]
    assert sim.events_processed == 1


def test_cancelled_events_do_not_consume_max_events_budget():
    sim = Simulator()
    fired = []
    for _ in range(3):
        sim.schedule(1.0, lambda: fired.append("doomed")).cancel()
    sim.schedule(2.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("b"))
    sim.run(max_events=1)
    # Three cancelled events were popped first; only live callbacks
    # count against the budget.
    assert fired == ["a"]
    assert sim.events_processed == 1


def test_events_processed_accumulates_across_runs():
    sim = Simulator()
    for delay in (1.0, 2.0, 3.0, 4.0):
        sim.schedule(delay, lambda: None)
    sim.run(until=2.0)
    assert sim.events_processed == 2
    sim.run(max_events=1)
    assert sim.events_processed == 3
    sim.run()
    assert sim.events_processed == 4
    # Draining an empty queue leaves the counter untouched.
    sim.run()
    assert sim.events_processed == 4


def test_events_processed_counts_callbacks_that_raise():
    sim = Simulator()

    def boom():
        raise RuntimeError("boom")

    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    # The finally block still credits the events that completed before
    # the raising callback; the raising one itself never counts.
    assert sim.events_processed == 1
    assert sim.now == 2.0


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1.0, lambda: None)


def test_seeded_rng_deterministic():
    a = Simulator(seed=99)
    b = Simulator(seed=99)
    assert [a.exponential(1.0) for _ in range(5)] == [
        b.exponential(1.0) for _ in range(5)
    ]


def test_exponential_mean():
    sim = Simulator(seed=1)
    samples = [sim.exponential(0.1) for _ in range(20_000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(10.0, rel=0.05)


def test_exponential_rejects_bad_rate():
    with pytest.raises(ValueError):
        Simulator().exponential(0.0)
