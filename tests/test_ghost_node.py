"""GHOST nodes over the simulated network."""

from repro.bitcoin.blocks import make_genesis
from repro.bitcoin.node import BlockPolicy
from repro.ghost.node import GhostNode
from repro.metrics.collector import ObservationLog
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology

GENESIS = make_genesis()


def _cluster(n=3, log=None):
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(n), constant_histogram(0.05), 1e6)
    nodes = [
        GhostNode(i, sim, net, GENESIS, log=log, policy=BlockPolicy(max_block_bytes=5000))
        for i in range(n)
    ]
    return sim, nodes


def test_block_propagates():
    sim, nodes = _cluster()
    block = nodes[0].generate_block()
    sim.run()
    assert all(node.tip == block.hash for node in nodes)


def test_fork_resolution_by_subtree():
    sim, nodes = _cluster()
    a = nodes[0].generate_block()
    b = nodes[1].generate_block()
    sim.run()
    # Extend whichever branch node 2 follows; everyone converges.
    block3 = nodes[2].generate_block()
    sim.run()
    assert all(node.tip == block3.hash for node in nodes)


def test_pruned_blocks_still_relayed():
    # GHOST requires propagating all blocks: the losing fork block must
    # reach everyone, since it affects subtree weight.
    sim, nodes = _cluster()
    a = nodes[0].generate_block()
    b = nodes[1].generate_block()
    sim.run()
    for node in nodes:
        assert a.hash in node.tree
        assert b.hash in node.tree


def test_observation_log():
    log = ObservationLog(3)
    sim, nodes = _cluster(log=log)
    block = nodes[0].generate_block()
    sim.run()
    assert block.hash in log.index
    assert log.index.info(block.hash).kind == "block"
