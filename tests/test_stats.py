"""Shared statistics helpers."""

import pytest

from repro.stats import (
    LinearFit,
    linear_fit,
    log_linear_fit,
    percentile,
    summarize,
)


def test_percentile_empirical():
    samples = [10.0, 20.0, 30.0, 40.0, 50.0]
    assert percentile(samples, 0.0) == 10.0
    assert percentile(samples, 0.5) == 30.0
    assert percentile(samples, 0.9) == 50.0
    assert percentile(samples, 1.0) == 50.0


def test_percentile_interpolated():
    samples = [0.0, 10.0]
    assert percentile(samples, 0.5, interpolate=True) == pytest.approx(5.0)
    assert percentile(samples, 0.25, interpolate=True) == pytest.approx(2.5)


def test_percentile_unsorted_input():
    assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_linear_fit_exact():
    fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(10) == pytest.approx(21.0)


def test_linear_fit_noisy_r_squared_below_one():
    fit = linear_fit([0, 1, 2, 3], [0, 1.2, 1.8, 3.1])
    assert 0.9 < fit.r_squared < 1.0


def test_linear_fit_validation():
    with pytest.raises(ValueError):
        linear_fit([1], [1])
    with pytest.raises(ValueError):
        linear_fit([1, 2], [1])
    with pytest.raises(ValueError):
        linear_fit([1, 1], [1, 2])


def test_log_linear_fit_recovers_exponential():
    import math

    xs = list(range(1, 11))
    ys = [math.exp(-0.27 * x) for x in xs]
    fit = log_linear_fit(xs, ys)
    assert fit.slope == pytest.approx(-0.27)
    assert fit.r_squared == pytest.approx(1.0)


def test_log_linear_fit_rejects_nonpositive():
    with pytest.raises(ValueError):
        log_linear_fit([1, 2], [1.0, 0.0])


def test_summarize():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.n == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert summary.stdev == pytest.approx(1.118, abs=1e-3)


def test_summarize_empty():
    with pytest.raises(ValueError):
        summarize([])
