"""Full-validation Bitcoin-NG: real transactions end to end.

Exercises the library mode the paper's testbed skipped: microblocks
carrying real UTXO transactions with ECDSA signatures, state tracked
through leader switches and microblock pruning.
"""

import pytest

from repro.core.genesis import make_ng_genesis, seed_genesis_coins
from repro.core.node import MicroblockPolicy, NGNode
from repro.core.params import NGParams
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import (
    COIN,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology

PARAMS = NGParams(
    key_block_interval=100.0, min_microblock_interval=10.0, coinbase_maturity=2
)
USER = PrivateKey.from_seed("ng-user")
USER_PKH = hash160(USER.public_key().to_bytes())
MERCHANT = bytes(range(40, 60))


@pytest.fixture()
def cluster():
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(3), constant_histogram(0.02), 1e6)
    genesis = make_ng_genesis()
    policy = MicroblockPolicy(target_bytes=50_000, synthetic=False)
    nodes = [
        NGNode(i, sim, net, genesis, PARAMS, policy=policy, check_signatures=True)
        for i in range(3)
    ]
    # Give the user genesis coins on every node's state, identically.
    outpoints = None
    for node in nodes:
        outpoints = seed_genesis_coins(node.utxo, [(USER_PKH, 10 * COIN)])
    return sim, nodes, outpoints[0]


def test_transaction_serialized_in_microblock(cluster):
    sim, nodes, outpoint = cluster
    nodes[0].generate_key_block()
    spend = Transaction(
        inputs=(TxInput(outpoint),),
        outputs=(TxOutput(4 * COIN, MERCHANT), TxOutput(6 * COIN, USER_PKH)),
    ).sign_input(0, USER)
    nodes[0].submit_transaction(spend)
    sim.run(until=15.0)  # the first microblock carries it
    for node in nodes:
        assert node.balance_of(MERCHANT) == 4 * COIN
        assert node.balance_of(USER_PKH) == 6 * COIN


def test_invalid_signature_never_enters_chain(cluster):
    sim, nodes, outpoint = cluster
    nodes[0].generate_key_block()
    thief = PrivateKey.from_seed("ng-thief")
    steal = Transaction(
        inputs=(TxInput(outpoint),),
        outputs=(TxOutput(10 * COIN, MERCHANT),),
    ).sign_input(0, thief)
    from repro.ledger.errors import BadSignature

    with pytest.raises(BadSignature):
        nodes[0].submit_transaction(steal)


def test_fee_split_pays_both_leaders_through_coinbase(cluster):
    sim, nodes, outpoint = cluster
    nodes[0].generate_key_block()
    fee = 1 * COIN
    spend = Transaction(
        inputs=(TxInput(outpoint),),
        outputs=(TxOutput(9 * COIN, MERCHANT),),  # 1 coin fee
    ).sign_input(0, USER)
    nodes[0].submit_transaction(spend)
    sim.run(until=15.0)
    key2 = nodes[1].generate_key_block()
    sim.run(until=16.0)
    values = {out.pubkey_hash: out.value for out in key2.coinbase.outputs}
    assert values[nodes[0].pubkey_hash] == int(fee * 0.4)
    assert values[nodes[1].pubkey_hash] == PARAMS.key_block_reward + fee - int(fee * 0.4)


def test_state_survives_microblock_pruning(cluster):
    # Figure 2 with real state: a key block prunes a microblock the new
    # leader had not seen; nodes that applied it must roll it back.
    sim, nodes, outpoint = cluster
    nodes[0].generate_key_block()
    sim.run(until=11.0)  # first (empty) microblock everywhere
    spend = Transaction(
        inputs=(TxInput(outpoint),),
        outputs=(TxOutput(10 * COIN, MERCHANT),),
    ).sign_input(0, USER)
    nodes[0].submit_transaction(spend)
    # The leader emits the spend's microblock at t=20 but node 2 mines a
    # key block at t=20.05 on the earlier tip, pruning it.
    sim.run(until=20.01)
    assert nodes[0].balance_of(MERCHANT) == 10 * COIN  # leader applied it
    nodes[2].generate_key_block()
    sim.run(until=25.0)
    # The new key block wins; the spend is rolled back everywhere and
    # sits in mempools for re-inclusion.
    for node in nodes:
        assert node.tip == nodes[2].tip
    assert nodes[0].balance_of(MERCHANT) == 0
    assert spend.txid in nodes[0].mempool
    # The new leader eventually re-serializes it.
    sim.run(until=45.0)
    assert nodes[2].balance_of(MERCHANT) == 10 * COIN


def test_coinbase_maturity_in_ng(cluster):
    sim, nodes, outpoint = cluster
    key1 = nodes[0].generate_key_block()
    sim.run(until=1.0)
    reward_outpoint = OutPoint(key1.coinbase.txid, 0)
    immature_spend = Transaction(
        inputs=(TxInput(reward_outpoint),),
        outputs=(TxOutput(PARAMS.key_block_reward, MERCHANT),),
    ).sign_input(0, nodes[0].key)
    from repro.ledger.errors import ImmatureSpend

    with pytest.raises(ImmatureSpend):
        nodes[0].submit_transaction(immature_spend)
