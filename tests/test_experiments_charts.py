"""ASCII chart rendering."""

import pytest

from repro.experiments.charts import ascii_chart, sweep_chart


def test_basic_chart_contains_symbols_and_axes():
    chart = ascii_chart(
        {"a": [(1.0, 1.0), (2.0, 2.0)], "b": [(1.0, 2.0), (2.0, 1.0)]},
        width=20,
        height=6,
    )
    assert "o" in chart
    assert "x" in chart
    assert "└" in chart
    assert "o = a" in chart
    assert "x = b" in chart


def test_extremes_land_on_grid_corners():
    chart = ascii_chart({"s": [(0.0, 0.0), (10.0, 10.0)]}, width=20, height=6)
    lines = chart.splitlines()
    top = lines[0]
    bottom = lines[5]
    assert top.strip().startswith("10")
    assert top.rstrip().endswith("o")  # max point, top-right
    assert bottom.split("┤")[1][0] == "o"  # min point, bottom-left


def test_overlap_marker():
    chart = ascii_chart(
        {"a": [(1.0, 5.0)], "b": [(1.0, 5.0)], "pad": [(2.0, 0.0)]},
        width=20,
        height=6,
    )
    assert "@" in chart


def test_log_axis_requires_positive_x():
    with pytest.raises(ValueError):
        ascii_chart({"a": [(0.0, 1.0), (1.0, 2.0)]}, log_x=True)


def test_flat_series_does_not_crash():
    chart = ascii_chart({"a": [(1.0, 3.0), (2.0, 3.0)]}, width=20, height=6)
    assert "o" in chart


def test_validation():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"a": []})
    with pytest.raises(ValueError):
        ascii_chart({"a": [(1.0, 1.0)]}, width=5)


def test_sweep_chart_end_to_end():
    from repro.experiments import ExperimentConfig, frequency_sweep

    base = ExperimentConfig(
        n_nodes=12, target_blocks=10, target_key_blocks=4, cooldown=15.0
    )
    sweep = frequency_sweep(base, frequencies=(0.05, 0.5))
    chart = sweep_chart(sweep, "mining_power_utilization")
    assert "mining_power_utilization" in chart
    assert "bitcoin" in chart
    assert "bitcoin-ng" in chart
