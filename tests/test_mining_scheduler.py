"""The exponential mining scheduler."""

import pytest

from repro.mining.scheduler import MiningScheduler
from repro.net.simulator import Simulator


def _run(powers, rate, duration, seed=0):
    sim = Simulator(seed=seed)
    wins = []
    sched = MiningScheduler(sim, powers, rate, on_block=wins.append)
    sched.start()
    sim.run(until=duration)
    sched.stop()
    return sched, wins


def test_block_rate_respected():
    _, wins = _run([1.0], rate=0.1, duration=10_000)
    assert len(wins) == pytest.approx(1000, rel=0.15)


def test_wins_proportional_to_power():
    sched, wins = _run([3.0, 1.0], rate=1.0, duration=20_000)
    big = wins.count(0)
    small = wins.count(1)
    assert big / (big + small) == pytest.approx(0.75, abs=0.02)


def test_zero_power_miner_never_wins():
    _, wins = _run([1.0, 0.0], rate=1.0, duration=1000)
    assert 1 not in wins


def test_intervals_exponential():
    sim = Simulator(seed=3)
    times = []
    sched = MiningScheduler(sim, [1.0], 0.5, on_block=lambda _: times.append(sim.now))
    sched.start()
    sim.run(until=40_000)
    sched.stop()
    intervals = [b - a for a, b in zip(times, times[1:])]
    mean = sum(intervals) / len(intervals)
    assert mean == pytest.approx(2.0, rel=0.1)
    # Memoryless: the coefficient of variation of Exp is 1.
    var = sum((x - mean) ** 2 for x in intervals) / len(intervals)
    assert var**0.5 / mean == pytest.approx(1.0, rel=0.15)


def test_stop_cancels_pending():
    sim = Simulator(seed=0)
    wins = []
    sched = MiningScheduler(sim, [1.0], 1.0, on_block=wins.append)
    sched.start()
    sched.stop()
    sim.run()
    assert wins == []


def test_set_block_rate_mid_run():
    sim = Simulator(seed=1)
    times = []
    sched = MiningScheduler(sim, [1.0], 0.01, on_block=lambda _: times.append(sim.now))
    sched.start()
    sim.run(until=100)
    sched.set_block_rate(10.0)
    sim.run(until=110)
    sched.stop()
    fast = [t for t in times if t > 100]
    assert len(fast) == pytest.approx(100, rel=0.3)


def test_set_power_shifts_wins():
    sim = Simulator(seed=2)
    wins = []
    sched = MiningScheduler(sim, [1.0, 1.0], 1.0, on_block=wins.append)
    sched.start()
    sim.run(until=1000)
    sched.set_power(1, 0.0)
    marker = len(wins)
    sim.run(until=3000)
    sched.stop()
    assert 1 not in wins[marker:]
    assert sched.power_share(0) == 1.0


def test_win_counters():
    sched, wins = _run([1.0, 1.0], 1.0, 500)
    assert sched.blocks_triggered == len(wins)
    assert sched.wins_by_miner[0] + sched.wins_by_miner[1] == len(wins)


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        MiningScheduler(sim, [], 1.0, lambda _: None)
    with pytest.raises(ValueError):
        MiningScheduler(sim, [-1.0], 1.0, lambda _: None)
    with pytest.raises(ValueError):
        MiningScheduler(sim, [0.0], 1.0, lambda _: None)
    with pytest.raises(ValueError):
        MiningScheduler(sim, [1.0], 0.0, lambda _: None)
    sched = MiningScheduler(sim, [1.0], 1.0, lambda _: None)
    with pytest.raises(ValueError):
        sched.set_block_rate(-1.0)
    with pytest.raises(ValueError):
        sched.set_power(0, -2.0)


def test_block_rate_must_be_strictly_positive():
    sim = Simulator(seed=0)
    sched = MiningScheduler(sim, [1.0], 1.0, on_block=lambda _: None)
    with pytest.raises(ValueError):
        sched.set_block_rate(0.0)
    # Fractional (sub-one) rates are fine.
    sched.set_block_rate(0.5)
    assert sched.block_rate == 0.5


def test_total_power_must_stay_strictly_positive():
    sim = Simulator(seed=0)
    sched = MiningScheduler(sim, [1.0, 1.0], 1.0, on_block=lambda _: None)
    sched.set_power(0, 0.0)
    with pytest.raises(ValueError):
        sched.set_power(1, 0.0)


def test_stop_before_start_is_a_noop():
    sim = Simulator(seed=0)
    sched = MiningScheduler(sim, [1.0], 1.0, on_block=lambda _: None)
    sched.stop()
    assert sched._pending is None


def test_uniform_upper_bound_maps_to_the_last_miner():
    # random.uniform's range is closed at the top: a draw of exactly
    # total power must select the last miner, not index past the end.
    sim = Simulator(seed=0)
    sched = MiningScheduler(sim, [1.0, 2.0, 3.0], 1.0, on_block=lambda _: None)
    sim.rng.uniform = lambda a, b: b
    assert sched._pick_winner() == 2
