"""The (ε, δ) consensus delay metric on hand-built executions."""

import pytest

from repro.metrics.collector import BlockInfo, ObservationLog
from repro.metrics.consensus_delay import consensus_delay, point_consensus_delay


def _info(h, parent, t, miner=0):
    return BlockInfo(h, parent, miner, t, 1, "block", 0, 100)


def _agreed_log():
    """Three nodes in perfect agreement on a / b."""
    log = ObservationLog(3)
    log.index.add(_info(b"a", b"g", 1.0))
    log.index.add(_info(b"b", b"a", 2.0))
    for node in range(3):
        log.record_tip(node, b"a", 1.1)
        log.record_tip(node, b"b", 2.1)
    log.finalize(10.0)
    return log


def test_full_agreement_zero_delay():
    log = _agreed_log()
    assert point_consensus_delay(log, 5.0, epsilon=1.0) == 0.0


def test_disagreement_reaches_back_to_fork():
    log = ObservationLog(2)
    log.index.add(_info(b"a", b"g", 1.0))
    log.index.add(_info(b"b1", b"a", 3.0))
    log.index.add(_info(b"b2", b"a", 3.5))
    log.record_tip(0, b"a", 1.0)
    log.record_tip(1, b"a", 1.0)
    log.record_tip(0, b"b1", 3.0)
    log.record_tip(1, b"b2", 3.5)
    log.finalize(10.0)
    # Both nodes only agree on the prefix ending at a (gen 1.0).
    assert point_consensus_delay(log, 5.0, epsilon=1.0) == pytest.approx(4.0)


def test_epsilon_majority_ignores_straggler():
    log = ObservationLog(3)
    log.index.add(_info(b"a", b"g", 1.0))
    log.index.add(_info(b"b", b"a", 2.0))
    log.index.add(_info(b"x", b"a", 2.5))
    for node in (0, 1):
        log.record_tip(node, b"a", 1.0)
        log.record_tip(node, b"b", 2.0)
    log.record_tip(2, b"a", 1.0)
    log.record_tip(2, b"x", 2.5)  # the straggler on a fork
    log.finalize(10.0)
    # 2/3 of nodes agree up to now; all three only up to a.
    assert point_consensus_delay(log, 5.0, epsilon=0.6) == 0.0
    assert point_consensus_delay(log, 5.0, epsilon=1.0) == pytest.approx(4.0)


def test_before_any_blocks_trivial_agreement():
    log = ObservationLog(2)
    log.record_tip(0, b"g", 0.0)
    log.record_tip(1, b"g", 0.0)
    log.finalize(10.0)
    # Genesis-only chains agree on the empty prefix at any τ.
    assert point_consensus_delay(log, 5.0, epsilon=1.0) == 0.0


def test_consensus_delay_percentile():
    log = _agreed_log()
    assert consensus_delay(log, epsilon=1.0, delta=0.9, n_samples=10) == 0.0


def test_consensus_delay_validation():
    log = _agreed_log()
    with pytest.raises(ValueError):
        point_consensus_delay(log, 5.0, epsilon=0.0)
    with pytest.raises(ValueError):
        consensus_delay(log, delta=0.0)
    with pytest.raises(ValueError):
        consensus_delay(log, n_samples=0)
