"""Reward accounting consistency: ledger analysis vs live coinbases.

Two independent implementations of Section 4.4 must agree: the
:class:`~repro.core.remuneration.RewardLedger` (post-hoc analysis over
a chain) and the coinbases actually minted by live NG nodes during a
simulation.  Any drift between them would mean the incentive analysis
is reasoning about a different protocol than the one running.
"""

import pytest

from repro.core.chain import NGChain
from repro.core.genesis import make_ng_genesis
from repro.core.node import MicroblockPolicy, NGNode
from repro.core.params import NGParams
from repro.core.remuneration import RewardLedger
from repro.core.blocks import KeyBlock
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology

FEE_PER_TX = 1_000
PARAMS = NGParams(key_block_interval=50.0, min_microblock_interval=10.0)


def _run_epochs(n_epochs=4):
    sim = Simulator(seed=3)
    net = Network(sim, complete_topology(3), constant_histogram(0.02), 1e6)
    genesis = make_ng_genesis()
    policy = MicroblockPolicy(
        target_bytes=4760, synthetic_fee_per_tx=FEE_PER_TX
    )
    nodes = [
        NGNode(i, sim, net, genesis, PARAMS, policy=policy)
        for i in range(3)
    ]
    t = 0.0
    for epoch in range(n_epochs):
        nodes[epoch % 3].generate_key_block()
        t += 45.0  # a few microblocks per epoch, no pruning races
        sim.run(until=t)
    sim.run(until=t + 10.0)
    return nodes


def test_reward_ledger_matches_minted_coinbases():
    nodes = _run_epochs()
    observer = nodes[2]
    chain = observer.chain
    records = [chain.record(h) for h in chain.main_chain()]
    ledger = RewardLedger(PARAMS, fee_of=lambda m: m.n_tx * FEE_PER_TX)
    epochs, analyzed_revenue = ledger.compute(records)

    # Independently: sum what the coinbases actually minted per miner,
    # attributing each output to the wallet that can spend it.
    minted: dict[int, int] = {}
    pkh_to_miner = {node.pubkey_hash: node.node_id for node in nodes}
    for record in records:
        if not record.is_key or record.hash == chain.genesis_hash:
            continue
        block = record.block
        assert isinstance(block, KeyBlock)
        for out in block.coinbase.outputs:
            miner = pkh_to_miner.get(out.pubkey_hash)
            if miner is not None:
                minted[miner] = minted.get(miner, 0) + out.value

    # The ledger's final (open) epoch holds back the leader's own
    # placed-fee share — the coinbase that would pay it does not exist
    # yet — so everything minted so far must match exactly.
    for miner, minted_total in minted.items():
        analyzed = analyzed_revenue.get(miner, 0)
        assert minted_total == analyzed, (
            f"miner {miner}: minted {minted_total} vs analyzed {analyzed}"
        )


def test_epoch_breakdown_fee_conservation():
    nodes = _run_epochs()
    chain = nodes[0].chain
    records = [chain.record(h) for h in chain.main_chain()]
    ledger = RewardLedger(PARAMS, fee_of=lambda m: m.n_tx * FEE_PER_TX)
    epochs, _ = ledger.compute(records)
    # Every closed epoch's fees split exactly 40/60 across two epochs.
    total_fees_closed = 0
    cursor_fees = {}
    for record in records:
        if not record.is_key:
            cursor_fees.setdefault(record.key_height, 0)
            cursor_fees[record.key_height] += record.block.n_tx * FEE_PER_TX
    last_height = max(r.key_height for r in records)
    for height, fees in cursor_fees.items():
        if height < last_height:
            total_fees_closed += fees
    distributed = sum(e.placed_fee_share + e.next_fee_share for e in epochs)
    assert distributed == total_fees_closed
