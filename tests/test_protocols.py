"""The protocol-adapter registry: the runner's only protocol surface."""

import pytest

from repro.experiments import ExperimentConfig, Protocol, run_experiment
from repro.metrics import ObservationLog
from repro.mining.power import exponential_shares
from repro.net.simulator import Simulator
from repro.experiments.runner import build_network
from repro.protocols import (
    BitcoinAdapter,
    BitcoinNGAdapter,
    GhostAdapter,
    ProtocolAdapter,
    get_adapter,
    protocol_name,
    register_adapter,
    registered_protocols,
    unregister_adapter,
)

CONFIG = ExperimentConfig(
    n_nodes=10,
    target_blocks=10,
    target_key_blocks=3,
    block_rate=0.1,
    block_size_bytes=5000,
    cooldown=20.0,
)


def test_builtins_registered_under_enum_values():
    assert set(registered_protocols()) >= {p.value for p in Protocol}
    assert isinstance(get_adapter(Protocol.BITCOIN), BitcoinAdapter)
    assert isinstance(get_adapter(Protocol.BITCOIN_NG), BitcoinNGAdapter)
    assert isinstance(get_adapter(Protocol.GHOST), GhostAdapter)
    # Enum member and its string name resolve identically.
    assert get_adapter("ghost") is get_adapter(Protocol.GHOST)


def test_protocol_name_normalizes():
    assert protocol_name(Protocol.BITCOIN_NG) == "bitcoin-ng"
    assert protocol_name("custom") == "custom"


def test_unknown_protocol_lists_registered():
    with pytest.raises(KeyError, match="bitcoin"):
        get_adapter("no-such-protocol")


def test_duplicate_registration_rejected_unless_replace():
    adapter = BitcoinAdapter()
    with pytest.raises(ValueError):
        register_adapter(adapter)
    original = get_adapter("bitcoin")
    try:
        register_adapter(adapter, replace=True)
        assert get_adapter("bitcoin") is adapter
    finally:
        register_adapter(original, replace=True)


def test_adapter_requires_a_name():
    class Nameless(BitcoinAdapter):
        name = ""

    with pytest.raises(ValueError):
        register_adapter(Nameless())


def test_build_nodes_matches_runner_construction():
    adapter = get_adapter(Protocol.BITCOIN)
    sim = Simulator(seed=0)
    network = build_network(CONFIG, sim)
    log = ObservationLog(CONFIG.n_nodes)
    shares = exponential_shares(CONFIG.n_nodes)
    nodes, scheduler = adapter.build_nodes(CONFIG, sim, network, log, shares)
    assert len(nodes) == CONFIG.n_nodes
    assert scheduler.block_rate == CONFIG.block_rate


def test_leaderless_adapters_report_no_leader():
    adapter = get_adapter(Protocol.BITCOIN)
    sim = Simulator(seed=0)
    network = build_network(CONFIG, sim)
    log = ObservationLog(CONFIG.n_nodes)
    nodes, _ = adapter.build_nodes(
        CONFIG, sim, network, log, exponential_shares(CONFIG.n_nodes)
    )
    assert adapter.current_leader(nodes) is None


def test_ng_adapter_tracks_the_leader():
    adapter = get_adapter(Protocol.BITCOIN_NG)
    sim = Simulator(seed=0)
    network = build_network(CONFIG, sim)
    log = ObservationLog(CONFIG.n_nodes)
    nodes, _ = adapter.build_nodes(
        CONFIG, sim, network, log, exponential_shares(CONFIG.n_nodes)
    )
    assert adapter.current_leader(nodes) is None  # genesis epoch
    nodes[3].generate_key_block()
    # Bounded run: a leading NG node keeps a microblock timer alive, so
    # an unbounded run would never drain the event queue.
    sim.run(until=5.0)
    assert adapter.current_leader(nodes) == 3


def test_custom_adapter_runs_through_the_runner_by_string_name():
    # The whole point of the registry: a protocol the runner has never
    # heard of runs end to end once registered, selected by string.
    class SlowBitcoinAdapter(BitcoinAdapter):
        name = "bitcoin-slow"
        build_calls = 0

        def build_nodes(self, config, sim, network, log, shares):
            type(self).build_calls += 1
            return super().build_nodes(config, sim, network, log, shares)

    register_adapter(SlowBitcoinAdapter())
    try:
        config = CONFIG.with_(protocol="bitcoin-slow")
        assert config.protocol == "bitcoin-slow"  # not a Protocol member
        result, log = run_experiment(config)
        assert SlowBitcoinAdapter.build_calls == 1
        assert result.blocks_generated > 0
        assert result.config.protocol == "bitcoin-slow"
    finally:
        unregister_adapter("bitcoin-slow")
    with pytest.raises(KeyError):
        get_adapter("bitcoin-slow")


def test_custom_adapter_config_round_trips():
    config = ExperimentConfig(protocol="my-protocol")
    data = config.to_dict()
    assert data["protocol"] == "my-protocol"
    assert ExperimentConfig.from_dict(data) == config


def test_known_string_protocol_becomes_enum_member():
    config = ExperimentConfig(protocol="bitcoin-ng")
    assert config.protocol is Protocol.BITCOIN_NG


def test_default_lifecycle_hooks_resync(monkeypatch):
    class Recorder:
        def __init__(self):
            self.calls = []

        def reset_relay_state(self):
            self.calls.append("reset")

        def request_tips(self):
            self.calls.append("tips")

    class MinimalAdapter(ProtocolAdapter):
        name = "minimal"

        def build_nodes(self, config, sim, network, log, shares):
            raise NotImplementedError

    adapter = MinimalAdapter()
    node = Recorder()
    adapter.on_crash(node, sim=None, network=None)  # default: no-op
    assert node.calls == []
    adapter.on_restart(node, sim=None, network=None)
    assert node.calls == ["reset", "tips"]
