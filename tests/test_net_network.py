"""Network message delivery, churn, and statistics."""

import pytest

from repro.net.latency import constant_histogram
from repro.net.network import Message, Network
from repro.net.simulator import Simulator
from repro.net.topology import Topology, complete_topology, ring_topology


class Recorder:
    """Message sink capturing (sender, message, time)."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message, self.sim.now))


def _network(n=3, latency=0.1, bandwidth=1000.0, topo=None):
    sim = Simulator(seed=0)
    topology = topo or complete_topology(n)
    net = Network(sim, topology, constant_histogram(latency), bandwidth)
    sinks = [Recorder(sim) for _ in range(topology.n_nodes)]
    for i, sink in enumerate(sinks):
        net.attach(i, sink)
    return sim, net, sinks


def test_send_delivers_after_latency_and_serialization():
    sim, net, sinks = _network()
    net.send(0, 1, Message("ping", None, 1000))
    sim.run()
    _, _, arrival = sinks[1].received[0]
    assert arrival == pytest.approx(1.0 + 0.1)


def test_broadcast_reaches_all_neighbors():
    sim, net, sinks = _network(n=4)
    net.broadcast(0, Message("hello", 42, 10))
    sim.run()
    for sink in sinks[1:]:
        assert len(sink.received) == 1
    assert sinks[0].received == []


def test_send_requires_adjacency():
    sim, net, _ = _network(topo=ring_topology(4))
    with pytest.raises(ValueError):
        net.send(0, 2, Message("x", None, 1))


def test_offline_node_drops_messages():
    sim, net, sinks = _network()
    net.set_offline(1)
    net.send(0, 1, Message("lost", None, 1))
    sim.run()
    assert sinks[1].received == []


def test_offline_sender_cannot_send():
    sim, net, sinks = _network()
    net.set_offline(0)
    net.send(0, 1, Message("lost", None, 1))
    sim.run()
    assert sinks[1].received == []


def test_node_returning_from_churn():
    sim, net, sinks = _network()
    net.set_offline(1)
    assert not net.is_online(1)
    net.set_offline(1, offline=False)
    net.send(0, 1, Message("back", None, 1))
    sim.run()
    assert len(sinks[1].received) == 1


def test_symmetric_pair_latency_independent_queues():
    sim, net, sinks = _network(latency=0.2, bandwidth=100.0)
    net.send(0, 1, Message("a", None, 100))
    net.send(1, 0, Message("b", None, 100))
    sim.run()
    # Opposite directions do not queue behind each other.
    assert sinks[1].received[0][2] == pytest.approx(1.2)
    assert sinks[0].received[0][2] == pytest.approx(1.2)


def test_delivery_statistics():
    sim, net, sinks = _network()
    net.send(0, 1, Message("a", None, 10))
    net.send(0, 2, Message("b", None, 20))
    sim.run()
    assert net.messages_delivered == 2
    assert net.bytes_delivered == 30
    assert net.total_bytes_queued() == 30


def test_attach_validates_node_id():
    sim, net, _ = _network()
    with pytest.raises(ValueError):
        net.attach(99, Recorder(sim))


def test_message_size_validation():
    with pytest.raises(ValueError):
        Message("bad", None, -1)


def test_traffic_by_node_sums_link_counters():
    sim, net, _ = _network(n=3)
    net.send(0, 1, Message("a", None, 100))
    net.send(0, 2, Message("b", None, 250))
    net.send(1, 0, Message("c", None, 40))
    sim.run()
    traffic = net.traffic_by_node()
    assert traffic[0] == {
        "bytes_out": 350, "bytes_in": 40,
        "messages_out": 2, "messages_in": 1,
    }
    assert traffic[1]["bytes_in"] == 100
    assert traffic[2] == {
        "bytes_out": 0, "bytes_in": 250,
        "messages_out": 0, "messages_in": 1,
    }
    # Conservation: every byte out lands as a byte in somewhere.
    assert sum(t["bytes_out"] for t in traffic) == net.total_bytes_queued()
    assert sum(t["bytes_in"] for t in traffic) == net.total_bytes_queued()


def test_traffic_by_node_counts_booked_not_delivered():
    sim, net, sinks = _network()
    net.send(0, 1, Message("x", None, 500))
    net.set_offline(1)  # goes dark while the message is in flight
    sim.run()
    assert sinks[1].received == []
    assert net.traffic_by_node()[1]["bytes_in"] == 500


def test_link_utilization_tracks_serialization():
    sim, net, _ = _network(bandwidth=1000.0)
    busy, total, queued = net.link_utilization(sim.now)
    assert (busy, queued) == (0, 0.0)
    assert total == 6  # complete 3-node graph, one link per direction
    # 4000 bytes at 1000 B/s is bulk (above the interleave cutoff) and
    # holds the 0→1 link for 4 s.
    net.send(0, 1, Message("bulk", None, 4000))
    busy, _, queued = net.link_utilization(sim.now)
    assert busy == 1
    assert queued == pytest.approx(4000.0)
    busy, _, queued = net.link_utilization(sim.now + 2.0)
    assert queued == pytest.approx(2000.0)
    sim.run()
    busy, _, queued = net.link_utilization(sim.now)
    assert (busy, queued) == (0, 0.0)


def _obs_network():
    from repro.obs import Observability
    from repro.obs.trace import MemorySink, Tracer

    sim = Simulator(seed=0)
    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink))
    net = Network(
        sim, complete_topology(3), constant_histogram(0.1), 1000.0, obs=obs
    )
    for i in range(3):
        net.attach(i, Recorder(sim))
    return sim, net, obs, sink


def test_instrumented_send_updates_counters_and_trace():
    sim, net, obs, sink = _obs_network()
    net.send(0, 1, Message("inv", None, 61))
    sim.run()
    metrics = obs.registry.collect()
    assert metrics["net_messages_sent"]["values"] == {"kind=inv": 1.0}
    assert metrics["net_bytes_sent"]["values"] == {"kind=inv": 61.0}
    events = [r["ev"] for r in sink.records]
    assert events == ["send", "deliver"]
    assert sink.records[0]["src"] == 0
    assert sink.records[0]["dst"] == 1


def test_instrumented_drops_are_recorded():
    sim, net, obs, sink = _obs_network()
    net.set_offline(1)
    net.send(0, 1, Message("inv", None, 61))
    net.block_link(0, 2)
    net.send(0, 2, Message("inv", None, 61))
    sim.run()
    counter = obs.registry.counter("net_sends_dropped")
    assert counter.value == 2
    assert [r["ev"] for r in sink.records] == ["drop", "drop"]


def test_key_block_sized_message_overtakes_bulk_transfer():
    """A tiny message sent after a large one still arrives first.

    This is the property that keeps Bitcoin-NG's leader election live
    at high throughput: key blocks (~200 B) interleave with 80 kB
    microblock bodies instead of queuing behind them.
    """
    sim, net, sinks = _network(latency=0.1, bandwidth=12_500)
    net.send(0, 1, Message("micro-body", None, 80_000))  # 6.4 s wire time
    net.send(0, 1, Message("key-block", None, 200))
    sim.run()
    kinds_in_order = [m.kind for _, m, _ in sinks[1].received]
    assert kinds_in_order == ["key-block", "micro-body"]
    key_arrival = sinks[1].received[0][2]
    assert key_arrival < 0.5


# -- determinism regression (repro lint NG301 fix) ---------------------------


def test_link_latencies_independent_of_edge_insertion_order():
    """Latency assignment is pinned to sorted edge order, not set layout.

    Links used to be built by iterating ``topology.edges`` — a set of
    frozensets — while drawing one latency per edge, so the latency a
    pair received depended on hash/insertion order (flagged by
    ``repro lint`` rule NG301).  The fix draws in sorted edge order:
    two topologies with the same edge *set* but different insertion
    histories must now produce bit-identical link latencies.
    """
    import random

    from repro.net.latency import default_histogram

    edges = [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2), (0, 3), (2, 4), (3, 4)]
    forward = Topology(5)
    for a, b in edges:
        forward.add_edge(a, b)
    backward = Topology(5)
    for a, b in reversed(edges):
        backward.add_edge(b, a)
    assert forward.edges == backward.edges

    histogram = default_histogram(seed=3)

    def latencies(topology):
        net = Network(
            Simulator(seed=0),
            topology,
            histogram,
            latency_rng=random.Random(42),
        )
        return {pair: net.link(*pair).latency for pair in net._links}

    assert latencies(forward) == latencies(backward)

    # Pin the assignment rule itself: the k-th sorted edge gets the
    # k-th histogram draw, symmetrically in both directions.
    rng = random.Random(42)
    expected = {}
    for a, b in sorted(tuple(sorted(e)) for e in forward.edges):
        latency = histogram.sample(rng)
        expected[(a, b)] = latency
        expected[(b, a)] = latency
    assert latencies(forward) == expected
