"""The Bitcoin full node over a simulated network."""

import pytest

from repro.bitcoin.blocks import make_genesis
from repro.bitcoin.node import BitcoinNode, BlockPolicy
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.errors import MempoolError
from repro.ledger.transactions import (
    COIN,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.metrics.collector import ObservationLog
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology

GENESIS = make_genesis()


def _cluster(n=3, policy=None, log=None):
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(n), constant_histogram(0.05), 1e6)
    nodes = [
        BitcoinNode(i, sim, net, GENESIS, log=log, policy=policy)
        for i in range(n)
    ]
    return sim, net, nodes


def test_generated_block_propagates():
    sim, _, nodes = _cluster()
    block = nodes[0].generate_block()
    sim.run()
    for node in nodes:
        assert node.tip == block.hash
        assert node.height == 1


def test_chain_extends_across_miners():
    sim, _, nodes = _cluster()
    nodes[0].generate_block()
    sim.run()
    block2 = nodes[1].generate_block()
    sim.run()
    assert all(node.tip == block2.hash for node in nodes)
    assert nodes[2].height == 2


def test_concurrent_blocks_fork_then_resolve():
    sim, _, nodes = _cluster()
    a = nodes[0].generate_block()
    b = nodes[1].generate_block()  # same instant: a fork
    sim.run()
    tips = {node.tip for node in nodes}
    assert tips <= {a.hash, b.hash}
    # Whoever extends first wins everywhere.
    winner_node = nodes[2]
    block3 = winner_node.generate_block()
    sim.run()
    assert all(node.tip == block3.hash for node in nodes)


def test_observation_log_populated():
    log = ObservationLog(3)
    sim, _, nodes = _cluster(log=log)
    block = nodes[0].generate_block()
    sim.run()
    assert block.hash in log.index
    for node_id in range(3):
        assert log.arrival_time(node_id, block.hash) is not None
    assert log.tip_histories[1].tip_at(sim.now) == block.hash


def test_synthetic_policy_fills_block():
    policy = BlockPolicy(max_block_bytes=4760, synthetic_tx_size=476)
    sim, _, nodes = _cluster(policy=policy)
    block = nodes[0].generate_block()
    assert block.n_tx == 10


def test_invalid_block_rejected_not_relayed():
    from repro.bitcoin.blocks import Block, SyntheticPayload

    sim, net, nodes = _cluster()
    good = nodes[0].generate_block()
    sim.run()
    # Forge a block whose payload does not match its header commitment.
    forged = Block(good.header, good.coinbase, SyntheticPayload(7, salt=b"forged"))
    nodes[1].on_message(
        0,
        __import__("repro.net.network", fromlist=["Message"]).Message(
            "object",
            __import__("repro.net.gossip", fromlist=["StoredObject"]).StoredObject(
                b"\xff" * 32, "block", forged, forged.size
            ),
            forged.size,
        ),
    )
    sim.run()
    assert nodes[1].blocks_rejected == 1
    assert nodes[1].tip == good.hash


# -- full-validation (library) mode -----------------------------------------


def _funded_node():
    """A single node with real-transaction policy and a mined coinbase."""
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(2), constant_histogram(0.01), 1e6)
    policy = BlockPolicy(max_block_bytes=100_000, synthetic=False)
    owner = PrivateKey.from_seed("rich")
    nodes = [
        BitcoinNode(i, sim, net, GENESIS, policy=policy, key=owner)
        for i in range(2)
    ]
    # Mine one block: its coinbase pays node 0's key.
    block = nodes[0].generate_block()
    sim.run()
    return sim, nodes, owner, block


def test_full_mode_coinbase_credited():
    sim, nodes, owner, block = _funded_node()
    pkh = hash160(owner.public_key().to_bytes())
    for node in nodes:
        assert node.balance_of(pkh) == block.coinbase.outputs[0].value


def test_full_mode_spend_flows_into_block():
    sim, nodes, owner, block = _funded_node()
    pkh = hash160(owner.public_key().to_bytes())
    dest = bytes(range(20))
    # Coinbase maturity: advance the chain 100 blocks first.
    for _ in range(100):
        nodes[0].generate_block()
        sim.run()
    spend = Transaction(
        inputs=(TxInput(OutPoint(block.coinbase.txid, 0)),),
        outputs=(TxOutput(10 * COIN, dest), TxOutput(14 * COIN, pkh)),
    ).sign_input(0, owner)
    nodes[0].submit_transaction(spend)
    mined = nodes[0].generate_block()
    sim.run()
    assert mined.n_tx == 1
    for node in nodes:
        assert node.balance_of(dest) == 10 * COIN


def test_full_mode_double_spend_rejected_in_mempool():
    sim, nodes, owner, block = _funded_node()
    pkh = hash160(owner.public_key().to_bytes())
    for _ in range(100):
        nodes[0].generate_block()
        sim.run()
    spend_a = Transaction(
        inputs=(TxInput(OutPoint(block.coinbase.txid, 0)),),
        outputs=(TxOutput(1 * COIN, pkh),),
    ).sign_input(0, owner)
    spend_b = Transaction(
        inputs=(TxInput(OutPoint(block.coinbase.txid, 0)),),
        outputs=(TxOutput(2 * COIN, pkh),),
    ).sign_input(0, owner)
    nodes[0].submit_transaction(spend_a)
    with pytest.raises(MempoolError):
        nodes[0].submit_transaction(spend_b)


def test_full_mode_fees_accrue_to_miner():
    sim, nodes, owner, block = _funded_node()
    pkh = hash160(owner.public_key().to_bytes())
    for _ in range(100):
        nodes[0].generate_block()
        sim.run()
    total = block.coinbase.outputs[0].value
    fee = 5 * COIN
    spend = Transaction(
        inputs=(TxInput(OutPoint(block.coinbase.txid, 0)),),
        outputs=(TxOutput(total - fee, pkh),),
    ).sign_input(0, owner)
    nodes[0].submit_transaction(spend)
    mined = nodes[0].generate_block()
    sim.run()
    # The miner's coinbase includes subsidy + the fee.
    assert mined.coinbase.outputs[0].value == nodes[0].policy.reward + fee
