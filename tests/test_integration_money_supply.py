"""Economic invariant: total money equals coinbase minting.

Over a multi-epoch NG run with real transactions, the UTXO total at
every node must equal genesis allocations plus key-block coinbase
minting minus fees destroyed by... nothing — fees are *redistributed*
by the 40/60 split, not burned, so supply = genesis + minted subsidies
+ re-minted fee shares − the original fees.  Since coinbases mint
subsidy + fee shares while spends destroy the fee amount, the net per
closed epoch is exactly the subsidy.  The test pins this conservation
law across leader switches and microblock pruning.
"""

import pytest

from repro.core.genesis import make_ng_genesis, seed_genesis_coins
from repro.core.node import MicroblockPolicy, NGNode
from repro.core.params import NGParams
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import COIN, Transaction, TxInput, TxOutput
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology

PARAMS = NGParams(
    key_block_interval=30.0, min_microblock_interval=5.0, coinbase_maturity=1
)
USER = PrivateKey.from_seed("supply-user")
USER_PKH = hash160(USER.public_key().to_bytes())
GENESIS_FUNDS = 100 * COIN


@pytest.fixture()
def network():
    sim = Simulator(seed=5)
    net = Network(sim, complete_topology(3), constant_histogram(0.02), 1e6)
    genesis = make_ng_genesis()
    nodes = [
        NGNode(
            i,
            sim,
            net,
            genesis,
            PARAMS,
            policy=MicroblockPolicy(target_bytes=50_000, synthetic=False),
            check_signatures=True,
        )
        for i in range(3)
    ]
    outpoint = None
    for node in nodes:
        (outpoint,) = seed_genesis_coins(node.utxo, [(USER_PKH, GENESIS_FUNDS)])
    return sim, nodes, outpoint


def test_supply_equals_genesis_plus_minting(network):
    sim, nodes, outpoint = network
    # Three epochs with payments flowing.
    nodes[0].generate_key_block()
    fee = 1 * COIN
    spend = Transaction(
        inputs=(TxInput(outpoint),),
        outputs=(TxOutput(GENESIS_FUNDS - 10 * COIN - fee, USER_PKH),
                 TxOutput(10 * COIN, bytes(20))),
    ).sign_input(0, USER)
    nodes[1].submit_transaction(spend)
    sim.run(until=12.0)
    nodes[1].generate_key_block()
    sim.run(until=40.0)
    nodes[2].generate_key_block()
    sim.run(until=70.0)

    for node in nodes:
        # Count coinbases that are connected on this node's main chain.
        minted = 0
        for block_hash in node.chain.main_chain():
            record = node.chain.record(block_hash)
            if record.is_key and block_hash != node.chain.genesis_hash:
                minted += sum(
                    out.value for out in record.block.coinbase.outputs  # type: ignore[union-attr]
                )
        expected = GENESIS_FUNDS - fee + minted
        assert node.utxo.total_value() == expected


def test_all_nodes_agree_on_supply(network):
    sim, nodes, outpoint = network
    nodes[0].generate_key_block()
    sim.run(until=35.0)
    nodes[2].generate_key_block()
    sim.run(until=70.0)
    totals = {node.utxo.total_value() for node in nodes}
    assert len(totals) == 1


def test_fee_shares_traceable_to_leaders(network):
    sim, nodes, outpoint = network
    nodes[0].generate_key_block()
    fee = 2 * COIN
    spend = Transaction(
        inputs=(TxInput(outpoint),),
        outputs=(TxOutput(GENESIS_FUNDS - fee, USER_PKH),),
    ).sign_input(0, USER)
    nodes[0].submit_transaction(spend)
    sim.run(until=12.0)
    nodes[1].generate_key_block()
    sim.run(until=40.0)
    # The closing coinbase paid 40% of the fee to leader 0 and
    # subsidy + 60% to leader 1 — visible as balances.
    leader0 = nodes[2].balance_of(nodes[0].pubkey_hash)
    leader1 = nodes[2].balance_of(nodes[1].pubkey_hash)
    assert leader0 == PARAMS.key_block_reward + int(fee * 0.4)
    assert leader1 == PARAMS.key_block_reward + (fee - int(fee * 0.4))
