"""Time-to-prune and time-to-win on hand-built executions."""

import pytest

from repro.metrics.collector import BlockInfo, ObservationLog
from repro.metrics.prune import (
    prune_samples,
    time_to_prune,
    time_to_win,
    win_samples,
)


def _info(h, parent, t, miner=0, work=1, kind="block"):
    return BlockInfo(h, parent, miner, t, work, kind, 0, 100)


def _forked_log():
    """Figure 5's shape: a branch x is pruned when block b arrives.

    main:   g → a(t=1) → b(t=4)
    branch: g → x(t=2)           (pruned by b, which outweighs it)
    """
    log = ObservationLog(2)
    log.index.add(_info(b"a", b"g", 1.0))
    log.index.add(_info(b"x", b"g", 2.0, miner=1))
    log.index.add(_info(b"b", b"a", 4.0))
    for node in range(2):
        log.record_tip(node, b"a", 1.0)
        log.record_tip(node, b"b", 4.5)
    # Node 0 heard the branch early, node 1 late.
    log.record_arrival(0, b"a", 1.1)
    log.record_arrival(0, b"x", 2.1)
    log.record_arrival(0, b"b", 4.2)
    log.record_arrival(1, b"a", 1.3)
    log.record_arrival(1, b"x", 3.9)
    log.record_arrival(1, b"b", 4.4)
    log.finalize(10.0)
    return log


def test_prune_samples_per_node():
    samples = sorted(prune_samples(_forked_log()))
    # Node 0: b at 4.2 − x at 2.1 = 2.1; node 1: 4.4 − 3.9 = 0.5.
    assert samples == [pytest.approx(0.5), pytest.approx(2.1)]


def test_time_to_prune_percentile():
    assert time_to_prune(_forked_log(), delta=0.9) == pytest.approx(2.1)
    assert time_to_prune(_forked_log(), delta=0.1) == pytest.approx(0.5)


def test_prune_zero_when_branch_arrives_after_winner():
    log = ObservationLog(1)
    log.index.add(_info(b"a", b"g", 1.0))
    log.index.add(_info(b"b", b"a", 2.0))
    log.index.add(_info(b"x", b"g", 1.5, miner=1))
    log.record_tip(0, b"b", 2.0)
    log.record_arrival(0, b"a", 1.0)
    log.record_arrival(0, b"b", 2.0)
    log.record_arrival(0, b"x", 5.0)  # already outweighed on arrival
    log.finalize(10.0)
    assert prune_samples(log) == [0.0]


def test_no_forks_no_prune_samples():
    log = ObservationLog(1)
    log.index.add(_info(b"a", b"g", 1.0))
    log.record_tip(0, b"a", 1.0)
    log.record_arrival(0, b"a", 1.0)
    log.finalize(10.0)
    assert prune_samples(log) == []
    assert time_to_prune(log) == 0.0


def test_branch_pruned_by_heavier_sibling():
    # The node held branch a from t=1 until the heavier x arrived at
    # t=2 — a prune delay of exactly 1 second.
    log = ObservationLog(1)
    log.index.add(_info(b"a", b"g", 1.0))
    log.index.add(_info(b"x", b"g", 2.0, work=5, miner=1))
    log.record_tip(0, b"x", 2.0)
    log.record_arrival(0, b"a", 1.0)
    log.record_arrival(0, b"x", 2.0)
    log.finalize(10.0)
    assert prune_samples(log) == [pytest.approx(1.0)]


def test_time_to_win():
    log = _forked_log()
    samples = win_samples(log)
    # Block a (gen 1.0): competitor x generated at 2.0 → 1.0.
    # Block b (gen 4.0): x is earlier → 0.
    assert sorted(samples) == [pytest.approx(0.0), pytest.approx(1.0)]
    assert time_to_win(log, delta=0.9) == pytest.approx(1.0)


def test_time_to_win_zero_without_competition():
    log = ObservationLog(1)
    log.index.add(_info(b"a", b"g", 1.0))
    log.index.add(_info(b"b", b"a", 2.0))
    log.record_tip(0, b"b", 2.0)
    log.finalize(10.0)
    assert time_to_win(log) == 0.0


def test_deep_branch_competes_with_all_above_fork():
    # branch of 2 blocks forking at genesis: both main blocks compete.
    log = ObservationLog(1)
    log.index.add(_info(b"a", b"g", 1.0))
    log.index.add(_info(b"b", b"a", 2.0))
    log.index.add(_info(b"x", b"g", 3.0, miner=1))
    log.index.add(_info(b"y", b"x", 6.0, miner=1))
    log.record_tip(0, b"b", 2.0)
    log.finalize(10.0)
    samples = win_samples(log)
    # a: last competitor y at 6.0 → 5.0; b: y at 6.0 → 4.0.
    assert sorted(samples) == [pytest.approx(4.0), pytest.approx(5.0)]
