"""Trace export/import: metrics survive the round trip exactly."""

import pytest

from repro.experiments import ExperimentConfig, Protocol, run_experiment
from repro.metrics import (
    consensus_delay,
    fairness,
    mining_power_utilization,
    time_to_prune,
    time_to_win,
    transaction_frequency,
)
from repro.metrics.export import (
    TraceFormatError,
    load_trace,
    log_from_dict,
    log_to_dict,
    save_trace,
)

CONFIG = ExperimentConfig(
    protocol=Protocol.BITCOIN,
    n_nodes=20,
    block_rate=0.1,
    block_size_bytes=5000,
    target_blocks=25,
    cooldown=20.0,
    seed=6,
)


@pytest.fixture(scope="module")
def executed():
    return run_experiment(CONFIG)


def test_roundtrip_preserves_all_metrics(executed, tmp_path):
    result, log = executed
    path = tmp_path / "trace.json"
    save_trace(log, path)
    restored = load_trace(path)
    assert restored.n_nodes == log.n_nodes
    assert restored.duration == log.duration
    assert restored.main_chain() == log.main_chain()
    assert mining_power_utilization(restored) == pytest.approx(
        result.mining_power_utilization
    )
    assert fairness(restored) == pytest.approx(fairness(log))
    assert transaction_frequency(restored) == pytest.approx(
        result.transaction_frequency
    )
    assert time_to_prune(restored) == pytest.approx(result.time_to_prune)
    assert time_to_win(restored) == pytest.approx(result.time_to_win)
    assert consensus_delay(restored) == pytest.approx(result.consensus_delay)


def test_dict_roundtrip(executed):
    _, log = executed
    restored = log_from_dict(log_to_dict(log))
    assert len(restored.index) == len(log.index)
    assert restored.arrivals == log.arrivals


def test_version_check(executed):
    _, log = executed
    data = log_to_dict(log)
    data["version"] = 99
    with pytest.raises(TraceFormatError):
        log_from_dict(data)


def test_malformed_trace_rejected(executed):
    _, log = executed
    data = log_to_dict(log)
    del data["blocks"]
    with pytest.raises(TraceFormatError):
        log_from_dict(data)


def test_invalid_json_rejected(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("{not json")
    with pytest.raises(TraceFormatError):
        load_trace(path)
