"""Semantic index tests: symbol tables, call graph, cache, determinism.

The fixture package under ``tests/semantic_fixtures/`` is the golden
input: small modules exercising versioned classes, self-call bump
coverage, cross-module call edges, and return-value taint.  The
planted-bug tests then prove the NG6xx rules catch real violations:
a `UtxoSet` copy with one `self.version += 1` deleted must trip NG601,
and a checker that mutates a mempool through a helper must trip NG602.
"""

import ast
import shutil
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.semantic import (
    FunctionKey,
    build_index,
    rng_stream_tag,
)
from repro.lint.semantic.index import load_cache

FIXTURES = Path(__file__).parent / "semantic_fixtures"
SRC = Path(__file__).parent.parent / "src"


def _parse_dir(directory: Path):
    parsed = []
    for path in sorted(directory.glob("*.py")):
        source = path.read_text(encoding="utf-8")
        parsed.append(
            (
                path.as_posix(),
                path.stem,
                ast.parse(source),
                source.splitlines(),
                source,
            )
        )
    return parsed


def _fixture_index():
    return build_index(_parse_dir(FIXTURES))


# -- symbol tables -----------------------------------------------------------


def test_symbol_table_golden():
    index = _fixture_index()
    ledger = index.module_named("ledger")
    assert ledger is not None
    store = ledger.classes["Store"]
    assert store.versioned
    assert sorted(store.methods) == ["__init__", "drop", "put", "put_many"]
    put = store.methods["put"]
    assert put.params == ("self", "key", "value")
    assert put.is_method
    assert [w.target for w in put.self_writes] == ["items"]
    assert put.bump_formula is True
    # put_many bumps through the self-call; drop bumps past a guard.
    assert store.methods["put_many"].bump_formula == ("call", "put")
    assert store.methods["drop"].bump_formula is True


def test_return_taint_propagates_through_same_module_calls():
    """`chain = chain_of(node)` taints `chain` from `node`."""
    index = _fixture_index()
    helpers = index.module_named("helpers")
    assert helpers.functions["chain_of"].returns_params == ("node",)
    last = helpers.functions["last_block"]
    assert [w.target for w in last.param_mutations] == ["node"]


# -- call graph --------------------------------------------------------------


def test_cross_module_call_resolution():
    index = _fixture_index()
    flows = index.module_named("flows")
    (call,) = [
        c for c in flows.functions["touch"].calls if c.kind == "import"
    ]
    assert call.target == ("helpers", "mutate_store")
    resolved = index.resolve_call(flows, None, call.kind, call.target)
    assert resolved is not None
    key, fn = resolved
    assert key.function == "mutate_store"
    assert key.display_path.endswith("helpers.py")


def test_mutation_fixpoint_and_witness_chain():
    index = _fixture_index()
    flows = index.module_named("flows")
    key = FunctionKey(flows.display_path, None, "touch")
    mutated = index.mutated_params()
    assert "store" in mutated[key]
    chain = index.witness_chain(key, "store")
    assert len(chain) == 2
    assert "passes `store` to `mutate_store`" in chain[0]
    assert "writes `store`" in chain[1]


# -- rng stream tags ---------------------------------------------------------


def test_rng_stream_tag_parsing():
    assert rng_stream_tag("topo_rng") == "topo"
    assert rng_stream_tag("self._latency_rng") == "latency"
    assert rng_stream_tag("rng_fault") == "fault"
    assert rng_stream_tag("rng") is None  # generic: no stream claim
    assert rng_stream_tag("sim.rng") is None
    assert rng_stream_tag("seed") is None
    assert rng_stream_tag(None) is None


# -- determinism and cache ---------------------------------------------------


def test_index_json_is_byte_identical_across_builds():
    first = _fixture_index().to_json()
    second = build_index(_parse_dir(FIXTURES)).to_json()
    assert first == second


def test_cache_hits_and_misses_on_edit(tmp_path):
    workdir = tmp_path / "pkg"
    workdir.mkdir()
    for fixture in FIXTURES.glob("*.py"):
        shutil.copy(fixture, workdir / fixture.name)
    cache = tmp_path / "index.json"

    cold = build_index(_parse_dir(workdir), cache_path=cache)
    assert cold.cache_misses == len(list(workdir.glob("*.py")))
    assert cold.cache_hits == 0
    assert cache.is_file()

    warm = build_index(_parse_dir(workdir), cache_path=cache)
    assert warm.cache_misses == 0
    assert warm.cache_hits == cold.cache_misses
    assert warm.to_json() == cold.to_json()

    # Editing one file re-extracts exactly that module.
    edited = workdir / "helpers.py"
    edited.write_text(
        edited.read_text(encoding="utf-8") + "\n\ndef extra(x):\n"
        "    return x\n",
        encoding="utf-8",
    )
    refreshed = build_index(_parse_dir(workdir), cache_path=cache)
    assert refreshed.cache_misses == 1
    assert refreshed.cache_hits == cold.cache_misses - 1
    helpers = refreshed.module_named("helpers")
    assert "extra" in helpers.functions


def test_cache_with_wrong_version_is_discarded(tmp_path):
    cache = tmp_path / "index.json"
    cache.write_text('{"version": 999, "modules": {}}', encoding="utf-8")
    assert load_cache(cache) == {}
    rebuilt = build_index(_parse_dir(FIXTURES), cache_path=cache)
    assert rebuilt.cache_hits == 0
    assert rebuilt.cache_misses > 0


# -- NG601/NG602 planted bugs ------------------------------------------------


def test_escape_via_self_call_is_flagged():
    """A write escaping through `self._push` flags caller and helper."""
    report = lint_paths([FIXTURES / "leaky.py"])
    assert [f.code for f in report.findings] == ["NG601", "NG601"]
    by_line = sorted(report.findings, key=lambda f: f.line)
    assert "_push" in by_line[0].message
    assert "push" in by_line[1].message
    # The caller's why-path walks through the self-call to the write.
    caller = by_line[1]
    assert any("self._push" in step for step in caller.why)
    assert any("self.rows" in step for step in caller.why)


# The hand-rolled missing-bump plant (string-replacing a version bump
# in a copy of utxo.py and asserting NG601) now lives in the mutation
# pipeline: tests/test_mutate.py::
# test_ported_planted_bump_del_dies_in_lint_tier drives the same
# defect through the `bump-del` operator and the lint kill tier, over
# every bump site in repro.ledger instead of just the first one.


def test_planted_mempool_mutating_checker(tmp_path):
    bad = tmp_path / "bad_checker.py"
    bad.write_text(
        "from repro.sanitizer.checkers import InvariantChecker\n"
        "\n"
        "\n"
        "def drain(pool, tx):\n"
        "    pool.add(tx)\n"
        "\n"
        "\n"
        "class Drainer(InvariantChecker):\n"
        '    code = "INV902"\n'
        "\n"
        "    def check_dirty(self, node, node_id, now):\n"
        "        drain(node.mempool, None)\n"
        "        return []\n",
        encoding="utf-8",
    )
    report = lint_paths([bad])
    assert [f.code for f in report.findings] == ["NG602"]
    finding = report.findings[0]
    assert "check_dirty" in finding.message
    # Interprocedural why: hook passes the mempool into the helper,
    # the helper performs the write.
    assert len(finding.why) == 2
    assert "passes `node`" in finding.why[0]
    assert "writes `pool`" in finding.why[1]


def test_real_tree_has_no_semantic_findings():
    report = lint_paths(
        [SRC], codes=["NG601", "NG602", "NG603", "NG604"]
    )
    assert report.findings == [], "\n".join(
        f.format(show_why=True) for f in report.findings
    )


# -- baselines & NG603 opt-out (regression coverage) -------------------------


def test_baseline_survives_hide_then_refactor(tmp_path):
    """Semantic fingerprints must pin the *finding*, not its line numbers.

    Scenario: a team baselines an NG601 finding, then refactors the
    module — new helpers above the class shift every lineno, and the
    offending method's def line moves.  The ``why`` call-path lines all
    change, but the baseline entry must keep hiding the finding; only
    actually fixing (or worsening) the bug may surface it.
    """
    source = (SRC / "repro" / "ledger" / "utxo.py").read_text(
        encoding="utf-8"
    )
    planted = source.replace("self.version += 1", "pass", 1)
    copy = tmp_path / "utxo_planted.py"
    copy.write_text(planted, encoding="utf-8")
    before = lint_paths([copy])
    assert [f.code for f in before.findings] == ["NG601"]
    baseline = {f.fingerprint: "known debt" for f in before.findings}
    assert lint_paths([copy], baseline=baseline).findings == []

    # Refactor: shift every line down and move the def lines around
    # without touching behaviour.
    shifted = (
        '"""Planted copy, post-refactor."""\n'
        "\n"
        "PADDING_A = 1\n"
        "PADDING_B = 2\n"
        "\n\n" + planted
    )
    copy.write_text(shifted, encoding="utf-8")
    after = lint_paths([copy])
    assert [f.code for f in after.findings] == ["NG601"]
    assert after.findings[0].line != before.findings[0].line
    assert (
        after.findings[0].fingerprint == before.findings[0].fingerprint
    )
    report = lint_paths([copy], baseline=baseline)
    assert report.findings == []
    assert report.baselined == 1
    assert report.stale_baseline == []


def test_ng603_flags_method_valued_opt_out(tmp_path):
    """`supports_incremental_check` as a method is always truthy."""
    bad = tmp_path / "optout_method.py"
    bad.write_text(
        "from repro.protocols import ProtocolAdapter\n"
        "\n"
        "\n"
        "class OptOutAdapter(ProtocolAdapter):\n"
        '    name = "optout"\n'
        "\n"
        "    def build_nodes(self, config, sim, network, log, shares):\n"
        "        return [], None\n"
        "\n"
        "    def supports_incremental_check(self):\n"
        "        return False\n",
        encoding="utf-8",
    )
    report = lint_paths([bad])
    assert [f.code for f in report.findings] == ["NG603"]
    assert "bool class attribute" in report.findings[0].message


def test_ng603_flags_non_bool_opt_out_literal(tmp_path):
    bad = tmp_path / "optout_literal.py"
    bad.write_text(
        "from repro.protocols import ProtocolAdapter\n"
        "\n"
        "\n"
        "class OptOutAdapter(ProtocolAdapter):\n"
        '    name = "optout"\n'
        '    supports_incremental_check = "no"\n'
        "\n"
        "    def build_nodes(self, config, sim, network, log, shares):\n"
        "        return [], None\n",
        encoding="utf-8",
    )
    report = lint_paths([bad])
    assert [f.code for f in report.findings] == ["NG603"]
    assert "bool literal" in report.findings[0].message


def test_ng603_accepts_bool_opt_out_attribute(tmp_path):
    good = tmp_path / "optout_good.py"
    good.write_text(
        "from repro.protocols import ProtocolAdapter\n"
        "\n"
        "\n"
        "class OptOutAdapter(ProtocolAdapter):\n"
        '    name = "optout"\n'
        "    supports_incremental_check = False\n"
        "\n"
        "    def build_nodes(self, config, sim, network, log, shares):\n"
        "        return [], None\n",
        encoding="utf-8",
    )
    assert lint_paths([good]).findings == []


def test_ng603_still_flags_missing_mode_parameter(tmp_path):
    """The original contract check: `invariant_checkers` must take `mode`.

    This scenario lost its fixture when the NG603 fixtures moved to the
    opt-out-attribute example, so it is pinned here instead.
    """
    bad = tmp_path / "nomode.py"
    bad.write_text(
        "from repro.protocols import ProtocolAdapter\n"
        "\n"
        "\n"
        "class NoModeAdapter(ProtocolAdapter):\n"
        '    name = "nomode"\n'
        "\n"
        "    def build_nodes(self, config, sim, network, log, shares):\n"
        "        return [], None\n"
        "\n"
        "    def invariant_checkers(self):\n"
        "        return []\n",
        encoding="utf-8",
    )
    report = lint_paths([bad])
    assert [f.code for f in report.findings] == ["NG603"]
    assert "mode" in report.findings[0].message
