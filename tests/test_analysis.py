"""Analytical fork models, cross-validated against the simulator."""

import pytest

from repro.analysis import (
    bitcoin_fork_probability,
    chain_growth_bounds,
    effective_throughput,
    expected_mining_power_utilization,
    expected_pruned_microblocks_per_key_block,
    ng_keyblock_fork_probability,
    ng_microblock_prune_probability,
)


def test_fork_probability_limits():
    # No propagation delay limit: forks vanish.
    assert bitcoin_fork_probability(600, 1e-9) == pytest.approx(0.0, abs=1e-8)
    # Delay >> interval: forks certain.
    assert bitcoin_fork_probability(1, 100) == pytest.approx(1.0, abs=1e-8)


def test_fork_probability_bitcoin_operational():
    # ~10 s propagation, 600 s blocks → the famous ~1.6% stale rate
    # ("accidental bifurcation ... once about every 60 blocks").
    p = bitcoin_fork_probability(600, 10)
    assert p == pytest.approx(1 / 60, rel=0.1)


def test_fork_probability_monotone():
    assert bitcoin_fork_probability(600, 20) > bitcoin_fork_probability(600, 10)
    assert bitcoin_fork_probability(60, 10) > bitcoin_fork_probability(600, 10)


def test_ng_prune_probability_independent_of_micro_rate():
    # The scalability core: the per-microblock prune risk depends only
    # on the key interval and the propagation time.
    import math

    p = ng_microblock_prune_probability(100, 2)
    assert p == pytest.approx(1 - math.exp(-0.02))
    assert p < 0.03


def test_ng_keyblock_fork_rarer_than_bitcoin_at_same_load():
    # NG's key blocks are rare and small; Bitcoin's blocks at the same
    # *payload* rate are frequent and large.
    ng = ng_keyblock_fork_probability(100, 0.3)
    bitcoin = bitcoin_fork_probability(10, 3.0)
    assert ng < bitcoin


def test_expected_pruned_microblocks():
    assert expected_pruned_microblocks_per_key_block(10, 2) == pytest.approx(0.2)


def test_chain_growth_bounds_ordering():
    lower, upper = chain_growth_bounds(0.1, 5.0)
    assert 0 < lower < upper == 0.1
    # Zero-delay limit: bounds collapse.
    lower2, upper2 = chain_growth_bounds(0.1, 1e-12)
    assert lower2 == pytest.approx(upper2)


def test_effective_throughput_tradeoff():
    # Bigger blocks at the same interval help until forks eat the gain —
    # with size-proportional propagation, throughput saturates.
    def tp(size):
        return effective_throughput(
            block_interval=10,
            block_size=size,
            tx_size=476,
            propagation_delay=size / 12_500,  # 100 kbit/s serialization
        )

    assert tp(20_000) > tp(5_000)  # growth region
    # Marginal gain shrinks as forks grow.
    gain_small = tp(10_000) - tp(5_000)
    gain_large = tp(80_000) - tp(75_000)
    assert gain_large < gain_small


def test_validation():
    with pytest.raises(ValueError):
        bitcoin_fork_probability(0, 1)
    with pytest.raises(ValueError):
        ng_microblock_prune_probability(100, 0)
    with pytest.raises(ValueError):
        chain_growth_bounds(-1, 1)
    with pytest.raises(ValueError):
        effective_throughput(10, 0, 476, 1)


# -- cross-validation against the simulator ---------------------------------


@pytest.mark.parametrize("interval,expected_tol", [(20.0, 0.08), (5.0, 0.15)])
def test_analytic_utilization_matches_simulation(interval, expected_tol):
    from repro.experiments import ExperimentConfig, Protocol, run_experiment
    from repro.experiments.propagation import propagation_samples
    from repro.stats import percentile

    config = ExperimentConfig(
        protocol=Protocol.BITCOIN,
        n_nodes=40,
        block_rate=1.0 / interval,
        block_size_bytes=5_000,
        target_blocks=150,
        cooldown=30.0,
        seed=11,
    )
    result, log = run_experiment(config)
    samples = propagation_samples(log)
    # Use the median *miner-to-miner* propagation as the model's delay.
    delay = percentile(samples, 0.5)
    predicted = expected_mining_power_utilization(interval, delay)
    assert result.mining_power_utilization == pytest.approx(
        predicted, abs=expected_tol
    )


def test_simulated_growth_within_bounds():
    from repro.experiments import ExperimentConfig, Protocol, run_experiment
    from repro.experiments.propagation import propagation_samples
    from repro.stats import percentile

    config = ExperimentConfig(
        protocol=Protocol.BITCOIN,
        n_nodes=40,
        block_rate=0.2,
        block_size_bytes=5_000,
        target_blocks=200,
        cooldown=30.0,
        seed=12,
    )
    result, log = run_experiment(config)
    samples = propagation_samples(log)
    delay = percentile(samples, 0.9)
    lower, upper = chain_growth_bounds(0.2, delay)
    growth = result.main_chain_length / result.duration
    assert lower * 0.9 <= growth <= upper * 1.05
