"""Transaction structure, serialization, signing."""

import pytest

from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.errors import MalformedTransaction
from repro.ledger.transactions import (
    COIN,
    MAX_MONEY,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
)

KEY = PrivateKey.from_seed("tx-tests")
PKH = hash160(KEY.public_key().to_bytes())


def _spend(prev_txid=b"\x01" * 32, value=50, padding=b""):
    return Transaction(
        inputs=(TxInput(OutPoint(prev_txid, 0)),),
        outputs=(TxOutput(value, PKH),),
        padding=padding,
    )


def test_coinbase_has_no_inputs():
    cb = make_coinbase([(PKH, 10 * COIN)])
    assert cb.is_coinbase
    assert len(cb.outputs) == 1


def test_coinbase_multiple_payouts():
    cb = make_coinbase([(PKH, 6), (bytes(20), 4)])
    assert [out.value for out in cb.outputs] == [6, 4]


def test_coinbase_requires_payouts():
    with pytest.raises(MalformedTransaction):
        make_coinbase([])


def test_coinbase_tag_distinguishes_txids():
    a = make_coinbase([(PKH, 5)], tag=b"a")
    b = make_coinbase([(PKH, 5)], tag=b"b")
    assert a.txid != b.txid


def test_serialization_roundtrip():
    tx = _spend(padding=b"hello world")
    restored = Transaction.deserialize(tx.serialize())
    assert restored == tx
    assert restored.txid == tx.txid


def test_deserialize_rejects_trailing_bytes():
    data = _spend().serialize() + b"\x00"
    with pytest.raises(MalformedTransaction):
        Transaction.deserialize(data)


def test_deserialize_rejects_truncation():
    data = _spend().serialize()[:-3]
    with pytest.raises(MalformedTransaction):
        Transaction.deserialize(data)


def test_txid_changes_with_content():
    assert _spend(value=50).txid != _spend(value=51).txid


def test_output_value_bounds():
    with pytest.raises(MalformedTransaction):
        TxOutput(-1, PKH)
    with pytest.raises(MalformedTransaction):
        TxOutput(MAX_MONEY + 1, PKH)


def test_output_pkh_length():
    with pytest.raises(MalformedTransaction):
        TxOutput(1, bytes(19))


def test_outputs_required():
    with pytest.raises(MalformedTransaction):
        Transaction(inputs=(), outputs=())


def test_total_outputs_capped():
    with pytest.raises(MalformedTransaction):
        Transaction(
            inputs=(),
            outputs=(TxOutput(MAX_MONEY, PKH), TxOutput(1, PKH)),
        )


def test_outpoint_validation():
    with pytest.raises(MalformedTransaction):
        OutPoint(b"\x01" * 31, 0)
    with pytest.raises(MalformedTransaction):
        OutPoint(b"\x01" * 32, -1)


def test_sighash_differs_per_input():
    tx = Transaction(
        inputs=(
            TxInput(OutPoint(b"\x01" * 32, 0)),
            TxInput(OutPoint(b"\x02" * 32, 1)),
        ),
        outputs=(TxOutput(1, PKH),),
    )
    assert tx.sighash(0) != tx.sighash(1)


def test_sighash_index_bounds():
    with pytest.raises(MalformedTransaction):
        _spend().sighash(1)


def test_sign_input_produces_verifiable_signature():
    tx = _spend()
    signed = tx.sign_input(0, KEY)
    assert signed.inputs[0].pubkey == KEY.public_key().to_bytes()
    assert KEY.public_key().verify(signed.sighash(0), signed.inputs[0].signature)


def test_sighash_ignores_existing_witness():
    # Signing must not change the message being signed.
    tx = _spend()
    signed = tx.sign_input(0, KEY)
    assert signed.sighash(0) == tx.sighash(0)


def test_padding_increases_size():
    assert _spend(padding=b"x" * 100).size == _spend().size + 100


def test_size_matches_serialization():
    tx = _spend(padding=b"pad")
    assert tx.size == len(tx.serialize())
