"""Selfish mining and the weighted-microblock ablation."""

import pytest

from repro.attacks.selfish import (
    leadership_retention_probability,
    revenue_curve,
    selfish_threshold,
    simulate_selfish_mining,
    simulate_weighted_micro_takeover,
)


def test_threshold_closed_form():
    assert selfish_threshold(0.0) == pytest.approx(1 / 3)
    assert selfish_threshold(0.5) == pytest.approx(0.25)
    assert selfish_threshold(1.0) == pytest.approx(0.0)


def test_below_threshold_unprofitable():
    outcome = simulate_selfish_mining(0.15, gamma=0.5, n_blocks=150_000)
    assert outcome.relative_gain < 0


def test_above_threshold_profitable():
    outcome = simulate_selfish_mining(0.33, gamma=0.5, n_blocks=150_000)
    assert outcome.relative_gain > 0.01


def test_quarter_bound_is_the_knife_edge():
    # The paper's 1/4 assumption: at γ=0.5 the threshold is exactly 1/4.
    at = simulate_selfish_mining(0.25, gamma=0.5, n_blocks=300_000)
    assert abs(at.relative_gain) < 0.01


def test_rushing_lowers_threshold():
    # γ=1 (perfect rushing): profitable even for tiny attackers.
    outcome = simulate_selfish_mining(0.2, gamma=1.0, n_blocks=150_000)
    assert outcome.relative_gain > 0


def test_revenue_curve_monotone_in_alpha():
    curve = revenue_curve(gamma=0.5, alphas=(0.1, 0.25, 0.4), n_blocks=100_000)
    shares = [o.attacker_revenue_share for o in curve]
    assert shares == sorted(shares)


def test_simulation_deterministic():
    a = simulate_selfish_mining(0.3, n_blocks=10_000, seed=5)
    b = simulate_selfish_mining(0.3, n_blocks=10_000, seed=5)
    assert a == b


def test_validation():
    with pytest.raises(ValueError):
        simulate_selfish_mining(0.6)
    with pytest.raises(ValueError):
        simulate_selfish_mining(0.2, gamma=2.0)
    with pytest.raises(ValueError):
        selfish_threshold(-0.1)


# -- weighted-microblock ablation (why micro weight must be zero) -------


def test_zero_weight_gives_zero_retention():
    assert leadership_retention_probability(0.0, 100.0, 10.0) == 0.0
    assert simulate_weighted_micro_takeover(0.0, 100.0, 10.0) == 0.0


def test_any_weight_gives_positive_retention():
    probability = leadership_retention_probability(0.05, 100.0, 10.0)
    assert probability > 0.1


def test_retention_monotone_in_weight():
    low = leadership_retention_probability(0.01, 100.0, 10.0)
    high = leadership_retention_probability(0.5, 100.0, 10.0)
    assert high > low


def test_monte_carlo_matches_closed_form():
    analytic = leadership_retention_probability(0.1, 100.0, 10.0)
    empirical = simulate_weighted_micro_takeover(
        0.1, 100.0, 10.0, n_trials=100_000
    )
    assert empirical == pytest.approx(analytic, abs=0.01)


def test_weighted_validation():
    with pytest.raises(ValueError):
        leadership_retention_probability(-0.1, 100.0, 10.0)
    with pytest.raises(ValueError):
        leadership_retention_probability(0.1, 0.0, 10.0)
