"""Property-based tests: fork-choice invariants under random block DAGs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitcoin.blocks import SyntheticPayload, build_block, make_genesis
from repro.bitcoin.chain import BlockTree, TieBreak
from repro.core.chain import NGChain
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.ghost.chain import GhostTree

GENESIS = make_genesis()


def _block(prev, salt):
    return build_block(
        prev_hash=prev,
        payload=SyntheticPayload(n_tx=0, salt=salt),
        timestamp=0.0,
        bits=0x207FFFFF,
        miner_id=0,
        reward=0,
    )


def _random_dag(seed, n_blocks):
    """Blocks whose parents are chosen randomly among earlier blocks."""
    rng = random.Random(seed)
    blocks = [GENESIS]
    out = []
    for i in range(n_blocks):
        parent = rng.choice(blocks)
        block = _block(parent.hash, bytes([i, seed % 256]))
        blocks.append(block)
        out.append(block)
    return out


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 25), st.integers(0, 100))
def test_bitcoin_tree_invariants_any_arrival_order(seed, n_blocks, shuffle_seed):
    """Whatever the arrival order (orphans included), the tree ends
    consistent, with the heaviest tip and every block connected."""
    blocks = _random_dag(seed, n_blocks)
    arrival = list(blocks)
    random.Random(shuffle_seed).shuffle(arrival)
    tree = BlockTree(GENESIS, tie_break=TieBreak.FIRST_SEEN)
    for t, block in enumerate(arrival):
        tree.add_block(block, float(t))
    assert len(tree) == n_blocks + 1  # all adopted
    assert tree.orphan_count() == 0
    tree.assert_consistent()
    # Tip height equals the DAG's maximal depth.
    max_height = max(tree.height_of(b.hash) for b in blocks)
    assert tree.height_of(tree.tip) == max_height


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 20), st.integers(0, 100))
def test_ghost_tree_invariants_any_arrival_order(seed, n_blocks, shuffle_seed):
    blocks = _random_dag(seed, n_blocks)
    arrival = list(blocks)
    random.Random(shuffle_seed).shuffle(arrival)
    tree = GhostTree(GENESIS, tie_break=TieBreak.FIRST_SEEN)
    for t, block in enumerate(arrival):
        tree.add_block(block, float(t))
    assert len(tree) == n_blocks + 1
    tree.assert_consistent()
    # Genesis subtree holds all the work.
    unit = blocks[0].header.work
    assert tree.subtree_work(GENESIS.hash) == n_blocks * unit


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 10))
def test_bitcoin_main_chain_is_heaviest_path(seed, n_blocks):
    blocks = _random_dag(seed, n_blocks)
    tree = BlockTree(GENESIS)
    for t, block in enumerate(blocks):
        tree.add_block(block, float(t))
    tip_work = tree.work_of(tree.tip)
    for block in blocks:
        assert tree.work_of(block.hash) <= tip_work


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 5_000), st.integers(1, 12), st.integers(0, 50))
def test_ng_chain_invariants_random_epochs(seed, n_epochs, shuffle_seed):
    """Random leader sequence with microblocks; any arrival order."""
    from repro.core.blocks import build_key_block, build_microblock
    from repro.core.remuneration import build_ng_coinbase
    from repro.crypto.hashing import hash160
    from repro.crypto.keys import PrivateKey

    params = NGParams(key_block_interval=100.0, min_microblock_interval=10.0)
    genesis = make_ng_genesis()
    rng = random.Random(seed)
    keys = [PrivateKey.from_seed(f"prop-{i}") for i in range(3)]
    blocks = []
    prev = genesis
    t = 0.0
    for epoch in range(n_epochs):
        leader = rng.choice(range(3))
        t += 100.0
        coinbase = build_ng_coinbase(
            miner_id=leader,
            timestamp=t,
            self_pubkey_hash=hash160(keys[leader].public_key().to_bytes()),
            prev_leader_pubkey_hash=None,
            prev_epoch_fees=0,
            params=params,
        )
        key_block = build_key_block(
            prev_hash=prev.hash,
            timestamp=t,
            bits=0x207FFFFF,
            leader_pubkey=keys[leader].public_key().to_bytes(),
            coinbase=coinbase,
        )
        blocks.append(key_block)
        prev = key_block
        for m in range(rng.randrange(3)):
            t += 10.0
            micro = build_microblock(
                prev.hash,
                t,
                SyntheticPayload(n_tx=1, salt=bytes([epoch, m])),
                keys[leader],
            )
            blocks.append(micro)
            prev = micro
    arrival = list(blocks)
    random.Random(shuffle_seed).shuffle(arrival)
    chain = NGChain(genesis, params)
    for i, block in enumerate(arrival):
        chain.add_block(block, float(i), local_time=t + 100.0)
    assert len(chain) == len(blocks) + 1
    chain.assert_consistent()
    # The tip is the end of the built chain (single line, no forks).
    assert chain.tip == blocks[-1].hash
