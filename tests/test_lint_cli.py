"""CLI-level analyzer tests: exit codes, JSON round-trip, baseline,
--explain.

Drives ``repro lint`` through :func:`repro.cli.main` exactly as a user
or CI job would, asserting the contract the CI ``lint`` job and any
pre-commit hook rely on: exit 0 on clean trees, exit 1 with findings,
exit 2 on usage errors, machine-readable ``--json`` output that
round-trips through :meth:`Finding.from_dict`, and a baseline that
hides findings until the file is removed — at which point they
resurface.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import RULES, Finding, load_baseline
from repro.lint.engine import JSON_SCHEMA_VERSION

FIXTURES = Path(__file__).parent / "lint_fixtures"
BAD = FIXTURES / "NG101_bad.py"


def test_clean_tree_exits_zero(capsys):
    src = Path(__file__).parent.parent / "src"
    assert main(["lint", str(src)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_findings_exit_one_with_location_and_snippet(capsys):
    assert main(["lint", str(BAD)]) == 1
    out = capsys.readouterr().out
    assert "NG101" in out
    assert "NG101_bad.py:4" in out
    assert "random.random()" in out


def test_missing_path_exits_two(capsys):
    assert main(["lint", "no/such/path.txt"]) == 2
    assert "error" in capsys.readouterr().err


def test_json_output_round_trips(capsys):
    assert main(["lint", str(FIXTURES), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["summary"]["findings"] == len(payload["findings"])
    assert payload["summary"]["suppressed"] == len(RULES)
    assert sorted(f["code"] for f in payload["findings"]) == sorted(RULES)
    # Round-trip: parse back into Finding objects and re-serialize.
    for entry in payload["findings"]:
        finding = Finding.from_dict(entry)
        assert finding.to_dict() == entry
        assert finding.fingerprint == entry["fingerprint"]


def test_baseline_hides_then_resurfaces(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    # Freeze the current debt of the bad fixture...
    assert main(["lint", str(BAD), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    entries = load_baseline(baseline)
    assert len(entries) == 1
    capsys.readouterr()
    # ...the finding is now hidden and the run is green...
    assert main(["lint", str(BAD), "--baseline", str(baseline)]) == 1 - 1
    out = capsys.readouterr().out
    assert "hidden by baseline" in out
    # ...and removing the baseline resurfaces it.
    baseline.unlink()
    assert main(["lint", str(BAD), "--baseline", str(baseline)]) == 1


def test_stale_baseline_entry_is_reported(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "entries": {"gone.py:NG101:000000000000": "was fixed long ago"},
    }), encoding="utf-8")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    assert main(["lint", str(clean), "--baseline", str(baseline)]) == 0
    err = capsys.readouterr().err
    assert "stale baseline entry" in err
    # The stale report names the rule code and file, not just the
    # opaque fingerprint, so baseline cleanup is not guesswork.
    assert "NG101 in gone.py" in err


def test_why_appends_call_path_to_semantic_findings(capsys):
    bad = FIXTURES / "NG602_bad.py"
    assert main(["lint", str(bad), "--why"]) == 1
    out = capsys.readouterr().out
    assert "NG602" in out
    assert "because:" in out
    assert "node.mempool.remove(tx.txid)" in out
    # Without --why the call path stays out of the rendering.
    assert main(["lint", str(bad)]) == 1
    assert "because:" not in capsys.readouterr().out


def test_semantic_cache_is_written_and_reused(tmp_path, capsys):
    cache = tmp_path / "index.json"
    src = tmp_path / "mod.py"
    src.write_text("def f(x):\n    return x\n", encoding="utf-8")
    assert main(["lint", str(src), "--semantic-cache", str(cache),
                 "--json"]) == 0
    first = json.loads(capsys.readouterr().out)
    assert cache.is_file()
    assert first["summary"]["index_cache_misses"] == 1
    assert main(["lint", str(src), "--semantic-cache", str(cache),
                 "--json"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["summary"]["index_cache_hits"] == 1
    assert second["summary"]["index_cache_misses"] == 0


def test_bad_baseline_version_exits_two(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    baseline.write_text('{"version": 99, "entries": {}}', encoding="utf-8")
    assert main(["lint", str(BAD), "--baseline", str(baseline)]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_write_baseline_requires_baseline_path(capsys):
    assert main(["lint", str(BAD), "--write-baseline"]) == 2
    assert "--write-baseline requires" in capsys.readouterr().err


def test_baseline_survives_unrelated_edits_not_snippet_edits(tmp_path):
    """The fingerprint ignores line numbers but not the snippet."""
    source = tmp_path / "mod.py"
    source.write_text(
        "import random\n\nvalue = random.random()\n", encoding="utf-8"
    )
    baseline = tmp_path / "base.json"
    assert main(["lint", str(source), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    # Unrelated lines above shift the finding: still hidden.
    source.write_text(
        "import random\n\nPAD = 1\nMORE = 2\n\nvalue = random.random()\n",
        encoding="utf-8",
    )
    assert main(["lint", str(source), "--baseline", str(baseline)]) == 0
    # Editing the offending line itself resurfaces the finding.
    source.write_text(
        "import random\n\nvalue = 2 * random.random()\n", encoding="utf-8"
    )
    assert main(["lint", str(source), "--baseline", str(baseline)]) == 1


# -- rule selection (--select / --ignore / --list-rules) ---------------------


def test_select_runs_only_named_codes(capsys):
    assert main(["lint", str(FIXTURES), "--select", "NG101,NG501",
                 "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert sorted({f["code"] for f in payload["findings"]}) == [
        "NG101", "NG501",
    ]


def test_ignore_drops_named_codes(capsys):
    assert main(["lint", str(FIXTURES), "--ignore", "NG101", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    codes = {f["code"] for f in payload["findings"]}
    assert "NG101" not in codes
    assert codes == set(RULES) - {"NG101"}


def test_select_can_turn_findings_green(capsys):
    # The NG101 bad fixture is clean under every other rule.
    assert main(["lint", str(BAD), "--select", "NG302"]) == 0


def test_select_unknown_code_exits_two(capsys):
    assert main(["lint", str(FIXTURES), "--select", "NG999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_ignore_unknown_code_exits_two(capsys):
    assert main(["lint", str(FIXTURES), "--ignore", "NG999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_select_and_ignore_conflict_exits_two(capsys):
    assert main(["lint", str(FIXTURES), "--select", "NG101",
                 "--ignore", "NG102"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_list_rules_prints_full_table(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code, rule in RULES.items():
        assert code in out
        assert rule.name in out
    # Every family label appears.
    for family in ("rng", "clock/env", "ordering", "layering",
                   "arithmetic", "semantic"):
        assert family in out


@pytest.mark.parametrize("code", sorted(RULES))
def test_explain_prints_rationale_and_examples(code, capsys):
    assert main(["lint", "--explain", code]) == 0
    out = capsys.readouterr().out
    rule = RULES[code]
    assert out.startswith(f"{code} ({rule.name})")
    assert rule.rationale in out
    assert "bad:" in out and "good:" in out
    # The examples shown are the fixture files' content.
    for line in rule.bad_example.rstrip().splitlines():
        assert line in out
    assert f"allow[{code}]" in out


def test_explain_unknown_code_exits_two(capsys):
    assert main(["lint", "--explain", "NG999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err
