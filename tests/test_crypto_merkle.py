"""Merkle tree construction and inclusion proofs."""

import pytest

from repro.crypto.hashing import sha256d
from repro.crypto.merkle import EMPTY_ROOT, merkle_proof, merkle_root, verify_proof


def _leaves(n):
    return [sha256d(bytes([i])) for i in range(n)]


def test_empty_tree():
    assert merkle_root([]) == EMPTY_ROOT


def test_single_leaf_is_root():
    leaf = sha256d(b"only")
    assert merkle_root([leaf]) == leaf


def test_two_leaves():
    a, b = _leaves(2)
    assert merkle_root([a, b]) == sha256d(a + b)


def test_odd_leaf_duplication():
    a, b, c = _leaves(3)
    level1 = [sha256d(a + b), sha256d(c + c)]
    assert merkle_root([a, b, c]) == sha256d(level1[0] + level1[1])


def test_root_depends_on_order():
    a, b = _leaves(2)
    assert merkle_root([a, b]) != merkle_root([b, a])


def test_proofs_verify_for_all_positions():
    for n in (1, 2, 3, 4, 5, 8, 13):
        leaves = _leaves(n)
        root = merkle_root(leaves)
        for i, leaf in enumerate(leaves):
            proof = merkle_proof(leaves, i)
            assert verify_proof(leaf, proof, root), (n, i)


def test_proof_fails_for_wrong_leaf():
    leaves = _leaves(8)
    root = merkle_root(leaves)
    proof = merkle_proof(leaves, 3)
    assert not verify_proof(leaves[4], proof, root)


def test_proof_fails_for_wrong_root():
    leaves = _leaves(8)
    proof = merkle_proof(leaves, 0)
    assert not verify_proof(leaves[0], proof, sha256d(b"other"))


def test_proof_length_is_logarithmic():
    leaves = _leaves(16)
    assert len(merkle_proof(leaves, 0)) == 4


def test_proof_index_bounds():
    with pytest.raises(IndexError):
        merkle_proof(_leaves(4), 4)
    with pytest.raises(IndexError):
        merkle_proof(_leaves(4), -1)
