"""Golden-equivalence pins for the array-core network layer.

The struct-of-arrays rework of ``repro.net`` (CSR adjacency, per-edge-id
link arrays, interned gossip ids, batched relay scheduling) must be a
pure representation change: same seeds → bit-identical simulations.
These fingerprints were captured on the dict-of-objects core the repo
seeded with, at three network sizes and for all three protocols; any
drift in event counts, tips, or per-node state digests means the
refactor changed behaviour, not just layout.

Plus a 1000-node smoke — the paper's actual network size — proving a
full-scale run builds a connected topology, completes, and sweeps clean
under the sanitizer's invariant checkers.
"""

import hashlib
import random

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.net.topology import random_topology
from repro.protocols import Protocol
from repro.sanitizer.runtime import SanitizerRuntime


def _fingerprint(protocol: Protocol, n_nodes: int):
    """(events, messages, blocks, chain length, tips, state digest)."""
    config = ExperimentConfig(
        protocol=protocol,
        n_nodes=n_nodes,
        seed=11,
        target_blocks=24,
        target_key_blocks=3,
        block_rate=0.2,
        key_block_rate=0.02,
        block_size_bytes=8_000,
        cooldown=15.0,
    )
    # Digest-only sanitizer probe: captures one final per-node state
    # snapshot without running invariant sweeps (bit-identical to bare).
    runtime = SanitizerRuntime((), digest_stride=10**9)
    result, _log = run_experiment(config, sanitizer=runtime)
    runtime.finalize()
    snapshot = runtime.digests[-1]
    state = hashlib.sha256()
    for digest in snapshot.digests:
        state.update(digest.format().encode())
    tips = sorted({digest.tip for digest in snapshot.digests})
    return (
        result.events_processed,
        result.messages_delivered,
        result.blocks_generated,
        result.main_chain_length,
        tips,
        state.hexdigest()[:16],
    )


# Captured on the pre-array-core tree (commit d5b3777's seed) with the
# exact config in _fingerprint.  Do not regenerate casually: a change
# here means the simulation itself changed.
GOLDEN = {
    (Protocol.BITCOIN_NG, 10): (
        2214, 2187, 27, 27, ["bdbfc3460bfb"], "dea56528a78ad44f",
    ),
    (Protocol.BITCOIN_NG, 60): (
        17172, 17145, 27, 27, ["2d4465c9d7f7"], "54ec26eedbf9250d",
    ),
    (Protocol.BITCOIN_NG, 250): (
        73494, 73467, 27, 27, ["2d4465c9d7f7"], "c15c3a95c6ef2f7c",
    ),
    (Protocol.BITCOIN, 60): (
        20988, 20955, 33, 23, ["71ffbba57c34"], "236cba6f5157f711",
    ),
    (Protocol.GHOST, 60): (
        13992, 13970, 22, 15, ["f55afd595501"], "d8c624d439155320",
    ),
}


@pytest.mark.parametrize(
    "protocol,n_nodes",
    sorted(GOLDEN, key=lambda key: (key[0].value, key[1])),
    ids=lambda value: str(getattr(value, "value", value)),
)
def test_array_core_matches_seed_dict_core(protocol, n_nodes):
    assert _fingerprint(protocol, n_nodes) == GOLDEN[(protocol, n_nodes)]


def test_thousand_node_topology_is_connected():
    # The paper's construction at full scale: every node picks >= 5
    # peers; the resulting graph must be connected with small diameter.
    topo = random_topology(1000, min_degree=5, rng=random.Random(42))
    assert topo.is_connected()
    assert all(topo.degree(node) >= 5 for node in range(1000))
    assert topo.diameter_bound() <= 6


def test_thousand_node_run_completes_clean_under_check():
    """Full-scale smoke: 1000 nodes, sanitizer on, zero violations."""
    config = ExperimentConfig(
        protocol=Protocol.BITCOIN_NG,
        n_nodes=1000,
        seed=3,
        target_blocks=8,
        target_key_blocks=2,
        block_rate=0.4,
        key_block_rate=0.1,
        block_size_bytes=8_000,
        cooldown=15.0,
        check=True,
        check_stride=4096,
    )
    result, _log = run_experiment(config)
    assert result.events_processed > 0
    assert result.main_chain_length > 0
    assert len(result.violations) == 0
    # Full-scale propagation works: every node ends on a chain of the
    # full main-chain height.  (Tip *unanimity* is not asserted — this
    # short run ends mid-fork, a 520/480 split on an equal-weight
    # key-block fork that only the next key block would resolve.)
    runtime = SanitizerRuntime((), digest_stride=10**9)
    rerun, _ = run_experiment(config.with_(check=False), sanitizer=runtime)
    runtime.finalize()
    heights = {digest.height for digest in runtime.digests[-1].digests}
    assert heights == {result.main_chain_length}
    # Checked and bare runs are bit-identical (checkers only read).
    assert rerun.events_processed == result.events_processed
