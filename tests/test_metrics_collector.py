"""Observation log and block index plumbing."""

import pytest

from repro.metrics.collector import BlockIndex, BlockInfo, ObservationLog, TipHistory


def _info(h, parent, miner=0, t=0.0, work=1, kind="block", n_tx=0, size=100):
    return BlockInfo(h, parent, miner, t, work, kind, n_tx, size)


def test_index_heights_and_work():
    index = BlockIndex()
    index.add(_info(b"a", b"genesis", work=2))
    index.add(_info(b"b", b"a", work=2))
    assert index.height(b"a") == 0
    assert index.height(b"b") == 1
    assert index.cumulative_work(b"b") == 4
    assert index.cumulative_work(b"missing") == 0


def test_index_rejects_duplicates():
    index = BlockIndex()
    index.add(_info(b"a", b"g"))
    with pytest.raises(ValueError):
        index.add(_info(b"a", b"g"))


def test_chain_reconstruction():
    index = BlockIndex()
    index.add(_info(b"a", b"g"))
    index.add(_info(b"b", b"a"))
    index.add(_info(b"c", b"b"))
    assert index.chain(b"c") == (b"a", b"b", b"c")
    assert index.chain(b"a") == (b"a",)
    assert index.chain(b"unknown") == ()


def test_chain_memoization_shares_prefixes():
    index = BlockIndex()
    index.add(_info(b"a", b"g"))
    index.add(_info(b"b", b"a"))
    index.add(_info(b"c", b"b"))
    index.add(_info(b"d", b"b"))  # sibling of c
    assert index.chain(b"c")[:2] == index.chain(b"d")[:2]


def test_is_ancestor():
    index = BlockIndex()
    index.add(_info(b"a", b"g"))
    index.add(_info(b"b", b"a"))
    index.add(_info(b"x", b"a"))
    assert index.is_ancestor(b"a", b"b")
    assert index.is_ancestor(b"b", b"b")
    assert not index.is_ancestor(b"b", b"x")
    assert not index.is_ancestor(b"unknown", b"b")


def test_tip_history_queries():
    history = TipHistory()
    history.record(0.0, b"g")
    history.record(5.0, b"a")
    history.record(9.0, b"b")
    assert history.tip_at(-1.0) is None
    assert history.tip_at(0.0) == b"g"
    assert history.tip_at(7.0) == b"a"
    assert history.tip_at(100.0) == b"b"


def test_tip_history_requires_order():
    history = TipHistory()
    history.record(5.0, b"a")
    with pytest.raises(ValueError):
        history.record(4.0, b"b")


def test_arrival_records_first_only():
    log = ObservationLog(2)
    log.record_arrival(0, b"a", 1.0)
    log.record_arrival(0, b"a", 5.0)
    assert log.arrival_time(0, b"a") == 1.0
    assert log.arrival_time(1, b"a") is None


def test_final_consensus_tip_majority():
    log = ObservationLog(3)
    log.index.add(_info(b"a", b"g"))
    log.index.add(_info(b"b", b"g"))
    log.record_tip(0, b"a", 1.0)
    log.record_tip(1, b"a", 1.0)
    log.record_tip(2, b"b", 1.0)
    log.finalize(10.0)
    assert log.final_consensus_tip() == b"a"
    assert log.main_chain() == (b"a",)


def test_final_consensus_tip_work_tiebreak():
    log = ObservationLog(2)
    log.index.add(_info(b"light", b"g", work=1))
    log.index.add(_info(b"heavy", b"g", work=5))
    log.record_tip(0, b"light", 1.0)
    log.record_tip(1, b"heavy", 1.0)
    log.finalize(10.0)
    assert log.final_consensus_tip() == b"heavy"


def test_duration():
    log = ObservationLog(1)
    log.finalize(42.0)
    assert log.duration == 42.0
