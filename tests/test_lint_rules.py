"""Rule-level analyzer tests: every code triggers, suppresses, passes.

The fixture files under ``tests/lint_fixtures/`` are the ground truth:
``{CODE}_bad.py`` must yield exactly one finding with that code,
``{CODE}_good.py`` must be clean, and ``{CODE}_suppressed.py`` is the
bad snippet silenced by an inline ``# repro: allow[CODE]`` comment.
The bad/good files are pinned byte-for-byte to the examples embedded in
the rule classes, which is what makes ``repro lint --explain`` and the
fixtures a single source of truth.
"""

from pathlib import Path

import pytest

from repro.lint import RULES, lint_paths
from repro.lint.engine import infer_module
from repro.lint.semantic import harvest_set_idents, harvest_tuple_dict_idents

FIXTURES = Path(__file__).parent / "lint_fixtures"
ALL_CODES = sorted(RULES)


def test_rules_span_six_families():
    families = {code[:3] for code in ALL_CODES}
    assert families == {"NG1", "NG2", "NG3", "NG4", "NG5", "NG6"}
    assert len(ALL_CODES) >= 16


@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_triggers_exactly_its_code(code):
    report = lint_paths([FIXTURES / f"{code}_bad.py"])
    assert [f.code for f in report.findings] == [code]
    finding = report.findings[0]
    assert finding.line >= 1
    assert finding.snippet  # carries the offending source line
    assert finding.message


@pytest.mark.parametrize("code", ALL_CODES)
def test_good_fixture_is_clean(code):
    report = lint_paths([FIXTURES / f"{code}_good.py"])
    assert report.findings == []
    assert report.suppressed == 0


@pytest.mark.parametrize("code", ALL_CODES)
def test_suppressed_fixture_is_silenced_but_counted(code):
    report = lint_paths([FIXTURES / f"{code}_suppressed.py"])
    assert report.findings == []
    assert report.suppressed == 1


@pytest.mark.parametrize("code", ALL_CODES)
def test_fixtures_match_rule_embedded_examples(code):
    """``--explain`` and the fixture tree share one source of truth."""
    rule = RULES[code]
    bad = (FIXTURES / f"{code}_bad.py").read_text(encoding="utf-8")
    good = (FIXTURES / f"{code}_good.py").read_text(encoding="utf-8")
    assert bad == rule.bad_example
    assert good == rule.good_example


def test_fixture_directory_yields_one_finding_per_code():
    """The seeded fixture tree: exactly the expected findings, no more."""
    report = lint_paths([FIXTURES])
    assert sorted(f.code for f in report.findings) == ALL_CODES
    assert report.suppressed == len(ALL_CODES)


def test_rule_selection_by_code(tmp_path):
    report = lint_paths([FIXTURES], codes=["NG101"])
    assert sorted(f.code for f in report.findings) == ["NG101"]
    with pytest.raises(KeyError):
        lint_paths([FIXTURES], codes=["NG999"])


# -- the cross-module set-type harvest (what catches topology.edges) --------


def test_harvest_finds_annotations_across_modules(tmp_path):
    """A set declared in one module flags iteration in another."""
    decl = tmp_path / "decl.py"
    decl.write_text(
        "from dataclasses import dataclass, field\n"
        "@dataclass\n"
        "class Topo:\n"
        "    edges: set[frozenset[int]] = field(default_factory=set)\n",
        encoding="utf-8",
    )
    use = tmp_path / "use.py"
    use.write_text(
        "def wire(topo, net, rng):\n"
        "    for edge in topo.edges:\n"
        "        net.send(0, 1, rng.random())\n",
        encoding="utf-8",
    )
    report = lint_paths([tmp_path])
    assert [f.code for f in report.findings] == ["NG301"]
    assert report.findings[0].path.endswith("use.py")


def test_harvest_identifier_sources():
    import ast

    tree = ast.parse(
        "peers: set[int] = set()\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.blocked = frozenset()\n"
        "    def f(self, group: frozenset[int] | None):\n"
        "        inline = {1, 2}\n"
    )
    names = set(harvest_set_idents(tree))
    assert {"peers", "blocked", "group", "inline"} <= names


def test_ordered_iteration_not_flagged(tmp_path):
    """sorted()/list views over sets are the approved pattern."""
    ok = tmp_path / "ok.py"
    ok.write_text(
        "def flood(net, peers: set[int], message) -> None:\n"
        "    for peer in sorted(peers):\n"
        "        net.send(0, peer, message)\n"
        "    for peer in peers:\n"
        "        print(peer)  # no scheduling/RNG in the body\n",
        encoding="utf-8",
    )
    assert lint_paths([ok]).findings == []


# -- the tuple-keyed dict harvest and the NG303 net-layer scope -------------


def test_tuple_dict_iteration_flagged_only_inside_net(tmp_path):
    """Harvest is project-wide; the rule fires only in repro.net."""
    decl = tmp_path / "decl.py"
    decl.write_text(
        "class Seed:\n"
        "    links: dict[tuple[int, int], float]\n",
        encoding="utf-8",
    )
    loop = (
        "def total(links) -> float:\n"
        "    acc = 0.0\n"
        "    for pair in links:\n"
        "        acc += 1.0\n"
        "    return acc\n"
    )
    inside = tmp_path / "inside.py"
    inside.write_text(
        "# repro-lint: module=repro.net.stats\n" + loop, encoding="utf-8"
    )
    outside = tmp_path / "outside.py"
    outside.write_text(
        "# repro-lint: module=repro.experiments.stats\n" + loop,
        encoding="utf-8",
    )
    report = lint_paths([tmp_path], codes=["NG303"])
    assert [f.code for f in report.findings] == ["NG303"]
    assert report.findings[0].path.endswith("inside.py")


def test_tuple_dict_point_lookup_not_flagged(tmp_path):
    """Point lookups are the approved use; only iteration is a finding."""
    ok = tmp_path / "ok.py"
    ok.write_text(
        "# repro-lint: module=repro.net.lookup\n"
        "def eid(table: dict[tuple[int, int], int], s: int, d: int) -> int:\n"
        "    return table[(s, d)]\n",
        encoding="utf-8",
    )
    assert lint_paths([ok]).findings == []


def test_tuple_dict_harvest_identifier_sources():
    import ast

    tree = ast.parse(
        "class Net:\n"
        "    def __init__(self):\n"
        "        self.eids: dict[tuple[int, int], int] = {}\n"
        "        self.by_node: dict[int, list[int]] = {}\n"
        "def f(grid: dict[tuple[str, int], float]) -> None:\n"
        "    pass\n"
    )
    names = set(harvest_tuple_dict_idents(tree))
    assert {"eids", "grid"} <= names
    assert "by_node" not in names


def test_module_inference_and_directive(tmp_path):
    assert infer_module(Path("src/repro/net/network.py")) == "repro.net.network"
    assert infer_module(Path("src/repro/net/__init__.py")) == "repro.net"
    assert infer_module(Path("somewhere/helper.py")) == "helper"
    # The fixture directive claims a module identity, enabling
    # allowlist rules to pass outside the real tree.
    claimed = tmp_path / "claimed.py"
    claimed.write_text(
        "# repro-lint: module=repro.crypto.entropy\n"
        "import os\n"
        "def e() -> bytes:\n"
        "    return os.urandom(8)\n",
        encoding="utf-8",
    )
    assert lint_paths([claimed]).findings == []


def test_src_tree_is_clean():
    """The merged tree carries zero findings and zero frozen debt."""
    src = Path(__file__).parent.parent / "src"
    report = lint_paths([src])
    assert report.findings == [], "\n".join(
        f.format() for f in report.findings
    )
