"""The NG node: leadership, microblock generation, delivery."""

import pytest

import repro.core.node as node_mod
from repro.bitcoin.blocks import SyntheticPayload, TxPayload
from repro.core.blocks import KeyBlock, build_microblock
from repro.core.genesis import make_ng_genesis
from repro.core.node import KIND_KEY, KIND_MICRO, MicroblockPolicy, NGNode
from repro.core.params import NGParams
from repro.metrics.collector import ObservationLog
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.net.gossip import StoredObject
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology

PARAMS = NGParams(key_block_interval=100.0, min_microblock_interval=10.0)
GENESIS = make_ng_genesis()


def _cluster(n=3, params=PARAMS, log=None, check_signatures=True, interval=None):
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(n), constant_histogram(0.05), 1e6)
    nodes = [
        NGNode(
            i,
            sim,
            net,
            GENESIS,
            params,
            log=log,
            policy=MicroblockPolicy(target_bytes=4760),
            microblock_interval=interval,
            check_signatures=check_signatures,
        )
        for i in range(n)
    ]
    return sim, net, nodes


def test_key_block_propagates_and_elects_leader():
    sim, _, nodes = _cluster()
    key = nodes[0].generate_key_block()
    sim.run(until=1.0)
    assert nodes[0].is_leader()
    for node in nodes:
        assert node.tip == key.hash
        assert node.chain.current_leader_pubkey() == nodes[0].pubkey_bytes


def test_leader_generates_microblocks_at_interval():
    sim, _, nodes = _cluster()
    nodes[0].generate_key_block()
    sim.run(until=35.0)
    # Microblocks at t=10, 20, 30.
    assert nodes[0].microblocks_generated == 3
    for node in nodes:
        assert node.chain.tip_record.height == 4  # key + 3 micros


def test_non_leader_never_generates_microblocks():
    sim, _, nodes = _cluster()
    nodes[0].generate_key_block()
    sim.run(until=50.0)
    assert nodes[1].microblocks_generated == 0
    assert nodes[2].microblocks_generated == 0


def test_leadership_transfers_on_new_key_block():
    sim, _, nodes = _cluster()
    nodes[0].generate_key_block()
    sim.run(until=25.0)
    nodes[1].generate_key_block()
    sim.run(until=26.0)
    assert not nodes[0].is_leader()
    assert nodes[1].is_leader()
    count_before = nodes[0].microblocks_generated
    sim.run(until=60.0)
    # The deposed leader generated nothing further.
    assert nodes[0].microblocks_generated == count_before
    assert nodes[1].microblocks_generated > 0


def test_microblocks_signed_and_verified():
    sim, _, nodes = _cluster(check_signatures=True)
    nodes[0].generate_key_block()
    sim.run(until=25.0)
    assert all(node.blocks_rejected == 0 for node in nodes)
    tip_record = nodes[1].chain.tip_record
    assert not tip_record.is_key
    assert tip_record.block.verify_signature(nodes[0].pubkey_bytes)


def test_observation_log_kinds():
    log = ObservationLog(3)
    sim, _, nodes = _cluster(log=log)
    nodes[0].generate_key_block()
    sim.run(until=25.0)
    kinds = {info.kind for info in log.index.all_blocks()}
    assert kinds == {KIND_KEY, KIND_MICRO}


def test_microblock_interval_respects_protocol_minimum():
    with pytest.raises(ValueError):
        _cluster(interval=5.0)  # below the 10 s protocol floor


def test_custom_interval_slower_than_minimum():
    sim, _, nodes = _cluster(interval=20.0)
    nodes[0].generate_key_block()
    sim.run(until=45.0)
    assert nodes[0].microblocks_generated == 2  # t=20, 40


def test_coinbase_pays_previous_leader_fee_share():
    params = NGParams(key_block_interval=100.0, min_microblock_interval=10.0)
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(2), constant_histogram(0.05), 1e6)
    policy = MicroblockPolicy(
        target_bytes=4760, synthetic_fee_per_tx=100
    )
    nodes = [
        NGNode(i, sim, net, GENESIS, params, policy=policy) for i in range(2)
    ]
    nodes[0].generate_key_block()
    sim.run(until=25.0)  # two microblocks, 10 tx each
    key2 = nodes[1].generate_key_block()
    # Previous epoch fees: 20 tx × 100 = 2000 → 40% = 800 to node 0.
    values = {out.pubkey_hash: out.value for out in key2.coinbase.outputs}
    assert values[nodes[0].pubkey_hash] == 800
    assert values[nodes[1].pubkey_hash] == params.key_block_reward + 1200


def test_equivocating_leader_poisoned_by_next():
    # A Byzantine node signs two microblocks on one parent; the next
    # leader publishes a poison for it.
    sim, _, nodes = _cluster()
    cheater = nodes[0]
    cheater.generate_key_block()
    sim.run(until=15.0)  # one legitimate microblock out
    # Forge a conflicting sibling by signing manually.
    from repro.bitcoin.blocks import SyntheticPayload
    from repro.core.blocks import build_microblock

    tip_parent = cheater.chain.tip_record.parent_hash
    fork = build_microblock(
        tip_parent,
        timestamp=10.0,
        payload=SyntheticPayload(n_tx=2, salt=b"evil"),
        leader_key=cheater.key,
    )
    cheater.announce(fork.hash, KIND_MICRO, fork, fork.size)
    sim.run(until=16.0)
    assert any(len(node.chain.equivocations()) > 0 for node in nodes)
    # The next leader claims the bounty.
    nodes[1].generate_key_block()
    sim.run(until=40.0)
    assert len(nodes[1].poisons_published) == 1
    assert (
        nodes[1].poisons_published[0].offender_pubkey == cheater.pubkey_bytes
    )


class _RecordingTracer:
    def __init__(self):
        self.events = []

    def emit(self, name, t, **fields):
        self.events.append(name)


def test_mined_key_blocks_are_counted():
    sim, _, nodes = _cluster()
    nodes[0].generate_key_block()
    assert nodes[0].key_blocks_mined == 1


def test_tampered_key_block_from_peer_rejected_and_counted():
    sim, _, nodes = _cluster()
    key = nodes[0].generate_key_block()
    # Same header, different coinbase: the payload-root commitment no
    # longer matches, so structural validation must veto the relay.
    tampered = KeyBlock(header=key.header, coinbase=GENESIS.coinbase)
    assert nodes[1]._deliver_key_block(tampered, sender=0) is False
    assert nodes[1].blocks_rejected == 1
    assert tampered.hash not in nodes[1].chain


def test_oversized_microblock_from_peer_rejected_and_counted():
    sim, _, nodes = _cluster()
    key = nodes[0].generate_key_block()
    sim.run(until=1.0)
    big = build_microblock(
        key.hash,
        11.0,
        SyntheticPayload(n_tx=1000, salt=b"big"),
        nodes[0].key,
    )
    assert big.size > PARAMS.max_microblock_bytes
    assert nodes[1]._deliver_microblock(big, sender=0) is False
    assert nodes[1].blocks_rejected == 1
    assert big.hash not in nodes[1].chain


def test_wrongly_signed_microblock_rejected_at_the_chain_layer():
    sim, _, nodes = _cluster()
    key = nodes[0].generate_key_block()
    sim.run(until=1.0)
    forged = build_microblock(
        key.hash, 11.0, SyntheticPayload(n_tx=1, salt=b"f"), nodes[1].key
    )
    assert nodes[2]._deliver_microblock(forged, sender=1) is False
    assert nodes[2].blocks_rejected == 1


def test_block_arrival_traced_only_for_relayed_blocks():
    sim, _, nodes = _cluster()
    key = nodes[0].generate_key_block()
    tracer = _RecordingTracer()
    nodes[1]._tracer = tracer
    nodes[1]._deliver_key_block(key, sender=0)
    assert tracer.events.count("block_arrival") == 1
    # Self-generated objects (sender None) are not arrivals.
    tracer2 = _RecordingTracer()
    nodes[2]._tracer = tracer2
    nodes[2]._deliver_key_block(key, sender=None)
    assert tracer2.events.count("block_arrival") == 0


def test_microblock_arrival_traced_only_for_relayed_blocks():
    sim, _, nodes = _cluster()
    key = nodes[0].generate_key_block()
    sim.run(until=1.0)
    micro = build_microblock(
        key.hash, 11.0, SyntheticPayload(n_tx=1, salt=b"t"), nodes[0].key
    )
    tracer = _RecordingTracer()
    nodes[1]._tracer = tracer
    nodes[1]._deliver_microblock(micro, sender=0)
    assert tracer.events.count("block_arrival") == 1
    tracer2 = _RecordingTracer()
    nodes[2]._tracer = tracer2
    nodes[2]._deliver_microblock(micro, sender=None)
    assert tracer2.events.count("block_arrival") == 0


def test_deliver_routes_tx_objects_to_admission(monkeypatch):
    sim, _, nodes = _cluster()
    admitted = []
    monkeypatch.setattr(
        nodes[1], "_accept_relayed_transaction", admitted.append
    )
    obj = StoredObject(obj_id=b"\x01" * 32, kind="tx", data="tx-1", size=1)
    assert nodes[1].deliver(obj, sender=0) is None
    assert admitted == ["tx-1"]
    # Locally submitted transactions were already admitted by
    # submit_transaction; the self-delivery must not re-admit.
    assert nodes[1].deliver(obj, sender=None) is None
    assert admitted == ["tx-1"]
    junk = StoredObject(obj_id=b"\x02" * 32, kind="junk", data=None, size=1)
    assert nodes[1].deliver(junk, sender=0) is False


def test_abdicate_clears_leadership_and_tolerates_non_leaders():
    sim, _, nodes = _cluster()
    nodes[1].abdicate()  # never led: a no-op, not an error
    nodes[0].generate_key_block()
    assert nodes[0].is_leader()
    nodes[0].abdicate()
    assert not nodes[0].is_leader()
    sim.run(until=35.0)
    assert nodes[0].microblocks_generated == 0


def test_tx_admission_validates_at_the_next_height(monkeypatch):
    sim, _, nodes = _cluster()
    heights = []

    def fake_validate(tx, utxo, height, check_signatures=True):
        heights.append(height)
        return 0

    monkeypatch.setattr(node_mod, "validate_spend", fake_validate)
    tx_a = Transaction(inputs=(), outputs=(TxOutput(1, bytes(20)),))
    tx_b = Transaction(inputs=(), outputs=(TxOutput(2, bytes(20)),))
    nodes[0].submit_transaction(tx_a)
    nodes[0]._accept_relayed_transaction(tx_b)
    # A transaction admitted now can first appear in the *next* block.
    assert heights == [1, 1]


def test_connect_and_disconnect_roundtrip_for_tx_microblocks():
    sim, _, nodes = _cluster()
    node = nodes[0]
    owner = PrivateKey.from_seed("roundtrip-owner")
    pkh = hash160(owner.public_key().to_bytes())
    outpoint = OutPoint(b"\xee" * 32, 0)
    node.utxo.credit(TxOutput(100, pkh), outpoint, height=0)
    key = node.generate_key_block()
    assert node.tip == key.hash
    tx = Transaction(
        inputs=(TxInput(outpoint),), outputs=(TxOutput(90, bytes(20)),)
    ).sign_input(0, owner)
    micro = build_microblock(key.hash, 10.0, TxPayload((tx,)), node.key)
    node._deliver_microblock(micro, sender=None)
    assert node.tip == micro.hash
    assert node._fees_by_micro[micro.hash] == 10
    assert outpoint not in node.utxo
    node._disconnect_block(micro.hash)
    # The undo restores the spent coin and the entries return to the
    # mempool for re-placement.
    assert outpoint in node.utxo
    assert tx.txid in node.mempool
