"""Bitcoin block structure, payloads, PoW mining, validity."""

import pytest

from repro.bitcoin.blocks import (
    ARTIFICIAL_TX_SIZE,
    HEADER_SIZE,
    InvalidBlock,
    SyntheticPayload,
    TxPayload,
    build_block,
    check_block,
    make_genesis,
    mine,
)
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import OutPoint, Transaction, TxInput, TxOutput

PKH = hash160(PrivateKey.from_seed("block-tests").public_key().to_bytes())


def _tx(byte, value=5):
    return Transaction(
        inputs=(TxInput(OutPoint(bytes([byte]) * 32, 0)),),
        outputs=(TxOutput(value, PKH),),
    )


def _block(payload=None, miner=1, prev=None):
    return build_block(
        prev_hash=prev or make_genesis().hash,
        payload=payload or SyntheticPayload(n_tx=10, salt=b"t"),
        timestamp=1.0,
        bits=0x207FFFFF,
        miner_id=miner,
        reward=50,
    )


def test_genesis_deterministic():
    assert make_genesis().hash == make_genesis().hash


def test_artificial_tx_size_matches_paper():
    # 1 MB / (600 s × 3.5 tx/s) ≈ 476 bytes.
    assert ARTIFICIAL_TX_SIZE == 476
    assert 1_000_000 // (600 * 3.5) == pytest.approx(ARTIFICIAL_TX_SIZE, abs=1)


def test_synthetic_payload_size():
    payload = SyntheticPayload(n_tx=100, tx_size=476)
    assert payload.payload_bytes == 47_600


def test_synthetic_payload_roots_differ_by_salt():
    a = SyntheticPayload(5, salt=b"a")
    b = SyntheticPayload(5, salt=b"b")
    assert a.root() != b.root()


def test_tx_payload_root_is_merkle():
    from repro.crypto.merkle import merkle_root

    txs = (_tx(1), _tx(2))
    payload = TxPayload(txs)
    assert payload.root() == merkle_root([tx.txid for tx in txs])
    assert payload.n_tx == 2
    assert payload.payload_bytes == sum(tx.size for tx in txs)


def test_block_size_accounting():
    block = _block(SyntheticPayload(n_tx=10, tx_size=100))
    assert block.size == HEADER_SIZE + block.coinbase.size + 1000


def test_miner_hint_roundtrip():
    assert _block(miner=42).miner_hint == 42
    assert _block(miner=-1).miner_hint == -1


def test_block_hash_commits_to_payload():
    a = _block(SyntheticPayload(1, salt=b"a"))
    b = _block(SyntheticPayload(1, salt=b"b"))
    assert a.hash != b.hash


def test_check_block_accepts_valid_without_pow():
    check_block(_block(), require_pow=False)


def test_check_block_rejects_payload_mismatch():
    from repro.bitcoin.blocks import Block

    block = _block()
    forged = Block(block.header, block.coinbase, SyntheticPayload(99, salt=b"x"))
    with pytest.raises(InvalidBlock):
        check_block(forged, require_pow=False)


def test_check_block_rejects_non_coinbase_first():
    from repro.bitcoin.blocks import Block

    block = _block()
    with pytest.raises(InvalidBlock):
        check_block(
            Block(block.header, _tx(9), block.payload), require_pow=False
        )


def test_check_block_rejects_second_coinbase_in_payload():
    from repro.ledger.transactions import make_coinbase

    block = _block(TxPayload((make_coinbase([(PKH, 1)]),)))
    with pytest.raises(InvalidBlock):
        check_block(block, require_pow=False)


def test_mining_finds_valid_nonce():
    # Regtest-grade target: a handful of iterations suffice.
    block = mine(_block())
    assert block.header.meets_pow()
    check_block(block, require_pow=True)


def test_unmined_block_fails_pow_check():
    # Overwhelmingly likely with a fixed nonce of 0 at a harder target.
    block = build_block(
        prev_hash=bytes(32),
        payload=SyntheticPayload(1, salt=b"pow"),
        timestamp=0.0,
        bits=0x1F00FFFF,
        miner_id=0,
        reward=0,
    )
    if not block.header.meets_pow():
        with pytest.raises(InvalidBlock):
            check_block(block, require_pow=True)


def test_header_work_positive():
    assert _block().header.work >= 1


def test_synthetic_payload_validation():
    with pytest.raises(InvalidBlock):
        SyntheticPayload(n_tx=-1)
    with pytest.raises(InvalidBlock):
        SyntheticPayload(n_tx=1, tx_size=0)
