"""Partition controller and partition-driven chain splits."""

import pytest

from repro.bitcoin.blocks import make_genesis
from repro.bitcoin.node import BitcoinNode, BlockPolicy
from repro.net.latency import constant_histogram
from repro.net.network import Message, Network
from repro.net.partitions import PartitionController
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology


def _cluster(n=6):
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(n), constant_histogram(0.05), 1e6)
    genesis = make_genesis()
    nodes = [
        BitcoinNode(i, sim, net, genesis, policy=BlockPolicy(max_block_bytes=2000))
        for i in range(n)
    ]
    return sim, net, nodes


def test_blocked_link_drops_messages():
    sim, net, nodes = _cluster(2)
    net.block_link(0, 1)
    block = nodes[0].generate_block()
    sim.run()
    assert nodes[1].tip != block.hash
    net.unblock_link(0, 1)
    assert not net.link_blocked(0, 1)


def test_split_counts_cut_edges():
    sim, net, nodes = _cluster(6)
    partition = PartitionController(net)
    cut = partition.split([{0, 1, 2}, {3, 4, 5}])
    assert cut == 9  # complete graph: 3×3 cross edges
    assert partition.active


def test_split_creates_diverging_chains_and_heal_merges():
    sim, net, nodes = _cluster(6)
    partition = PartitionController(net)
    partition.split([{0, 1, 2}, {3, 4, 5}])
    # Each side mines its own history; side B mines more.
    nodes[0].generate_block()
    sim.run()
    nodes[3].generate_block()
    sim.run()
    b2 = nodes[4].generate_block()
    sim.run()
    assert nodes[1].tip != nodes[4].tip  # split brains
    partition.heal()
    # Re-announce side B's chain to side A.
    for block_hash in nodes[3].tree.main_chain()[1:]:
        stored = nodes[3].get_object(block_hash)
        net.send(3, 0, Message("object", stored, stored.size))
    sim.run()
    # Side A reorgs onto the heavier branch and relays it internally.
    assert nodes[0].tip == b2.hash
    assert nodes[1].tip == b2.hash
    assert nodes[2].tip == b2.hash


def test_isolate_cuts_all_but_excepted():
    sim, net, nodes = _cluster(5)
    partition = PartitionController(net)
    cut = partition.isolate(4, except_peers={0})
    assert cut == 3
    assert net.link_blocked(4, 1)
    assert not net.link_blocked(4, 0)


def test_double_split_rejected():
    sim, net, nodes = _cluster(4)
    partition = PartitionController(net)
    partition.split([{0, 1}])
    with pytest.raises(RuntimeError):
        partition.split([{2, 3}])
    partition.heal()
    partition.split([{2, 3}])  # fine after healing


def test_overlapping_groups_rejected():
    sim, net, nodes = _cluster(4)
    partition = PartitionController(net)
    with pytest.raises(ValueError):
        partition.split([{0, 1}, {1, 2}])
