"""Property-based tests: wire codecs round-trip arbitrary blocks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitcoin.blocks import Block, BlockHeader, SyntheticPayload, TxPayload
from repro.core.blocks import (
    KeyBlock,
    KeyBlockHeader,
    Microblock,
    MicroblockHeader,
)
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
)
from repro.wire import decode, encode

PUBKEY = PrivateKey.from_seed("wire-prop").public_key().to_bytes()

hashes = st.binary(min_size=32, max_size=32)
timestamps = st.floats(
    min_value=0, max_value=1e12, allow_nan=False, allow_infinity=False
)
bits_values = st.sampled_from([0x207FFFFF, 0x1D00FFFF, 0x1F00FFFF])
nonces = st.integers(min_value=0, max_value=2**64 - 1)

synthetic_payloads = st.builds(
    SyntheticPayload,
    n_tx=st.integers(min_value=0, max_value=10_000),
    tx_size=st.integers(min_value=1, max_value=10_000),
    salt=st.binary(max_size=64),
)

transactions = st.builds(
    Transaction,
    inputs=st.lists(
        st.builds(
            TxInput,
            outpoint=st.builds(
                OutPoint,
                txid=hashes,
                index=st.integers(min_value=0, max_value=2**32 - 1),
            ),
            pubkey=st.binary(max_size=40),
            signature=st.binary(max_size=70),
        ),
        max_size=3,
    ).map(tuple),
    outputs=st.lists(
        st.builds(
            TxOutput,
            value=st.integers(min_value=0, max_value=10**10),
            pubkey_hash=st.binary(min_size=20, max_size=20),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
    padding=st.binary(max_size=50),
)

tx_payloads = st.builds(
    TxPayload, transactions=st.lists(transactions, max_size=4).map(tuple)
)

payloads = st.one_of(synthetic_payloads, tx_payloads)

coinbases = st.builds(
    lambda pkh, value, tag: make_coinbase([(pkh, value)], tag=tag),
    pkh=st.binary(min_size=20, max_size=20),
    value=st.integers(min_value=0, max_value=10**10),
    tag=st.binary(max_size=30),
)

bitcoin_blocks = st.builds(
    lambda prev, root, t, bits, nonce, cb, payload: Block(
        BlockHeader(prev, root, t, bits, nonce), cb, payload
    ),
    prev=hashes,
    root=hashes,
    t=timestamps,
    bits=bits_values,
    nonce=nonces,
    cb=coinbases,
    payload=payloads,
)

key_blocks = st.builds(
    lambda prev, root, t, bits, nonce, cb: KeyBlock(
        KeyBlockHeader(prev, root, t, bits, nonce, PUBKEY), cb
    ),
    prev=hashes,
    root=hashes,
    t=timestamps,
    bits=bits_values,
    nonce=nonces,
    cb=coinbases,
)

microblocks = st.builds(
    lambda prev, t, root, sig, payload: Microblock(
        MicroblockHeader(prev, t, root), sig, payload
    ),
    prev=hashes,
    t=timestamps,
    root=hashes,
    sig=st.binary(min_size=64, max_size=64),
    payload=payloads,
)


@settings(max_examples=150, deadline=None)
@given(st.one_of(bitcoin_blocks, key_blocks, microblocks))
def test_any_block_roundtrips(block):
    restored = decode(encode(block))
    assert restored == block
    assert restored.hash == block.hash


@settings(max_examples=60, deadline=None)
@given(st.one_of(bitcoin_blocks, key_blocks, microblocks), st.binary(min_size=1, max_size=4))
def test_trailing_garbage_always_rejected(block, garbage):
    import pytest

    from repro.encoding import DecodeError

    with pytest.raises(DecodeError):
        decode(encode(block) + garbage)
