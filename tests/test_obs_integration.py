"""Observability wired through a whole experiment, serial and pooled."""

import json

import pytest

from repro.experiments import ExperimentConfig, Protocol, run_experiment
from repro.experiments.parallel import run_many
from repro.obs import (
    Observability,
    config_slug,
    load_records,
)
from repro.obs.trace import MemorySink, Tracer

SMALL = ExperimentConfig(
    n_nodes=12,
    target_blocks=8,
    target_key_blocks=4,
    block_rate=0.1,
    block_size_bytes=4000,
    cooldown=15.0,
    seed=5,
)


def _run_traced(config):
    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink))
    result, log = run_experiment(config, obs=obs)
    return result, log, sink.records


def test_ng_run_emits_the_full_vocabulary():
    result, _, records = _run_traced(SMALL.with_(protocol=Protocol.BITCOIN_NG))
    events = {r["ev"] for r in records}
    assert {
        "trace_start", "send", "deliver", "block_gen", "block_arrival",
        "tip_change", "epoch_start", "sample_links", "sample_mempool",
        "sample_forks", "trace_end",
    } <= events
    start = records[0]
    assert start["ev"] == "trace_start"
    assert start["protocol"] == "bitcoin-ng"
    assert start["seed"] == 5
    end = records[-1]
    assert end["ev"] == "trace_end"
    assert end["records"] == len(records)
    kinds = {r["kind"] for r in records if r["ev"] == "block_gen"}
    assert kinds == {"key", "micro"}
    assert result.obs is not None


def test_bitcoin_run_traces_blocks_and_tips():
    _, log, records = _run_traced(SMALL.with_(protocol=Protocol.BITCOIN))
    gens = [r for r in records if r["ev"] == "block_gen"]
    assert len(gens) == len(log.index)
    assert all(r["kind"] == "block" for r in gens)
    assert any(r["ev"] == "tip_change" for r in records)


def test_snapshot_carries_metrics_traffic_and_samples():
    result, _, _ = _run_traced(SMALL.with_(protocol=Protocol.BITCOIN))
    snapshot = result.obs
    assert snapshot["snapshot_version"] == 1
    metrics = snapshot["metrics"]
    assert "net_messages_sent" in metrics
    assert "net_bytes_sent" in metrics
    assert "node_blocks_generated" in metrics
    assert metrics["net_queue_delay_seconds"]["type"] == "histogram"
    assert all(n > 0 for n in snapshot["samples_taken"].values())
    traffic = snapshot["traffic"]
    per_node = traffic["per_node"]
    assert len(per_node) == SMALL.n_nodes
    assert sum(n["bytes_out"] for n in per_node) == traffic["total_bytes_sent"]
    assert sum(n["bytes_in"] for n in per_node) == traffic["total_bytes_sent"]


def test_obs_results_match_bare_results():
    """Instrumentation must not perturb the simulation itself."""
    config = SMALL.with_(protocol=Protocol.BITCOIN_NG)
    bare, _ = run_experiment(config)
    traced, _, _ = _run_traced(config)
    assert traced.as_row() == bare.as_row()
    assert traced.blocks_generated == bare.blocks_generated
    assert traced.main_chain_length == bare.main_chain_length
    # Sampler firings are extra simulator events, so the raw event
    # counter is the one number allowed to differ — and it must grow.
    assert traced.events_processed > bare.events_processed


def test_from_config_writes_trace_and_metrics_files(tmp_path):
    config = SMALL.with_(
        protocol=Protocol.BITCOIN_NG, obs_dir=str(tmp_path)
    )
    result, _ = run_experiment(config)
    slug = config_slug(config)
    trace_path = tmp_path / f"{slug}.trace.jsonl"
    metrics_path = tmp_path / f"{slug}.metrics.json"
    assert trace_path.exists()
    assert metrics_path.exists()
    records = load_records(trace_path)
    assert records[0]["ev"] == "trace_start"
    assert records[-1]["ev"] == "trace_end"
    assert records[-1]["records"] == len(records)
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["slug"] == slug
    assert snapshot == result.obs
    assert result.obs["trace_path"] == str(trace_path)
    assert result.obs["trace_records"] == len(records)


def test_disabled_config_produces_no_snapshot():
    result, _ = run_experiment(SMALL.with_(protocol=Protocol.BITCOIN))
    assert result.obs is None


def test_obs_round_trips_through_the_process_pool(tmp_path):
    configs = [
        SMALL.with_(protocol=protocol, seed=seed, obs_dir=str(tmp_path))
        for protocol in (Protocol.BITCOIN, Protocol.BITCOIN_NG)
        for seed in (0, 1)
    ]
    results = run_many(configs, jobs=2)
    for config, result in zip(configs, results):
        slug = config_slug(config)
        assert (tmp_path / f"{slug}.trace.jsonl").exists()
        assert (tmp_path / f"{slug}.metrics.json").exists()
        assert result.obs is not None
        assert result.obs["slug"] == slug


def test_pooled_obs_results_equal_serial_obs_results(tmp_path):
    configs = [
        SMALL.with_(
            protocol=Protocol.BITCOIN_NG,
            seed=seed,
            obs_dir=str(tmp_path / "pooled"),
        )
        for seed in (0, 1, 2)
    ]
    serial = run_many(configs, jobs=1)
    pooled = run_many(configs, jobs=3)
    # Frozen-dataclass equality covers every metric; the obs snapshot
    # is compare=False so wall-clock noise cannot break this.
    assert pooled == serial
    assert [r.obs["metrics"] for r in pooled] == [
        r.obs["metrics"] for r in serial
    ]


def test_sample_period_override():
    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink), sample_period=1000.0)
    run_experiment(SMALL.with_(protocol=Protocol.BITCOIN), obs=obs)
    links = [r for r in sink.records if r["ev"] == "sample_links"]
    # Horizon is 95 s at these parameters: a 1000 s period never fires.
    assert links == []
    assert obs.resolve_period(50.0) == 1000.0


def test_slug_distinguishes_sweep_axes():
    slugs = {
        config_slug(SMALL.with_(protocol=Protocol.BITCOIN)),
        config_slug(SMALL.with_(protocol=Protocol.BITCOIN_NG)),
        config_slug(SMALL.with_(protocol=Protocol.BITCOIN, seed=6)),
        config_slug(SMALL.with_(protocol=Protocol.BITCOIN, block_rate=0.2)),
        config_slug(
            SMALL.with_(protocol=Protocol.BITCOIN, block_size_bytes=8000)
        ),
    }
    assert len(slugs) == 5
