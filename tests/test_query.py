"""Chain query API against live Bitcoin and NG nodes."""

import pytest

from repro.bitcoin.blocks import make_genesis
from repro.bitcoin.node import BitcoinNode, BlockPolicy
from repro.core.genesis import make_ng_genesis, seed_genesis_coins
from repro.core.node import MicroblockPolicy, NGNode
from repro.core.params import NGParams
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import COIN, Transaction, TxInput, TxOutput
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology
from repro.query import ChainQuery

USER = PrivateKey.from_seed("query-user")
USER_PKH = hash160(USER.public_key().to_bytes())
DEST = bytes(range(20))


@pytest.fixture()
def ng_world():
    sim = Simulator(seed=4)
    net = Network(sim, complete_topology(2), constant_histogram(0.02), 1e6)
    params = NGParams(
        key_block_interval=40.0, min_microblock_interval=10.0, coinbase_maturity=1
    )
    genesis = make_ng_genesis()
    nodes = [
        NGNode(
            i, sim, net, genesis, params,
            policy=MicroblockPolicy(target_bytes=50_000, synthetic=False),
        )
        for i in range(2)
    ]
    outpoint = None
    for node in nodes:
        (outpoint,) = seed_genesis_coins(node.utxo, [(USER_PKH, 20 * COIN)])
    nodes[0].generate_key_block()
    spend = Transaction(
        inputs=(TxInput(outpoint),),
        outputs=(TxOutput(8 * COIN, DEST), TxOutput(12 * COIN, USER_PKH)),
    ).sign_input(0, USER)
    nodes[0].submit_transaction(spend)
    sim.run(until=12.0)  # serialized in the first microblock
    return sim, nodes, spend


def test_locate_transaction_ng(ng_world):
    sim, nodes, spend = ng_world
    query = ChainQuery(nodes[1])
    location = query.locate_transaction(spend.txid)
    assert location is not None
    assert location.height == 2  # genesis, key, microblock
    assert not location.is_coinbase


def test_unknown_transaction(ng_world):
    sim, nodes, spend = ng_world
    query = ChainQuery(nodes[1])
    assert query.locate_transaction(b"\x00" * 32) is None
    assert query.confirmations(b"\x00" * 32) == 0


def test_ng_confirmations_count_key_blocks(ng_world):
    sim, nodes, spend = ng_world
    query = ChainQuery(nodes[1])
    assert query.confirmations(spend.txid) == 0  # same epoch still open
    nodes[1].generate_key_block()
    sim.run(until=sim.now + 1.0)
    assert query.confirmations(spend.txid) == 1
    nodes[0].generate_key_block()
    sim.run(until=sim.now + 1.0)
    assert query.confirmations(spend.txid) == 2


def test_coinbase_confirmed_by_own_key_block(ng_world):
    sim, nodes, spend = ng_world
    query = ChainQuery(nodes[1])
    key1 = query.block_at_height(1)
    assert query.confirmations(key1.coinbase.txid) == 1


def test_address_history_ng(ng_world):
    sim, nodes, spend = ng_world
    query = ChainQuery(nodes[1])
    history = query.address_history(USER_PKH)
    # One event: the spend (the genesis credit is outside the chain),
    # netting change − spent source tracked from chain data only.
    assert [e.txid for e in history] == [spend.txid]
    dest_history = query.address_history(DEST)
    assert dest_history[0].delta == 8 * COIN
    assert query.balance_from_history(DEST) == nodes[1].balance_of(DEST)


def test_address_history_tracks_spend_of_chain_output(ng_world):
    sim, nodes, spend = ng_world
    # Spend the change output created on-chain: the debit must show.
    from repro.ledger.transactions import OutPoint

    respend = Transaction(
        inputs=(TxInput(OutPoint(spend.txid, 1)),),
        outputs=(TxOutput(12 * COIN, DEST),),
    ).sign_input(0, USER)
    nodes[0].submit_transaction(respend)
    sim.run(until=25.0)
    query = ChainQuery(nodes[1])
    history = query.address_history(USER_PKH)
    assert history[-1].delta == -12 * COIN
    # The off-chain genesis credit and its on-chain spend cancel, so
    # the visible history nets exactly to the UTXO balance.
    assert query.balance_from_history(USER_PKH) == nodes[1].balance_of(
        USER_PKH
    )


def test_block_at_height_bounds(ng_world):
    sim, nodes, spend = ng_world
    query = ChainQuery(nodes[1])
    assert query.block_at_height(0).hash == nodes[1].chain.genesis_hash
    with pytest.raises(IndexError):
        query.block_at_height(query.chain_height() + 1)


def test_bitcoin_confirmations():
    sim = Simulator(seed=1)
    net = Network(sim, complete_topology(2), constant_histogram(0.02), 1e6)
    genesis = make_genesis()
    nodes = [
        BitcoinNode(
            i, sim, net, genesis,
            policy=BlockPolicy(max_block_bytes=50_000, synthetic=False),
        )
        for i in range(2)
    ]
    block1 = nodes[0].generate_block()
    sim.run()
    query = ChainQuery(nodes[1])
    assert query.confirmations(block1.coinbase.txid) == 1
    nodes[1].generate_block()
    sim.run()
    assert query.confirmations(block1.coinbase.txid) == 2
    location = query.locate_transaction(block1.coinbase.txid)
    assert location.is_coinbase
