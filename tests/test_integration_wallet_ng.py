"""Wallet + node + confirmation tracker: the full user story, live.

A merchant runs a wallet against its own NG node, a customer pays, the
merchant's confirmation tracker moves the payment from TENTATIVE to
CONFIRMED per the §4.3 policy — all over the simulated network with
full validation.
"""

import pytest

from repro.core.genesis import make_ng_genesis, seed_genesis_coins
from repro.core.node import KIND_MICRO, MicroblockPolicy, NGNode
from repro.core.params import NGParams
from repro.ledger.transactions import COIN
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology
from repro.wallet import (
    ConfirmationPolicy,
    ConfirmationTracker,
    TxStatus,
    Wallet,
)

PARAMS = NGParams(
    key_block_interval=60.0, min_microblock_interval=10.0, coinbase_maturity=1
)


@pytest.fixture()
def world():
    sim = Simulator(seed=8)
    net = Network(sim, complete_topology(3), constant_histogram(0.03), 1e6)
    genesis = make_ng_genesis()
    nodes = [
        NGNode(
            i,
            sim,
            net,
            genesis,
            PARAMS,
            policy=MicroblockPolicy(target_bytes=50_000, synthetic=False),
            check_signatures=True,
        )
        for i in range(3)
    ]
    customer = Wallet("customer-w")
    merchant = Wallet("merchant-w")
    for node in nodes:
        seed_genesis_coins(node.utxo, [(customer.pubkey_hash(), 30 * COIN)])
    return sim, nodes, customer, merchant


def test_payment_lifecycle(world):
    sim, nodes, customer, merchant = world
    merchant_node = nodes[2]
    tracker = ConfirmationTracker(
        merchant_node.chain,
        ConfirmationPolicy(propagation_time=5.0, key_block_depth=1),
    )

    # Epoch starts; customer builds the payment with its wallet and
    # submits it anywhere.
    nodes[0].generate_key_block()
    payment = customer.build_payment(
        nodes[1].utxo,
        [(merchant.pubkey_hash(), 12 * COIN)],
        fee=int(0.1 * COIN),
        height=nodes[1].chain.tip_record.height + 1,
    )
    nodes[1].submit_transaction(payment)

    # The leader's next microblock serializes it; the merchant node
    # sees it arrive and registers it with the tracker.
    sim.run(until=11.0)
    containing = merchant_node.chain.tip
    record = merchant_node.chain.tip_record
    assert not record.is_key
    assert payment.txid in [
        tx.txid for tx in record.block.payload.transactions  # type: ignore[union-attr]
    ]
    tracker.observe(payment.txid, containing, seen_at=sim.now)

    # Inside the propagation window: tentative.
    assert tracker.status(payment.txid, now=sim.now) is TxStatus.TENTATIVE
    # Funds are visible but the merchant does not ship yet.
    assert merchant_node.balance_of(merchant.pubkey_hash()) == 12 * COIN

    # After the §4.3 wait, confirmed.
    sim.run(until=sim.now + 6.0)
    assert tracker.status(payment.txid, now=sim.now) is TxStatus.CONFIRMED

    # And after the next key block, confirmed by burial too.
    nodes[1].generate_key_block()
    sim.run(until=sim.now + 2.0)
    assert tracker.status(payment.txid, now=sim.now) is TxStatus.CONFIRMED


def test_merchant_wallet_can_respend(world):
    sim, nodes, customer, merchant = world
    nodes[0].generate_key_block()
    payment = customer.build_payment(
        nodes[1].utxo,
        [(merchant.pubkey_hash(), 12 * COIN)],
        fee=0,
        height=1,
    )
    nodes[1].submit_transaction(payment)
    sim.run(until=25.0)
    # The merchant's wallet sees the coin through its node's UTXO set
    # and can spend it onward.
    height = nodes[2].chain.tip_record.height + 1
    assert merchant.balance(nodes[2].utxo, height) == 12 * COIN
    onward = merchant.build_payment(
        nodes[2].utxo,
        [(customer.pubkey_hash(), 3 * COIN)],
        fee=0,
        height=height,
    )
    nodes[2].submit_transaction(onward)
    sim.run(until=45.0)
    assert nodes[0].balance_of(customer.pubkey_hash()) == (
        30 * COIN - 12 * COIN + 3 * COIN
    )
