"""Difficulty retargeting and power-drop dynamics (Section 5.2)."""

import pytest

from repro.crypto.pow import GENESIS_TARGET
from repro.mining.difficulty import (
    BITCOIN_RETARGET_WINDOW,
    EpochRetargeter,
    PerBlockRetargeter,
    expected_block_interval,
    recovery_blocks,
)


def test_on_schedule_window_keeps_target():
    retargeter = EpochRetargeter(spacing=600, window=2016)
    new = retargeter.retarget(GENESIS_TARGET, window_duration=600 * 2016)
    assert new == pytest.approx(GENESIS_TARGET, rel=1e-6)


def test_slow_window_eases_target():
    retargeter = EpochRetargeter(spacing=600, window=2016)
    new = retargeter.retarget(GENESIS_TARGET, window_duration=2 * 600 * 2016)
    assert new == pytest.approx(GENESIS_TARGET * 2, rel=1e-6)


def test_fast_window_tightens_target():
    retargeter = EpochRetargeter(spacing=600, window=2016)
    new = retargeter.retarget(GENESIS_TARGET, window_duration=600 * 2016 / 2)
    assert new == pytest.approx(GENESIS_TARGET // 2, rel=1e-6)


def test_adjustment_clamped_at_4x():
    retargeter = EpochRetargeter(spacing=600, window=2016)
    toolong = retargeter.retarget(GENESIS_TARGET, window_duration=600 * 2016 * 100)
    assert toolong == GENESIS_TARGET * 4
    tooshort = retargeter.retarget(GENESIS_TARGET, window_duration=1)
    assert tooshort == GENESIS_TARGET // 4


def test_retarget_heights():
    retargeter = EpochRetargeter(window=2016)
    assert not retargeter.should_retarget(0)
    assert not retargeter.should_retarget(2015)
    assert retargeter.should_retarget(2016)
    assert retargeter.should_retarget(4032)


def test_per_block_retargeter_direction():
    retargeter = PerBlockRetargeter(spacing=12)
    faster = retargeter.retarget(GENESIS_TARGET, last_interval=6)
    slower = retargeter.retarget(GENESIS_TARGET, last_interval=24)
    assert faster < GENESIS_TARGET < slower


def test_power_drop_stretches_interval():
    # Half the miners leave → blocks take twice as long until retarget.
    assert expected_block_interval(1 / 600, 0.5) == pytest.approx(1200)
    # A 90% drop: 10x stall, the alt-coin death spiral.
    assert expected_block_interval(1 / 600, 0.1) == pytest.approx(6000)


def test_recovery_blocks():
    # Drop to 1/4 power: one clamped epoch suffices (4x easing).
    assert recovery_blocks(2016, 4.0, 0.25) == 2016
    # Drop to 1/16: two epochs.
    assert recovery_blocks(2016, 4.0, 1 / 16) == 2 * 2016
    # No drop, no recovery needed.
    assert recovery_blocks(2016, 4.0, 1.0) == 0


def test_validation():
    with pytest.raises(ValueError):
        EpochRetargeter(spacing=0)
    with pytest.raises(ValueError):
        EpochRetargeter().retarget(GENESIS_TARGET, window_duration=0)
    with pytest.raises(ValueError):
        expected_block_interval(0, 0.5)
    with pytest.raises(ValueError):
        expected_block_interval(1, 0)
    with pytest.raises(ValueError):
        recovery_blocks(2016, 1.0, 0.5)


def test_bitcoin_constants():
    assert BITCOIN_RETARGET_WINDOW == 2016
