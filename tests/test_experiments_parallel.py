"""Worker-count resolution and the oversubscription clamp."""

import logging

import pytest

from repro.experiments.parallel import (
    JOBS_ENV_VAR,
    SweepExecutor,
    available_cpus,
    resolve_jobs,
)


def test_available_cpus_positive():
    assert available_cpus() >= 1


def test_explicit_jobs_within_cpus_pass_through():
    assert resolve_jobs(1) == 1


def test_oversubscription_clamped_and_logged(caplog):
    cpus = available_cpus()
    with caplog.at_level(logging.INFO, logger="repro.experiments.parallel"):
        assert resolve_jobs(cpus * 4) == cpus
    assert any("clamping" in record.message for record in caplog.records)


def test_clamp_can_be_disabled():
    cpus = available_cpus()
    assert resolve_jobs(cpus * 4, clamp=False) == cpus * 4


def test_env_var_requests_are_clamped_too(monkeypatch):
    monkeypatch.setenv(JOBS_ENV_VAR, str(available_cpus() * 8))
    assert resolve_jobs() == available_cpus()


def test_default_resolution_uses_available_cpus(monkeypatch):
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    assert resolve_jobs() == available_cpus()


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        resolve_jobs(0)


def test_executor_jobs_are_clamped():
    assert SweepExecutor(jobs=available_cpus() * 4).jobs == available_cpus()
