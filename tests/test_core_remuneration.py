"""Fee splitting and the reward ledger (Section 4.4)."""

import pytest

from repro.bitcoin.blocks import SyntheticPayload
from repro.bitcoin.chain import TieBreak
from repro.core.blocks import build_key_block, build_microblock
from repro.core.chain import NGChain
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.core.remuneration import (
    EpochReward,
    RewardLedger,
    build_ng_coinbase,
    split_fee,
)
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey

PARAMS = NGParams(key_block_interval=100.0, min_microblock_interval=10.0)
ALICE = PrivateKey.from_seed("alice")
BOB = PrivateKey.from_seed("bob")
CAROL = PrivateKey.from_seed("carol")
FEE_PER_TX = 100


def test_split_fee_paper_fractions():
    current, following = split_fee(1000, 0.40)
    assert current == 400
    assert following == 600


def test_split_fee_conserves_value():
    for fee in (0, 1, 3, 999, 12345):
        a, b = split_fee(fee, 0.40)
        assert a + b == fee


def test_split_fee_rejects_negative():
    with pytest.raises(ValueError):
        split_fee(-1, 0.4)


def test_coinbase_pays_both_leaders():
    alice_pkh = hash160(ALICE.public_key().to_bytes())
    bob_pkh = hash160(BOB.public_key().to_bytes())
    coinbase = build_ng_coinbase(
        miner_id=2,
        timestamp=1.0,
        self_pubkey_hash=bob_pkh,
        prev_leader_pubkey_hash=alice_pkh,
        prev_epoch_fees=1000,
        params=PARAMS,
    )
    values = {out.pubkey_hash: out.value for out in coinbase.outputs}
    assert values[bob_pkh] == PARAMS.key_block_reward + 600
    assert values[alice_pkh] == 400


def test_coinbase_without_fees_single_output():
    coinbase = build_ng_coinbase(
        miner_id=1,
        timestamp=0.0,
        self_pubkey_hash=hash160(ALICE.public_key().to_bytes()),
        prev_leader_pubkey_hash=hash160(BOB.public_key().to_bytes()),
        prev_epoch_fees=0,
        params=PARAMS,
    )
    assert len(coinbase.outputs) == 1


def _build_two_epoch_chain():
    """Genesis → K1(alice) → m1,m2 → K2(bob) → m3 → K3(carol)."""
    genesis = make_ng_genesis()
    chain = NGChain(genesis, PARAMS, tie_break=TieBreak.FIRST_SEEN)

    def key(prev, who, t, miner):
        block = build_key_block(
            prev_hash=prev,
            timestamp=t,
            bits=0x207FFFFF,
            leader_pubkey=who.public_key().to_bytes(),
            coinbase=build_ng_coinbase(
                miner_id=miner,
                timestamp=t,
                self_pubkey_hash=hash160(who.public_key().to_bytes()),
                prev_leader_pubkey_hash=None,
                prev_epoch_fees=0,
                params=PARAMS,
            ),
        )
        chain.add_block(block, t)
        return block

    def micro(prev, who, t, n_tx, salt):
        block = build_microblock(
            prev_hash=prev,
            timestamp=t,
            payload=SyntheticPayload(n_tx=n_tx, salt=salt),
            leader_key=who,
        )
        chain.add_block(block, t)
        return block

    k1 = key(genesis.hash, ALICE, 0.0, miner=1)
    m1 = micro(k1.hash, ALICE, 10.0, 10, b"1")
    m2 = micro(m1.hash, ALICE, 20.0, 10, b"2")
    k2 = key(m2.hash, BOB, 100.0, miner=2)
    m3 = micro(k2.hash, BOB, 110.0, 5, b"3")
    k3 = key(m3.hash, CAROL, 200.0, miner=3)
    return chain


def test_reward_ledger_epoch_attribution():
    chain = _build_two_epoch_chain()
    ledger = RewardLedger(PARAMS, fee_of=lambda m: m.n_tx * FEE_PER_TX)
    records = [chain.record(h) for h in chain.main_chain()]
    epochs, revenue = ledger.compute(records)
    # Genesis epoch (0 fees) + alice + bob + carol.
    by_miner = {epoch.leader_miner: epoch for epoch in epochs if epoch.leader_miner > 0}
    alice_fees = 20 * FEE_PER_TX  # 2 microblocks × 10 tx
    bob_fees = 5 * FEE_PER_TX
    assert by_miner[1].placed_fee_share == int(alice_fees * 0.4)
    assert by_miner[2].next_fee_share == alice_fees - int(alice_fees * 0.4)
    assert by_miner[2].placed_fee_share == int(bob_fees * 0.4)
    assert by_miner[3].next_fee_share == bob_fees - int(bob_fees * 0.4)
    # Carol's own placed fees are not yet payable.
    assert by_miner[3].placed_fee_share == 0


def test_reward_ledger_subsidies():
    chain = _build_two_epoch_chain()
    ledger = RewardLedger(PARAMS, fee_of=lambda m: m.n_tx * FEE_PER_TX)
    records = [chain.record(h) for h in chain.main_chain()]
    epochs, revenue = ledger.compute(records)
    for epoch in epochs:
        if not epoch.revoked:
            assert epoch.subsidy == PARAMS.key_block_reward


def test_reward_ledger_total_conservation():
    chain = _build_two_epoch_chain()
    fee_of = lambda m: m.n_tx * FEE_PER_TX
    ledger = RewardLedger(PARAMS, fee_of)
    records = [chain.record(h) for h in chain.main_chain()]
    epochs, revenue = ledger.compute(records)
    # All placed fees of closed epochs are fully distributed 40/60.
    closed_fees = 25 * FEE_PER_TX  # alice 20 + bob 5 (both epochs closed)
    fee_payout = sum(e.placed_fee_share + e.next_fee_share for e in epochs)
    assert fee_payout == closed_fees


def test_revocation_voids_offender_and_pays_bounty():
    chain = _build_two_epoch_chain()
    ledger = RewardLedger(PARAMS, fee_of=lambda m: m.n_tx * FEE_PER_TX)
    records = [chain.record(h) for h in chain.main_chain()]
    alice_pub = ALICE.public_key().to_bytes()
    _, honest = ledger.compute(records)
    _, punished = ledger.compute(records, revoked_leaders={alice_pub: 3})
    assert punished[1] == 0  # alice loses everything
    would_have = honest[1]
    bounty = punished[3] - honest[3]
    assert bounty == int(would_have * PARAMS.poison_bounty_fraction)


def test_epoch_reward_total_sums_all_three_components():
    reward = EpochReward(
        leader_miner=1,
        leader_pubkey=b"\x02" * 33,
        key_block_hash=b"\x00" * 32,
        subsidy=100,
        placed_fee_share=40,
        next_fee_share=60,
    )
    assert reward.total == 200


def test_one_satoshi_prev_share_is_still_paid():
    # split_fee(3, 0.40) == (1, 2): even a single-satoshi 40% share
    # must appear as the previous leader's output.
    alice_pkh = hash160(ALICE.public_key().to_bytes())
    bob_pkh = hash160(BOB.public_key().to_bytes())
    coinbase = build_ng_coinbase(
        miner_id=1,
        timestamp=0.0,
        self_pubkey_hash=bob_pkh,
        prev_leader_pubkey_hash=alice_pkh,
        prev_epoch_fees=3,
        params=PARAMS,
    )
    values = {out.pubkey_hash: out.value for out in coinbase.outputs}
    assert values[alice_pkh] == 1
    assert values[bob_pkh] == PARAMS.key_block_reward + 2


def test_revoking_a_leader_with_carried_fees_prices_the_bounty_fully():
    # Bob's epoch has both a placed share (40% of his own fees) and a
    # carried share (60% of alice's); the reporter's bounty must be a
    # fraction of the *sum*, not of the difference.
    chain = _build_two_epoch_chain()
    ledger = RewardLedger(PARAMS, fee_of=lambda m: m.n_tx * FEE_PER_TX)
    records = [chain.record(h) for h in chain.main_chain()]
    bob_pub = BOB.public_key().to_bytes()
    _, honest = ledger.compute(records)
    _, punished = ledger.compute(records, revoked_leaders={bob_pub: 3})
    assert punished[2] == 0
    alice_fees = 20 * FEE_PER_TX
    bob_fees = 5 * FEE_PER_TX
    would_have = (
        PARAMS.key_block_reward
        + int(bob_fees * 0.4)
        + (alice_fees - int(alice_fees * 0.4))
    )
    assert honest[2] == would_have
    bounty = punished[3] - honest[3]
    assert bounty == int(would_have * PARAMS.poison_bounty_fraction)
