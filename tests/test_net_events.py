"""Event queue ordering and cancellation."""

import pytest

from repro.net.events import EventQueue


def test_fires_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(3.0, lambda: order.append("c"))
    queue.push(1.0, lambda: order.append("a"))
    queue.push(2.0, lambda: order.append("b"))
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    queue = EventQueue()
    order = []
    for label in "abc":
        queue.push(1.0, lambda lbl=label: order.append(lbl))
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == ["a", "b", "c"]


def test_cancelled_events_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    drop.cancel()
    while (event := queue.pop()) is not None:
        event.callback()
    assert fired == ["keep"]


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    early.cancel()
    assert queue.peek_time() == 2.0


def test_empty_queue():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_time() is None
    assert len(queue) == 0


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(-1.0, lambda: None)
