"""The eclipse + double-spend scenario."""

import pytest

from repro.attacks.eclipse import run_eclipse_scenario


@pytest.fixture(scope="module")
def report():
    return run_eclipse_scenario()


def test_victim_is_fooled_while_eclipsed(report):
    assert report.victim_accepted_fake_chain
    assert report.fake_depth_reached == 2


def test_honest_chain_outgrows_attacker(report):
    assert report.honest_chain_heavier
    assert report.honest_height > report.fake_height


def test_heal_prunes_the_fake_payment(report):
    assert report.payment_pruned_after_heal


def test_confirmation_depth_defends():
    # With the attacker capped at 2 blocks, a 3-confirmation policy
    # would never have shown the fake payment as settled.
    report = run_eclipse_scenario(attacker_blocks=2, honest_blocks=5)
    required_depth = 3
    confirmations_available = report.fake_height  # depth of the payment
    assert confirmations_available < required_depth


def test_scenario_validation():
    with pytest.raises(ValueError):
        run_eclipse_scenario(attacker_blocks=5, honest_blocks=3)
