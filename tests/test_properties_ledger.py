"""Property-based tests: UTXO state machine invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger.errors import LedgerError
from repro.ledger.transactions import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
)
from repro.ledger.utxo import UtxoSet

OWNER = bytes(20)


def _genesis_utxo(values):
    utxo = UtxoSet(coinbase_maturity=0)
    for i, value in enumerate(values):
        utxo.credit(TxOutput(value, OWNER), OutPoint(b"\x01" * 32, i), 0)
    return utxo


@given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=10))
def test_total_value_equals_credits(values):
    utxo = _genesis_utxo(values)
    assert utxo.total_value() == sum(values)
    assert utxo.balance(OWNER) == sum(values)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=1000), min_size=2, max_size=8),
    st.data(),
)
def test_apply_undo_is_identity(values, data):
    """Any sequence of valid spends, fully undone, restores the state."""
    utxo = _genesis_utxo(values)
    baseline = utxo.snapshot()
    undos = []
    height = 1
    for _ in range(data.draw(st.integers(0, 4))):
        available = utxo.outpoints_for(OWNER)
        if not available:
            break
        outpoint = data.draw(st.sampled_from(available))
        coin = utxo.get(outpoint)
        spend_value = data.draw(st.integers(1, coin.output.value))
        tx = Transaction(
            inputs=(TxInput(outpoint),),
            outputs=(TxOutput(spend_value, OWNER),),
        )
        undos.append(utxo.apply(tx, height))
        height += 1
    for undo in reversed(undos):
        utxo.undo(undo)
    assert utxo.snapshot() == baseline


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=6),
    st.integers(min_value=0, max_value=5),
)
def test_value_never_created_by_spends(values, n_spends):
    """Spending can only destroy value (fees), never mint it."""
    utxo = _genesis_utxo(values)
    total = utxo.total_value()
    for i in range(n_spends):
        available = utxo.outpoints_for(OWNER)
        if not available:
            break
        outpoint = available[0]
        coin = utxo.get(outpoint)
        keep = max(1, coin.output.value // 2)
        tx = Transaction(
            inputs=(TxInput(outpoint),),
            outputs=(TxOutput(keep, OWNER),),
        )
        try:
            utxo.apply(tx, i + 1)
        except LedgerError:
            continue
        assert utxo.total_value() <= total
        total = utxo.total_value()


@given(st.integers(min_value=0, max_value=2**40))
def test_coinbase_mints_exactly_its_outputs(value):
    utxo = UtxoSet()
    cb = make_coinbase([(OWNER, value)])
    utxo.apply(cb, 1)
    assert utxo.total_value() == value
