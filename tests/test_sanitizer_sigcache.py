"""SignatureCache agreement with direct ecdsa verification.

The cache memoizes ``Microblock.verify_signature`` keyed on
``(leader_pubkey, block_hash, signature)`` — a pure function of those
inputs — so every cached verdict, positive *or negative*, must agree
bit-for-bit with an uncached ``ecdsa.verify`` over the same header and
key.  A randomized corpus (seeded, so deterministic) exercises both
verdict polarities and both cache paths: the first lookup (miss, real
verification) and the replay (hit, memo only).
"""

import random

from repro.bitcoin.blocks import SyntheticPayload
from repro.core.blocks import build_microblock
from repro.crypto import ecdsa
from repro.crypto.keys import PrivateKey, PublicKey
from repro.sanitizer.checkers import SignatureCache


def _corpus(seed: int, size: int):
    """(microblock, claimed leader pubkey bytes) pairs, about half forged.

    Forgeries come in the flavours a simulation can actually produce:
    a microblock signed by a different leader's key (stale epoch), a
    bit-flipped signature, and a claimed pubkey that does not decode.
    """
    rng = random.Random(seed)
    keys = [PrivateKey.from_seed(f"corpus-{i}") for i in range(8)]
    pairs = []
    for i in range(size):
        signer = rng.choice(keys)
        block = build_microblock(
            prev_hash=rng.randbytes(32),
            timestamp=rng.uniform(0.0, 10_000.0),
            payload=SyntheticPayload(
                n_tx=rng.randrange(1, 50), salt=rng.randbytes(8)
            ),
            leader_key=signer,
        )
        claimed = signer.public_key().to_bytes()
        flavour = rng.randrange(4)
        if flavour == 1:  # wrong leader claimed
            other = rng.choice([k for k in keys if k is not signer])
            claimed = other.public_key().to_bytes()
        elif flavour == 2:  # corrupted signature
            corrupt = bytearray(block.signature)
            corrupt[rng.randrange(len(corrupt))] ^= 1 << rng.randrange(8)
            block = type(block)(block.header, bytes(corrupt), block.payload)
        elif flavour == 3:  # undecodable pubkey
            claimed = rng.randbytes(rng.choice((0, 16, 33)))
        pairs.append((block, claimed))
    return pairs


def _direct_verdict(block, claimed: bytes) -> bool:
    """Uncached ground truth straight from the ecdsa layer."""
    try:
        point = PublicKey.from_bytes(claimed).point
    except Exception:
        return False
    try:
        signature = ecdsa.signature_from_bytes(block.signature)
    except ecdsa.InvalidSignature:
        return False
    return ecdsa.verify(point, block.header.signing_payload(), signature)


def test_cache_agrees_with_direct_verification_on_random_corpus():
    corpus = _corpus(seed=1311, size=60)
    cache = SignatureCache()
    verdicts = [cache.verify(block, claimed) for block, claimed in corpus]
    expected = [_direct_verdict(block, claimed) for block, claimed in corpus]
    assert verdicts == expected
    # The corpus must exercise both polarities or the test proves little.
    assert any(expected) and not all(expected)
    assert cache.misses == len(corpus)


def test_cache_hits_replay_identical_verdicts():
    corpus = _corpus(seed=2319, size=40)
    cache = SignatureCache()
    first = [cache.verify(block, claimed) for block, claimed in corpus]
    misses = cache.misses
    replay = [cache.verify(block, claimed) for block, claimed in corpus]
    assert replay == first
    assert cache.misses == misses  # second pass served entirely from memo
    assert cache.hits >= len(corpus)


def test_negative_verdicts_are_cached_not_recomputed():
    key = PrivateKey.from_seed("leader")
    impostor = PrivateKey.from_seed("impostor")
    block = build_microblock(
        prev_hash=b"\x11" * 32,
        timestamp=42.0,
        payload=SyntheticPayload(n_tx=3, salt=b"sig"),
        leader_key=impostor,
    )
    claimed = key.public_key().to_bytes()
    cache = SignatureCache()
    assert cache.verify(block, claimed) is False
    assert cache.verify(block, claimed) is False
    assert (cache.hits, cache.misses) == (1, 1)
    assert block.verify_signature(claimed) is False
