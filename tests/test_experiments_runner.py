"""End-to-end experiment runs at small scale (integration)."""

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.runner import build_network, run_experiment

SMALL = ExperimentConfig(
    n_nodes=25,
    target_blocks=25,
    target_key_blocks=8,
    block_rate=0.05,
    block_size_bytes=10_000,
    cooldown=20.0,
    seed=3,
)


@pytest.fixture(scope="module")
def bitcoin_run():
    return run_experiment(SMALL.with_(protocol=Protocol.BITCOIN))


@pytest.fixture(scope="module")
def ng_run():
    return run_experiment(
        SMALL.with_(protocol=Protocol.BITCOIN_NG, key_block_rate=0.02)
    )


def test_bitcoin_produces_blocks(bitcoin_run):
    result, log = bitcoin_run
    assert result.blocks_generated > 10
    assert 1 <= result.main_chain_length <= result.blocks_generated


def test_bitcoin_metric_ranges(bitcoin_run):
    result, _ = bitcoin_run
    assert 0 < result.mining_power_utilization <= 1.0
    assert result.fairness > 0
    assert result.consensus_delay >= 0
    assert result.time_to_prune >= 0
    assert result.time_to_win >= 0
    assert result.transaction_frequency > 0


def test_bitcoin_deterministic():
    config = SMALL.with_(protocol=Protocol.BITCOIN)
    first, _ = run_experiment(config)
    second, _ = run_experiment(config)
    assert first.as_row() == second.as_row()


def test_seed_changes_outcome():
    first, _ = run_experiment(SMALL.with_(protocol=Protocol.BITCOIN, seed=1))
    second, _ = run_experiment(SMALL.with_(protocol=Protocol.BITCOIN, seed=2))
    assert first.as_row() != second.as_row()


def test_ng_has_both_block_kinds(ng_run):
    _, log = ng_run
    kinds = {info.kind for info in log.index.all_blocks()}
    assert kinds == {"key", "micro"}


def test_ng_utilization_optimal(ng_run):
    # Microblock forks carry no work: utilization must be exactly the
    # key-block main/total ratio, which stays near 1.
    result, _ = ng_run
    assert result.mining_power_utilization >= 0.9


def test_ng_serializes_transactions(ng_run):
    result, _ = ng_run
    assert result.transaction_frequency > 0


def test_ghost_runs():
    result, log = run_experiment(SMALL.with_(protocol=Protocol.GHOST))
    assert result.blocks_generated > 10
    assert 0 < result.mining_power_utilization <= 1.0


def test_network_matches_paper_shape():
    from repro.net.simulator import Simulator

    config = SMALL
    sim = Simulator(seed=0)
    network = build_network(config, sim)
    assert network.topology.n_nodes == config.n_nodes
    for node in range(config.n_nodes):
        assert network.topology.degree(node) >= config.min_degree
    assert network.topology.is_connected()


def test_as_row_keys(bitcoin_run):
    result, _ = bitcoin_run
    row = result.as_row()
    assert set(row) == {
        "consensus_delay",
        "fairness",
        "mining_power_utilization",
        "time_to_prune",
        "time_to_win",
        "transaction_frequency",
    }
