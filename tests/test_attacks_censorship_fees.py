"""Censorship resistance numbers and fee-strategy Monte Carlos."""

import pytest

from repro.attacks.censorship import (
    expected_censorship_wait_blocks,
    expected_censorship_wait_time,
    power_drop_comparison,
    simulate_censorship_wait,
)
from repro.attacks.fee_strategies import (
    fork_fee_competition,
    profitable_window,
    simulate_extension_strategy,
    simulate_inclusion_strategy,
)
from repro.core.incentives import incentive_window


def test_paper_censorship_number():
    # "the user will have to wait for 4/3 blocks on average, or 13.33
    # minutes."
    assert expected_censorship_wait_blocks(0.25) == pytest.approx(4 / 3)
    assert expected_censorship_wait_time(0.25, 600) == pytest.approx(800.0)


def test_monte_carlo_matches_closed_form():
    empirical = simulate_censorship_wait(0.25, 600, n_trials=60_000)
    assert empirical == pytest.approx(800.0, rel=0.03)


def test_honest_network_waits_one_block():
    assert expected_censorship_wait_blocks(0.0) == pytest.approx(1.0)


def test_power_drop_comparison():
    outcome = power_drop_comparison(0.5)
    assert outcome.stretched_key_interval == pytest.approx(2.0)
    assert outcome.bitcoin_tx_rate_factor == pytest.approx(0.5)
    # "transaction processing continues at the same rate, in microblocks"
    assert outcome.ng_tx_rate_factor == 1.0


def test_censorship_validation():
    with pytest.raises(ValueError):
        expected_censorship_wait_blocks(1.0)
    with pytest.raises(ValueError):
        expected_censorship_wait_time(0.25, 0)
    with pytest.raises(ValueError):
        power_drop_comparison(0.0)


# -- fee strategies -------------------------------------------------------


def test_inclusion_strategy_matches_closed_form():
    outcome = simulate_inclusion_strategy(0.25, 0.40, n_trials=300_000)
    expected = 0.25 + 0.75 * 0.25 * 0.60
    assert outcome.deviation_revenue == pytest.approx(expected, abs=0.005)
    assert not outcome.deviation_profitable


def test_extension_strategy_matches_closed_form():
    outcome = simulate_extension_strategy(0.25, 0.40, n_trials=300_000)
    expected = 0.40 + 0.25 * 0.60
    assert outcome.deviation_revenue == pytest.approx(expected, abs=0.005)
    assert not outcome.deviation_profitable


def test_deviations_profitable_outside_window():
    # Too small a leader share: withholding wins.
    inclusion = simulate_inclusion_strategy(0.25, 0.20, n_trials=100_000)
    assert inclusion.deviation_profitable
    # Too large a share: mining around wins.
    extension = simulate_extension_strategy(0.25, 0.60, n_trials=100_000)
    assert extension.deviation_profitable


def test_empirical_window_brackets_paper_choice():
    low, high = profitable_window(0.25, n_trials=40_000)
    assert low < 0.40 < high
    window = incentive_window(0.25)
    assert low == pytest.approx(window.lower, abs=0.04)
    assert high == pytest.approx(window.upper, abs=0.04)


def test_fee_strategy_validation():
    with pytest.raises(ValueError):
        simulate_inclusion_strategy(1.5, 0.4)
    with pytest.raises(ValueError):
        simulate_extension_strategy(0.25, 1.5)


def test_fork_fee_competition_appendix_b():
    outcome = fork_fee_competition((100, 200, 300), attacker_bribe=10_000)
    assert outcome.advantage_eliminated
    with pytest.raises(ValueError):
        fork_fee_competition((100,), attacker_bribe=-1)


def test_live_censoring_leaders_reduce_throughput_proportionally():
    from repro.attacks.censorship import simulate_censoring_leaders

    honest, censored = simulate_censoring_leaders(
        0.25, n_nodes=30, duration_keys=60, seed=1
    )
    assert honest > 0
    ratio = censored / honest
    # "The impact of such behaviors is therefore similar to that in
    # Bitcoin": throughput loss proportional to the censors' share.
    assert 0.55 <= ratio <= 0.95
    assert censored < honest


def test_live_censoring_validation():
    from repro.attacks.censorship import simulate_censoring_leaders

    import pytest as _pytest

    with _pytest.raises(ValueError):
        simulate_censoring_leaders(1.0, n_nodes=10, duration_keys=5)
