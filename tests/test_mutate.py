"""Mutation subsystem tests: operators, sites, engine, cache, pipeline.

The planted-bug ports at the bottom replace hand-rolled plant-and-check
tests with assertions through the real kill pipeline: the deleted
version bump that ``test_lint_semantic`` used to plant by string
replacement is now the ``bump-del`` operator killed at the lint tier,
and the overpaying fee split that ``test_sanitizer`` builds by hand is
the ``frac-swap``/``arith-swap`` operators on ``core/remuneration.py``
killed by the probe — one pipeline, one assertion style, per defect.
"""

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.mutate.engine import (
    MutationEngine,
    MutantVerdict,
    ShadowTree,
    companion_test,
)
from repro.mutate.operators import (
    OPERATORS_BY_NAME,
    generate_mutants,
)
from repro.mutate.report import (
    MutationRun,
    bench_section,
    gate,
    kill_matrix,
    module_scores,
    parse_allowlist,
)
from repro.mutate.sites import build_site_index, enumerate_sites

REPO = Path(__file__).parent.parent
SRC = REPO / "src"


def _mutants(source: str, qualnames: set[str], operator: str):
    source = textwrap.dedent(source)
    ops = (OPERATORS_BY_NAME[operator],)
    return source, generate_mutants("src/repro/core/x.py", source,
                                    qualnames, ops)


# -- operators ---------------------------------------------------------------


def test_arith_swap_flips_fee_sum():
    source, mutants = _mutants(
        """
        def total(subsidy, fees):
            return subsidy + fees
        """,
        {"total"},
        "arith-swap",
    )
    assert [m.replacement for m in mutants] == ["-"]
    mutated = mutants[0].apply(source)
    assert "subsidy - fees" in mutated


def test_cmp_flip_is_off_by_one_on_boundaries():
    source, mutants = _mutants(
        """
        def mature(height, coin_height, maturity):
            return height - coin_height >= maturity
        """,
        {"mature"},
        "cmp-flip",
    )
    assert [(m.original, m.replacement) for m in mutants] == [(">=", ">")]


def test_frac_swap_complements_the_split():
    source, mutants = _mutants(
        """
        LEADER_FRACTION = 0.4

        def cut(fee):
            return int(fee * 0.4)
        """,
        {"<module>", "cut"},
        "frac-swap",
    )
    assert sorted(m.qualname for m in mutants) == ["<module>", "cut"]
    assert all(m.replacement == "0.6" for m in mutants)


def test_sig_drop_forces_and_inverts_the_verdict():
    source, mutants = _mutants(
        """
        def accept(block, key):
            if not block.verify_signature(key):
                return False
            return True
        """,
        {"accept"},
        "sig-drop",
    )
    assert sorted(m.replacement for m in mutants) == [
        "(not block.verify_signature(key))",
        "True",
    ]


def test_bump_del_removes_version_bumps_only():
    source, mutants = _mutants(
        """
        class Store:
            def put(self, key):
                self.items[key] = 1
                self.version += 1
                self.count += 1
        """,
        {"Store.put"},
        "bump-del",
    )
    assert [m.original for m in mutants] == ["self.version += 1"]
    assert "self.version" not in mutants[0].apply(source)
    assert "self.count += 1" in mutants[0].apply(source)


def test_rng_swap_needs_two_streams():
    source, mutants = _mutants(
        """
        def draw(rng_mining, rng_latency):
            return rng_mining.random() + rng_latency.random()
        """,
        {"draw"},
        "rng-swap",
    )
    assert mutants, "two streams present: swaps must be generated"
    assert all(m.original != m.replacement for m in mutants)

    _, none = _mutants(
        """
        def draw(rng_mining):
            return rng_mining.random()
        """,
        {"draw"},
        "rng-swap",
    )
    assert none == []


def test_int_shift_only_at_decision_points():
    source, mutants = _mutants(
        """
        def check(depth):
            tag = 7
            if depth > 100:
                return 3
            return tag
        """,
        {"check"},
        "int-shift",
    )
    assert sorted(m.replacement for m in mutants) == ["101", "4"]


def test_mutant_ids_are_line_free():
    """Prepending code must not change any mutant's identity."""
    body = """
        def total(subsidy, fees):
            return subsidy + fees
    """
    source_a, mutants_a = _mutants(body, {"total"}, "arith-swap")
    source_b, mutants_b = _mutants(
        "PADDING = 1\n\n" + textwrap.dedent(body), {"total"}, "arith-swap"
    )
    assert [m.mutant_id for m in mutants_a] == [
        m.mutant_id for m in mutants_b
    ]
    assert mutants_a[0].start != mutants_b[0].start


def test_every_generated_mutant_parses_and_applies():
    path = "src/repro/ledger/utxo.py"
    source = (REPO / path).read_text(encoding="utf-8")
    index = build_site_index(SRC)
    sites = enumerate_sites(index)
    key = next(p for p in sites.files if p.endswith("ledger/utxo.py"))
    mutants = generate_mutants(path, source, set(sites.files[key]))
    assert mutants
    ids = [m.mutant_id for m in mutants]
    assert len(ids) == len(set(ids)), "mutant ids must be unique"
    for mutant in mutants:
        assert mutant.apply(source) != source


# -- site enumeration --------------------------------------------------------


def test_sites_cover_adapter_reachable_versioned_and_anchor():
    index = build_site_index(SRC)
    sites = enumerate_sites(index)
    by_suffix = {
        Path(p).name: (p, sites.reasons[p]) for p in sites.files
    }
    assert "adapter-reachable" in by_suffix["chain.py"][1]
    assert "versioned-class" in by_suffix["utxo.py"][1]
    assert "anchor-module" in by_suffix["incentives.py"][1]
    incentives_path = by_suffix["incentives.py"][0]
    assert "<module>" in sites.files[incentives_path]
    assert sites.n_roots > 0
    assert sites.n_sites >= 100
    # Everything admitted lives in the consensus packages.
    for path in sites.files:
        assert any(
            seg in path
            for seg in ("/core/", "/ledger/", "/crypto/", "/mining/")
        ), path


def test_sites_respect_package_filter():
    index = build_site_index(SRC)
    ledger_only = enumerate_sites(index, ("repro.ledger",))
    assert ledger_only.files
    assert all("/ledger/" in p for p in ledger_only.files)


def test_companion_test_mapping():
    assert (
        companion_test("src/repro/core/chain.py")
        == "tests/test_core_chain.py"
    )
    assert (
        companion_test("src/repro/ledger/utxo.py")
        == "tests/test_ledger_utxo.py"
    )


# -- shadow trees ------------------------------------------------------------


def test_shadow_tree_mutates_without_touching_original(tmp_path):
    repo = tmp_path / "repo"
    (repo / "src" / "pkg").mkdir(parents=True)
    original = repo / "src" / "pkg" / "mod.py"
    original.write_text("X = 1\n", encoding="utf-8")
    shadow = ShadowTree(repo, "src", tmp_path / "shadow")
    target = shadow.shadow_dir / "src" / "pkg" / "mod.py"
    assert target.read_text(encoding="utf-8") == "X = 1\n"

    shadow.mutate("src/pkg/mod.py", "X = 2\n")
    assert target.read_text(encoding="utf-8") == "X = 2\n"
    assert original.read_text(encoding="utf-8") == "X = 1\n"

    shadow.restore()
    assert target.read_text(encoding="utf-8") == "X = 1\n"


# -- report / gate -----------------------------------------------------------


def _verdict(mutant_id, operator, status, tier, path="src/repro/core/x.py"):
    return MutantVerdict(
        mutant_id=mutant_id,
        operator=operator,
        path=path,
        qualname="f",
        description="d",
        lineno=1,
        status=status,
        tier=tier,
        detail="",
    )


def test_kill_matrix_and_scores():
    run = MutationRun(
        verdicts=[
            _verdict("a", "cmp-flip", "killed", "lint"),
            _verdict("b", "cmp-flip", "killed", "tests"),
            _verdict("c", "cmp-flip", "survived", ""),
            _verdict("d", "sig-drop", "killed", "golden",
                     path="src/repro/core/y.py"),
        ]
    )
    matrix = kill_matrix(run)
    assert matrix["cmp-flip"]["lint"] == 1
    assert matrix["cmp-flip"]["tests"] == 1
    assert matrix["cmp-flip"]["survived"] == 1
    assert matrix["sig-drop"]["golden"] == 1
    scores = module_scores(run)
    assert scores["src/repro/core/x.py"]["score"] == pytest.approx(
        2 / 3, abs=1e-4
    )
    assert run.score == pytest.approx(3 / 4)
    section = bench_section(run)
    assert section["n_mutants"] == 4
    assert section["kills_by_tier"]["lint"] == 1


def test_gate_requires_survivors_to_be_catalogued(tmp_path):
    run = MutationRun(
        verdicts=[_verdict("cmp-flip:src/x.py:f:deadbee1",
                           "cmp-flip", "survived", "")]
    )
    doc = tmp_path / "mutation.md"
    doc.write_text("nothing here\n", encoding="utf-8")
    ok, message = gate(run, parse_allowlist(doc))
    assert not ok
    assert "cmp-flip:src/x.py:f:deadbee1" in message

    doc.write_text(
        "## Survivors\n\n- `cmp-flip:src/x.py:f:deadbee1` — equivalent "
        "mutant: dead branch.\n",
        encoding="utf-8",
    )
    ok, message = gate(run, parse_allowlist(doc))
    assert ok


# -- the pipeline on a hermetic repo copy ------------------------------------


@pytest.fixture(scope="module")
def mini_repo(tmp_path_factory):
    """A trimmed repo copy: full src tree, no tests, isolated caches."""
    root = tmp_path_factory.mktemp("mutrepo")
    shutil.copytree(SRC, root / "src",
                    ignore=shutil.ignore_patterns("__pycache__"))
    return root


def test_ported_planted_bump_del_dies_in_lint_tier(mini_repo):
    """The NG601 plant, through the real pipeline.

    ``test_lint_semantic`` used to delete a ``self.version += 1`` by
    string replacement and assert NG601 by hand; here the ``bump-del``
    operator plants the same defect in every versioned method and the
    lint tier must kill every one — no probe, no pytest, pure static.
    """
    engine = MutationEngine(
        mini_repo,
        cache_path=None,
        tiers=("lint",),
        operators=(OPERATORS_BY_NAME["bump-del"],),
    )
    run = engine.run(("repro.ledger",))
    bump_dels = [v for v in run.verdicts if v.operator == "bump-del"]
    assert len(bump_dels) >= 3  # apply/undo/credit at minimum
    for verdict in bump_dels:
        assert verdict.status == "killed"
        assert verdict.tier == "lint"
        assert verdict.detail.startswith("NG601")


def test_ported_fee_split_mutants_die_dynamically(mini_repo):
    """The INV102 plant, through the real pipeline.

    ``test_sanitizer`` builds an overpaying coinbase by hand; here
    ``arith-swap`` breaks the 40/60 split arithmetic inside
    ``core/remuneration.py`` and the probe simulation must catch every
    mutant on the coinbase path — an invariant violation (sanitizer
    tier) or a state divergence/crash (golden tier).  Mutants in the
    post-hoc reward-accounting methods may survive these two tiers
    (only the tests tier sees them), so the assertion pins the
    coinbase-path functions the simulation actually drives.
    """
    engine = MutationEngine(
        mini_repo,
        cache_path=None,
        tiers=("sanitizer", "golden"),
        operators=(OPERATORS_BY_NAME["arith-swap"],),
    )
    run = engine.run(
        ("repro.core",),
        only_files=["src/repro/core/remuneration.py"],
    )
    hot = [
        v
        for v in run.verdicts
        if v.qualname in ("split_fee", "build_ng_coinbase")
    ]
    assert hot, "the fee-split arithmetic must expose arith-swap sites"
    for verdict in hot:
        assert verdict.status == "killed"
        assert verdict.tier in ("sanitizer", "golden")


def test_verdict_cache_makes_reruns_warm(mini_repo):
    cache = mini_repo / "cache.json"
    kwargs = dict(
        cache_path=Path("cache.json"),
        tiers=("lint",),
        operators=(OPERATORS_BY_NAME["bump-del"],),
    )
    cold = MutationEngine(mini_repo, **kwargs).run(("repro.ledger",))
    assert cold.cache_misses == len(cold.verdicts)
    assert cache.exists()

    warm = MutationEngine(mini_repo, **kwargs).run(("repro.ledger",))
    assert warm.cache_hits == len(warm.verdicts)
    assert warm.cache_misses == 0
    assert [v.to_dict() for v in warm.verdicts] == [
        v.to_dict() for v in cold.verdicts
    ]
