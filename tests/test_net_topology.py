"""Random topology construction (the paper's ≥5-degree graph)."""

import random

import pytest

from repro.net.topology import (
    Topology,
    complete_topology,
    random_topology,
    ring_topology,
)


def test_random_topology_min_degree():
    topo = random_topology(50, min_degree=5, rng=random.Random(3))
    for node in range(50):
        assert topo.degree(node) >= 5


def test_random_topology_connected():
    for seed in range(5):
        topo = random_topology(30, rng=random.Random(seed))
        assert topo.is_connected()


def test_random_topology_deterministic():
    a = random_topology(20, rng=random.Random(7))
    b = random_topology(20, rng=random.Random(7))
    assert a.edges == b.edges


def test_random_topology_validation():
    with pytest.raises(ValueError):
        random_topology(1)
    with pytest.raises(ValueError):
        random_topology(5, min_degree=5)


def test_neighbors_sorted_and_symmetric():
    topo = random_topology(20, rng=random.Random(1))
    adjacency = topo.neighbor_map()
    for node, peers in adjacency.items():
        assert peers == sorted(peers)
        for peer in peers:
            assert node in adjacency[peer]


def test_no_self_loops():
    topo = Topology(3)
    with pytest.raises(ValueError):
        topo.add_edge(1, 1)


def test_edge_bounds():
    topo = Topology(3)
    with pytest.raises(ValueError):
        topo.add_edge(0, 3)


def test_ring_topology_shape():
    ring = ring_topology(10)
    assert all(ring.degree(i) == 2 for i in range(10))
    assert ring.is_connected()
    assert ring.diameter_bound() == 5


def test_complete_topology_shape():
    full = complete_topology(6)
    assert all(full.degree(i) == 5 for i in range(6))
    assert full.diameter_bound() == 1


def test_disconnected_graph_detected():
    topo = Topology(4)
    topo.add_edge(0, 1)
    topo.add_edge(2, 3)
    assert not topo.is_connected()


def test_diameter_bound_small_world():
    # Random 5-degree graphs have logarithmic diameter.
    topo = random_topology(200, rng=random.Random(0))
    assert topo.diameter_bound() <= 6
