"""The incremental sanitizer: dirty tracking, the signature cache, audits.

Four layers of coverage:

* every hand-built violating state from the full-sweep suite is still
  caught when swept *incrementally* (dirty-set tracking + the shared
  signature cache), including INV109's cross-sweep rollback;
* the :class:`~repro.sanitizer.checkers.SignatureCache` — exactly-once
  verification, negative-verdict caching, and the reorg story: a
  microblock re-judged under a different epoch leader is a different
  cache key, never a stale verdict;
* the audit machinery — ``mode="audit"`` cross-checks the incremental
  path with from-scratch full sweeps and surfaces anything missed as a
  ``SAN901`` audit-divergence alongside the finding itself;
* the :class:`~repro.experiments.RunInstrumentation` options object and
  the end-to-end equivalences: incremental ≡ full ≡ audit checked runs,
  all bit-identical to bare runs, with the leader-crash scenario clean
  under incremental checking.
"""

from types import SimpleNamespace

import pytest

from repro.bitcoin.blocks import SyntheticPayload
from repro.bitcoin.chain import TieBreak
from repro.core.blocks import build_key_block, build_microblock
from repro.core.chain import NGChain
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.core.remuneration import build_ng_coinbase, split_fee
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.experiments import (
    ExperimentConfig,
    RunInstrumentation,
    resolve_check_mode,
    run_experiment,
)
from repro.ledger.mempool import Mempool
from repro.ledger.transactions import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
)
from repro.ledger.utxo import UtxoSet
from repro.protocols import get_adapter
from repro.sanitizer import (
    InvariantChecker,
    NodeDelta,
    SanitizerRuntime,
    SignatureCache,
    ng_checkers,
)
from repro.sanitizer.checkers import validate_check_mode
from repro.scenarios import load_scenario

PARAMS = NGParams(key_block_interval=100.0, min_microblock_interval=10.0)
GENESIS = make_ng_genesis()
ALICE = PrivateKey.from_seed("alice")
BOB = PrivateKey.from_seed("bob")
FEE_PER_TX = 1_000
PKH = hash160(b"payee")


def _key(prev, key, t, miner=1, coinbase=None):
    if coinbase is None:
        coinbase = build_ng_coinbase(
            miner_id=miner,
            timestamp=t,
            self_pubkey_hash=hash160(key.public_key().to_bytes()),
            prev_leader_pubkey_hash=None,
            prev_epoch_fees=0,
            params=PARAMS,
        )
    return build_key_block(
        prev_hash=prev,
        timestamp=t,
        bits=0x207FFFFF,
        leader_pubkey=key.public_key().to_bytes(),
        coinbase=coinbase,
    )


def _micro(prev, key, t, salt=b"m", n_tx=3):
    return build_microblock(
        prev_hash=prev,
        timestamp=t,
        payload=SyntheticPayload(n_tx=n_tx, salt=salt),
        leader_key=key,
    )


def _node(chain, params=PARAMS):
    return SimpleNamespace(
        node_id=0,
        chain=chain,
        params=params,
        policy=SimpleNamespace(synthetic_fee_per_tx=FEE_PER_TX),
        mempool=Mempool(),
        utxo=UtxoSet(),
        poisons_published=[],
        poison_registry=None,
    )


class _FakeSim:
    def __init__(self):
        self.now = 0.0
        self.probe = None

    def set_probe(self, probe):
        self.probe = probe


def _incremental_codes(node, mode="incremental", sweeps=1):
    """Sweep one node through a fresh incremental runtime; return codes."""
    sim = _FakeSim()
    runtime = SanitizerRuntime(ng_checkers(), stride=1, mode=mode)
    runtime.install(sim, [node])
    for _ in range(sweeps):
        sim.probe()
    runtime.finalize()
    return {violation.code for violation in runtime.violations}


def _epoch_chain(coinbase2=None):
    chain = NGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    micro = _micro(key1.hash, ALICE, 20.0)
    chain.add_block(micro, 20.0)
    if coinbase2 is None:
        coinbase2 = build_ng_coinbase(
            miner_id=2,
            timestamp=30.0,
            self_pubkey_hash=hash160(BOB.public_key().to_bytes()),
            prev_leader_pubkey_hash=hash160(ALICE.public_key().to_bytes()),
            prev_epoch_fees=3 * FEE_PER_TX,
            params=PARAMS,
        )
    key2 = _key(micro.hash, BOB, 30.0, miner=2, coinbase=coinbase2)
    chain.add_block(key2, 30.0)
    return chain


# -- every full-sweep fixture, swept incrementally ----------------------------


def _fixture_inflating_coinbase():
    fees = 3 * FEE_PER_TX
    prev_cut, self_cut = split_fee(fees, PARAMS.leader_fee_fraction)
    coinbase = make_coinbase(
        [
            (hash160(BOB.public_key().to_bytes()),
             PARAMS.key_block_reward + self_cut + 7),
            (hash160(ALICE.public_key().to_bytes()), prev_cut),
        ],
        tag=b"inflate",
    )
    return _node(_epoch_chain(coinbase)), "INV101"


def _fixture_overpaying_fee_split():
    fees = 3 * FEE_PER_TX
    prev_cut, self_cut = split_fee(fees, PARAMS.leader_fee_fraction)
    coinbase = make_coinbase(
        [
            (hash160(BOB.public_key().to_bytes()),
             PARAMS.key_block_reward + self_cut - 500),
            (hash160(ALICE.public_key().to_bytes()), prev_cut + 500),
        ],
        tag=b"overpay",
    )
    return _node(_epoch_chain(coinbase)), "INV102"


def _fixture_premature_coinbase_spend():
    node = _node(NGChain(GENESIS, PARAMS))
    coinbase = make_coinbase([(PKH, 5_000)], tag=b"fresh")
    node.utxo.apply(coinbase, height=0)
    spend = Transaction(
        inputs=(TxInput(OutPoint(coinbase.txid, 0)),),
        outputs=(TxOutput(4_000, PKH),),
    )
    node.mempool.add(spend, fee=1_000)
    return node, "INV103"


def _fixture_forged_microblock():
    chain = NGChain(GENESIS, PARAMS)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    chain.add_block(_micro(key1.hash, BOB, 20.0), 20.0, check_signature=False)
    return _node(chain), "INV104"


def _fixture_fast_microblocks():
    loose = NGParams(key_block_interval=100.0, min_microblock_interval=0.5)
    chain = NGChain(GENESIS, loose)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    chain.add_block(_micro(key1.hash, ALICE, 11.0), 11.0)
    return _node(chain), "INV105"


def _fixture_oversized_microblock():
    chain = NGChain(GENESIS, PARAMS)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    micro = _micro(key1.hash, ALICE, 20.0)
    chain.add_block(micro, 20.0)
    strict = NGParams(
        key_block_interval=100.0,
        min_microblock_interval=10.0,
        max_microblock_bytes=micro.size - 1,
    )
    return _node(chain, params=strict), "INV106"


def _fixture_corrupted_chain_weight():
    chain = _epoch_chain()
    chain.tip_record.cumulative_work += 5
    return _node(chain), "INV107"


def _fixture_bogus_poison_proof():
    node = _node(_epoch_chain())
    node.poisons_published = [
        SimpleNamespace(
            proof=SimpleNamespace(
                pruned_micro=SimpleNamespace(hash=b"\x07" * 32),
                verify=lambda: False,
            )
        )
    ]
    return node, "INV108"


def _fixture_missing_fee_record():
    node = _node(_epoch_chain())
    node.utxo.credit(TxOutput(9_000, PKH), OutPoint(b"\x01" * 32, 0))
    spend = Transaction(
        inputs=(TxInput(OutPoint(b"\x01" * 32, 0)),),
        outputs=(TxOutput(8_000, PKH),),
    )
    node.mempool.add(spend, fee=1_000)
    del node.mempool._fees[spend.txid]
    return node, "INV110"


FIXTURES = [
    _fixture_inflating_coinbase,
    _fixture_overpaying_fee_split,
    _fixture_premature_coinbase_spend,
    _fixture_forged_microblock,
    _fixture_fast_microblocks,
    _fixture_oversized_microblock,
    _fixture_corrupted_chain_weight,
    _fixture_bogus_poison_proof,
    _fixture_missing_fee_record,
]


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=[f.__name__.removeprefix("_fixture_") for f in FIXTURES]
)
def test_every_violation_fixture_caught_incrementally(fixture):
    node, expected = fixture()
    assert _incremental_codes(node) == {expected}


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=[f.__name__.removeprefix("_fixture_") for f in FIXTURES]
)
def test_every_violation_fixture_caught_in_audit_mode(fixture):
    node, expected = fixture()
    # Audit mode must catch the same violations — and, since the
    # incremental path already reported them, file no SAN901.
    assert _incremental_codes(node, mode="audit", sweeps=2) == {expected}


def test_rollback_between_sweeps_trips_inv109_incrementally():
    long_chain = NGChain(GENESIS, PARAMS)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    long_chain.add_block(key1, 10.0)
    key2 = _key(key1.hash, BOB, 30.0, miner=2)
    long_chain.add_block(key2, 30.0)
    short_chain = NGChain(GENESIS, PARAMS)
    short_chain.add_block(key1, 10.0)

    sim = _FakeSim()
    node = _node(long_chain)
    runtime = SanitizerRuntime(ng_checkers(), stride=1, mode="incremental")
    runtime.install(sim, [node])
    sim.probe()
    assert runtime.violations == []
    node.chain = short_chain  # a rollback no fork-choice rule allows
    sim.probe()  # tip hash changed -> chain dirty -> INV109 re-checked
    assert {v.code for v in runtime.violations} == {"INV109"}


def test_incremental_skips_provably_clean_nodes():
    calls = []

    class Counting(InvariantChecker):
        code = "INV998"
        depends = frozenset({"mempool"})

        def check_state(self, node, node_id, now):
            calls.append(node_id)
            return []

    sim = _FakeSim()
    node = _node(_epoch_chain())
    runtime = SanitizerRuntime([Counting()], stride=1, mode="incremental")
    runtime.install(sim, [node])
    sim.probe()  # first sweep: everything dirty
    assert calls == [0]
    sim.probe()
    sim.probe()  # nothing changed: provably clean, state check skipped
    assert calls == [0]
    node.mempool.add(
        Transaction(
            inputs=(TxInput(OutPoint(b"\x03" * 32, 0)),),
            outputs=(TxOutput(1_000, PKH),),
        ),
        fee=100,
    )
    sim.probe()  # mempool version bumped -> dirty -> re-checked
    assert calls == [0, 0]


def test_full_mode_never_skips():
    calls = []

    class Counting(InvariantChecker):
        code = "INV998"
        depends = frozenset({"mempool"})

        def check_state(self, node, node_id, now):
            calls.append(node_id)
            return []

    sim = _FakeSim()
    runtime = SanitizerRuntime([Counting()], stride=1, mode="full")
    runtime.install(sim, [_node(_epoch_chain())])
    sim.probe()
    sim.probe()
    sim.probe()
    assert calls == [0, 0, 0]


# -- the signature cache ------------------------------------------------------


def test_cache_verifies_each_pair_exactly_once():
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    micro = _micro(key1.hash, ALICE, 20.0)
    cache = SignatureCache()
    leader = ALICE.public_key().to_bytes()
    assert cache.verify(micro, leader) is True
    assert cache.verify(micro, leader) is True
    assert (cache.misses, cache.hits, len(cache)) == (1, 1, 1)


def test_cache_stores_negative_verdicts():
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    forged = _micro(key1.hash, BOB, 20.0)  # signed by BOB, not ALICE
    cache = SignatureCache()
    leader = ALICE.public_key().to_bytes()
    assert cache.verify(forged, leader) is False
    assert cache.verify(forged, leader) is False
    assert (cache.misses, cache.hits) == (1, 1)


def test_reorg_to_new_leader_is_a_fresh_verification_not_a_stale_serve():
    # The reorg story: a microblock signed by ALICE is valid while the
    # chain says ALICE leads its epoch.  After a reorg that puts BOB's
    # key block in front, INV104 looks the same microblock up under
    # BOB's key — a *different* cache key, so the cached True verdict
    # for ALICE is unused (not stale-served) and the new pair verifies
    # fresh to False.
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    micro = _micro(key1.hash, ALICE, 20.0)
    cache = SignatureCache()
    alice_pub = ALICE.public_key().to_bytes()
    bob_pub = BOB.public_key().to_bytes()
    assert cache.verify(micro, alice_pub) is True
    assert cache.verify(micro, bob_pub) is False
    assert cache.misses == 2  # second lookup was NOT a cache hit
    assert cache.hits == 0
    assert len(cache) == 2
    # Reorg back: the original verdict is still there and still right.
    assert cache.verify(micro, alice_pub) is True
    assert cache.hits == 1


def test_cache_key_includes_the_signature_itself():
    # The microblock header hash deliberately excludes the signature, so
    # two blocks with identical headers but different signature bytes
    # must occupy distinct cache entries.
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    micro = _micro(key1.hash, ALICE, 20.0)
    tampered = SimpleNamespace(
        hash=micro.hash,
        signature=b"\x00" * 64,
        verify_signature=lambda pub: False,
    )
    cache = SignatureCache()
    leader = ALICE.public_key().to_bytes()
    assert cache.verify(micro, leader) is True
    assert cache.verify(tampered, leader) is False
    assert len(cache) == 2


def test_cache_bounds_its_size_by_clearing():
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    cache = SignatureCache(max_entries=2)
    leader = ALICE.public_key().to_bytes()
    micros = [_micro(key1.hash, ALICE, 20.0 + i, salt=bytes([i])) for i in range(3)]
    for micro in micros:
        cache.verify(micro, leader)
    assert len(cache) == 1  # full at 2, cleared, third re-inserted
    assert cache.misses == 3


def test_invalid_factory_mode_is_rejected():
    with pytest.raises(ValueError, match="unknown check mode"):
        validate_check_mode("bogus")
    with pytest.raises(ValueError, match="unknown check mode"):
        ng_checkers(mode="bogus")
    with pytest.raises(ValueError, match="unknown sanitizer mode"):
        SanitizerRuntime((), mode="bogus")


def test_full_mode_factory_builds_uncached_inv104():
    from repro.sanitizer.checkers import MicroblockSignature

    cached = [c for c in ng_checkers("incremental") if isinstance(c, MicroblockSignature)]
    uncached = [c for c in ng_checkers("full") if isinstance(c, MicroblockSignature)]
    assert cached[0].cache is not None
    assert uncached[0].cache is None


# -- the audit ----------------------------------------------------------------


class _Buggy(InvariantChecker):
    """Deliberately wrong ``depends``: reads the mempool but declares
    ``poisons``, so the incremental path skips it on mempool changes."""

    code = "INV999"
    name = "buggy"
    depends = frozenset({"poisons"})

    def check_state(self, node, node_id, now):
        from repro.sanitizer.violations import make_violation

        if list(node.mempool.transactions()):
            return [make_violation(self, node_id, now, "pool not empty")]
        return []


def test_audit_surfaces_what_the_incremental_path_missed():
    sim = _FakeSim()
    node = _node(_epoch_chain())
    runtime = SanitizerRuntime(
        [_Buggy()], stride=1, mode="audit", audit_stride=1
    )
    runtime.install(sim, [node])
    sim.probe()  # clean node: nothing to find anywhere
    assert runtime.violations == []
    node.mempool.add(
        Transaction(
            inputs=(TxInput(OutPoint(b"\x04" * 32, 0)),),
            outputs=(TxOutput(1_000, PKH),),
        ),
        fee=100,
    )
    sim.probe()  # mempool dirty, but depends={"poisons"}: skipped...
    # ...and the same sweep's audit catches it from scratch.
    codes = [v.code for v in runtime.violations]
    assert codes == ["INV999", "SAN901"]
    marker = runtime.violations[1]
    assert dict(marker.snapshot)["missed_code"] == "INV999"
    assert runtime.audits >= 1


def test_audit_is_silent_when_incremental_found_everything():
    node, expected = _fixture_forged_microblock()
    codes = _incremental_codes(node, mode="audit", sweeps=3)
    assert codes == {expected}  # no SAN901


def test_incremental_mode_never_audits():
    sim = _FakeSim()
    runtime = SanitizerRuntime(ng_checkers(), stride=1, mode="incremental")
    runtime.install(sim, [_node(_epoch_chain())])
    for _ in range(50):
        sim.probe()
    runtime.finalize()
    assert runtime.audits == 0


# -- version counters ---------------------------------------------------------


def test_mempool_mutators_bump_version():
    pool = Mempool()
    assert pool.version == 0
    tx = Transaction(
        inputs=(TxInput(OutPoint(b"\x05" * 32, 0)),),
        outputs=(TxOutput(1_000, PKH),),
    )
    pool.add(tx, fee=100)
    after_add = pool.version
    assert after_add > 0
    pool.remove(tx.txid)
    assert pool.version > after_add
    pool.clear()
    assert pool.version > after_add + 1


def test_utxo_mutators_bump_version():
    utxo = UtxoSet()
    assert utxo.version == 0
    coinbase = make_coinbase([(PKH, 5_000)], tag=b"v")
    undo = utxo.apply(coinbase, height=0)
    after_apply = utxo.version
    assert after_apply > 0
    utxo.undo(undo)
    after_undo = utxo.version
    assert after_undo > after_apply
    utxo.credit(TxOutput(1_000, PKH), OutPoint(b"\x06" * 32, 0))
    assert utxo.version > after_undo


# -- RunInstrumentation -------------------------------------------------------


def test_instrumentation_from_args_and_apply_round_trip():
    args = SimpleNamespace(scenario=None, check_stride=32, obs=None)
    inst = RunInstrumentation.from_args(args, check_mode="audit")
    assert inst == RunInstrumentation(
        check=True, check_mode="audit", check_stride=32
    )
    config = inst.apply(ExperimentConfig())
    assert (config.check, config.check_mode, config.check_stride) == (
        True, "audit", 32,
    )
    assert RunInstrumentation.from_config(config) == inst


def test_instrumentation_unchecked_builds_no_sanitizer():
    inst = RunInstrumentation()
    assert inst.build_sanitizer(get_adapter("bitcoin-ng")) is None


def test_instrumentation_builds_runtime_in_requested_mode():
    adapter = get_adapter("bitcoin-ng")
    for mode in ("incremental", "full", "audit"):
        inst = RunInstrumentation(check=True, check_mode=mode)
        runtime = inst.build_sanitizer(adapter)
        assert runtime.mode == mode
        assert len(runtime.checkers) == len(ng_checkers())


def test_adapter_can_opt_out_of_incremental_checking():
    class Legacy:
        supports_incremental_check = False

        def invariant_checkers(self, mode="incremental"):
            assert mode == "full"
            return ng_checkers(mode)

    inst = RunInstrumentation(check=True, check_mode="incremental")
    runtime = inst.build_sanitizer(Legacy())
    assert runtime.mode == "full"


def test_legacy_adapter_without_mode_parameter_still_works():
    class Old:
        def invariant_checkers(self):  # pre-mode signature
            return ng_checkers()

    inst = RunInstrumentation(check=True, check_mode="incremental")
    runtime = inst.build_sanitizer(Old())
    assert runtime is not None
    assert len(runtime.checkers) == len(ng_checkers())


def test_resolve_check_mode_resolution_order():
    assert resolve_check_mode(None, "") is None
    assert resolve_check_mode(None, "0") is None
    assert resolve_check_mode(None, "1") == "incremental"
    assert resolve_check_mode(None, "full") == "full"
    assert resolve_check_mode(None, "audit") == "audit"
    assert resolve_check_mode("full", "audit") == "full"  # flag wins
    assert resolve_check_mode("incremental", "") == "incremental"


def test_config_rejects_unknown_check_mode():
    with pytest.raises(ValueError, match="check_mode"):
        ExperimentConfig(check_mode="bogus")


# -- end-to-end equivalence ---------------------------------------------------

CHECKED = dict(
    n_nodes=10,
    target_blocks=10,
    target_key_blocks=4,
    block_rate=0.2,
    block_size_bytes=5_000,
    key_block_rate=0.05,
    cooldown=10.0,
    seed=11,
    protocol="bitcoin-ng",
)


def test_checked_modes_are_bit_identical_to_bare():
    bare, _ = run_experiment(ExperimentConfig(**CHECKED))
    reference = None
    for mode in ("incremental", "full", "audit"):
        config = ExperimentConfig(
            check=True, check_mode=mode, check_stride=32, **CHECKED
        )
        result, _log = run_experiment(config)
        assert result.violations == ()
        assert result.as_row() == bare.as_row(), mode
        assert result.blocks_generated == bare.blocks_generated, mode
        assert result.events_processed == bare.events_processed, mode
        assert result.messages_delivered == bare.messages_delivered, mode
        if reference is None:
            reference = result
        else:
            assert result.as_row() == reference.as_row(), mode


def test_leader_crash_scenario_clean_under_incremental_check():
    scenario = load_scenario("examples/leader_crash.json")
    config = ExperimentConfig(
        protocol="bitcoin-ng",
        n_nodes=10,
        target_blocks=50,
        target_key_blocks=6,
        block_rate=0.2,
        block_size_bytes=5_000,
        key_block_rate=0.05,
        cooldown=10.0,
        seed=11,
        check=True,
        check_mode="incremental",
        check_stride=32,
        scenario=scenario,
    )
    result, _log = run_experiment(config)
    assert result.faults_injected >= 1  # the crash actually fired
    assert result.violations == ()


def test_deprecated_invariant_violations_property_warns():
    result, _log = run_experiment(
        ExperimentConfig(n_nodes=8, target_blocks=5, seed=3)
    )
    with pytest.warns(DeprecationWarning, match="invariant_violations"):
        assert result.invariant_violations == 0


# -- the stable facade --------------------------------------------------------


def test_api_facade_exports_resolve():
    import repro.api as api

    for name in api.__all__:
        assert getattr(api, name) is not None, name
    # The facade's names are the same objects the internals use.
    assert api.run_experiment is run_experiment
    assert api.SanitizerRuntime is SanitizerRuntime


def test_node_delta_touches_and_dirty_components():
    delta = NodeDelta(chain=True, utxo=True)
    assert delta.touches({"chain"})
    assert delta.touches({"utxo", "mempool"})
    assert not delta.touches({"mempool", "poisons"})
    assert not delta.touches(frozenset())
    assert delta.dirty_components == frozenset({"chain", "utxo"})
