"""Periodic samplers: cadence, gauges, trace records, non-interference."""

import pytest

from repro.net.latency import constant_histogram
from repro.net.network import Message, Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology
from repro.obs.registry import MetricRegistry
from repro.obs.samplers import (
    ForkSampler,
    LinkSampler,
    MempoolSampler,
    PeriodicSampler,
)
from repro.obs.trace import MemorySink, Tracer


class _CountingSampler(PeriodicSampler):
    def __init__(self, period, until=None):
        super().__init__(period, until)
        self.times = []

    def sample(self, now):
        self.times.append(now)


class _FakeNode:
    def __init__(self, mempool_depth, tip):
        self.mempool = list(range(mempool_depth))
        self.tip = tip


def test_period_must_be_positive():
    with pytest.raises(ValueError):
        _CountingSampler(0.0)


def test_sampler_fires_on_a_fixed_cadence():
    sim = Simulator()
    sampler = _CountingSampler(period=1.0, until=5.0)
    sampler.start(sim)
    sim.schedule(100.0, lambda: None)  # keep the clock running past until
    sim.run()
    assert sampler.times == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert sampler.samples_taken == 5


def test_sampler_stops_at_horizon_without_stopping_the_sim():
    sim = Simulator()
    sampler = _CountingSampler(period=2.0, until=3.0)
    sampler.start(sim)
    fired = []
    sim.schedule(10.0, lambda: fired.append(sim.now))
    sim.run()
    assert sampler.times == [2.0]
    assert fired == [10.0]


def test_samplers_never_touch_the_simulation_rng():
    sim = Simulator(seed=42)
    state_before = sim.rng.getstate()
    nodes = [_FakeNode(3, b"a"), _FakeNode(5, b"b")]
    for sampler in (
        MempoolSampler(nodes, period=1.0, until=4.0),
        ForkSampler(nodes, period=1.0, until=4.0),
    ):
        sampler.start(sim)
    sim.run()
    assert sim.rng.getstate() == state_before


def test_link_sampler_sees_a_busy_link():
    sim = Simulator(seed=0)
    network = Network(
        sim, complete_topology(2), constant_histogram(0.1), bandwidth_bps=1000.0
    )
    registry = MetricRegistry()
    sink = MemorySink()
    sampler = LinkSampler(
        network, tracer=Tracer(sink), registry=registry, period=1.0, until=3.0
    )
    sampler.start(sim)
    # 8000 bytes at 1000 B/s serializes for 8 s: busy at every sample.
    network.send(0, 1, Message("bulk", None, 8000))
    sim.run()
    assert sampler.samples_taken == 3
    busy_fractions = [r["frac"] for r in sink.records]
    assert all(f > 0 for f in busy_fractions)
    assert registry.gauge("obs_link_queued_bytes_peak").value > 0
    record = sink.records[0]
    assert record["ev"] == "sample_links"
    assert record["links"] == 2  # one directed link each way
    assert record["queued_bytes"] > 0


def test_mempool_sampler_summarizes_depths():
    sim = Simulator()
    nodes = [_FakeNode(2, b"x"), _FakeNode(8, b"x"), _FakeNode(5, b"x")]
    registry = MetricRegistry()
    sink = MemorySink()
    sampler = MempoolSampler(
        nodes, tracer=Tracer(sink), registry=registry, period=1.0, until=1.0
    )
    sampler.start(sim)
    sim.run()
    record = sink.records[0]
    assert record["ev"] == "sample_mempool"
    assert record["total"] == 15
    assert record["min"] == 2
    assert record["max"] == 8
    assert record["mean"] == 5.0
    assert registry.gauge("obs_mempool_txs_total").value == 15
    assert registry.gauge("obs_mempool_txs_max").value == 8


def test_fork_sampler_counts_distinct_tips_and_peak():
    sim = Simulator()
    nodes = [_FakeNode(0, b"a"), _FakeNode(0, b"b"), _FakeNode(0, b"a")]
    registry = MetricRegistry()
    sink = MemorySink()
    sampler = ForkSampler(
        nodes, tracer=Tracer(sink), registry=registry, period=1.0, until=2.0
    )
    sampler.start(sim)
    # Converge to one tip between the first and second sample.
    sim.schedule(1.5, lambda: setattr(nodes[1], "tip", b"a"))
    sim.run()
    assert [r["tips"] for r in sink.records] == [2, 1]
    assert registry.gauge("obs_distinct_tips").value == 1
    assert registry.gauge("obs_distinct_tips_peak").value == 2


def test_samplers_work_without_tracer_or_registry():
    sim = Simulator()
    nodes = [_FakeNode(1, b"a")]
    for sampler in (
        MempoolSampler(nodes, period=1.0, until=2.0),
        ForkSampler(nodes, period=1.0, until=2.0),
    ):
        sampler.start(sim)
    sim.run()  # silent sampling: no sink, no gauges, no crash
