"""The Bitcoin block tree: heaviest chain, reorgs, orphans, ties."""

import random

import pytest

from repro.bitcoin.blocks import SyntheticPayload, build_block, make_genesis
from repro.bitcoin.chain import BlockTree, TieBreak

GENESIS = make_genesis()


def _block(prev_hash, salt, bits=0x207FFFFF):
    return build_block(
        prev_hash=prev_hash,
        payload=SyntheticPayload(n_tx=0, salt=salt.encode()),
        timestamp=0.0,
        bits=bits,
        miner_id=0,
        reward=0,
    )


def _chain(tree, start, labels, bits=0x207FFFFF, t=0.0):
    blocks = []
    prev = start
    for label in labels:
        block = _block(prev, label, bits)
        tree.add_block(block, t)
        blocks.append(block)
        prev = block.hash
    return blocks


def test_extension_advances_tip():
    tree = BlockTree(GENESIS)
    blocks = _chain(tree, GENESIS.hash, ["a", "b", "c"])
    assert tree.tip == blocks[-1].hash
    assert tree.height_of(tree.tip) == 3


def test_main_chain_order():
    tree = BlockTree(GENESIS)
    blocks = _chain(tree, GENESIS.hash, ["a", "b"])
    assert tree.main_chain() == [GENESIS.hash] + [b.hash for b in blocks]


def test_shorter_branch_ignored():
    tree = BlockTree(GENESIS)
    main = _chain(tree, GENESIS.hash, ["a", "b"])
    _chain(tree, GENESIS.hash, ["x"])
    assert tree.tip == main[-1].hash


def test_heavier_branch_triggers_reorg():
    tree = BlockTree(GENESIS)
    _chain(tree, GENESIS.hash, ["a"])
    branch = _chain(tree, GENESIS.hash, ["x", "y"])
    assert tree.tip == branch[-1].hash


def test_reorg_paths_correct():
    tree = BlockTree(GENESIS)
    old = _chain(tree, GENESIS.hash, ["a", "b"])
    new_blocks = []
    prev = GENESIS.hash
    reorgs = []
    for label in ["x", "y", "z"]:
        block = _block(prev, label)
        reorgs.extend(tree.add_block(block, 0.0))
        new_blocks.append(block)
        prev = block.hash
    final = reorgs[-1]
    assert final.disconnected == (old[1].hash, old[0].hash)  # tip first
    assert final.connected == tuple(b.hash for b in new_blocks)
    assert not final.is_extension


def test_extension_reorg_flag():
    tree = BlockTree(GENESIS)
    block = _block(GENESIS.hash, "a")
    (reorg,) = tree.add_block(block, 0.0)
    assert reorg.is_extension
    assert reorg.connected == (block.hash,)


def test_first_seen_tie_break_keeps_current():
    tree = BlockTree(GENESIS, tie_break=TieBreak.FIRST_SEEN)
    first = _block(GENESIS.hash, "first")
    second = _block(GENESIS.hash, "second")
    tree.add_block(first, 0.0)
    tree.add_block(second, 1.0)
    assert tree.tip == first.hash


def test_random_tie_break_switches_sometimes():
    outcomes = set()
    for seed in range(30):
        tree = BlockTree(
            GENESIS, tie_break=TieBreak.RANDOM, rng=random.Random(seed)
        )
        first = _block(GENESIS.hash, "first")
        second = _block(GENESIS.hash, "second")
        tree.add_block(first, 0.0)
        tree.add_block(second, 1.0)
        outcomes.add(tree.tip)
    assert len(outcomes) == 2  # both branches win somewhere


def test_orphan_buffered_until_parent():
    tree = BlockTree(GENESIS)
    parent = _block(GENESIS.hash, "p")
    child = _block(parent.hash, "c")
    tree.add_block(child, 0.0)
    assert child.hash not in tree
    assert tree.orphan_count() == 1
    tree.add_block(parent, 1.0)
    assert child.hash in tree
    assert tree.tip == child.hash
    assert tree.orphan_count() == 0


def test_orphan_chain_unwinds_recursively():
    tree = BlockTree(GENESIS)
    a = _block(GENESIS.hash, "a")
    b = _block(a.hash, "b")
    c = _block(b.hash, "c")
    tree.add_block(c, 0.0)
    tree.add_block(b, 0.0)
    tree.add_block(a, 0.0)
    assert tree.tip == c.hash


def test_duplicate_block_ignored():
    tree = BlockTree(GENESIS)
    block = _block(GENESIS.hash, "a")
    assert tree.add_block(block, 0.0)
    assert tree.add_block(block, 1.0) == []


def test_is_in_main_chain():
    tree = BlockTree(GENESIS)
    main = _chain(tree, GENESIS.hash, ["a", "b"])
    side = _chain(tree, GENESIS.hash, ["x"])
    assert tree.is_in_main_chain(GENESIS.hash)
    assert tree.is_in_main_chain(main[0].hash)
    assert not tree.is_in_main_chain(side[0].hash)


def test_find_fork_point():
    tree = BlockTree(GENESIS)
    main = _chain(tree, GENESIS.hash, ["a", "b"])
    side = _chain(tree, main[0].hash, ["x", "y"])
    assert tree.find_fork_point(main[1].hash, side[1].hash) == main[0].hash


def test_pruned_blocks():
    tree = BlockTree(GENESIS)
    _chain(tree, GENESIS.hash, ["a", "b"])
    side = _chain(tree, GENESIS.hash, ["x"])
    assert tree.pruned_blocks() == [side[0].hash]


def test_leaves():
    tree = BlockTree(GENESIS)
    main = _chain(tree, GENESIS.hash, ["a", "b"])
    side = _chain(tree, GENESIS.hash, ["x"])
    assert set(tree.leaves()) == {main[-1].hash, side[0].hash}


def test_cumulative_work_accrues():
    tree = BlockTree(GENESIS)
    blocks = _chain(tree, GENESIS.hash, ["a", "b"])
    work = tree.work_of(blocks[1].hash)
    assert work == 2 * blocks[0].header.work


def test_consistency_invariant():
    tree = BlockTree(GENESIS)
    _chain(tree, GENESIS.hash, ["a", "b", "c"])
    _chain(tree, GENESIS.hash, ["x", "y"])
    tree.assert_consistent()
