"""Mempool policy: conflicts, selection, eviction, seeding."""

import pytest

from repro.ledger.errors import MempoolError
from repro.ledger.mempool import Mempool
from repro.ledger.transactions import OutPoint, Transaction, TxInput, TxOutput

DEST = bytes(20)


def _tx(prev_byte, index=0, padding=b"", n_outputs=1):
    return Transaction(
        inputs=(TxInput(OutPoint(bytes([prev_byte]) * 32, index)),),
        outputs=tuple(TxOutput(1, DEST) for _ in range(n_outputs)),
        padding=padding,
    )


def test_add_and_get():
    pool = Mempool()
    tx = _tx(1)
    pool.add(tx, fee=5)
    assert tx.txid in pool
    assert pool.get(tx.txid) == tx
    assert len(pool) == 1


def test_duplicate_rejected():
    pool = Mempool()
    tx = _tx(1)
    pool.add(tx)
    with pytest.raises(MempoolError):
        pool.add(tx)


def test_conflicting_spend_rejected():
    pool = Mempool()
    pool.add(_tx(1, padding=b"a"))
    with pytest.raises(MempoolError):
        pool.add(_tx(1, padding=b"b"))  # same outpoint, different tx


def test_capacity_limit():
    pool = Mempool(max_entries=2)
    pool.add(_tx(1))
    pool.add(_tx(2))
    with pytest.raises(MempoolError):
        pool.add(_tx(3))


def test_remove_frees_outpoints():
    pool = Mempool()
    tx = _tx(1, padding=b"a")
    pool.add(tx)
    assert pool.remove(tx.txid) == tx
    pool.add(_tx(1, padding=b"b"))  # no longer conflicts


def test_remove_missing_returns_none():
    assert Mempool().remove(b"\x00" * 32) is None


def test_evict_conflicts_on_confirmation():
    pool = Mempool()
    pending = _tx(1, padding=b"loser")
    pool.add(pending)
    confirmed = _tx(1, padding=b"winner")
    evicted = pool.evict_conflicts(confirmed)
    assert evicted == [pending]
    assert len(pool) == 0


def test_evict_conflicts_removes_confirmed_itself():
    pool = Mempool()
    tx = _tx(1)
    pool.add(tx)
    assert pool.evict_conflicts(tx) == []
    assert len(pool) == 0


def test_select_by_fee_rate():
    pool = Mempool()
    cheap = _tx(1, padding=b"x" * 100)
    rich = _tx(2)
    pool.add(cheap, fee=10)
    pool.add(rich, fee=10)  # same fee, smaller size → higher rate
    selected = pool.select(max_bytes=10_000)
    assert selected[0] == rich


def test_select_respects_size_budget():
    pool = Mempool()
    for i in range(1, 6):
        pool.add(_tx(i), fee=1)
    tx_size = _tx(1).size
    selected = pool.select(max_bytes=tx_size * 2)
    assert len(selected) == 2


def test_select_fifo_mode():
    pool = Mempool()
    first = _tx(1, padding=b"large" * 20)
    second = _tx(2)
    pool.add(first, fee=0)
    pool.add(second, fee=100)
    selected = pool.select(max_bytes=10_000, by_fee_rate=False)
    assert selected[0] == first  # insertion order kept


def test_seed_bulk_load():
    pool = Mempool()
    txs = [_tx(i) for i in range(1, 11)]
    pool.seed(txs)
    assert len(pool) == 10


def test_clear():
    pool = Mempool()
    pool.add(_tx(1))
    pool.clear()
    assert len(pool) == 0
    pool.add(_tx(1))  # outpoint index also cleared
