"""Robustness integration tests: churn and partitions.

The paper claims Bitcoin-NG "is robust to extreme churn"; these tests
take nodes offline mid-run and verify the survivors keep consensus and
returning nodes catch up through gossip.
"""

from repro.bitcoin.blocks import make_genesis
from repro.bitcoin.node import BitcoinNode, BlockPolicy
from repro.core.genesis import make_ng_genesis
from repro.core.node import MicroblockPolicy, NGNode
from repro.core.params import NGParams
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology


def _bitcoin_cluster(n=5):
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(n), constant_histogram(0.05), 1e6)
    genesis = make_genesis()
    nodes = [
        BitcoinNode(i, sim, net, genesis, policy=BlockPolicy(max_block_bytes=2000))
        for i in range(n)
    ]
    return sim, net, nodes


def test_offline_node_catches_up_via_ancestor_backfill():
    sim, net, nodes = _bitcoin_cluster()
    nodes[0].generate_block()
    sim.run()
    net.set_offline(4)
    b2 = nodes[1].generate_block()
    sim.run()
    assert nodes[4].tip != b2.hash
    net.set_offline(4, offline=False)
    # The next block reaches node 4 as an orphan; the node requests the
    # missing parent from the sender and heals automatically.
    b3 = nodes[1].generate_block()
    sim.run()
    assert nodes[4].tip == b3.hash
    assert b2.hash in nodes[4].tree


def test_backfill_recovers_multi_block_gap():
    sim, net, nodes = _bitcoin_cluster()
    net.set_offline(4)
    missed = [nodes[0].generate_block() for _ in range(4)]
    sim.run()
    net.set_offline(4, offline=False)
    tip = nodes[1].generate_block()
    sim.run()
    # Recursive backfill walks the whole gap parent by parent.
    assert nodes[4].tip == tip.hash
    for block in missed:
        assert block.hash in nodes[4].tree


def test_majority_keeps_consensus_under_churn():
    sim, net, nodes = _bitcoin_cluster()
    for round_ in range(6):
        net.set_offline(4, offline=(round_ % 2 == 0))
        nodes[round_ % 3].generate_block()
        sim.run()
    net.set_offline(4, offline=False)
    tips = {nodes[i].tip for i in range(4)}
    assert len(tips) == 1


def test_offline_node_resyncs_via_tip_solicitation_without_new_block():
    # Regression: a node that was down across several blocks used to
    # stay behind until the *next* block happened to arrive as an
    # orphan.  request_tips() pulls peers' tips immediately; recursive
    # parent backfill then heals the whole gap with no new mining.
    sim, net, nodes = _bitcoin_cluster()
    net.set_offline(4)
    missed = [nodes[0].generate_block() for _ in range(3)]
    sim.run()
    net.set_online(4)
    assert nodes[4].tip != missed[-1].hash
    nodes[4].reset_relay_state()
    nodes[4].request_tips()
    sim.run()
    assert nodes[4].tip == missed[-1].hash
    for block in missed:
        assert block.hash in nodes[4].tree


def test_reset_relay_state_clears_stale_request_wedge():
    # Regression: if a node crashed while a getdata was outstanding,
    # the object id stayed in _requested, so fresh invs for exactly the
    # block it was missing were shelved as alternate sources until the
    # 120 s request timer expired.
    sim, net, nodes = _bitcoin_cluster()
    nodes[0].generate_block()
    sim.run()
    block = nodes[0].generate_block()
    # Let the inv and node 4's getdata go out, then kill the node before
    # the object arrives — the delivery is dropped by churn.
    sim.run(until=sim.now + 0.12)
    assert nodes[4].has_requested(block.hash)
    assert not nodes[4].knows(block.hash)
    net.set_offline(4)
    # Stay well inside the 120 s request timeout: the wedge is only
    # cleared by that timer, which is exactly the problem.
    sim.run(until=sim.now + 10.0)
    net.set_online(4)
    # Stale bookkeeping survives the outage...
    assert nodes[4].has_requested(block.hash)
    nodes[4].reset_relay_state()
    assert not nodes[4].has_requested(block.hash)
    assert not nodes[4]._request_timers
    # ...and once cleared, the tip solicitation heals the node now
    # rather than after the request timeout.
    nodes[4].request_tips()
    sim.run()
    assert nodes[4].tip == block.hash


def test_gettip_from_fresh_node_is_harmless():
    # A gettip to a node whose best object is not in its relay store
    # (genesis only) is simply not answered.
    sim, net, nodes = _bitcoin_cluster()
    nodes[4].request_tips()
    sim.run()
    assert all(node.tip == nodes[0].tip for node in nodes)


def test_ng_leader_crash_epoch_ends_with_next_key_block():
    # "a benign leader that crashes during his epoch of leadership will
    # publish no microblocks.  Their influence ends once the next leader
    # publishes his key block."
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(4), constant_histogram(0.05), 1e6)
    params = NGParams(key_block_interval=50.0, min_microblock_interval=10.0)
    genesis = make_ng_genesis()
    nodes = [
        NGNode(i, sim, net, genesis, params, policy=MicroblockPolicy(target_bytes=2000))
        for i in range(4)
    ]
    nodes[0].generate_key_block()
    sim.run(until=15.0)
    # Leader 0 crashes.
    net.set_offline(0)
    count_at_crash = nodes[1].chain.tip_record.height
    sim.run(until=45.0)
    # No new microblocks reach anyone.
    assert nodes[1].chain.tip_record.height == count_at_crash
    # The next key block restores service.
    nodes[1].generate_key_block()
    sim.run(until=80.0)
    assert nodes[1].is_leader()
    assert nodes[1].microblocks_generated > 0
    assert nodes[2].chain.tip_record.height > count_at_crash


def test_ng_node_backfills_missed_epoch():
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(4), constant_histogram(0.05), 1e6)
    params = NGParams(key_block_interval=50.0, min_microblock_interval=10.0)
    genesis = make_ng_genesis()
    nodes = [
        NGNode(i, sim, net, genesis, params, policy=MicroblockPolicy(target_bytes=2000))
        for i in range(4)
    ]
    nodes[0].generate_key_block()
    sim.run(until=25.0)
    net.set_offline(3)
    sim.run(until=45.0)  # node 3 misses microblocks at t=30, 40
    net.set_offline(3, offline=False)
    sim.run(until=56.0)  # the t=50 microblock arrives as an orphan
    # Backfill walks the missed microblocks; all tips agree.
    assert len({node.tip for node in nodes}) == 1
    assert nodes[3].chain.tip_record.height == nodes[0].chain.tip_record.height
