"""Experiment configuration and derived quantities."""

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    Protocol,
    constant_throughput_block_size,
)


def test_duration_from_target_blocks():
    config = ExperimentConfig(block_rate=0.1, target_blocks=60)
    assert config.duration == pytest.approx(600.0)


def test_ng_duration_covers_key_blocks():
    config = ExperimentConfig(
        protocol=Protocol.BITCOIN_NG,
        block_rate=1.0,  # 60 microblocks = 60 s only...
        target_blocks=60,
        key_block_rate=0.01,
        target_key_blocks=20,  # ...but 20 key blocks need 2000 s.
    )
    assert config.duration == pytest.approx(2000.0)


def test_txs_per_block():
    config = ExperimentConfig(block_size_bytes=4760, tx_size=476)
    assert config.txs_per_block == 10


def test_with_override():
    base = ExperimentConfig()
    changed = base.with_(n_nodes=42, seed=9)
    assert changed.n_nodes == 42
    assert changed.seed == 9
    assert base.n_nodes != 42  # original untouched


def test_constant_throughput_sizing():
    # One 1 MB block every 10 minutes ≈ 3.5 tx/s at 476-byte txs.
    size = constant_throughput_block_size(1.0 / 600.0)
    assert size == pytest.approx(1_000_000, rel=0.01)
    # Ten times the frequency → a tenth the size.
    assert constant_throughput_block_size(1.0 / 60.0) == pytest.approx(
        100_000, rel=0.01
    )


def test_constant_throughput_minimum_one_tx():
    assert constant_throughput_block_size(100.0) == 476


def test_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(n_nodes=1)
    with pytest.raises(ValueError):
        ExperimentConfig(block_rate=0)
    with pytest.raises(ValueError):
        ExperimentConfig(block_size_bytes=0)
    with pytest.raises(ValueError):
        ExperimentConfig(target_blocks=0)


def test_to_dict_from_dict_round_trip():
    config = ExperimentConfig(
        protocol=Protocol.BITCOIN_NG,
        n_nodes=30,
        seed=7,
        block_rate=0.05,
        obs_dir="out",
        scenario={
            "version": 1,
            "name": "rt",
            "faults": [{"at": 10, "kind": "heal"}],
        },
    )
    data = config.to_dict()
    assert data["protocol"] == "bitcoin-ng"
    assert data["relay_mode"] == "inv"
    assert data["scenario"]["name"] == "rt"
    rebuilt = ExperimentConfig.from_dict(data)
    assert rebuilt == config


def test_to_dict_is_json_serializable():
    import json

    config = ExperimentConfig(
        scenario={"version": 1, "faults": [{"at": 3, "kind": "restore"}]}
    )
    rebuilt = ExperimentConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert rebuilt == config


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown"):
        ExperimentConfig.from_dict({"n_nodes": 10, "block_sizee": 100})


def test_scenario_normalized_on_construction():
    config = ExperimentConfig(
        scenario={
            "version": 1,
            "faults": [
                {"at": 20, "kind": "heal"},
                {"at": 5, "kind": "restore"},
            ],
        }
    )
    assert [f["at"] for f in config.scenario["faults"]] == [5.0, 20.0]
    assert config.scenario["name"] == "scenario"


def test_invalid_scenario_rejected_at_config_time():
    from repro.scenarios import ScenarioError

    with pytest.raises(ScenarioError):
        ExperimentConfig(scenario={"version": 1, "faults": [{"kind": "bad"}]})


def test_equivalent_scenarios_compare_equal():
    a = ExperimentConfig(
        scenario={"version": 1, "faults": [{"at": 4, "kind": "heal"}]}
    )
    b = ExperimentConfig(
        scenario={"version": 1, "faults": [{"at": 4.0, "kind": "heal"}]}
    )
    assert a == b


def test_scenario_config_is_picklable():
    import pickle

    config = ExperimentConfig(
        scenario={"version": 1, "faults": [{"at": 1, "kind": "heal"}]}
    )
    assert pickle.loads(pickle.dumps(config)) == config
