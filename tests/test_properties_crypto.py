"""Property-based tests: crypto substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256d, tagged_hash
from repro.crypto.keys import (
    PrivateKey,
    base58check_decode,
    base58check_encode,
)
from repro.crypto.merkle import merkle_proof, merkle_root, verify_proof
from repro.crypto.pow import (
    MAX_TARGET,
    compact_from_target,
    target_from_compact,
    work_from_target,
)


@given(st.binary(min_size=0, max_size=200))
def test_sha256d_deterministic_and_sized(data):
    assert sha256d(data) == sha256d(data)
    assert len(sha256d(data)) == 32


@given(st.text(min_size=1, max_size=20), st.binary(max_size=100))
def test_tagged_hash_never_collides_with_plain(tag, data):
    assert tagged_hash(tag, data) != sha256d(data)


@given(st.binary(min_size=0, max_size=40))
def test_base58check_roundtrip(payload):
    encoded = base58check_encode(0, payload)
    version, decoded = base58check_decode(encoded)
    assert version == 0
    assert decoded == payload


@given(st.lists(st.binary(min_size=32, max_size=32), min_size=1, max_size=24))
def test_merkle_proofs_always_verify(leaves):
    root = merkle_root(leaves)
    for index, leaf in enumerate(leaves):
        proof = merkle_proof(leaves, index)
        assert verify_proof(leaf, proof, root)


@given(
    st.lists(st.binary(min_size=32, max_size=32), min_size=2, max_size=12, unique=True),
    st.data(),
)
def test_merkle_proof_position_binding(leaves, data):
    # A proof for one position never verifies a different unique leaf.
    root = merkle_root(leaves)
    index = data.draw(st.integers(0, len(leaves) - 1))
    other = data.draw(st.integers(0, len(leaves) - 1))
    proof = merkle_proof(leaves, index)
    if leaves[other] != leaves[index]:
        assert not verify_proof(leaves[other], proof, root)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=ecdsa.N - 1), st.binary(min_size=32, max_size=32))
def test_sign_verify_property(secret, msg):
    signature = ecdsa.sign(secret, msg)
    assert ecdsa.verify(ecdsa.point_mul(secret), msg, signature)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=ecdsa.N - 1))
def test_pubkey_serialization_roundtrip(secret):
    point = ecdsa.point_mul(secret)
    assert ecdsa.point_from_bytes(ecdsa.point_to_bytes(point)) == point


@given(st.integers(min_value=1, max_value=MAX_TARGET))
def test_work_positive_and_antitone(target):
    work = work_from_target(target)
    assert work >= 1
    if target > 1:
        assert work_from_target(target - target // 2) >= work


@given(st.integers(min_value=2**16, max_value=MAX_TARGET))
def test_compact_encoding_close_roundtrip(target):
    # Compact encoding is lossy (23-bit mantissa) but must stay within
    # a relative error of 2^-15 and re-encode stably.
    bits = compact_from_target(target)
    decoded = target_from_compact(bits)
    assert abs(decoded - target) <= target / 2**15
    assert compact_from_target(decoded) == bits


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=1, max_size=16))
def test_key_derivation_stable(seed):
    key = PrivateKey.from_seed(seed)
    msg = b"\x09" * 32
    assert key.public_key().verify(msg, key.sign(msg))
