"""NG genesis construction and coin seeding."""

import pytest

from repro.core.genesis import (
    GENESIS_LEADER_KEY,
    make_ng_genesis,
    seed_genesis_coins,
)
from repro.crypto.keys import PrivateKey
from repro.ledger.errors import DoubleSpend
from repro.ledger.utxo import UtxoSet


def test_genesis_deterministic():
    assert make_ng_genesis().hash == make_ng_genesis().hash


def test_genesis_carries_wellknown_leader_key():
    genesis = make_ng_genesis()
    assert (
        genesis.header.leader_pubkey
        == GENESIS_LEADER_KEY.public_key().to_bytes()
    )


def test_genesis_custom_leader_key():
    custom = PrivateKey.from_seed("my-testnet")
    genesis = make_ng_genesis(leader_key=custom)
    assert genesis.header.leader_pubkey == custom.public_key().to_bytes()
    assert genesis.hash != make_ng_genesis().hash


def test_seed_genesis_coins_credits_balances():
    utxo = UtxoSet()
    alice, bob = bytes(20), bytes(range(20))
    outpoints = seed_genesis_coins(utxo, [(alice, 100), (bob, 50)])
    assert len(outpoints) == 2
    assert utxo.balance(alice) == 100
    assert utxo.balance(bob) == 50
    assert utxo.total_value() == 150


def test_seed_genesis_coins_identical_across_nodes():
    a, b = UtxoSet(), UtxoSet()
    allocation = [(bytes(20), 75)]
    outpoints_a = seed_genesis_coins(a, allocation)
    outpoints_b = seed_genesis_coins(b, allocation)
    assert outpoints_a == outpoints_b
    assert a.snapshot() == b.snapshot()


def test_seed_genesis_coins_salt_separates_networks():
    utxo = UtxoSet()
    first = seed_genesis_coins(utxo, [(bytes(20), 1)], salt=b"net-a")
    second = seed_genesis_coins(utxo, [(bytes(20), 1)], salt=b"net-b")
    assert first[0].txid != second[0].txid


def test_seed_genesis_coins_rejects_double_seed():
    utxo = UtxoSet()
    seed_genesis_coins(utxo, [(bytes(20), 1)])
    with pytest.raises(DoubleSpend):
        seed_genesis_coins(utxo, [(bytes(20), 1)])
