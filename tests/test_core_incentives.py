"""The Section 5 closed-form incentive analysis."""

import pytest

from repro.core.incentives import (
    BYZANTINE_BOUND,
    OPTIMAL_NETWORK_BOUND,
    IncentiveWindow,
    critical_alpha,
    extension_deviation_revenue,
    extension_honest_revenue,
    incentive_window,
    inclusion_deviation_revenue,
    inclusion_honest_revenue,
    is_incentive_compatible,
    max_leader_fraction,
    min_leader_fraction,
)


def test_paper_headline_window():
    # "we obtain r_leader > 37%" and "< 43%, hence 40% is within range".
    window = incentive_window(BYZANTINE_BOUND)
    assert window.lower == pytest.approx(0.3684, abs=1e-3)
    assert window.upper == pytest.approx(0.4286, abs=1e-3)
    assert window.contains(0.40)
    assert window.feasible


def test_optimal_network_window_empty():
    # At α = 1/3: r > 45% and r < 40% — "leaving no intersection".
    window = incentive_window(OPTIMAL_NETWORK_BOUND)
    assert window.lower == pytest.approx(0.4545, abs=1e-3)
    assert window.upper == pytest.approx(0.40, abs=1e-3)
    assert not window.feasible
    assert window.width == 0.0


def test_bounds_at_zero_attacker():
    assert min_leader_fraction(0.0) == pytest.approx(0.0)
    assert max_leader_fraction(0.0) == pytest.approx(0.5)


def test_window_shrinks_with_attacker_size():
    small = incentive_window(0.1)
    large = incentive_window(0.25)
    assert small.width > large.width


def test_inclusion_inequality_at_boundary():
    # The deviation revenue equals the honest revenue exactly at the
    # closed-form bound.
    alpha = 0.25
    r_star = min_leader_fraction(alpha)
    assert inclusion_deviation_revenue(alpha, r_star) == pytest.approx(
        inclusion_honest_revenue(r_star)
    )


def test_extension_inequality_at_boundary():
    alpha = 0.25
    r_star = max_leader_fraction(alpha)
    assert extension_deviation_revenue(alpha, r_star) == pytest.approx(
        extension_honest_revenue(r_star)
    )


def test_paper_choice_is_compatible():
    assert is_incentive_compatible(0.25, 0.40)


def test_extremes_not_compatible():
    assert not is_incentive_compatible(0.25, 0.30)  # below the window
    assert not is_incentive_compatible(0.25, 0.50)  # above the window


def test_critical_alpha_for_paper_r():
    # r = 40% stays safe a little beyond 1/4.
    alpha_star = critical_alpha(0.40)
    assert 0.25 < alpha_star < 0.34
    assert is_incentive_compatible(alpha_star - 1e-6, 0.40)
    assert not is_incentive_compatible(alpha_star + 1e-3, 0.40)


def test_critical_alpha_for_infeasible_r():
    assert critical_alpha(0.0) == 0.0  # inclusion deviation always wins


def test_input_validation():
    with pytest.raises(ValueError):
        min_leader_fraction(1.0)
    with pytest.raises(ValueError):
        max_leader_fraction(-0.1)
    with pytest.raises(ValueError):
        inclusion_deviation_revenue(0.25, 1.5)
    with pytest.raises(ValueError):
        critical_alpha(-0.1)


def test_ties_with_a_deviation_are_not_compatible():
    # Compatibility demands the honest strategy *strictly* dominate.
    # At (alpha=0, r=0) the inclusion deviation earns exactly the
    # honest revenue (both zero); at (alpha=0, r=0.5) the extension
    # deviation does (both exactly one half).  Indifferent miners
    # cannot be assumed honest, so neither point is compatible.
    assert not is_incentive_compatible(0.0, 0.0)
    assert not is_incentive_compatible(0.0, 0.5)


def test_empty_window_is_not_feasible():
    window = IncentiveWindow(alpha=0.25, lower=0.4, upper=0.4)
    assert not window.feasible
