"""Key pairs, base58check, and addresses."""

import pytest

from repro.crypto.keys import (
    BadAddress,
    PrivateKey,
    PublicKey,
    address_from_pubkey_hash,
    base58check_decode,
    base58check_encode,
    pubkey_hash_from_address,
)


def test_seeded_keys_deterministic():
    assert PrivateKey.from_seed("a").secret == PrivateKey.from_seed("a").secret
    assert PrivateKey.from_seed("a").secret != PrivateKey.from_seed("b").secret


def test_seed_accepts_bytes_and_str():
    assert PrivateKey.from_seed("x").secret == PrivateKey.from_seed(b"x").secret


def test_sign_verify_through_key_objects():
    key = PrivateKey.from_seed("signer")
    msg = b"\x22" * 32
    sig = key.sign(msg)
    assert len(sig) == 64
    assert key.public_key().verify(msg, sig)
    assert not key.public_key().verify(b"\x23" * 32, sig)


def test_verify_tolerates_malformed_signature():
    key = PrivateKey.from_seed("signer")
    assert not key.public_key().verify(b"\x22" * 32, b"short")


def test_private_key_range_check():
    with pytest.raises(ValueError):
        PrivateKey(0)


def test_pubkey_bytes_roundtrip():
    pub = PrivateKey.from_seed("rt").public_key()
    assert PublicKey.from_bytes(pub.to_bytes()) == pub
    assert len(pub.to_bytes()) == 33


def test_base58check_roundtrip():
    payload = bytes(range(20))
    encoded = base58check_encode(0, payload)
    version, decoded = base58check_decode(encoded)
    assert version == 0
    assert decoded == payload


def test_base58check_detects_corruption():
    encoded = base58check_encode(0, bytes(20))
    corrupted = ("2" if encoded[-1] != "2" else "3") + encoded[1:]
    with pytest.raises(BadAddress):
        base58check_decode(corrupted)


def test_base58check_rejects_bad_characters():
    with pytest.raises(BadAddress):
        base58check_decode("0OIl")  # characters excluded from base58


def test_address_roundtrip():
    pkh = bytes(range(100, 120))
    address = address_from_pubkey_hash(pkh)
    assert pubkey_hash_from_address(address) == pkh


def test_address_version_zero_starts_with_1():
    address = PrivateKey.from_seed("addr").public_key().address()
    assert address.startswith("1")


def test_address_from_bad_hash_length():
    with pytest.raises(BadAddress):
        address_from_pubkey_hash(bytes(19))


def test_leading_zero_preservation():
    payload = b"\x00\x00" + bytes(18)
    encoded = base58check_encode(0, payload)
    _, decoded = base58check_decode(encoded)
    assert decoded == payload
