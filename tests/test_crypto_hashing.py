"""Hash primitive behaviour and known-answer checks."""

import hashlib

from repro.crypto.hashing import (
    DIGEST_SIZE,
    hash160,
    hash_to_int,
    sha256,
    sha256d,
    tagged_hash,
)


def test_sha256_matches_stdlib():
    assert sha256(b"abc") == hashlib.sha256(b"abc").digest()


def test_sha256d_is_double_hash():
    inner = hashlib.sha256(b"block").digest()
    assert sha256d(b"block") == hashlib.sha256(inner).digest()


def test_sha256d_known_vector():
    # Bitcoin's "hello" double-SHA vector.
    expected = "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
    assert sha256d(b"hello").hex() == expected


def test_digest_sizes():
    assert len(sha256(b"")) == DIGEST_SIZE
    assert len(sha256d(b"")) == DIGEST_SIZE
    assert len(tagged_hash("t", b"")) == DIGEST_SIZE
    assert len(hash160(b"")) == 20


def test_tagged_hash_domain_separation():
    assert tagged_hash("keyblock", b"data") != tagged_hash("microblock", b"data")
    assert tagged_hash("keyblock", b"data") != sha256(b"data")


def test_tagged_hash_deterministic():
    assert tagged_hash("x", b"y") == tagged_hash("x", b"y")


def test_hash_to_int_big_endian():
    assert hash_to_int(b"\x00" * 31 + b"\x01") == 1
    assert hash_to_int(b"\x01" + b"\x00" * 31) == 1 << 248


def test_hash_to_int_max():
    assert hash_to_int(b"\xff" * 32) == 2**256 - 1


def test_hash160_distinct_inputs():
    assert hash160(b"a") != hash160(b"b")
