"""The sanitizer: invariant checkers, digest streams, and the bisector.

Three layers of coverage:

* hand-built violating states — each broken invariant trips exactly its
  own INV code and nothing else;
* the runtime — stride sweeps, per-``(code, node)`` dedupe, trace
  emission, digest capture, and clean end-to-end checked runs for all
  three protocols;
* divergence bisection — unit cases cross-checked against a linear
  scan, plus deliberately injected nondeterminism that the bisector
  must pinpoint to the first divergent event and node.
"""

from types import SimpleNamespace

import pytest

from repro.bitcoin.blocks import SyntheticPayload
from repro.bitcoin.chain import TieBreak
from repro.core.blocks import build_key_block, build_microblock
from repro.core.chain import NGChain
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.core.remuneration import build_ng_coinbase, split_fee
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.experiments import ExperimentConfig, run_experiment
from repro.ledger.mempool import Mempool
from repro.ledger.transactions import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
)
from repro.ledger.utxo import UtxoSet
from repro.mining.scheduler import MiningScheduler
from repro.sanitizer import (
    DigestSnapshot,
    NodeDigest,
    SanitizerRuntime,
    find_divergence,
    ng_checkers,
    node_digest,
)
from repro.sanitizer.checkers import TipMonotonicity
from repro.sanitizer.digests import load_stream, save_stream

PARAMS = NGParams(key_block_interval=100.0, min_microblock_interval=10.0)
GENESIS = make_ng_genesis()
ALICE = PrivateKey.from_seed("alice")
BOB = PrivateKey.from_seed("bob")
FEE_PER_TX = 1_000
PKH = hash160(b"payee")


def _key(prev, key, t, miner=1, coinbase=None):
    if coinbase is None:
        coinbase = build_ng_coinbase(
            miner_id=miner,
            timestamp=t,
            self_pubkey_hash=hash160(key.public_key().to_bytes()),
            prev_leader_pubkey_hash=None,
            prev_epoch_fees=0,
            params=PARAMS,
        )
    return build_key_block(
        prev_hash=prev,
        timestamp=t,
        bits=0x207FFFFF,
        leader_pubkey=key.public_key().to_bytes(),
        coinbase=coinbase,
    )


def _micro(prev, key, t, salt=b"m", n_tx=3):
    return build_microblock(
        prev_hash=prev,
        timestamp=t,
        payload=SyntheticPayload(n_tx=n_tx, salt=salt),
        leader_key=key,
    )


def _node(chain, params=PARAMS):
    """A minimal NG-shaped node: exactly what the checkers duck-type."""
    return SimpleNamespace(
        node_id=0,
        chain=chain,
        params=params,
        policy=SimpleNamespace(synthetic_fee_per_tx=FEE_PER_TX),
        mempool=Mempool(),
        utxo=UtxoSet(),
        poisons_published=[],
        poison_registry=None,
    )


def _sweep(node):
    """Run the full NG catalog over one node, mirroring the runtime walk."""
    checkers = ng_checkers()
    chain = node.chain
    records = []
    cursor = chain.tip_record
    while cursor is not None:
        records.append(cursor)
        cursor = chain.get(cursor.parent_hash)
    violations = []
    for record in reversed(records):
        for checker in checkers:
            violations.extend(checker.check_block(node, 0, record, 99.0))
    for checker in checkers:
        violations.extend(checker.check_state(node, 0, 99.0))
    return violations


def _codes(violations):
    return {violation.code for violation in violations}


def _epoch_chain(coinbase2=None):
    """genesis -> key1(ALICE) -> microblock (3 tx) -> key2(BOB).

    ``coinbase2`` overrides key2's coinbase; the default one honestly
    closes the epoch (subsidy plus 3 tx of fees, 40% to ALICE).
    """
    chain = NGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    micro = _micro(key1.hash, ALICE, 20.0)
    chain.add_block(micro, 20.0)
    if coinbase2 is None:
        coinbase2 = build_ng_coinbase(
            miner_id=2,
            timestamp=30.0,
            self_pubkey_hash=hash160(BOB.public_key().to_bytes()),
            prev_leader_pubkey_hash=hash160(ALICE.public_key().to_bytes()),
            prev_epoch_fees=3 * FEE_PER_TX,
            params=PARAMS,
        )
    key2 = _key(micro.hash, BOB, 30.0, miner=2, coinbase=coinbase2)
    chain.add_block(key2, 30.0)
    return chain


# -- invariant checkers against hand-built states -----------------------------


def test_honest_epoch_chain_is_clean():
    assert _sweep(_node(_epoch_chain())) == []


def test_overpaying_fee_split_trips_only_inv102():
    # Total minted value is conserved, but 500 satoshis of BOB's 60%
    # share were shifted to ALICE — INV102 without INV101.
    fees = 3 * FEE_PER_TX
    prev_cut, self_cut = split_fee(fees, PARAMS.leader_fee_fraction)
    coinbase = make_coinbase(
        [
            (hash160(BOB.public_key().to_bytes()),
             PARAMS.key_block_reward + self_cut - 500),
            (hash160(ALICE.public_key().to_bytes()), prev_cut + 500),
        ],
        tag=b"overpay",
    )
    violations = _sweep(_node(_epoch_chain(coinbase)))
    assert _codes(violations) == {"INV102"}
    snapshot = dict(violations[0].snapshot)
    assert snapshot["paid"] == prev_cut + 500
    assert snapshot["expected"] == prev_cut


def test_inflating_coinbase_trips_only_inv101():
    # The previous leader's share is exact, but the new leader mints 7
    # satoshis out of thin air — INV101 without INV102.
    fees = 3 * FEE_PER_TX
    prev_cut, self_cut = split_fee(fees, PARAMS.leader_fee_fraction)
    coinbase = make_coinbase(
        [
            (hash160(BOB.public_key().to_bytes()),
             PARAMS.key_block_reward + self_cut + 7),
            (hash160(ALICE.public_key().to_bytes()), prev_cut),
        ],
        tag=b"inflate",
    )
    violations = _sweep(_node(_epoch_chain(coinbase)))
    assert _codes(violations) == {"INV101"}
    snapshot = dict(violations[0].snapshot)
    assert snapshot["minted"] == snapshot["expected"] + 7


def test_premature_coinbase_spend_trips_only_inv103():
    node = _node(NGChain(GENESIS, PARAMS))
    coinbase = make_coinbase([(PKH, 5_000)], tag=b"fresh")
    node.utxo.apply(coinbase, height=0)
    # Mempool.add does not validate maturity — that is the hole the
    # sanitizer's state sweep covers.
    spend = Transaction(
        inputs=(TxInput(OutPoint(coinbase.txid, 0)),),
        outputs=(TxOutput(4_000, PKH),),
    )
    node.mempool.add(spend, fee=1_000)
    violations = _sweep(node)
    assert _codes(violations) == {"INV103"}
    assert dict(violations[0].snapshot)["maturity"] == 100


def test_wrong_key_microblock_trips_only_inv104():
    chain = NGChain(GENESIS, PARAMS)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    forged = _micro(key1.hash, BOB, 20.0)
    chain.add_block(forged, 20.0, check_signature=False)
    assert _codes(_sweep(_node(chain))) == {"INV104"}


def test_fast_microblocks_trip_only_inv105():
    # The chain itself is permissive; the node's protocol params are
    # not — the checker judges by what the node claims to enforce.
    loose = NGParams(key_block_interval=100.0, min_microblock_interval=0.5)
    chain = NGChain(GENESIS, loose)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    chain.add_block(_micro(key1.hash, ALICE, 11.0), 11.0)
    assert _codes(_sweep(_node(chain))) == {"INV105"}


def test_oversized_microblock_trips_only_inv106():
    chain = NGChain(GENESIS, PARAMS)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    micro = _micro(key1.hash, ALICE, 20.0)
    chain.add_block(micro, 20.0)
    strict = NGParams(
        key_block_interval=100.0,
        min_microblock_interval=10.0,
        max_microblock_bytes=micro.size - 1,
    )
    assert _codes(_sweep(_node(chain, params=strict))) == {"INV106"}


def test_corrupted_chain_weight_trips_only_inv107():
    chain = _epoch_chain()
    chain.tip_record.cumulative_work += 5
    assert _codes(_sweep(_node(chain))) == {"INV107"}


def test_bogus_poison_proof_trips_only_inv108():
    node = _node(_epoch_chain())
    node.poisons_published = [
        SimpleNamespace(
            proof=SimpleNamespace(
                pruned_micro=SimpleNamespace(hash=b"\x07" * 32),
                verify=lambda: False,
            )
        )
    ]
    assert _codes(_sweep(node)) == {"INV108"}


def test_tip_weight_decrease_trips_inv109():
    long_chain = NGChain(GENESIS, PARAMS)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    long_chain.add_block(key1, 10.0)
    key2 = _key(key1.hash, BOB, 30.0, miner=2)
    long_chain.add_block(key2, 30.0)
    short_chain = NGChain(GENESIS, PARAMS)
    short_chain.add_block(key1, 10.0)

    checker = TipMonotonicity()
    node = _node(long_chain)
    assert checker.check_state(node, 0, 30.0) == []
    node.chain = short_chain  # a rollback no fork-choice rule allows
    violations = checker.check_state(node, 0, 31.0)
    assert _codes(violations) == {"INV109"}
    snapshot = dict(violations[0].snapshot)
    assert snapshot["weight"] < snapshot["previous"]


def test_missing_fee_record_trips_only_inv110():
    node = _node(_epoch_chain())
    node.utxo.credit(TxOutput(9_000, PKH), OutPoint(b"\x01" * 32, 0))
    spend = Transaction(
        inputs=(TxInput(OutPoint(b"\x01" * 32, 0)),),
        outputs=(TxOutput(8_000, PKH),),
    )
    node.mempool.add(spend, fee=1_000)
    assert _sweep(node) == []  # consistent pool is clean
    del node.mempool._fees[spend.txid]
    assert _codes(_sweep(node)) == {"INV110"}


# -- the runtime --------------------------------------------------------------


class _FakeSim:
    def __init__(self):
        self.now = 0.0
        self.probe = None

    def set_probe(self, probe):
        self.probe = probe


class _Recorder:
    def __init__(self):
        self.events = []

    def emit(self, ev, t, **fields):
        self.events.append((ev, t, fields))


def _forged_micro_node():
    chain = NGChain(GENESIS, PARAMS)
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    chain.add_block(_micro(key1.hash, BOB, 20.0), 20.0, check_signature=False)
    return _node(chain)


def test_runtime_dedupes_and_emits_trace_events():
    sim = _FakeSim()
    recorder = _Recorder()
    runtime = SanitizerRuntime(ng_checkers(), stride=1, tracer=recorder)
    runtime.install(sim, [_forged_micro_node()])
    sim.probe()
    sim.probe()  # same broken state swept twice
    assert [violation.code for violation in runtime.violations] == ["INV104"]
    traced = [event for event in recorder.events if event[0] == "invariant_violation"]
    assert len(traced) == 1
    assert traced[0][2]["code"] == "INV104"
    runtime.finalize()
    assert sim.probe is None  # detached


def test_runtime_captures_digests_on_stride_and_finalize():
    sim = _FakeSim()
    chain = _epoch_chain()
    runtime = SanitizerRuntime((), stride=1, digest_stride=2)
    runtime.install(sim, [_node(chain)])
    for _ in range(5):
        sim.probe()
    runtime.finalize()
    assert [snapshot.index for snapshot in runtime.digests] == [2, 4, 5]
    digest = runtime.digests[-1].digests[0]
    assert digest.weight == chain.tip_record.cumulative_work
    assert digest.height == 3


def test_node_digest_fingerprints_ledger_state():
    node = _node(_epoch_chain())
    before = node_digest(node, 0)
    node.utxo.credit(TxOutput(1_000, PKH), OutPoint(b"\x02" * 32, 0))
    after = node_digest(node, 0)
    assert before.tip == after.tip
    assert before.utxo != after.utxo
    assert before.mempool == after.mempool


CHECKED = dict(
    n_nodes=10,
    target_blocks=10,
    target_key_blocks=4,
    block_rate=0.2,
    block_size_bytes=5_000,
    key_block_rate=0.05,
    cooldown=10.0,
    seed=11,
)


@pytest.mark.parametrize("protocol", ["bitcoin", "bitcoin-ng", "ghost"])
def test_checked_run_is_clean(protocol):
    config = ExperimentConfig(
        protocol=protocol, check=True, check_stride=32, **CHECKED
    )
    result, _log = run_experiment(config)
    assert len(result.violations) == 0
    assert result.violations == ()


# -- digest streams -----------------------------------------------------------


def _digest(node, tip, weight=1):
    return NodeDigest(
        node=node, tip=tip, weight=weight, height=1, mempool="-", utxo="-"
    )


def _snap(index, *tips):
    return DigestSnapshot(
        index=index,
        time=float(index),
        digests=tuple(_digest(i, tip) for i, tip in enumerate(tips)),
    )


def test_stream_round_trips_through_jsonl(tmp_path):
    snapshots = [_snap(64, "aaa", "bbb"), _snap(128, "ccc", "ddd")]
    path = tmp_path / "stream.jsonl"
    save_stream(path, snapshots, meta={"seed": 7})
    assert load_stream(path) == snapshots


def test_stream_rejects_foreign_and_empty_files(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_stream(empty)
    foreign = tmp_path / "foreign.jsonl"
    foreign.write_text('{"kind": "trace"}\n')
    with pytest.raises(ValueError, match="not a digest stream"):
        load_stream(foreign)
    future = tmp_path / "future.jsonl"
    future.write_text('{"kind": "digest_stream", "v": 99}\n')
    with pytest.raises(ValueError, match="version"):
        load_stream(future)


# -- the bisector -------------------------------------------------------------


def test_identical_streams_have_no_divergence():
    stream = [_snap(i * 64, "aaa", "bbb") for i in range(6)]
    assert find_divergence(stream, list(stream)) is None


def test_length_mismatch_after_identical_prefix():
    stream = [_snap(i * 64, "aaa") for i in range(4)]
    divergence = find_divergence(stream, stream + [_snap(256, "aaa")])
    assert divergence is not None
    assert divergence.index == 4
    assert divergence.node == -1
    assert "different lengths" in divergence.format()


def test_mid_stream_divergence_names_snapshot_and_node():
    a = [_snap(i * 64, "aaa", "bbb") for i in range(6)]
    b = list(a)
    b[3] = DigestSnapshot(
        index=b[3].index,
        time=b[3].time,
        digests=(b[3].digests[0], _digest(1, "XXX")),
    )
    divergence = find_divergence(a, b)
    assert divergence is not None
    assert divergence.index == 3
    assert divergence.event_index == 3 * 64
    assert divergence.node == 1
    assert divergence.a.tip == "bbb"
    assert divergence.b.tip == "XXX"
    assert "node 1" in divergence.format()


def test_bisection_matches_linear_scan_for_every_split_point():
    length = 9
    for first_bad in range(length):
        a = [_snap(i * 64, "aaa", "bbb") for i in range(length)]
        b = [
            _snap(i * 64, "aaa", "bbb" if i < first_bad else "zzz")
            for i in range(length)
        ]
        linear = next(i for i in range(length) if a[i] != b[i])
        divergence = find_divergence(a, b)
        assert divergence is not None
        assert divergence.index == linear == first_bad
        assert divergence.node == 1


# -- injected nondeterminism, end to end --------------------------------------


def _digest_stream(config, stride=16):
    runtime = SanitizerRuntime((), digest_stride=stride)
    run_experiment(config, sanitizer=runtime)
    return runtime.digests


def test_injected_nondeterminism_is_bisected_to_event_and_node(monkeypatch):
    config = ExperimentConfig(protocol="bitcoin-ng", **CHECKED)
    clean = _digest_stream(config)
    assert len(clean) > 3
    assert find_divergence(clean, _digest_stream(config)) is None

    # Inject a race: from the third block on, a different miner wins.
    # Event timing is untouched, so the bisector must localize the
    # divergence through state digests, not timestamps.
    original = MiningScheduler._pick_winner
    wins = {"count": 0}

    def racy(self):
        wins["count"] += 1
        winner = original(self)
        if wins["count"] >= 3:
            winner = (winner + 1) % len(self._powers)
        return winner

    monkeypatch.setattr(MiningScheduler, "_pick_winner", racy)
    tampered = _digest_stream(config)

    divergence = find_divergence(clean, tampered)
    assert divergence is not None
    linear = next(
        i
        for i in range(min(len(clean), len(tampered)))
        if clean[i] != tampered[i]
    )
    assert divergence.index == linear
    assert divergence.node >= 0
    assert divergence.event_index == clean[linear].index
    assert divergence.a is not None and divergence.b is not None
    assert divergence.a != divergence.b
