"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_run_command(capsys):
    code = main(
        [
            "run",
            "--protocol", "bitcoin",
            "--nodes", "15",
            "--blocks", "10",
            "--block-rate", "0.1",
            "--block-size", "5000",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mining_power_utilization" in out
    assert "blocks generated" in out


def test_run_ng_command(capsys):
    code = main(
        [
            "run",
            "--protocol", "bitcoin-ng",
            "--nodes", "15",
            "--blocks", "10",
            "--block-rate", "0.2",
            "--key-block-rate", "0.05",
            "--block-size", "5000",
        ]
    )
    assert code == 0
    assert "consensus_delay" in capsys.readouterr().out


def test_incentives_command(capsys):
    code = main(["incentives", "--alpha", "0.25"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0.3684" in out
    assert "0.4286" in out
    assert "True" in out


def test_incentives_optimal_network(capsys):
    main(["incentives", "--alpha", "0.3333"])
    out = capsys.readouterr().out
    assert "feasible:                False" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--protocol", "dogecoin"])


def test_run_with_trace_export(tmp_path, capsys):
    trace = tmp_path / "t.json"
    code = main(
        [
            "run",
            "--protocol", "bitcoin",
            "--nodes", "12",
            "--blocks", "8",
            "--block-rate", "0.1",
            "--block-size", "3000",
            "--save-trace", str(trace),
        ]
    )
    assert code == 0
    assert trace.exists()
    from repro.metrics import load_trace

    log = load_trace(trace)
    assert log.n_nodes == 12


def test_sweep_with_chart(capsys):
    code = main(
        ["sweep", "frequency", "--nodes", "10", "--blocks", "6",
         "--chart", "mining_power_utilization"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mining_power_utilization vs" in out
