"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_run_command(capsys):
    code = main(
        [
            "run",
            "--protocol", "bitcoin",
            "--nodes", "15",
            "--blocks", "10",
            "--block-rate", "0.1",
            "--block-size", "5000",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mining_power_utilization" in out
    assert "blocks generated" in out


def test_run_ng_command(capsys):
    code = main(
        [
            "run",
            "--protocol", "bitcoin-ng",
            "--nodes", "15",
            "--blocks", "10",
            "--block-rate", "0.2",
            "--key-block-rate", "0.05",
            "--block-size", "5000",
        ]
    )
    assert code == 0
    assert "consensus_delay" in capsys.readouterr().out


def test_incentives_command(capsys):
    code = main(["incentives", "--alpha", "0.25"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0.3684" in out
    assert "0.4286" in out
    assert "True" in out


def test_incentives_optimal_network(capsys):
    main(["incentives", "--alpha", "0.3333"])
    out = capsys.readouterr().out
    assert "feasible:                False" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_check_flag_parses_bare_and_with_mode():
    parser = build_parser()
    assert parser.parse_args(["run"]).check is None
    assert parser.parse_args(["run", "--check"]).check == "incremental"
    assert parser.parse_args(["run", "--check", "full"]).check == "full"
    assert parser.parse_args(["run", "--check", "audit"]).check == "audit"
    assert (
        parser.parse_args(["sweep", "frequency", "--check", "full"]).check
        == "full"
    )
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--check", "bogus"])


def test_run_checked_json_reports_mode_and_violations(capsys):
    import json

    code = main(
        [
            "run",
            "--protocol", "bitcoin-ng",
            "--nodes", "10",
            "--blocks", "8",
            "--block-rate", "0.2",
            "--key-block-rate", "0.05",
            "--block-size", "3000",
            "--check", "audit",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["check_mode"] == "audit"
    assert payload["invariant_violations"] == 0
    assert payload["violations"] == []


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--protocol", "dogecoin"])


def test_run_with_trace_export(tmp_path, capsys):
    trace = tmp_path / "t.json"
    code = main(
        [
            "run",
            "--protocol", "bitcoin",
            "--nodes", "12",
            "--blocks", "8",
            "--block-rate", "0.1",
            "--block-size", "3000",
            "--save-trace", str(trace),
        ]
    )
    assert code == 0
    assert trace.exists()
    from repro.metrics import load_trace

    log = load_trace(trace)
    assert log.n_nodes == 12


def test_run_json_output(capsys):
    import json

    code = main(
        [
            "run",
            "--protocol", "bitcoin",
            "--nodes", "12",
            "--blocks", "8",
            "--block-rate", "0.1",
            "--block-size", "3000",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["protocol"] == "bitcoin"
    assert payload["config"]["n_nodes"] == 12
    assert set(payload["metrics"]) >= {
        "consensus_delay", "fairness", "mining_power_utilization",
    }
    assert payload["events_processed"] > 0
    assert payload["events_per_sec"] > 0
    # Rate is timed over the simulate phase only.
    assert payload["events_per_sec"] == pytest.approx(
        payload["events_processed"] / payload["wall_simulate_seconds"],
        rel=1e-6,
    )
    assert "obs" not in payload  # not enabled on this run


def test_run_obs_then_trace_subcommands(tmp_path, capsys):
    obs_dir = tmp_path / "obs"
    code = main(
        [
            "run",
            "--protocol", "bitcoin-ng",
            "--nodes", "12",
            "--blocks", "8",
            "--block-rate", "0.2",
            "--key-block-rate", "0.05",
            "--block-size", "3000",
            "--obs", str(obs_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "obs trace:" in out
    traces = list(obs_dir.glob("*.trace.jsonl"))
    assert len(traces) == 1
    assert len(list(obs_dir.glob("*.metrics.json"))) == 1

    assert main(["trace", "summarize", str(obs_dir)]) == 0
    summary = capsys.readouterr().out
    assert traces[0].name in summary
    assert "blocks generated:" in summary
    assert "leader epochs:" in summary

    assert main(["trace", "timeline", str(obs_dir), "--buckets", "5"]) == 0
    timeline = capsys.readouterr().out
    assert len(timeline.strip().splitlines()) == 7  # name + header + 5 rows

    assert main(["trace", "toptalkers", str(obs_dir), "--top", "3"]) == 0
    talkers = capsys.readouterr().out
    assert "bytes out" in talkers


def test_run_obs_json_includes_snapshot(tmp_path, capsys):
    import json

    code = main(
        [
            "run",
            "--protocol", "bitcoin",
            "--nodes", "12",
            "--blocks", "6",
            "--block-rate", "0.1",
            "--block-size", "3000",
            "--obs", str(tmp_path),
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["obs"]["snapshot_version"] == 1
    assert "net_messages_sent" in payload["obs"]["metrics"]


def test_trace_errors_on_missing_path(tmp_path, capsys):
    code = main(["trace", "summarize", str(tmp_path / "nowhere")])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_sweep_with_chart(capsys):
    code = main(
        ["sweep", "frequency", "--nodes", "10", "--blocks", "6",
         "--chart", "mining_power_utilization"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mining_power_utilization vs" in out


def _write_scenario(tmp_path, spec):
    import json

    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(spec), encoding="utf-8")
    return path


def test_run_with_scenario_and_obs_shows_faults(tmp_path, capsys):
    scenario = _write_scenario(
        tmp_path,
        {
            "version": 1,
            "name": "cli-crash",
            "faults": [
                {"at": 15.0, "kind": "crash", "node": 2, "down_for": 20.0},
                {"at": 45.0, "kind": "loss", "rate": 0.05},
                {"at": 55.0, "kind": "loss", "rate": 0.0},
            ],
        },
    )
    obs_dir = tmp_path / "obs"
    code = main(
        [
            "run",
            "--protocol", "bitcoin-ng",
            "--nodes", "12",
            "--blocks", "8",
            "--block-rate", "0.2",
            "--key-block-rate", "0.05",
            "--block-size", "3000",
            "--scenario", str(scenario),
            "--obs", str(obs_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "scenario:                cli-crash" in out
    assert "faults injected:         3" in out

    # Fault events land in the trace and surface in the analyzers.
    assert main(["trace", "summarize", str(obs_dir)]) == 0
    summary = capsys.readouterr().out
    assert "faults injected:" in summary
    assert "node_crash=1" in summary
    assert "node_restart=1" in summary
    assert "msg_loss=2" in summary

    assert main(["trace", "timeline", str(obs_dir), "--buckets", "6"]) == 0
    timeline = capsys.readouterr().out
    assert "faults" in timeline.splitlines()[1]  # header gains the column


def test_run_with_scenario_json_output(tmp_path, capsys):
    import json

    scenario = _write_scenario(
        tmp_path,
        {"version": 1, "name": "j", "faults": [{"at": 5.0, "kind": "heal"}]},
    )
    code = main(
        [
            "run",
            "--protocol", "bitcoin",
            "--nodes", "10",
            "--blocks", "5",
            "--block-rate", "0.2",
            "--block-size", "2000",
            "--scenario", str(scenario),
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "j"
    assert payload["faults_injected"] == 1


def test_run_with_invalid_scenario_fails_loudly(tmp_path, capsys):
    scenario = _write_scenario(tmp_path, {"version": 1, "faults": [{"at": 1}]})
    with pytest.raises(SystemExit):
        main(
            [
                "run",
                "--protocol", "bitcoin",
                "--scenario", str(scenario),
            ]
        )


def test_sweep_with_scenario(tmp_path, capsys):
    scenario = _write_scenario(
        tmp_path,
        {
            "version": 1,
            "name": "sweep-loss",
            "faults": [{"at": 10.0, "kind": "loss", "rate": 0.02}],
        },
    )
    code = main(
        [
            "sweep", "frequency",
            "--nodes", "10",
            "--blocks", "4",
            "--jobs", "1",
            "--scenario", str(scenario),
        ]
    )
    assert code == 0
    assert "sweep-loss" in capsys.readouterr().out
