"""Link bandwidth, latency, and FIFO queuing."""

import pytest

from repro.net.links import Link


def test_latency_only_for_empty_message():
    link = Link(latency=0.1, bandwidth=1000)
    assert link.transfer(now=0.0, size_bytes=0) == pytest.approx(0.1)


def test_serialization_delay_proportional_to_size():
    link = Link(latency=0.0, bandwidth=1000)
    assert link.transfer(0.0, 500) == pytest.approx(0.5)


def test_fifo_queuing_for_bulk_messages():
    link = Link(latency=0.1, bandwidth=1000)
    first = link.transfer(0.0, 2000)  # serializes until t=2.0
    second = link.transfer(0.0, 2000)  # queued behind, until t=4.0
    assert first == pytest.approx(2.1)
    assert second == pytest.approx(4.1)


def test_small_messages_interleave_with_bulk():
    # A key-block-sized message does not wait out an 80 kB microblock:
    # packet-level interleaving, as on a real TCP link.
    link = Link(latency=0.1, bandwidth=12_500)
    bulk = link.transfer(0.0, 80_000)  # occupies the link until t=6.4
    urgent = link.transfer(1.0, 200)
    assert bulk == pytest.approx(6.5)
    assert urgent == pytest.approx(1.0 + 200 / 12_500 + 0.1)


def test_interleave_cutoff_configurable():
    strict = Link(latency=0.0, bandwidth=1000, interleave_cutoff=0)
    strict.transfer(0.0, 100)  # even tiny messages queue
    assert strict.transfer(0.0, 100) == pytest.approx(0.2)


def test_idle_link_resets():
    link = Link(latency=0.0, bandwidth=1000)
    link.transfer(0.0, 2000)  # busy until 2.0
    later = link.transfer(5.0, 2000)  # link long idle
    assert later == pytest.approx(7.0)


def test_queue_delay():
    link = Link(latency=0.0, bandwidth=100)
    link.transfer(0.0, 2000)  # busy until 20.0
    assert link.queue_delay(0.5) == pytest.approx(19.5)
    assert link.queue_delay(25.0) == 0.0


def test_statistics():
    link = Link(latency=0.0, bandwidth=100)
    link.transfer(0.0, 10)
    link.transfer(0.0, 20)
    assert link.bytes_sent == 30
    assert link.messages_sent == 2


def test_paper_bandwidth_figure():
    # 100 kbit/s: a 1 MB block takes ~80 s per hop — the core tension
    # the paper's Figure 7 measures.
    link = Link(latency=0.0)
    arrival = link.transfer(0.0, 1_000_000)
    assert arrival == pytest.approx(80.0, rel=0.01)


def test_validation():
    with pytest.raises(ValueError):
        Link(latency=-0.1)
    with pytest.raises(ValueError):
        Link(latency=0.1, bandwidth=0)
    with pytest.raises(ValueError):
        Link(latency=0.1).transfer(0.0, -1)
