"""The wallet: keys, coin selection, payment construction."""

import pytest

from repro.ledger.transactions import OutPoint, TxOutput
from repro.ledger.utxo import UtxoSet
from repro.ledger.validation import validate_spend
from repro.wallet import (
    DUST_THRESHOLD,
    InsufficientFunds,
    Wallet,
    WalletError,
)

MERCHANT = bytes(range(60, 80))


def _funded_wallet(values=(1000, 500, 200), maturity=0):
    wallet = Wallet("test-wallet")
    utxo = UtxoSet(coinbase_maturity=maturity)
    for i, value in enumerate(values):
        utxo.credit(
            TxOutput(value, wallet.pubkey_hash()),
            OutPoint(bytes([i + 1]) * 32, 0),
            height=0,
        )
    return wallet, utxo


def test_deterministic_keys():
    a = Wallet("seed-x")
    b = Wallet("seed-x")
    assert a.address() == b.address()
    assert a.address() != Wallet("seed-y").address()


def test_derive_additional_addresses():
    wallet = Wallet("multi")
    index = wallet.derive_key()
    assert index == 1
    assert wallet.address(0) != wallet.address(1)
    assert wallet.owns(wallet.pubkey_hash(1))
    assert not wallet.owns(bytes(20))


def test_balance():
    wallet, utxo = _funded_wallet()
    assert wallet.balance(utxo) == 1700


def test_spendable_excludes_immature_coinbase():
    wallet = Wallet("maturity")
    utxo = UtxoSet(coinbase_maturity=10)
    from repro.ledger.transactions import make_coinbase

    cb = make_coinbase([(wallet.pubkey_hash(), 100)])
    utxo.apply(cb, height=5)
    assert wallet.spendable_coins(utxo, height=6) == []
    assert wallet.balance(utxo, height=6) == 0
    assert len(wallet.spendable_coins(utxo, height=15)) == 1


def test_build_payment_valid_and_signed():
    wallet, utxo = _funded_wallet()
    tx = wallet.build_payment(
        utxo, [(MERCHANT, 800)], fee=50, height=1
    )
    # Full validation, signatures included.  The 150 of sub-dust change
    # (1000 − 800 − 50 < DUST_THRESHOLD) is absorbed into the fee.
    fee = validate_spend(tx, utxo, height=1)
    assert fee == 200
    assert all(o.pubkey_hash == MERCHANT for o in tx.outputs)
    paid = sum(o.value for o in tx.outputs if o.pubkey_hash == MERCHANT)
    assert paid == 800


def test_change_returns_to_wallet():
    wallet, utxo = _funded_wallet(values=(10_000,))
    tx = wallet.build_payment(utxo, [(MERCHANT, 3000)], fee=100, height=1)
    change = [o for o in tx.outputs if o.pubkey_hash == wallet.pubkey_hash()]
    assert len(change) == 1
    assert change[0].value == 10_000 - 3000 - 100


def test_dust_change_absorbed_into_fee():
    wallet, utxo = _funded_wallet(values=(1000,))
    tx = wallet.build_payment(
        utxo, [(MERCHANT, 1000 - 10 - DUST_THRESHOLD + 1)], fee=10, height=1
    )
    assert all(o.pubkey_hash == MERCHANT for o in tx.outputs)
    # The sub-dust remainder became extra fee.
    fee = validate_spend(tx, utxo, height=1)
    assert fee == 10 + DUST_THRESHOLD - 1


def test_greedy_selection_prefers_large_coins():
    wallet, utxo = _funded_wallet(values=(1000, 500, 200))
    tx = wallet.build_payment(utxo, [(MERCHANT, 900)], fee=0, height=1)
    assert len(tx.inputs) == 1  # the 1000 coin alone suffices


def test_multi_coin_selection():
    wallet, utxo = _funded_wallet(values=(1000, 500, 200))
    tx = wallet.build_payment(utxo, [(MERCHANT, 1400)], fee=50, height=1)
    assert len(tx.inputs) == 2
    validate_spend(tx, utxo, height=1)


def test_insufficient_funds():
    wallet, utxo = _funded_wallet(values=(100,))
    with pytest.raises(InsufficientFunds):
        wallet.build_payment(utxo, [(MERCHANT, 200)], fee=0, height=1)


def test_fee_pushes_over_budget():
    wallet, utxo = _funded_wallet(values=(100,))
    with pytest.raises(InsufficientFunds):
        wallet.build_payment(utxo, [(MERCHANT, 100)], fee=1, height=1)


def test_multi_recipient_payment():
    wallet, utxo = _funded_wallet(values=(10_000,))
    other = bytes(range(80, 100))
    tx = wallet.build_payment(
        utxo, [(MERCHANT, 1000), (other, 2000)], fee=10, height=1
    )
    validate_spend(tx, utxo, height=1)
    assert sum(o.value for o in tx.outputs if o.pubkey_hash == other) == 2000


def test_payment_validation_errors():
    wallet, utxo = _funded_wallet()
    with pytest.raises(WalletError):
        wallet.build_payment(utxo, [], fee=0, height=1)
    with pytest.raises(WalletError):
        wallet.build_payment(utxo, [(MERCHANT, 0)], fee=0, height=1)
    with pytest.raises(WalletError):
        wallet.build_payment(utxo, [(MERCHANT, 10)], fee=-1, height=1)
    with pytest.raises(WalletError):
        Wallet("x", n_keys=0)


def test_multikey_coins_aggregate():
    wallet = Wallet("agg", n_keys=2)
    utxo = UtxoSet(coinbase_maturity=0)
    utxo.credit(TxOutput(300, wallet.pubkey_hash(0)), OutPoint(b"\x01" * 32, 0), 0)
    utxo.credit(TxOutput(400, wallet.pubkey_hash(1)), OutPoint(b"\x02" * 32, 0), 0)
    assert wallet.balance(utxo) == 700
    tx = wallet.build_payment(utxo, [(MERCHANT, 600)], fee=0, height=1)
    assert len(tx.inputs) == 2
    validate_spend(tx, utxo, height=1)  # both keys signed correctly
