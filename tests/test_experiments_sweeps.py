"""Sweep machinery and reporting on miniature configurations."""

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.propagation import (
    linear_fit,
    propagation_samples,
    propagation_study,
)
from repro.experiments.reporting import (
    crossover_summary,
    format_propagation_table,
    format_series,
    format_sweep_table,
)
from repro.experiments.runner import run_experiment
from repro.experiments.sweeps import frequency_sweep, log_spaced, size_sweep

TINY = ExperimentConfig(
    n_nodes=15,
    target_blocks=15,
    target_key_blocks=5,
    cooldown=15.0,
)


@pytest.fixture(scope="module")
def tiny_frequency_sweep():
    return frequency_sweep(TINY, frequencies=(0.02, 0.2))


def test_frequency_sweep_structure(tiny_frequency_sweep):
    sweep = tiny_frequency_sweep
    assert len(sweep.points) == 4  # 2 frequencies × 2 protocols
    assert len(sweep.series(Protocol.BITCOIN)) == 2
    assert len(sweep.series(Protocol.BITCOIN_NG)) == 2


def test_sweep_point_statistics(tiny_frequency_sweep):
    point = tiny_frequency_sweep.points[0]
    low, high = point.extremes("mining_power_utilization")
    assert low <= point.mean("mining_power_utilization") <= high


def test_size_sweep_structure():
    sweep = size_sweep(
        TINY, sizes=(2000, 20_000), protocols=(Protocol.BITCOIN,)
    )
    assert [p.x for p in sweep.points] == [2000.0, 20_000.0]


def test_sweep_table_formatting(tiny_frequency_sweep):
    table = format_sweep_table(tiny_frequency_sweep)
    assert "bitcoin-ng" in table
    assert "Fairness" in table
    assert len(table.splitlines()) == 5


def test_series_formatting(tiny_frequency_sweep):
    series = format_series(tiny_frequency_sweep, "consensus_delay")
    lines = series.splitlines()
    assert len(lines) == 3  # header + 2 x values


def test_crossover_summary(tiny_frequency_sweep):
    summary = crossover_summary(
        tiny_frequency_sweep, "mining_power_utilization", lower_is_better=False
    )
    assert summary.count("@") == 2


def test_log_spaced():
    values = log_spaced(0.01, 1.0, 5)
    assert values[0] == pytest.approx(0.01)
    assert values[-1] == pytest.approx(1.0)
    ratios = [b / a for a, b in zip(values, values[1:])]
    assert all(r == pytest.approx(ratios[0]) for r in ratios)
    with pytest.raises(ValueError):
        log_spaced(1.0, 0.5, 3)


def test_propagation_study_linear():
    points = propagation_study(TINY, sizes=(5_000, 20_000, 60_000))
    assert [p.block_size for p in points] == [5_000, 20_000, 60_000]
    # Larger blocks take longer — the Figure 7 monotone trend.
    assert points[0].p50 < points[-1].p50
    for point in points:
        assert point.p25 <= point.p50 <= point.p75
    slope, intercept, r_squared = linear_fit(points)
    assert slope > 0
    assert r_squared > 0.9
    table = format_propagation_table(points)
    assert "p50" in table and len(table.splitlines()) == 4


def test_propagation_samples_positive():
    result, log = run_experiment(TINY.with_(protocol=Protocol.BITCOIN))
    samples = propagation_samples(log)
    assert samples
    assert all(s >= 0 for s in samples)
