"""Gossip relay: dedup, inv/getdata handshake, flood mode."""

import pytest

from repro.net.gossip import GossipNode, RelayMode, StoredObject
from repro.net.latency import constant_histogram
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.topology import complete_topology, ring_topology


class CountingNode(GossipNode):
    """Gossip node recording delivered objects."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.delivered = []

    def deliver(self, obj: StoredObject, sender):
        self.delivered.append((obj.obj_id, sender, self.sim.now))


def _mesh(n=5, relay_mode=RelayMode.INV, topo=None, verification=0.0):
    sim = Simulator(seed=0)
    topology = topo or complete_topology(n)
    net = Network(sim, topology, constant_histogram(0.05), bandwidth_bps=1e6)
    nodes = [
        CountingNode(
            i, sim, net, relay_mode=relay_mode,
            verification_seconds_per_byte=verification,
        )
        for i in range(topology.n_nodes)
    ]
    return sim, net, nodes


def test_announce_reaches_everyone_once():
    sim, net, nodes = _mesh(5)
    nodes[0].announce(b"\x01" * 32, "block", "payload", 100)
    sim.run()
    for node in nodes:
        assert len(node.delivered) == 1
        assert node.knows(b"\x01" * 32)


def test_originator_delivery_has_no_sender():
    sim, net, nodes = _mesh(3)
    nodes[0].announce(b"\x02" * 32, "block", None, 10)
    sim.run()
    assert nodes[0].delivered[0][1] is None
    assert nodes[1].delivered[0][1] is not None


def test_object_traverses_multi_hop_ring():
    sim, net, nodes = _mesh(topo=ring_topology(8))
    nodes[0].announce(b"\x03" * 32, "block", None, 50)
    sim.run()
    assert all(len(node.delivered) == 1 for node in nodes)
    # The farthest node (4 hops) hears later than the adjacent one.
    assert nodes[4].delivered[0][2] > nodes[1].delivered[0][2]


def test_inv_mode_does_not_resend_known_objects():
    sim, net, nodes = _mesh(4, relay_mode=RelayMode.INV)
    nodes[0].announce(b"\x04" * 32, "block", None, 10_000)
    sim.run()
    # Each node fetches the body at most once: total object transfers
    # bounded by node count (vs. edges in flood mode).
    object_bytes = 10_000 * (len(nodes) - 1)
    assert net.bytes_delivered < object_bytes + 61 * 50


def test_flood_mode_faster_but_heavier():
    sim_i, net_i, nodes_i = _mesh(6, relay_mode=RelayMode.INV)
    nodes_i[0].announce(b"\x05" * 32, "block", None, 5000)
    sim_i.run()
    inv_time = max(n.delivered[0][2] for n in nodes_i)
    inv_bytes = net_i.bytes_delivered

    sim_f, net_f, nodes_f = _mesh(6, relay_mode=RelayMode.FLOOD)
    nodes_f[0].announce(b"\x05" * 32, "block", None, 5000)
    sim_f.run()
    flood_time = max(n.delivered[0][2] for n in nodes_f)
    flood_bytes = net_f.bytes_delivered

    assert flood_time <= inv_time  # no handshake round trips
    assert flood_bytes >= inv_bytes  # full body on every edge


def test_duplicate_announce_ignored():
    sim, net, nodes = _mesh(3)
    nodes[0].announce(b"\x06" * 32, "block", None, 10)
    nodes[0].announce(b"\x06" * 32, "block", None, 10)
    sim.run()
    assert len(nodes[0].delivered) == 1


def test_verification_delay_slows_relay():
    sim_fast, _, fast = _mesh(topo=ring_topology(6))
    fast[0].announce(b"\x07" * 32, "block", None, 1000)
    sim_fast.run()
    fast_arrival = fast[3].delivered[0][2]

    sim_slow, _, slow = _mesh(topo=ring_topology(6), verification=1e-4)
    slow[0].announce(b"\x07" * 32, "block", None, 1000)
    sim_slow.run()
    slow_arrival = slow[3].delivered[0][2]
    assert slow_arrival > fast_arrival


def test_unknown_protocol_message_dropped():
    sim, net, nodes = _mesh(2)
    from repro.net.network import Message

    net.send(0, 1, Message("weird", None, 5))
    sim.run()
    assert nodes[1].delivered == []


def test_getdata_for_unknown_object_ignored():
    sim, net, nodes = _mesh(2)
    from repro.net.network import Message

    net.send(0, 1, Message("getdata", b"\x08" * 32, 61))
    sim.run()  # node 1 has nothing to serve; no crash, no delivery
    assert nodes[0].delivered == []


class VetoingNode(CountingNode):
    """Rejects every object whose id starts with 0xBB."""

    def deliver(self, obj: StoredObject, sender):
        super().deliver(obj, sender)
        if obj.obj_id[0] == 0xBB:
            return False
        return None


def test_vetoed_objects_not_relayed():
    sim = Simulator(seed=0)
    topology = ring_topology(4)
    net = Network(sim, topology, constant_histogram(0.05), bandwidth_bps=1e6)
    nodes = [VetoingNode(i, sim, net) for i in range(4)]
    bad_id = b"\xbb" * 32
    # Node 0 pushes the object directly to node 1 (bypassing its own
    # veto, as an attacker would).
    from repro.net.gossip import StoredObject as SO
    from repro.net.network import Message

    net.send(0, 1, Message("object", SO(bad_id, "block", None, 50), 50))
    sim.run()
    # Node 1 saw it (and vetoed); its neighbor node 2 never hears of it.
    assert any(obj_id == bad_id for obj_id, _, _ in nodes[1].delivered)
    assert all(obj_id != bad_id for obj_id, _, _ in nodes[2].delivered)
    assert not nodes[1].knows(bad_id)  # dropped from the store


def test_vetoed_object_not_refetched_on_inv():
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(2), constant_histogram(0.05), 1e6)
    nodes = [VetoingNode(i, sim, net) for i in range(2)]
    bad_id = b"\xbb" * 32
    from repro.net.gossip import StoredObject as SO
    from repro.net.network import Message

    net.send(0, 1, Message("object", SO(bad_id, "block", None, 50), 50))
    sim.run()
    deliveries = len(nodes[1].delivered)
    # A later inv for the same id is ignored: no second fetch.
    net.send(0, 1, Message("inv", (bad_id, "block"), 61))
    sim.run()
    assert len(nodes[1].delivered) == deliveries


def test_misbehaving_peer_gets_banned():
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(2), constant_histogram(0.05), 1e6)
    nodes = [VetoingNode(i, sim, net) for i in range(2)]
    from repro.net.gossip import StoredObject as SO
    from repro.net.network import Message

    # Five distinct invalid objects at 20 points each → banned at 100.
    for i in range(5):
        bad_id = b"\xbb" + bytes([i]) * 31
        net.send(0, 1, Message("object", SO(bad_id, "block", None, 10), 10))
        sim.run()
    assert nodes[1].is_banned(0)
    assert nodes[1].misbehavior[0] == 100
    # Further traffic from the banned peer is ignored — even valid.
    good = SO(b"\x01" * 32, "block", None, 10)
    net.send(0, 1, Message("object", good, 10))
    sim.run()
    assert not nodes[1].knows(good.obj_id)


def test_honest_peers_accumulate_no_score():
    sim, net, nodes = _mesh(3)
    nodes[0].announce(b"\x0a" * 32, "block", None, 10)
    sim.run()
    assert all(not node.misbehavior for node in nodes)


def test_locally_announced_invalid_object_not_relayed():
    """The deliver() veto applies to announce, same as the remote path."""
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(3), constant_histogram(0.05), 1e6)
    nodes = [VetoingNode(i, sim, net) for i in range(3)]
    bad_id = b"\xbb" * 32
    nodes[0].announce(bad_id, "block", None, 50)
    sim.run()
    # The originator vetoed its own object: dropped, remembered, never
    # sent — no neighbor ever hears an inv for it.
    assert not nodes[0].knows(bad_id)
    assert all(not node.delivered for node in nodes[1:])
    # And it cannot be re-announced into the store later.
    nodes[0].announce(bad_id, "block", None, 50)
    sim.run()
    assert not nodes[0].knows(bad_id)


def _stall_mesh(request_timeout=5.0):
    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(3), constant_histogram(0.05), 1e6)
    nodes = [
        CountingNode(i, sim, net, request_timeout=request_timeout)
        for i in range(3)
    ]
    return sim, net, nodes


def test_request_timeout_retries_from_alternate_announcer():
    """A getdata lost to churn no longer wedges the object forever.

    Node 0 announces and goes offline before serving; node 2 later
    announces the same object.  Node 1's outstanding request would
    previously swallow node 2's inv permanently — now the timeout
    retries from node 2.
    """
    sim, net, nodes = _stall_mesh()
    obj_id = b"\x42" * 32
    nodes[0].announce(obj_id, "block", None, 100)
    # Invs land at ~0.05; the getdata responses would land at ~0.10.
    # Node 0 churns out in between, so both responses are lost.
    sim.schedule(0.06, lambda: net.set_offline(0))
    sim.schedule(1.0, lambda: nodes[2].announce(obj_id, "block", None, 100))
    sim.run()
    assert nodes[1].knows(obj_id)
    assert any(obj == obj_id for obj, _, _ in nodes[1].delivered)


def test_request_timeout_clears_stuck_requested_entry():
    """After a timeout with no fallback, a fresh inv re-requests."""
    sim, net, nodes = _stall_mesh()
    obj_id = b"\x43" * 32
    nodes[0].announce(obj_id, "block", None, 100)
    sim.schedule(0.06, lambda: net.set_offline(0))
    sim.run()  # requests time out; nobody else has the object yet
    assert not nodes[1].knows(obj_id)
    # Much later, node 2 creates the object and invs go out afresh.
    nodes[2].announce(obj_id, "block", None, 100)
    sim.run()
    assert nodes[1].knows(obj_id)


def test_request_timeout_zero_disables_retry():
    """timeout=0 reproduces the old stalling behaviour (opt-out)."""
    sim, net, nodes = _stall_mesh(request_timeout=0.0)
    obj_id = b"\x44" * 32
    nodes[0].announce(obj_id, "block", None, 100)
    sim.schedule(0.06, lambda: net.set_offline(0))
    sim.schedule(1.0, lambda: nodes[2].announce(obj_id, "block", None, 100))
    sim.run()
    # Node 1's request is wedged forever: node 2's inv was ignored.
    assert not nodes[1].knows(obj_id)


def test_timely_delivery_cancels_retry_timer():
    """A served request leaves no timer behind to fire spuriously."""
    sim, net, nodes = _stall_mesh()
    obj_id = b"\x45" * 32
    nodes[0].announce(obj_id, "block", None, 100)
    sim.run()
    assert all(node.knows(obj_id) for node in nodes)
    assert all(not node._request_timers for node in nodes)
    assert all(not node._alt_sources for node in nodes)
    # Exactly one delivery each despite timers having been armed.
    assert all(len(node.delivered) == 1 for node in nodes)
