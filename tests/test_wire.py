"""Block wire codecs: exact round trips for every block type."""

import pytest

from repro.bitcoin.blocks import SyntheticPayload, TxPayload, build_block, make_genesis
from repro.core.blocks import build_key_block, build_microblock
from repro.core.genesis import make_ng_genesis
from repro.core.remuneration import build_ng_coinbase
from repro.core.params import NGParams
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.encoding import ByteReader, DecodeError, bytes_u16, u8
from repro.ledger.transactions import OutPoint, Transaction, TxInput, TxOutput
from repro.wire import decode, encode, decode_payload, encode_payload

KEY = PrivateKey.from_seed("wire")
PARAMS = NGParams()


def _tx(byte=1):
    return Transaction(
        inputs=(TxInput(OutPoint(bytes([byte]) * 32, 0)),),
        outputs=(TxOutput(7, bytes(20)),),
    ).sign_input(0, KEY)


def _bitcoin_block(payload):
    return build_block(
        prev_hash=make_genesis().hash,
        payload=payload,
        timestamp=123.5,
        bits=0x207FFFFF,
        miner_id=4,
        reward=50,
    )


def test_bitcoin_block_roundtrip_synthetic():
    block = _bitcoin_block(SyntheticPayload(n_tx=7, tx_size=476, salt=b"s"))
    restored = decode(encode(block))
    assert restored == block
    assert restored.hash == block.hash


def test_bitcoin_block_roundtrip_transactions():
    block = _bitcoin_block(TxPayload((_tx(1), _tx(2))))
    restored = decode(encode(block))
    assert restored == block
    assert restored.hash == block.hash


def test_key_block_roundtrip():
    coinbase = build_ng_coinbase(
        miner_id=3,
        timestamp=9.0,
        self_pubkey_hash=hash160(KEY.public_key().to_bytes()),
        prev_leader_pubkey_hash=bytes(20),
        prev_epoch_fees=1000,
        params=PARAMS,
    )
    block = build_key_block(
        prev_hash=make_ng_genesis().hash,
        timestamp=9.0,
        bits=0x207FFFFF,
        leader_pubkey=KEY.public_key().to_bytes(),
        coinbase=coinbase,
        nonce=42,
    )
    restored = decode(encode(block))
    assert restored == block
    assert restored.hash == block.hash


def test_microblock_roundtrip_preserves_signature():
    micro = build_microblock(
        prev_hash=b"\x11" * 32,
        timestamp=55.0,
        payload=SyntheticPayload(n_tx=3, salt=b"micro"),
        leader_key=KEY,
    )
    restored = decode(encode(micro))
    assert restored == micro
    assert restored.verify_signature(KEY.public_key().to_bytes())


def test_microblock_roundtrip_with_transactions():
    micro = build_microblock(
        prev_hash=b"\x11" * 32,
        timestamp=55.0,
        payload=TxPayload((_tx(1), _tx(2), _tx(3))),
        leader_key=KEY,
    )
    restored = decode(encode(micro))
    assert restored == micro
    assert restored.n_tx == 3


def test_payload_codec_direct():
    payload = SyntheticPayload(n_tx=9, tx_size=100, salt=b"x")
    reader = ByteReader(encode_payload(payload))
    assert decode_payload(reader) == payload
    reader.expect_end()


def test_unknown_tags_rejected():
    with pytest.raises(DecodeError):
        decode(u8(99) + bytes(32))
    with pytest.raises(DecodeError):
        decode_payload(ByteReader(u8(42)))


def test_trailing_bytes_rejected():
    block = _bitcoin_block(SyntheticPayload(n_tx=1, salt=b"t"))
    with pytest.raises(DecodeError):
        decode(encode(block) + b"\x00")


def test_truncation_rejected():
    block = _bitcoin_block(SyntheticPayload(n_tx=1, salt=b"t"))
    data = encode(block)
    with pytest.raises(Exception):
        decode(data[: len(data) // 2])


def test_reader_helpers():
    reader = ByteReader(bytes_u16(b"abc") + b"\x07")
    assert reader.bytes_u16() == b"abc"
    assert reader.u8() == 7
    reader.expect_end()
    with pytest.raises(DecodeError):
        reader.u8()


def test_encode_rejects_foreign_objects():
    with pytest.raises(DecodeError):
        encode("not a block")  # type: ignore[arg-type]
