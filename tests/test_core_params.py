"""NG parameter validation and derived rates."""

import pytest

from repro.core.params import PAPER_EVALUATION_PARAMS, NGParams


def test_paper_defaults():
    params = NGParams()
    assert params.leader_fee_fraction == 0.40
    assert params.poison_bounty_fraction == 0.05
    assert params.coinbase_maturity == 100


def test_evaluation_params_match_section_8():
    assert PAPER_EVALUATION_PARAMS.key_block_interval == 100.0
    assert PAPER_EVALUATION_PARAMS.min_microblock_interval == 10.0


def test_derived_rates():
    params = NGParams(key_block_interval=50.0, min_microblock_interval=5.0)
    assert params.key_block_rate == pytest.approx(0.02)
    assert params.microblock_rate == pytest.approx(0.2)


def test_microblock_rate_undefined_without_cap():
    params = NGParams(min_microblock_interval=0.0)
    with pytest.raises(ValueError):
        _ = params.microblock_rate


def test_validation():
    with pytest.raises(ValueError):
        NGParams(key_block_interval=0)
    with pytest.raises(ValueError):
        NGParams(min_microblock_interval=-1)
    with pytest.raises(ValueError):
        NGParams(leader_fee_fraction=1.5)
    with pytest.raises(ValueError):
        NGParams(poison_bounty_fraction=-0.1)
    with pytest.raises(ValueError):
        NGParams(max_microblock_bytes=0)
    with pytest.raises(ValueError):
        NGParams(coinbase_maturity=-1)


def test_frozen():
    params = NGParams()
    with pytest.raises(Exception):
        params.leader_fee_fraction = 0.5  # type: ignore[misc]


def test_boundary_parameter_values_are_legal():
    # Each guard excludes its boundary's bad side only: sub-second key
    # block intervals, a 1-byte microblock cap, and maturity 0 (spend
    # coinbases immediately) are all meaningful configurations.
    assert NGParams(key_block_interval=0.5).key_block_interval == 0.5
    assert NGParams(max_microblock_bytes=1).max_microblock_bytes == 1
    assert NGParams(coinbase_maturity=0).coinbase_maturity == 0


def test_fraction_upper_bounds_enforced():
    with pytest.raises(ValueError):
        NGParams(poison_bounty_fraction=1.5)
    # The closed upper end of [0, 1] itself is legal.
    assert NGParams(poison_bounty_fraction=1.0).poison_bounty_fraction == 1.0
    assert NGParams(leader_fee_fraction=1.0).leader_fee_fraction == 1.0
