"""The NG chain: key-block weight, microblock validity, equivocation."""

import random

import pytest

from repro.bitcoin.blocks import SyntheticPayload
from repro.bitcoin.chain import TieBreak
from repro.core.blocks import InvalidNGBlock, build_key_block, build_microblock
from repro.core.chain import NGChain
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.core.remuneration import build_ng_coinbase
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey

PARAMS = NGParams(key_block_interval=100.0, min_microblock_interval=10.0)
GENESIS = make_ng_genesis()
ALICE = PrivateKey.from_seed("alice")
BOB = PrivateKey.from_seed("bob")


def _chain(tie_break=TieBreak.FIRST_SEEN):
    return NGChain(GENESIS, PARAMS, tie_break=tie_break)


def _key(prev, key, t, miner=1):
    coinbase = build_ng_coinbase(
        miner_id=miner,
        timestamp=t,
        self_pubkey_hash=hash160(key.public_key().to_bytes()),
        prev_leader_pubkey_hash=None,
        prev_epoch_fees=0,
        params=PARAMS,
    )
    return build_key_block(
        prev_hash=prev,
        timestamp=t,
        bits=0x207FFFFF,
        leader_pubkey=key.public_key().to_bytes(),
        coinbase=coinbase,
    )


def _micro(prev, key, t, salt=b"m"):
    return build_microblock(
        prev_hash=prev,
        timestamp=t,
        payload=SyntheticPayload(n_tx=3, salt=salt),
        leader_key=key,
    )


def test_key_block_becomes_tip_and_leader():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    assert chain.tip == key1.hash
    assert chain.current_leader_pubkey() == ALICE.public_key().to_bytes()
    assert chain.tip_record.key_height == 1


def test_microblock_extends_tip_without_weight():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    micro = _micro(key1.hash, ALICE, 20.0)
    chain.add_block(micro, 20.0)
    assert chain.tip == micro.hash
    assert (
        chain.tip_record.cumulative_work
        == chain.record(key1.hash).cumulative_work
    )


def test_microblock_from_non_leader_rejected():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    forged = _micro(key1.hash, BOB, 20.0)
    with pytest.raises(InvalidNGBlock):
        chain.add_block(forged, 20.0)


def test_microblock_rate_limit_enforced():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    too_soon = _micro(key1.hash, ALICE, 15.0)  # < 10 s after predecessor
    with pytest.raises(InvalidNGBlock):
        chain.add_block(too_soon, 15.0)


def test_microblock_exact_interval_allowed():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    exact = _micro(key1.hash, ALICE, 20.0)
    chain.add_block(exact, 20.0)
    assert chain.tip == exact.hash


def test_microblock_future_timestamp_rejected():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 10.0)
    chain.add_block(key1, 10.0)
    future = _micro(key1.hash, ALICE, 500.0)
    with pytest.raises(InvalidNGBlock):
        chain.add_block(future, arrival_time=20.0, local_time=20.0)


def test_new_key_block_prunes_unseen_microblocks():
    # Figure 2: the fork at every leader switch.
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 0.0)
    chain.add_block(key1, 0.0)
    m1 = _micro(key1.hash, ALICE, 10.0, salt=b"1")
    m2 = _micro(m1.hash, ALICE, 20.0, salt=b"2")
    chain.add_block(m1, 10.0)
    chain.add_block(m2, 20.0)
    # Bob mined on m1, not having seen m2.
    key2 = _key(m1.hash, BOB, 21.0, miner=2)
    reorgs = chain.add_block(key2, 21.0)
    assert chain.tip == key2.hash
    assert m2.hash in chain.pruned_blocks()
    assert any(m2.hash in reorg.disconnected for reorg in reorgs)


def test_key_block_fork_first_seen():
    # Figure 3: competing key blocks, equal weight.
    chain = _chain(tie_break=TieBreak.FIRST_SEEN)
    key_a = _key(GENESIS.hash, ALICE, 1.0)
    key_b = _key(GENESIS.hash, BOB, 1.0, miner=2)
    chain.add_block(key_a, 1.0)
    chain.add_block(key_b, 2.0)
    assert chain.tip == key_a.hash
    # Resolution: the next key block decides.
    key_c = _key(key_b.hash, BOB, 101.0, miner=2)
    chain.add_block(key_c, 101.0)
    assert chain.tip == key_c.hash


def test_epoch_leader_tracked_through_microblocks():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 0.0)
    chain.add_block(key1, 0.0)
    m1 = _micro(key1.hash, ALICE, 10.0)
    chain.add_block(m1, 10.0)
    key2 = _key(m1.hash, BOB, 50.0, miner=2)
    chain.add_block(key2, 50.0)
    assert chain.current_leader_pubkey() == BOB.public_key().to_bytes()
    # A microblock on the new epoch must be signed by Bob.
    m2 = _micro(key2.hash, BOB, 60.0)
    chain.add_block(m2, 60.0)
    assert chain.tip == m2.hash
    assert chain.latest_key_block().hash == key2.hash


def test_equivocation_detected():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 0.0)
    chain.add_block(key1, 0.0)
    m_a = _micro(key1.hash, ALICE, 10.0, salt=b"a")
    m_b = _micro(key1.hash, ALICE, 10.0, salt=b"b")
    chain.add_block(m_a, 10.0)
    chain.add_block(m_b, 10.5)
    proofs = chain.equivocations()
    assert len(proofs) == 1
    assert proofs[0].verify()
    assert proofs[0].offender_pubkey == ALICE.public_key().to_bytes()
    # First-seen branch stays canonical.
    assert chain.tip == m_a.hash


def test_orphan_microblock_adopted_with_parent():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 0.0)
    m1 = _micro(key1.hash, ALICE, 10.0)
    chain.add_block(m1, 5.0)  # parent unknown yet
    assert m1.hash not in chain
    chain.add_block(key1, 6.0)
    assert m1.hash in chain
    assert chain.tip == m1.hash


def test_invalid_orphan_discarded_on_adoption():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 0.0)
    bad = _micro(key1.hash, BOB, 10.0)  # wrong signer
    chain.add_block(bad, 5.0)
    chain.add_block(key1, 6.0)
    assert bad.hash not in chain
    assert chain.tip == key1.hash


def test_signature_check_can_be_disabled():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 0.0)
    chain.add_block(key1, 0.0)
    forged = _micro(key1.hash, BOB, 10.0)
    chain.add_block(forged, 10.0, check_signature=False)
    assert chain.tip == forged.hash


def test_consistency_invariant():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 0.0)
    chain.add_block(key1, 0.0)
    m1 = _micro(key1.hash, ALICE, 10.0)
    chain.add_block(m1, 10.0)
    key2 = _key(m1.hash, BOB, 50.0, miner=2)
    chain.add_block(key2, 50.0)
    chain.assert_consistent()


def test_main_chain_structure():
    chain = _chain()
    key1 = _key(GENESIS.hash, ALICE, 0.0)
    chain.add_block(key1, 0.0)
    m1 = _micro(key1.hash, ALICE, 10.0)
    chain.add_block(m1, 10.0)
    assert chain.main_chain() == [GENESIS.hash, key1.hash, m1.hash]
    assert chain.is_in_main_chain(key1.hash)


def test_fork_point_with_one_side_the_ancestor():
    chain = _chain()
    k1 = _key(GENESIS.hash, ALICE, 10.0)
    k2 = _key(k1.hash, BOB, 20.0, miner=2)
    chain.add_block(k1, 10.0)
    chain.add_block(k2, 20.0)
    # When one block is an ancestor of the other, the fork point is the
    # ancestor itself — not some block further down.
    assert chain.find_fork_point(k2.hash, k1.hash) == k1.hash
    assert chain.find_fork_point(k1.hash, k2.hash) == k1.hash


def test_microblock_timestamp_at_the_exact_drift_limit_is_valid():
    chain = _chain()
    k1 = _key(GENESIS.hash, ALICE, 0.0)
    chain.add_block(k1, 0.0)
    micro = _micro(k1.hash, ALICE, 10.0)
    # "in the future" starts strictly beyond local time + drift.
    chain.validate_microblock(
        micro, local_time=10.0 - PARAMS.max_future_drift
    )
    with pytest.raises(InvalidNGBlock):
        chain.validate_microblock(
            micro, local_time=10.0 - PARAMS.max_future_drift - 0.5
        )


def test_random_key_tie_break_is_seeded_and_deterministic():
    from repro.bitcoin.chain import TieBreak as TB

    # Under the RANDOM policy, a competing equal-work key block stays
    # or wins exactly as the seeded coin flip dictates: < 0.5 keeps the
    # incumbent, otherwise the newcomer takes the tip.
    for seed in (0, 1, 2, 3):
        draw = random.Random(seed).random()
        chain = NGChain(
            GENESIS,
            PARAMS,
            tie_break=TB.RANDOM,
            rng=random.Random(seed),
        )
        a = _key(GENESIS.hash, ALICE, 10.0)
        b = _key(GENESIS.hash, BOB, 11.0, miner=2)
        chain.add_block(a, 10.0)
        chain.add_block(b, 11.0)
        expected = a.hash if draw < 0.5 else b.hash
        assert chain.tip == expected


def test_equivocating_microblock_never_steals_the_tip():
    from repro.bitcoin.chain import TieBreak as TB

    # The coin flip applies to competing *key* blocks only; a leader's
    # equivocating sibling microblock always loses to the first seen,
    # whatever the rng says (seed 0's first draw is >= 0.5, which
    # would switch if the policy were misapplied).
    chain = NGChain(
        GENESIS, PARAMS, tie_break=TB.RANDOM, rng=random.Random(0)
    )
    k1 = _key(GENESIS.hash, ALICE, 0.0)
    chain.add_block(k1, 0.0)
    m_a = _micro(k1.hash, ALICE, 10.0, salt=b"a")
    m_b = _micro(k1.hash, ALICE, 10.0, salt=b"b")
    chain.add_block(m_a, 10.0)
    chain.add_block(m_b, 10.5)
    assert chain.tip == m_a.hash
