"""The end-to-end double-spend / poison scenario."""

import pytest

from repro.attacks.doublespend import run_doublespend_scenario
from repro.core.params import NGParams


@pytest.fixture(scope="module")
def report():
    return run_doublespend_scenario()


def test_equivocation_detected(report):
    assert report.equivocation_detected
    assert report.pruned_micro != report.retained_micro


def test_poison_accepted_once(report):
    assert report.poison_accepted
    assert report.duplicate_poison_rejected


def test_offender_revenue_revoked(report):
    assert report.offender_revenue == 0
    assert report.offender_revenue_without_poison > 0


def test_reporter_earns_five_percent(report):
    expected = int(report.offender_revenue_without_poison * 0.05)
    assert report.reporter_bounty == expected


def test_bounty_fraction_configurable():
    params = NGParams(
        key_block_interval=100.0,
        min_microblock_interval=10.0,
        poison_bounty_fraction=0.10,
    )
    custom = run_doublespend_scenario(params=params)
    expected = int(custom.offender_revenue_without_poison * 0.10)
    assert custom.reporter_bounty == expected


def test_fees_scale_offense_value():
    small = run_doublespend_scenario(fee_per_tx=0)
    large = run_doublespend_scenario(fee_per_tx=10_000)
    assert (
        large.offender_revenue_without_poison
        > small.offender_revenue_without_poison
    )
