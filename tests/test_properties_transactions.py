"""Property-based tests: transaction serialization roundtrips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger.transactions import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)

outpoints = st.builds(
    OutPoint,
    txid=st.binary(min_size=32, max_size=32),
    index=st.integers(min_value=0, max_value=2**32 - 1),
)

tx_inputs = st.builds(
    TxInput,
    outpoint=outpoints,
    pubkey=st.binary(max_size=64),
    signature=st.binary(max_size=80),
)

tx_outputs = st.builds(
    TxOutput,
    value=st.integers(min_value=0, max_value=10**12),
    pubkey_hash=st.binary(min_size=20, max_size=20),
)

transactions = st.builds(
    Transaction,
    inputs=st.lists(tx_inputs, max_size=5).map(tuple),
    outputs=st.lists(tx_outputs, min_size=1, max_size=5).map(tuple),
    padding=st.binary(max_size=200),
)


@settings(max_examples=200)
@given(transactions)
def test_serialization_roundtrip(tx):
    restored = Transaction.deserialize(tx.serialize())
    assert restored == tx
    assert restored.txid == tx.txid


@settings(max_examples=100)
@given(transactions)
def test_size_matches_wire_bytes(tx):
    assert tx.size == len(tx.serialize())


@settings(max_examples=100)
@given(transactions, transactions)
def test_distinct_transactions_distinct_txids(a, b):
    if a != b:
        assert a.txid != b.txid


@settings(max_examples=100)
@given(transactions)
def test_truncation_never_roundtrips(tx):
    import pytest

    from repro.ledger.errors import MalformedTransaction

    data = tx.serialize()
    with pytest.raises(MalformedTransaction):
        Transaction.deserialize(data[:-1])


@settings(max_examples=50)
@given(transactions.filter(lambda t: t.inputs))
def test_sighash_stable_under_witness_changes(tx):
    """The sighash must not depend on pubkey/signature fields."""
    stripped = Transaction(
        tuple(TxInput(i.outpoint) for i in tx.inputs),
        tx.outputs,
        tx.padding,
    )
    for index in range(len(tx.inputs)):
        assert tx.sighash(index) == stripped.sighash(index)
