"""Poison transactions: fraud proofs, placement window, dedup."""

import pytest

from repro.bitcoin.blocks import SyntheticPayload
from repro.bitcoin.chain import TieBreak
from repro.core.blocks import build_key_block, build_microblock
from repro.core.chain import FraudProof, NGChain
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.core.poison import (
    InvalidPoison,
    PoisonEntry,
    PoisonRegistry,
    validate_poison,
)
from repro.core.remuneration import build_ng_coinbase
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey

PARAMS = NGParams(
    key_block_interval=100.0, min_microblock_interval=10.0, coinbase_maturity=5
)
CHEATER = PrivateKey.from_seed("cheater")
HONEST = PrivateKey.from_seed("honest")


def _scenario():
    """Chain with a detected equivocation and a closing key block."""
    genesis = make_ng_genesis()
    chain = NGChain(genesis, PARAMS, tie_break=TieBreak.FIRST_SEEN)

    def key(prev, who, t, miner):
        block = build_key_block(
            prev_hash=prev,
            timestamp=t,
            bits=0x207FFFFF,
            leader_pubkey=who.public_key().to_bytes(),
            coinbase=build_ng_coinbase(
                miner_id=miner,
                timestamp=t,
                self_pubkey_hash=hash160(who.public_key().to_bytes()),
                prev_leader_pubkey_hash=None,
                prev_epoch_fees=0,
                params=PARAMS,
            ),
        )
        chain.add_block(block, t)
        return block

    k1 = key(genesis.hash, CHEATER, 0.0, miner=1)
    fork_a = build_microblock(
        k1.hash, 10.0, SyntheticPayload(n_tx=1, salt=b"a"), CHEATER
    )
    fork_b = build_microblock(
        k1.hash, 10.0, SyntheticPayload(n_tx=1, salt=b"b"), CHEATER
    )
    chain.add_block(fork_a, 10.0)
    chain.add_block(fork_b, 10.5)
    k2 = key(chain.tip, HONEST, 100.0, miner=2)
    return chain, chain.equivocations()


def test_valid_poison_accepted():
    chain, proofs = _scenario()
    poison = PoisonEntry(proof=proofs[0], reporter_miner=2)
    validate_poison(chain, poison, placement_key_height=2)


def test_poison_before_next_key_block_rejected():
    chain, proofs = _scenario()
    poison = PoisonEntry(proof=proofs[0], reporter_miner=2)
    with pytest.raises(InvalidPoison):
        validate_poison(chain, poison, placement_key_height=1)


def test_poison_after_maturity_rejected():
    chain, proofs = _scenario()
    poison = PoisonEntry(proof=proofs[0], reporter_miner=2)
    with pytest.raises(InvalidPoison):
        validate_poison(
            chain, poison, placement_key_height=1 + PARAMS.coinbase_maturity + 1
        )


def test_poison_with_forged_signature_rejected():
    chain, proofs = _scenario()
    genuine = proofs[0]
    forged_micro = build_microblock(
        genuine.pruned_micro.header.prev_hash,
        10.0,
        SyntheticPayload(n_tx=1, salt=b"b"),
        HONEST,  # wrong key: proof must not verify
    )
    forged = FraudProof(
        offender_pubkey=genuine.offender_pubkey,
        pruned_micro=forged_micro,
        retained_micro_hash=genuine.retained_micro_hash,
    )
    with pytest.raises(InvalidPoison):
        validate_poison(
            chain, PoisonEntry(proof=forged, reporter_miner=2), 2
        )


def test_poison_against_main_chain_block_rejected():
    chain, proofs = _scenario()
    genuine = proofs[0]
    # Swap: claim the *retained* (main chain) block is the pruned one.
    retained = chain.record(genuine.retained_micro_hash).block
    swapped = FraudProof(
        offender_pubkey=genuine.offender_pubkey,
        pruned_micro=retained,  # type: ignore[arg-type]
        retained_micro_hash=genuine.pruned_micro.hash,
    )
    with pytest.raises(InvalidPoison):
        validate_poison(
            chain, PoisonEntry(proof=swapped, reporter_miner=2), 2
        )


def test_registry_accepts_once_per_cheater():
    chain, proofs = _scenario()
    registry = PoisonRegistry()
    poison = PoisonEntry(proof=proofs[0], reporter_miner=2)
    assert registry.register(chain, poison, 2)
    # "Only one poison transaction can be placed per cheater."
    assert not registry.register(chain, poison, 2)
    assert len(registry) == 1
    assert proofs[0].offender_pubkey in registry


def test_registry_revocations_shape():
    chain, proofs = _scenario()
    registry = PoisonRegistry()
    registry.register(chain, PoisonEntry(proof=proofs[0], reporter_miner=7), 2)
    assert registry.revocations() == {proofs[0].offender_pubkey: 7}


def test_poison_size_is_small():
    chain, proofs = _scenario()
    poison = PoisonEntry(proof=proofs[0], reporter_miner=2)
    assert poison.size < 200


def test_poison_at_the_exact_maturity_boundary_accepted():
    # The window is (offender_epoch, offender_epoch + maturity]: at the
    # last key height before the offender's coinbase matures, the
    # poison is still placeable.
    chain, proofs = _scenario()
    poison = PoisonEntry(proof=proofs[0], reporter_miner=2)
    validate_poison(
        chain, poison, placement_key_height=1 + PARAMS.coinbase_maturity
    )
