"""GHOST-augmented Bitcoin-NG (the Section 9 future-work variant)."""

import pytest

from repro.bitcoin.blocks import SyntheticPayload
from repro.bitcoin.chain import TieBreak
from repro.core.blocks import build_key_block, build_microblock
from repro.core.ghost_ng import GhostNGChain
from repro.core.chain import NGChain
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.core.remuneration import build_ng_coinbase
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey

PARAMS = NGParams(key_block_interval=10.0, min_microblock_interval=1.0)
GENESIS = make_ng_genesis()
KEYS = [PrivateKey.from_seed(f"gng-{i}") for i in range(4)]


def _key(prev, who, t, miner=0):
    key = KEYS[who]
    return build_key_block(
        prev_hash=prev,
        timestamp=t,
        bits=0x207FFFFF,
        leader_pubkey=key.public_key().to_bytes(),
        coinbase=build_ng_coinbase(
            miner_id=miner,
            timestamp=t,
            self_pubkey_hash=hash160(key.public_key().to_bytes()),
            prev_leader_pubkey_hash=None,
            prev_epoch_fees=0,
            params=PARAMS,
        ),
    )


def _micro(prev, who, t, salt=b"m"):
    return build_microblock(
        prev_hash=prev,
        timestamp=t,
        payload=SyntheticPayload(n_tx=1, salt=salt),
        leader_key=KEYS[who],
    )


def test_simple_extension_matches_plain_ng():
    ghost = GhostNGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    plain = NGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    k1 = _key(GENESIS.hash, 0, 10.0)
    m1 = _micro(k1.hash, 0, 11.0)
    for chain in (ghost, plain):
        chain.add_block(k1, 10.0)
        chain.add_block(m1, 11.0)
    assert ghost.tip == plain.tip == m1.hash


def test_subtree_work_accumulates():
    chain = GhostNGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    k1 = _key(GENESIS.hash, 0, 10.0)
    k2 = _key(k1.hash, 1, 20.0)
    chain.add_block(k1, 10.0)
    chain.add_block(k2, 20.0)
    unit = k1.header.work
    assert chain.subtree_key_work(GENESIS.hash) == 2 * unit
    assert chain.subtree_key_work(k1.hash) == 2 * unit
    assert chain.subtree_key_work(k2.hash) == unit


def test_microblocks_carry_no_subtree_weight():
    chain = GhostNGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    k1 = _key(GENESIS.hash, 0, 10.0)
    m1 = _micro(k1.hash, 0, 11.0)
    chain.add_block(k1, 10.0)
    chain.add_block(m1, 11.0)
    assert chain.subtree_key_work(m1.hash) == 0
    assert chain.subtree_key_work(k1.hash) == k1.header.work


def test_bushy_key_subtree_beats_longer_key_chain():
    # The defining GHOST-NG behaviour: two sibling key blocks under k_a
    # outweigh the two-deep chain under k_b.
    chain = GhostNGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    k_b = _key(GENESIS.hash, 1, 10.0)
    kb2 = _key(k_b.hash, 1, 20.0, miner=1)
    chain.add_block(k_b, 10.0)
    chain.add_block(kb2, 20.0)
    k_a = _key(GENESIS.hash, 0, 10.5)
    chain.add_block(k_a, 10.5)
    assert chain.tip == kb2.hash  # chain b leads 2 vs 1
    # Two competing children under k_a arrive (siblings: a fork of key
    # blocks mined on k_a by different miners).
    ka2 = _key(k_a.hash, 2, 21.0, miner=2)
    ka3 = _key(k_a.hash, 3, 22.0, miner=3)
    chain.add_block(ka2, 21.0)
    assert chain.tip == kb2.hash  # still tied 2-2, first seen holds
    chain.add_block(ka3, 22.0)
    # subtree(k_a) = 3 key blocks > subtree(k_b) = 2: GHOST switches.
    assert chain.tip in (ka2.hash, ka3.hash)
    # Plain NG would NOT have switched (chains are equal length 2 < 2).
    plain = NGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    for block, t in ((k_b, 10.0), (kb2, 20.0), (k_a, 10.5), (ka2, 21.0), (ka3, 22.0)):
        plain.add_block(block, t)
    assert plain.tip == kb2.hash
    chain.assert_consistent()


def test_descent_follows_microblocks_to_tip():
    chain = GhostNGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    k1 = _key(GENESIS.hash, 0, 10.0)
    m1 = _micro(k1.hash, 0, 11.0, salt=b"1")
    m2 = _micro(m1.hash, 0, 12.0, salt=b"2")
    for block, t in ((k1, 10.0), (m1, 11.0), (m2, 12.0)):
        chain.add_block(block, t)
    assert chain.tip == m2.hash


def test_new_key_block_still_prunes_unseen_microblocks():
    # Figure 2's dynamic must survive the fork-choice change.
    chain = GhostNGChain(GENESIS, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    k1 = _key(GENESIS.hash, 0, 10.0)
    m1 = _micro(k1.hash, 0, 11.0, salt=b"1")
    m2 = _micro(m1.hash, 0, 12.0, salt=b"2")
    for block, t in ((k1, 10.0), (m1, 11.0), (m2, 12.0)):
        chain.add_block(block, t)
    k2 = _key(m1.hash, 1, 13.0, miner=1)  # mined without seeing m2
    chain.add_block(k2, 13.0)
    assert chain.tip == k2.hash
    assert m2.hash in chain.pruned_blocks()


def test_node_integration_with_ghost_fork_choice():
    from repro.core.node import MicroblockPolicy, NGNode
    from repro.net.latency import constant_histogram
    from repro.net.network import Network
    from repro.net.simulator import Simulator
    from repro.net.topology import complete_topology

    sim = Simulator(seed=0)
    net = Network(sim, complete_topology(3), constant_histogram(0.05), 1e6)
    params = NGParams(key_block_interval=50.0, min_microblock_interval=10.0)
    nodes = [
        NGNode(
            i, sim, net, GENESIS, params,
            policy=MicroblockPolicy(target_bytes=2000),
            ghost_fork_choice=True,
        )
        for i in range(3)
    ]
    nodes[0].generate_key_block()
    sim.run(until=25.0)
    nodes[1].generate_key_block()
    sim.run(until=60.0)
    assert len({node.tip for node in nodes}) == 1
    assert isinstance(nodes[0].chain, GhostNGChain)


def test_experiment_runner_supports_ghost_ng():
    from repro.experiments import ExperimentConfig, Protocol, run_experiment

    config = ExperimentConfig(
        protocol=Protocol.BITCOIN_NG,
        n_nodes=15,
        target_blocks=15,
        target_key_blocks=5,
        block_rate=0.1,
        block_size_bytes=5000,
        cooldown=20.0,
        ng_ghost_fork_choice=True,
    )
    result, _ = run_experiment(config)
    assert result.mining_power_utilization > 0.5


class _AlwaysLowRng:
    """A coin that always says 'adopt' — any draw would be below 0.5."""

    def random(self):
        return 0.0


def test_unequal_subtrees_never_consult_the_rng():
    # The RANDOM tie-break may only fire at *exact* subtree-weight
    # ties.  With a rigged always-adopt rng, descending past a strictly
    # lighter sibling would flip the tip — so the heavy branch winning
    # proves the tie branch stayed cold.
    chain = GhostNGChain(
        GENESIS, PARAMS, tie_break=TieBreak.RANDOM, rng=_AlwaysLowRng()
    )
    a = _key(GENESIS.hash, 0, 10.0)
    chain.add_block(a, 10.0)
    c = _key(a.hash, 1, 20.0)
    chain.add_block(c, 20.0)
    b = _key(GENESIS.hash, 2, 21.0)
    chain.add_block(b, 21.0)
    assert chain.subtree_key_work(a.hash) > chain.subtree_key_work(b.hash)
    assert chain.tip == c.hash
