"""The §4.3 confirmation policy against live chain state."""

import pytest

from repro.bitcoin.blocks import SyntheticPayload
from repro.bitcoin.chain import TieBreak
from repro.core.blocks import build_key_block, build_microblock
from repro.core.chain import NGChain
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.core.remuneration import build_ng_coinbase
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.wallet import ConfirmationPolicy, ConfirmationTracker, TxStatus

PARAMS = NGParams(key_block_interval=100.0, min_microblock_interval=10.0)
ALICE = PrivateKey.from_seed("conf-alice")
BOB = PrivateKey.from_seed("conf-bob")
POLICY = ConfirmationPolicy(propagation_time=5.0, key_block_depth=1)


def _key(prev, who, t, miner=1):
    return build_key_block(
        prev_hash=prev,
        timestamp=t,
        bits=0x207FFFFF,
        leader_pubkey=who.public_key().to_bytes(),
        coinbase=build_ng_coinbase(
            miner_id=miner,
            timestamp=t,
            self_pubkey_hash=hash160(who.public_key().to_bytes()),
            prev_leader_pubkey_hash=None,
            prev_epoch_fees=0,
            params=PARAMS,
        ),
    )


def _micro(prev, who, t, salt=b"m"):
    return build_microblock(
        prev_hash=prev,
        timestamp=t,
        payload=SyntheticPayload(n_tx=1, salt=salt),
        leader_key=who,
    )


@pytest.fixture()
def setup():
    genesis = make_ng_genesis()
    chain = NGChain(genesis, PARAMS, tie_break=TieBreak.FIRST_SEEN)
    k1 = _key(genesis.hash, ALICE, 0.0)
    chain.add_block(k1, 0.0)
    m1 = _micro(k1.hash, ALICE, 10.0)
    chain.add_block(m1, 10.0)
    tracker = ConfirmationTracker(chain, POLICY)
    txid = b"\x77" * 32
    tracker.observe(txid, m1.hash, seen_at=10.0)
    return chain, tracker, txid, k1, m1


def test_untracked_is_unknown(setup):
    _, tracker, *_ = setup
    assert tracker.status(b"\x00" * 32, now=100.0) is TxStatus.UNKNOWN


def test_tentative_inside_propagation_window(setup):
    _, tracker, txid, *_ = setup
    assert tracker.status(txid, now=12.0) is TxStatus.TENTATIVE
    assert txid in tracker.pending(12.0)


def test_confirmed_after_propagation_wait(setup):
    # §4.3: wait the propagation time, then trust the microblock.
    _, tracker, txid, *_ = setup
    assert tracker.status(txid, now=15.0) is TxStatus.CONFIRMED
    assert tracker.pending(15.0) == []


def test_confirmed_by_key_block_burial(setup):
    chain, tracker, txid, k1, m1 = setup
    k2 = _key(m1.hash, BOB, 100.0, miner=2)
    chain.add_block(k2, 100.0)
    # Even inside the propagation window, burial confirms it.
    assert tracker.status(txid, now=10.5) is TxStatus.CONFIRMED


def test_pruned_when_branch_loses(setup):
    chain, tracker, txid, k1, m1 = setup
    # A key block mined on k1 (not on m1): m1 is pruned (Figure 2).
    k2 = _key(k1.hash, BOB, 100.0, miner=2)
    chain.add_block(k2, 100.0)
    assert not chain.is_in_main_chain(m1.hash)
    assert tracker.status(txid, now=200.0) is TxStatus.PRUNED


def test_policy_validation():
    with pytest.raises(ValueError):
        ConfirmationPolicy(propagation_time=-1.0)
    with pytest.raises(ValueError):
        ConfirmationPolicy(key_block_depth=-1)


def test_depth_zero_confirms_immediately(setup):
    chain, _, txid, k1, m1 = setup
    eager = ConfirmationTracker(
        chain, ConfirmationPolicy(propagation_time=5.0, key_block_depth=0)
    )
    eager.observe(txid, m1.hash, seen_at=10.0)
    assert eager.status(txid, now=10.0) is TxStatus.CONFIRMED
