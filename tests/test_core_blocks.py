"""Key block and microblock structure, signatures, mining."""

import pytest

from repro.bitcoin.blocks import SyntheticPayload, TxPayload
from repro.core.blocks import (
    KEY_HEADER_SIZE,
    MICRO_HEADER_SIZE,
    InvalidNGBlock,
    KeyBlock,
    build_key_block,
    build_microblock,
    check_key_block,
    check_microblock_structure,
    mine_key_block,
)
from repro.core.remuneration import build_ng_coinbase
from repro.core.params import NGParams
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey

LEADER = PrivateKey.from_seed("leader")
OTHER = PrivateKey.from_seed("other")
PARAMS = NGParams()


def _key_block(prev=bytes(32), key=LEADER, miner=1, t=0.0):
    coinbase = build_ng_coinbase(
        miner_id=miner,
        timestamp=t,
        self_pubkey_hash=hash160(key.public_key().to_bytes()),
        prev_leader_pubkey_hash=None,
        prev_epoch_fees=0,
        params=PARAMS,
    )
    return build_key_block(
        prev_hash=prev,
        timestamp=t,
        bits=0x207FFFFF,
        leader_pubkey=key.public_key().to_bytes(),
        coinbase=coinbase,
    )


def _micro(prev, key=LEADER, t=10.0, payload=None):
    return build_microblock(
        prev_hash=prev,
        timestamp=t,
        payload=payload or SyntheticPayload(n_tx=5, salt=b"m"),
        leader_key=key,
    )


def test_key_block_contains_public_key():
    block = _key_block()
    assert block.header.leader_pubkey == LEADER.public_key().to_bytes()


def test_key_block_size_small():
    # "low frequency and quick propagation of the small key blocks"
    block = _key_block()
    assert block.size < 300
    assert block.size == KEY_HEADER_SIZE + block.coinbase.size


def test_key_block_miner_hint():
    assert _key_block(miner=7).miner_hint == 7


def test_key_block_hash_commits_to_leader_key():
    a = _key_block(key=LEADER)
    b = _key_block(key=OTHER)
    assert a.hash != b.hash


def test_check_key_block_valid():
    check_key_block(_key_block(), require_pow=False)


def test_check_key_block_rejects_bad_pubkey_length():
    with pytest.raises(InvalidNGBlock):
        build_key_block(
            prev_hash=bytes(32),
            timestamp=0.0,
            bits=0x207FFFFF,
            leader_pubkey=b"\x02" * 10,
            coinbase=_key_block().coinbase,
        )


def test_check_key_block_rejects_undecodable_pubkey():
    block = _key_block()
    forged = build_key_block(
        prev_hash=bytes(32),
        timestamp=0.0,
        bits=0x207FFFFF,
        leader_pubkey=b"\x07" + b"\x00" * 32,  # bad prefix
        coinbase=block.coinbase,
    )
    with pytest.raises(InvalidNGBlock):
        check_key_block(forged, require_pow=False)


def test_check_key_block_rejects_coinbase_mismatch():
    block = _key_block()
    other = _key_block(miner=9)
    forged = KeyBlock(block.header, other.coinbase)
    with pytest.raises(InvalidNGBlock):
        check_key_block(forged, require_pow=False)


def test_mine_key_block():
    mined = mine_key_block(_key_block())
    assert mined.header.meets_pow()
    check_key_block(mined, require_pow=True)


def test_microblock_signature_verifies():
    key_block = _key_block()
    micro = _micro(key_block.hash)
    assert micro.verify_signature(LEADER.public_key().to_bytes())


def test_microblock_signature_wrong_key_fails():
    micro = _micro(bytes(32), key=LEADER)
    assert not micro.verify_signature(OTHER.public_key().to_bytes())
    assert not micro.verify_signature(b"\x00" * 33)


def test_microblock_carries_no_work():
    # No bits/nonce fields at all: weight is structural, not zeroed.
    micro = _micro(bytes(32))
    assert not hasattr(micro.header, "bits")
    assert not hasattr(micro.header, "nonce")


def test_microblock_size():
    micro = _micro(bytes(32), payload=SyntheticPayload(n_tx=10, tx_size=100))
    assert micro.size == MICRO_HEADER_SIZE + 1000


def test_check_microblock_structure_size_cap():
    micro = _micro(bytes(32), payload=SyntheticPayload(n_tx=100, tx_size=1000))
    with pytest.raises(InvalidNGBlock):
        check_microblock_structure(micro, max_bytes=50_000)
    check_microblock_structure(micro, max_bytes=200_000)


def test_check_microblock_structure_root_mismatch():
    from repro.core.blocks import Microblock

    micro = _micro(bytes(32))
    forged = Microblock(
        micro.header, micro.signature, SyntheticPayload(n_tx=9, salt=b"z")
    )
    with pytest.raises(InvalidNGBlock):
        check_microblock_structure(forged, max_bytes=1_000_000)


def test_microblock_hash_differs_from_signing_payload():
    micro = _micro(bytes(32))
    assert micro.hash != micro.header.signing_payload()


def test_tx_payload_microblock():
    from repro.ledger.transactions import OutPoint, Transaction, TxInput, TxOutput

    tx = Transaction(
        inputs=(TxInput(OutPoint(b"\x01" * 32, 0)),),
        outputs=(TxOutput(1, bytes(20)),),
    )
    micro = _micro(bytes(32), payload=TxPayload((tx,)))
    assert micro.n_tx == 1
    check_microblock_structure(micro, max_bytes=1_000_000)


def test_microblock_of_exactly_the_size_cap_is_valid():
    micro = _micro(bytes(32))
    check_microblock_structure(micro, max_bytes=micro.size)
    with pytest.raises(InvalidNGBlock):
        check_microblock_structure(micro, max_bytes=micro.size - 1)
