"""The persistent block store: round trips, reload, crash recovery."""

import pytest

from repro.bitcoin.blocks import SyntheticPayload, build_block, make_genesis
from repro.core.blocks import build_key_block, build_microblock
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.core.remuneration import build_ng_coinbase
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.store import BlockStore

KEY = PrivateKey.from_seed("store")


def _block(salt: bytes):
    return build_block(
        prev_hash=make_genesis().hash,
        payload=SyntheticPayload(n_tx=2, salt=salt),
        timestamp=1.0,
        bits=0x207FFFFF,
        miner_id=1,
        reward=10,
    )


def _key_block():
    return build_key_block(
        prev_hash=make_ng_genesis().hash,
        timestamp=2.0,
        bits=0x207FFFFF,
        leader_pubkey=KEY.public_key().to_bytes(),
        coinbase=build_ng_coinbase(
            miner_id=1,
            timestamp=2.0,
            self_pubkey_hash=hash160(KEY.public_key().to_bytes()),
            prev_leader_pubkey_hash=None,
            prev_epoch_fees=0,
            params=NGParams(),
        ),
    )


def _micro():
    return build_microblock(
        prev_hash=b"\x22" * 32,
        timestamp=3.0,
        payload=SyntheticPayload(n_tx=1, salt=b"sm"),
        leader_key=KEY,
    )


def test_put_get_roundtrip(tmp_path):
    with BlockStore(tmp_path / "blocks.dat") as store:
        block = _block(b"a")
        assert store.put(block)
        assert block.hash in store
        restored = store.get(block.hash)
        assert restored == block


def test_all_block_types(tmp_path):
    with BlockStore(tmp_path / "blocks.dat") as store:
        blocks = [_block(b"a"), _key_block(), _micro()]
        for block in blocks:
            store.put(block)
        for block in blocks:
            assert store.get(block.hash) == block


def test_duplicate_put_ignored(tmp_path):
    with BlockStore(tmp_path / "blocks.dat") as store:
        block = _block(b"a")
        assert store.put(block)
        assert not store.put(block)
        assert len(store) == 1


def test_reload_preserves_everything(tmp_path):
    path = tmp_path / "blocks.dat"
    blocks = [_block(bytes([i])) for i in range(5)]
    with BlockStore(path) as store:
        for block in blocks:
            store.put(block)
    with BlockStore(path) as reloaded:
        assert len(reloaded) == 5
        assert reloaded.hashes() == [b.hash for b in blocks]
        for block in blocks:
            assert reloaded.get(block.hash) == block


def test_iter_blocks_in_append_order(tmp_path):
    with BlockStore(tmp_path / "blocks.dat") as store:
        blocks = [_block(bytes([i])) for i in range(3)]
        for block in blocks:
            store.put(block)
        assert [b.hash for b in store.iter_blocks()] == [b.hash for b in blocks]


def test_missing_block_returns_none(tmp_path):
    with BlockStore(tmp_path / "blocks.dat") as store:
        assert store.get(b"\x00" * 32) is None


def test_crash_recovery_truncates_torn_write(tmp_path):
    path = tmp_path / "blocks.dat"
    blocks = [_block(bytes([i])) for i in range(3)]
    with BlockStore(path) as store:
        for block in blocks:
            store.put(block)
    # Simulate a crash mid-append: half a record at the tail.
    with path.open("ab") as handle:
        handle.write(b"\x40\x00\x00\x00\x12\x34")  # bogus partial header
    with BlockStore(path) as recovered:
        assert len(recovered) == 3
        assert recovered.recovered_bytes_dropped > 0
    # The file is clean again: a further reload drops nothing.
    with BlockStore(path) as clean:
        assert clean.recovered_bytes_dropped == 0
        assert len(clean) == 3


def test_corrupted_record_stops_scan(tmp_path):
    path = tmp_path / "blocks.dat"
    blocks = [_block(bytes([i])) for i in range(3)]
    with BlockStore(path) as store:
        for block in blocks:
            store.put(block)
        # Corrupt the *last* record's payload on disk.
        offset = store._offsets[blocks[-1].hash]
    data = bytearray(path.read_bytes())
    data[offset + 10] ^= 0xFF
    path.write_bytes(bytes(data))
    with BlockStore(path) as recovered:
        assert len(recovered) == 2  # corrupted tail dropped
        assert blocks[0].hash in recovered
        assert blocks[-1].hash not in recovered


def test_append_continues_after_reload(tmp_path):
    path = tmp_path / "blocks.dat"
    with BlockStore(path) as store:
        store.put(_block(b"a"))
    with BlockStore(path) as store:
        store.put(_block(b"b"))
        assert len(store) == 2
    with BlockStore(path) as store:
        assert len(store) == 2
