"""Scenario spec validation: strict schema, friendly normalization."""

import json

import pytest

from repro.scenarios import (
    FAULT_KINDS,
    SCENARIO_VERSION,
    ScenarioError,
    load_scenario,
    validate_scenario,
)


def _spec(*faults, **extra):
    return {"version": SCENARIO_VERSION, "faults": list(faults), **extra}


def test_minimal_empty_scenario_validates():
    out = validate_scenario(_spec())
    assert out == {
        "version": SCENARIO_VERSION,
        "name": "scenario",
        "faults": [],
    }


def test_name_and_description_survive():
    out = validate_scenario(_spec(name="np", description="desc"))
    assert out["name"] == "np"
    assert out["description"] == "desc"


def test_faults_sorted_by_time_stably():
    out = validate_scenario(
        _spec(
            {"at": 50, "kind": "heal"},
            {"at": 10, "kind": "restore"},
            {"at": 50, "kind": "restore"},
        )
    )
    kinds = [(f["at"], f["kind"]) for f in out["faults"]]
    assert kinds == [(10.0, "restore"), (50.0, "heal"), (50.0, "restore")]


def test_numbers_normalized_to_float():
    out = validate_scenario(
        _spec({"at": 5, "kind": "crash", "node": 1, "down_for": 7})
    )
    fault = out["faults"][0]
    assert isinstance(fault["at"], float)
    assert isinstance(fault["down_for"], float)
    assert fault["node"] == 1  # node ids stay integers


@pytest.mark.parametrize(
    "bad",
    [
        "not a dict",
        {"faults": []},  # missing version
        {"version": 99, "faults": []},
        {"version": SCENARIO_VERSION},  # missing faults
        {"version": SCENARIO_VERSION, "faults": {}},
        {"version": SCENARIO_VERSION, "faults": [], "name": 3},
        {"version": SCENARIO_VERSION, "faults": [], "typo": 1},
    ],
)
def test_malformed_scenarios_rejected(bad):
    with pytest.raises(ScenarioError):
        validate_scenario(bad)


@pytest.mark.parametrize(
    "fault",
    [
        {"kind": "crash", "node": 0},  # missing at
        {"at": 1, "kind": "meteor"},  # unknown kind
        {"at": 1, "kind": "crash"},  # missing node
        {"at": 1, "kind": "crash", "node": -1},
        {"at": 1, "kind": "crash", "node": True},
        {"at": 1, "kind": "crash", "node": 0, "down_for": 0},
        {"at": 1, "kind": "crash", "node": 0, "extra": 1},  # stray field
        {"at": 1, "kind": "restart", "node": "leader"},  # int only
        {"at": 1, "kind": "partition"},  # needs groups or split
        {"at": 1, "kind": "partition", "split": "thirds"},
        {"at": 1, "kind": "partition", "groups": [[0, 1]], "split": "halves"},
        {"at": 1, "kind": "partition", "groups": [[0, 1]]},  # one group
        {"at": 1, "kind": "partition", "groups": [[0], [0]]},  # overlap
        {"at": 1, "kind": "partition", "groups": [[0], []]},  # empty group
        {"at": 1, "kind": "heal", "node": 0},  # heal takes no fields
        {"at": 1, "kind": "degrade", "latency_mult": 0},
        {"at": 1, "kind": "degrade", "bandwidth_mult": -2},
        {"at": 1, "kind": "degrade", "links": []},
        {"at": 1, "kind": "degrade", "links": [[1]]},
        {"at": 1, "kind": "loss"},  # missing rate
        {"at": 1, "kind": "loss", "rate": 1.0},  # must be < 1
        {"at": 1, "kind": "loss", "rate": -0.1},
    ],
)
def test_malformed_faults_rejected(fault):
    with pytest.raises(ScenarioError):
        validate_scenario(_spec(fault))


def test_every_documented_kind_validates():
    samples = {
        "crash": {"node": "leader"},
        "restart": {"node": 2},
        "partition": {"split": "halves"},
        "heal": {},
        "degrade": {"latency_mult": 2.0, "links": [[0, 1]]},
        "restore": {},
        "loss": {"rate": 0.25},
    }
    assert set(samples) == set(FAULT_KINDS)
    faults = [
        {"at": float(i), "kind": kind, **fields}
        for i, (kind, fields) in enumerate(samples.items())
    ]
    out = validate_scenario(_spec(*faults))
    assert [f["kind"] for f in out["faults"]] == list(samples)


def test_degrade_defaults_fill_in():
    out = validate_scenario(_spec({"at": 1, "kind": "degrade"}))
    fault = out["faults"][0]
    assert fault["latency_mult"] == 1.0
    assert fault["bandwidth_mult"] == 1.0
    assert "links" not in fault


def test_load_scenario_round_trip(tmp_path):
    spec = _spec({"at": 9, "kind": "loss", "rate": 0.1}, name="file-test")
    path = tmp_path / "s.json"
    path.write_text(json.dumps(spec), encoding="utf-8")
    assert load_scenario(path) == validate_scenario(spec)


def test_load_scenario_bad_file(tmp_path):
    with pytest.raises(ScenarioError):
        load_scenario(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ScenarioError):
        load_scenario(bad)


def test_shipped_examples_validate():
    from pathlib import Path

    examples = Path(__file__).resolve().parents[1] / "examples"
    for name in ("leader_crash.json", "partition_heal.json"):
        spec = load_scenario(examples / name)
        assert spec["faults"], name
