"""Offline trace analysis: find, summarize, timeline, toptalkers."""

import pytest

from repro.obs.analyze import (
    find_traces,
    format_summary,
    format_timeline,
    format_toptalkers,
    summarize,
)
from repro.obs.trace import SCHEMA_VERSION, TraceError


def _rec(ev, t, **fields):
    return {"v": SCHEMA_VERSION, "ev": ev, "t": t, **fields}


SAMPLE = [
    _rec("trace_start", 0.0, protocol="bitcoin-ng", seed=3),
    _rec("send", 1.0, src=0, dst=1, kind="inv", size=61, qd=0.0),
    _rec("send", 2.0, src=0, dst=1, kind="block", size=5000, qd=0.4),
    _rec("send", 9.0, src=2, dst=0, kind="block", size=7000, qd=1.2),
    _rec("block_gen", 2.0, hash="ab", kind="key", miner=0, size=200, n_tx=0),
    _rec("block_gen", 5.0, hash="cd", kind="micro", miner=0, size=5000, n_tx=20),
    _rec("tip_change", 5.5, node=1, tip="cd"),
    _rec("epoch_start", 2.0, leader=0, key_block="ab"),
    _rec("epoch_end", 8.0, leader=0, key_block="ab"),
    _rec("gossip_retry", 6.0, node=1, obj="cd", peer=2),
    _rec("obj_reject", 6.5, node=2, obj="ef", kind="block", sender=0),
    _rec("drop", 7.0, src=0, dst=2, kind="inv", size=61),
    _rec("sample_links", 4.0, busy=3, links=10, frac=0.3, queued_bytes=900.0),
    _rec("sample_mempool", 4.0, total=50, min=1, max=30, mean=16.7),
    _rec("sample_forks", 4.0, tips=2),
    _rec("trace_end", 100.0, records=16),
]


def test_summarize_aggregates_everything():
    s = summarize(SAMPLE)
    assert s.records == len(SAMPLE)
    assert s.meta == {"protocol": "bitcoin-ng", "seed": 3}
    # trace_start/trace_end timestamps are excluded from the span.
    assert s.t_min == 1.0
    assert s.t_max == 9.0
    assert s.events["send"] == 3
    assert s.sends_by_kind == {"inv": 1, "block": 2}
    assert s.bytes_by_kind == {"inv": 61, "block": 12000}
    assert s.total_bytes == 12061
    assert s.queue_delay_count == 2  # qd == 0 is not "delayed"
    assert s.queue_delay_mean == pytest.approx(0.8)
    assert s.queue_delay_max == 1.2
    assert s.blocks_by_kind == {"key": 1, "micro": 1}
    assert s.tip_changes == 1
    assert s.epochs_started == 1
    assert s.epochs_ended == 1
    assert s.gossip_retries == 1
    assert s.rejects == 1
    assert s.drops == 1
    assert s.peak_queued_bytes == 900.0
    assert s.peak_busy_fraction == 0.3
    assert s.peak_mempool == 30
    assert s.peak_tips == 2


def test_format_summary_mentions_the_headlines():
    text = format_summary(summarize(SAMPLE), name="demo")
    assert "== demo ==" in text
    assert "protocol=bitcoin-ng" in text
    assert "key=1, micro=1" in text
    assert "leader epochs:       1 started, 1 ended" in text
    assert "1 retries, 1 rejects, 1 drops" in text
    assert "total bytes sent:    12,061" in text


def test_summarize_empty_stream():
    s = summarize([])
    assert s.records == 0
    assert s.t_min == 0.0 and s.t_max == 0.0
    format_summary(s)  # renders without crashing


def test_timeline_buckets_activity():
    text = format_timeline(SAMPLE, buckets=4, width=10)
    lines = text.splitlines()
    assert len(lines) == 5  # header + 4 buckets
    # Span is 1.0..9.0 s; the two early sends land in bucket 0, the
    # late 7000-byte send in the last bucket, which owns the peak bar.
    assert lines[1].split()[1] == "2"
    assert lines[-1].rstrip().endswith("#" * 10)


def test_timeline_with_no_events():
    assert format_timeline([_rec("trace_start", 0.0)]) == "(empty trace)"


def test_timeline_rejects_zero_buckets():
    with pytest.raises(ValueError):
        format_timeline(SAMPLE, buckets=0)


def test_toptalkers_ranks_by_bytes_out():
    text = format_toptalkers(SAMPLE, top=2)
    lines = text.splitlines()
    # Node 2 sent 7000 bytes, node 0 sent 5061: ranked in that order.
    assert lines[1].split()[0] == "2"
    assert lines[2].split()[0] == "0"
    assert lines[2].split()[3] == "2"  # node 0 generated both blocks


def test_toptalkers_without_traffic():
    assert format_toptalkers([_rec("trace_start", 0.0)]) == "(no traffic recorded)"


def test_find_traces_on_a_file_and_a_directory(tmp_path):
    a = tmp_path / "b.trace.jsonl"
    b = tmp_path / "a.trace.jsonl"
    a.write_text("")
    b.write_text("")
    (tmp_path / "notes.txt").write_text("ignored")
    assert find_traces(a) == [a]
    assert find_traces(tmp_path) == [b, a]  # sorted


def test_find_traces_errors(tmp_path):
    with pytest.raises(TraceError, match="no .trace.jsonl files"):
        find_traces(tmp_path)
    with pytest.raises(TraceError, match="no such file"):
        find_traces(tmp_path / "missing")


FAULT_SAMPLE = SAMPLE[:-1] + [
    _rec("node_crash", 3.0, node=4, down_for=10.0),
    _rec("node_restart", 13.0, node=4),
    _rec("partition", 4.0, groups=2, cut=12),
    _rec("heal", 6.0, restored=12),
    _rec("link_degrade", 7.0, links=40, latency_mult=2.0, bandwidth_mult=0.5),
    _rec("link_restore", 8.0, links=40),
    _rec("msg_loss", 8.5, rate=0.05),
    _rec("trace_end", 100.0, records=23),
]


def test_summarize_counts_fault_events():
    s = summarize(FAULT_SAMPLE)
    assert s.faults == {
        "node_crash": 1,
        "node_restart": 1,
        "partition": 1,
        "heal": 1,
        "link_degrade": 1,
        "link_restore": 1,
        "msg_loss": 1,
    }
    text = format_summary(s)
    assert "faults injected:" in text
    assert "node_crash=1" in text


def test_summary_without_faults_omits_the_line():
    assert "faults injected:" not in format_summary(summarize(SAMPLE))


def test_timeline_fault_column_only_when_present():
    bare = format_timeline(SAMPLE, buckets=4)
    assert "faults" not in bare.splitlines()[0]
    faulty = format_timeline(FAULT_SAMPLE, buckets=4)
    header = faulty.splitlines()[0]
    assert "faults" in header
    # Fault events at t=3..13 land in the early buckets.
    total_faults = sum(
        int(line.split()[5]) for line in faulty.splitlines()[1:]
    )
    assert total_faults == 7
