"""Property-based tests: scheduler, fee split, incentives, events."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incentives import (
    incentive_window,
    is_incentive_compatible,
    max_leader_fraction,
    min_leader_fraction,
)
from repro.core.remuneration import split_fee
from repro.net.events import EventQueue
from repro.net.links import Link


@given(
    st.integers(min_value=0, max_value=10**12),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_split_fee_conserves_and_orders(fee, fraction):
    current, following = split_fee(fee, fraction)
    assert current + following == fee
    assert current >= 0 and following >= 0
    assert current <= fee


@given(st.floats(min_value=0.0, max_value=0.49, allow_nan=False))
def test_incentive_bounds_ordering(alpha):
    lower = min_leader_fraction(alpha)
    upper = max_leader_fraction(alpha)
    assert 0.0 <= lower < 1.0
    assert 0.0 < upper <= 0.5
    window = incentive_window(alpha)
    if window.feasible:
        mid = (lower + upper) / 2
        assert is_incentive_compatible(alpha, mid)


@given(st.floats(min_value=0.0, max_value=0.3, allow_nan=False))
def test_window_interior_compatible_exterior_not(alpha):
    window = incentive_window(alpha)
    if window.feasible and window.width > 1e-6:
        inside = (window.lower + window.upper) / 2
        assert is_incentive_compatible(alpha, inside)
        below = max(0.0, window.lower - 0.05)
        if below < window.lower - 1e-9:
            assert not is_incentive_compatible(alpha, below)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_event_queue_pops_in_order(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while (event := queue.pop()) is not None:
        popped.append(event.time)
    assert popped == sorted(times)


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=2000, max_value=100_000),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_link_bulk_arrivals_fifo_monotone(sends):
    """Bulk messages on one directed link arrive in send order (FIFO)."""
    link = Link(latency=0.05, bandwidth=10_000)
    sends = sorted(sends, key=lambda pair: pair[0])
    arrivals = [link.transfer(now, size) for now, size in sends]
    assert arrivals == sorted(arrivals)
    for (now, size), arrival in zip(sends, arrivals):
        assert arrival >= now + 0.05 + size / 10_000 - 1e-9


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=100_000),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_link_small_messages_never_blocked(sends):
    """Small messages always arrive after exactly their own cost."""
    link = Link(latency=0.05, bandwidth=10_000)
    sends = sorted(sends, key=lambda pair: pair[0])
    import pytest

    for now, size in sends:
        arrival = link.transfer(now, size)
        if size <= link.interleave_cutoff:
            assert arrival == pytest.approx(now + 0.05 + size / 10_000)
