"""Synthetic pool data: the Figure 6 reproduction machinery."""

import pytest

from repro.mining.pools import (
    UNIDENTIFIED_FRACTION,
    WeeklyShares,
    fit_rank_medians,
    generate_year,
    rank_statistics,
)


def test_generate_year_shape():
    weeks = generate_year(n_pools=20, n_weeks=52)
    assert len(weeks) == 52
    assert all(len(week.shares) == 20 for week in weeks)


def test_weekly_shares_ranked():
    for week in generate_year(n_weeks=10):
        assert list(week.shares) == sorted(week.shares, reverse=True)


def test_identified_mass_excludes_unknowns():
    for week in generate_year(n_weeks=5):
        assert sum(week.shares) == pytest.approx(1.0 - UNIDENTIFIED_FRACTION)


def test_fit_recovers_paper_numbers():
    # The headline calibration: exponent ≈ −0.27, R² ≥ 0.99.
    exponent, r_squared = fit_rank_medians(generate_year())
    assert exponent == pytest.approx(-0.27, abs=0.03)
    assert r_squared >= 0.99


def test_rank_statistics_quartiles_ordered():
    stats = rank_statistics(generate_year(), max_rank=20)
    assert len(stats) == 20
    for entry in stats:
        assert entry["p25"] <= entry["p50"] <= entry["p75"]


def test_rank_statistics_decreasing_medians():
    stats = rank_statistics(generate_year(), max_rank=20)
    medians = [entry["p50"] for entry in stats]
    assert medians == sorted(medians, reverse=True)


def test_share_at_rank_bounds():
    week = WeeklyShares(0, (0.5, 0.3))
    assert week.share_at_rank(1) == 0.5
    assert week.share_at_rank(3) == 0.0
    with pytest.raises(ValueError):
        week.share_at_rank(0)


def test_deterministic_generation():
    assert generate_year(seed=42) == generate_year(seed=42)
    assert generate_year(seed=42) != generate_year(seed=43)


def test_rank_statistics_requires_data():
    with pytest.raises(ValueError):
        rank_statistics([])
