import time

def measure() -> float:
    # repro: allow[NG201]
    return time.perf_counter()
