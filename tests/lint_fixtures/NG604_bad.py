import random


def jitter(latency_rng: random.Random) -> float:
    return latency_rng.random()


def sample(seed: int) -> float:
    topo_rng = random.Random(seed * 11 + 3)
    return jitter(topo_rng)
