# repro-lint: module=repro.net.flood

class Network:
    def __init__(self) -> None:
        self.edge_latency: list[float] = []

    def total_latency(self) -> float:
        total = 0.0
        for latency in self.edge_latency:
            total += latency
        return total
