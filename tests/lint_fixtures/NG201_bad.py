import time

def measure() -> float:
    return time.perf_counter()
