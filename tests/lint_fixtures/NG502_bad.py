# repro-lint: module=repro.core.timecheck

def interval_elapsed(gap: float) -> bool:
    return gap == 10.0
