import random

# repro: allow[NG102]
rng = random.Random()
