# repro-lint: module=repro.net.flood

class Network:
    def __init__(self) -> None:
        self.links: dict[tuple[int, int], float] = {}

    def total_latency(self) -> float:
        total = 0.0
        for (src, dst), latency in self.links.items():
            total += latency
        return total
