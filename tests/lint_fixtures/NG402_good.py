from repro.protocols import get_adapter

def build(config, sim, network, log, shares):
    return get_adapter("bitcoin-ng").build_nodes(config, sim, network, log, shares)
