import os

def session_token() -> bytes:
    # repro: allow[NG104]
    return os.urandom(16)
