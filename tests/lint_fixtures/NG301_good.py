def flood(network, peers: set[int], message) -> None:
    for peer in sorted(peers):
        network.send(0, peer, message)
