import os

def block_rate() -> float:
    return float(os.environ.get("BLOCK_RATE", "0.1"))
