from repro.ledger.transactions import COIN

def leader_cut(fee_btc: float) -> int:
    return int(fee_btc * COIN * 0.4)
