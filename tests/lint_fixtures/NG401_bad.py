# repro-lint: module=repro.core.node_ext
from repro.experiments.config import ExperimentConfig

def default_config() -> ExperimentConfig:
    return ExperimentConfig()
