import random

def jitter() -> float:
    return random.random()
