# repro-lint: module=repro.experiments.custom
from repro.core.params import NGParams

def params() -> NGParams:
    return NGParams()
