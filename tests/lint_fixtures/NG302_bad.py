def order_tips(tips: list) -> list:
    return sorted(tips, key=id)
