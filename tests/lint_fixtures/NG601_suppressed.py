class FeeCache:  # repro: versioned
    def __init__(self) -> None:
        self.fees: dict[bytes, int] = {}
        self.version = 0

    # repro: allow[NG601]
    def record(self, txid: bytes, fee: int) -> None:
        self.fees[txid] = fee
