# repro-lint: module=repro.core.node_ext
# repro: allow[NG401]
from repro.experiments.config import ExperimentConfig

def default_config() -> ExperimentConfig:
    return ExperimentConfig()
