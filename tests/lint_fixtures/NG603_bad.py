from repro.protocols import ProtocolAdapter


class OptOutAdapter(ProtocolAdapter):
    name = "optout"

    def build_nodes(self, config, sim, network, log, shares):
        return [], None

    def supports_incremental_check(self):
        return False
