import numpy as np

def noise() -> float:
    return float(np.random.random())
