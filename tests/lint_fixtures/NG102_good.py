import random

def make_rng(seed: int) -> random.Random:
    return random.Random(seed * 7919 + 13)
