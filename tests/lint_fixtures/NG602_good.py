from repro.sanitizer.checkers import InvariantChecker


class MempoolAudit(InvariantChecker):
    code = "INV901"

    def check_state(self, node, node_id, now):
        violations = []
        for tx in node.mempool.transactions():
            if tx.size < 0:
                violations.append(tx.txid)
        return violations
