# repro-lint: module=repro.experiments.parallel
import os

def resolve_jobs() -> int:
    return int(os.environ.get("REPRO_JOBS", "0")) or 1
