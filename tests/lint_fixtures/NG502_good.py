# repro-lint: module=repro.core.timecheck

TIME_EPSILON = 1e-9

def interval_elapsed(gap: float, interval: float) -> bool:
    return gap >= interval - TIME_EPSILON
