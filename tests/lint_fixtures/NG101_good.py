import random

def jitter(rng: random.Random) -> float:
    return rng.random()
