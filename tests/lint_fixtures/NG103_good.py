import random

def noise(rng: random.Random) -> float:
    return rng.random()
