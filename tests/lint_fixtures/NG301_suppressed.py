def flood(network, peers: set[int], message) -> None:
    # repro: allow[NG301]
    for peer in peers:
        network.send(0, peer, message)
