# repro-lint: module=repro.crypto.entropy
import os

def keygen_entropy() -> bytes:
    return os.urandom(32)
