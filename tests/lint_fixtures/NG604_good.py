import random


def jitter(latency_rng: random.Random) -> float:
    return latency_rng.random()


def sample(seed: int) -> float:
    latency_rng = random.Random(seed * 11 + 3)
    return jitter(latency_rng)
