# repro-lint: module=repro.core.timecheck

def interval_elapsed(gap: float) -> bool:
    # repro: allow[NG502]
    return gap == 10.0
