def order_tips(tips: list) -> list:
    # repro: allow[NG302]
    return sorted(tips, key=id)
