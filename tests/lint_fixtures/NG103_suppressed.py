import numpy as np

def noise() -> float:
    # repro: allow[NG103]
    return float(np.random.random())
