import random

def jitter() -> float:
    # repro: allow[NG101]
    return random.random()
