from repro.ledger.transactions import COIN

DUST_LIMIT = COIN // 1000

def leader_cut(fee: int) -> int:
    return fee * 40 // 100
