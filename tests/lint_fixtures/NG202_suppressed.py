import os

def block_rate() -> float:
    # repro: allow[NG202]
    return float(os.environ.get("BLOCK_RATE", "0.1"))
