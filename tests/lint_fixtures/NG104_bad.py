import os

def session_token() -> bytes:
    return os.urandom(16)
