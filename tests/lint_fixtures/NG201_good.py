from repro.clock import wall_clock

def measure() -> float:
    return wall_clock()
