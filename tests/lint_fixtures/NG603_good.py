from repro.protocols import ProtocolAdapter


class OptOutAdapter(ProtocolAdapter):
    name = "optout"
    supports_incremental_check = False

    def build_nodes(self, config, sim, network, log, shares):
        return [], None
