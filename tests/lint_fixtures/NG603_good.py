from repro.protocols import ProtocolAdapter


class HalfPlugAdapter(ProtocolAdapter):
    name = "halfplug"

    def build_nodes(self, config, sim, network, log, shares):
        return [], None

    def invariant_checkers(self, mode="incremental"):
        return []
