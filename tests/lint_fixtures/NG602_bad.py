from repro.sanitizer.checkers import InvariantChecker


class MempoolPurge(InvariantChecker):
    code = "INV901"

    def check_state(self, node, node_id, now):
        for tx in node.mempool.transactions():
            node.mempool.remove(tx.txid)
        return []
