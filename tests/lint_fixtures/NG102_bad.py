import random

rng = random.Random()
