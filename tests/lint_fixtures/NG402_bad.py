from repro.protocols import BitcoinNGAdapter

def build(config, sim, network, log, shares):
    return BitcoinNGAdapter().build_nodes(config, sim, network, log, shares)
