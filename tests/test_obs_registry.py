"""The metric registry: counters, gauges, histograms, null objects."""

import json

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricRegistry,
    NullRegistry,
)


def test_counter_increments():
    c = Counter("hits")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5


def test_counter_is_monotonic():
    with pytest.raises(MetricError):
        Counter("hits").inc(-1)


def test_counter_labels_independent_children():
    c = Counter("msgs", labelnames=("kind",))
    c.labels(kind="inv").inc()
    c.labels(kind="inv").inc()
    c.labels(kind="block").inc(5)
    values = c.snapshot()["values"]
    assert values == {"kind=inv": 2.0, "kind=block": 5.0}


def test_labeled_parent_rejects_direct_updates():
    c = Counter("msgs", labelnames=("kind",))
    with pytest.raises(MetricError):
        c.inc()


def test_labels_on_unlabeled_metric_rejected():
    with pytest.raises(MetricError):
        Counter("plain").labels(kind="x")


def test_labels_require_all_names():
    c = Counter("msgs", labelnames=("kind", "dir"))
    with pytest.raises(MetricError):
        c.labels(kind="inv")  # missing "dir"


def test_gauge_moves_both_ways():
    g = Gauge("depth")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13.0


def test_histogram_bucket_placement():
    h = Histogram("delay", buckets=(1.0, 10.0))
    for value in (0.5, 0.9, 5.0, 100.0):
        h.observe(value)
    scalar = h.snapshot()["values"][""]
    assert scalar["count"] == 4
    assert scalar["sum"] == pytest.approx(106.4)
    assert scalar["buckets"] == {"1.0": 2, "10.0": 1}
    assert scalar["overflow"] == 1


def test_histogram_children_inherit_buckets():
    h = Histogram("delay", labelnames=("kind",), buckets=(2.0,))
    child = h.labels(kind="block")
    child.observe(1.0)
    child.observe(3.0)
    scalar = h.snapshot()["values"]["kind=block"]
    assert scalar["buckets"] == {"2.0": 1}
    assert scalar["overflow"] == 1


def test_histogram_needs_buckets():
    with pytest.raises(MetricError):
        Histogram("empty", buckets=())


def test_registry_deduplicates_by_name():
    registry = MetricRegistry()
    a = registry.counter("hits")
    b = registry.counter("hits")
    assert a is b


def test_registry_rejects_type_clash():
    registry = MetricRegistry()
    registry.counter("hits")
    with pytest.raises(MetricError):
        registry.gauge("hits")


def test_collect_is_json_serializable_and_sorted():
    registry = MetricRegistry()
    registry.gauge("z_last").set(1)
    registry.counter("a_first").inc()
    registry.histogram("mid", buckets=DEFAULT_BUCKETS).observe(0.5)
    snapshot = registry.collect()
    assert list(snapshot) == ["a_first", "mid", "z_last"]
    assert snapshot["a_first"]["type"] == "counter"
    json.dumps(snapshot)  # must not raise


def test_null_metric_absorbs_everything():
    assert NULL_METRIC.labels(kind="x") is NULL_METRIC
    NULL_METRIC.inc()
    NULL_METRIC.dec(3)
    NULL_METRIC.set(7)
    NULL_METRIC.observe(1.5)  # all no-ops, nothing to assert but no raise


def test_null_registry_hands_out_null_metrics():
    assert NULL_REGISTRY.counter("x") is NULL_METRIC
    assert NULL_REGISTRY.gauge("y") is NULL_METRIC
    assert NULL_REGISTRY.histogram("z") is NULL_METRIC
    assert NULL_REGISTRY.collect() == {}
    assert NullRegistry.enabled is False
    assert MetricRegistry.enabled is True
