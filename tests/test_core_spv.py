"""SPV light-client verification of microblock payments."""

import pytest

from repro.bitcoin.blocks import TxPayload
from repro.core.blocks import build_key_block, build_microblock
from repro.core.genesis import make_ng_genesis
from repro.core.params import NGParams
from repro.core.remuneration import build_ng_coinbase
from repro.core.spv import (
    InclusionProof,
    LightClient,
    SpvError,
    build_inclusion_proof,
)
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import OutPoint, Transaction, TxInput, TxOutput

PARAMS = NGParams()
GENESIS = make_ng_genesis()
LEADER = PrivateKey.from_seed("spv-leader")
NEXT = PrivateKey.from_seed("spv-next")


def _tx(byte):
    return Transaction(
        inputs=(TxInput(OutPoint(bytes([byte]) * 32, 0)),),
        outputs=(TxOutput(1, bytes(20)),),
    )


def _key(prev, who, t, miner=1):
    return build_key_block(
        prev_hash=prev,
        timestamp=t,
        bits=0x207FFFFF,
        leader_pubkey=who.public_key().to_bytes(),
        coinbase=build_ng_coinbase(
            miner_id=miner,
            timestamp=t,
            self_pubkey_hash=hash160(who.public_key().to_bytes()),
            prev_leader_pubkey_hash=None,
            prev_epoch_fees=0,
            params=PARAMS,
        ),
    )


@pytest.fixture()
def scenario():
    """Genesis → K1 → micro(tx…) → K2; light client synced."""
    k1 = _key(GENESIS.hash, LEADER, 10.0)
    txs = tuple(_tx(i) for i in range(1, 6))
    micro = build_microblock(k1.hash, 20.0, TxPayload(txs), LEADER)
    k2 = _key(micro.hash, NEXT, 110.0, miner=2)
    client = LightClient(GENESIS)
    client.add_header(k1.header, GENESIS.hash)
    client.add_header(k2.header, k1.hash)
    return client, k1, micro, k2, txs


def test_valid_proof_verifies(scenario):
    client, k1, micro, k2, txs = scenario
    proof = build_inclusion_proof(micro, txs[2].txid, k1.hash)
    assert client.verify(proof, min_key_depth=1)


def test_depth_requirement(scenario):
    client, k1, micro, k2, txs = scenario
    proof = build_inclusion_proof(micro, txs[0].txid, k1.hash)
    assert client.verify(proof, min_key_depth=1)
    assert not client.verify(proof, min_key_depth=2)  # only K2 buries it


def test_wrong_txid_fails(scenario):
    client, k1, micro, k2, txs = scenario
    proof = build_inclusion_proof(micro, txs[0].txid, k1.hash)
    forged = InclusionProof(
        txid=_tx(99).txid,
        merkle_branch=proof.merkle_branch,
        micro_header=proof.micro_header,
        micro_signature=proof.micro_signature,
        key_block_hash=proof.key_block_hash,
    )
    assert not client.verify(forged)


def test_signature_from_wrong_epoch_fails(scenario):
    client, k1, micro, k2, txs = scenario
    # Re-sign the microblock with the *next* leader's key: a proof
    # pointing at k1's epoch must fail.
    resigned = build_microblock(
        k1.hash, 20.0, micro.payload, NEXT
    )
    proof = build_inclusion_proof(resigned, txs[0].txid, k1.hash)
    assert not client.verify(proof)


def test_unknown_epoch_fails(scenario):
    client, k1, micro, k2, txs = scenario
    proof = build_inclusion_proof(micro, txs[0].txid, b"\x55" * 32)
    assert not client.verify(proof)


def test_off_chain_epoch_fails(scenario):
    client, k1, micro, k2, txs = scenario
    # A competing key fork grows heavier; k1's chain loses.
    fork1 = _key(GENESIS.hash, NEXT, 11.0, miner=3)
    fork2 = _key(fork1.hash, NEXT, 111.0, miner=3)
    fork3 = _key(fork2.hash, NEXT, 211.0, miner=3)
    client.add_header(fork1.header, GENESIS.hash)
    client.add_header(fork2.header, fork1.hash)
    client.add_header(fork3.header, fork2.hash)
    assert client.best_hash == fork3.hash
    proof = build_inclusion_proof(micro, txs[0].txid, k1.hash)
    assert not client.verify(proof)
    assert client.burial_depth(k1.hash) == -1


def test_proof_construction_errors(scenario):
    client, k1, micro, k2, txs = scenario
    with pytest.raises(SpvError):
        build_inclusion_proof(micro, b"\x00" * 32, k1.hash)
    from repro.bitcoin.blocks import SyntheticPayload

    synthetic = build_microblock(
        k1.hash, 20.0, SyntheticPayload(n_tx=3, salt=b"s"), LEADER
    )
    with pytest.raises(SpvError):
        build_inclusion_proof(synthetic, txs[0].txid, k1.hash)


def test_header_sync_errors(scenario):
    client, k1, *_ = scenario
    with pytest.raises(SpvError):
        client.add_header(k1.header, b"\x00" * 32)  # unknown parent
    assert not client.add_header(k1.header, GENESIS.hash)  # duplicate


def test_header_chain_growth_is_key_rate_only(scenario):
    # The SPV selling point: 2 key headers for a whole epoch of
    # microblocks.
    client, *_ = scenario
    assert client.height() == 2
