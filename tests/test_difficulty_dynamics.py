"""The retargeting control loop under power variation (Section 5.2)."""

import pytest

from repro.experiments.difficulty_dynamics import (
    PowerEvent,
    run_power_drop,
    simulate_difficulty_dynamics,
)


def test_steady_state_hits_target_interval():
    trace = simulate_difficulty_dynamics(
        target_interval=10.0,
        window=20,
        duration=20_000.0,
        power_schedule=[],
        seed=1,
    )
    mean = trace.mean_interval(2_000.0, 20_000.0)
    assert mean == pytest.approx(10.0, rel=0.15)


def test_power_drop_stalls_blocks():
    trace = simulate_difficulty_dynamics(
        target_interval=10.0,
        window=100,
        duration=40_000.0,
        power_schedule=[PowerEvent(10_000.0, 0.25)],
        seed=2,
    )
    before = trace.mean_interval(2_000.0, 10_000.0)
    # Right after the drop — before the first post-drop retarget (a
    # 100-block window at 4x-slow blocks takes ~4000 s) — intervals
    # stretch by roughly the reciprocal of the remaining power.
    just_after = trace.mean_interval(10_000.0, 11_500.0)
    assert just_after > before * 2.5


def test_retargeting_eventually_recovers():
    report = run_power_drop(
        target_interval=10.0, window=20, drop_to=0.25, seed=3
    )
    assert report.stall_factor > 2.0  # the painful period
    assert report.interval_after_recovery == pytest.approx(10.0, rel=0.35)
    assert report.blocks_to_recover > 0


def test_deeper_drop_longer_stall():
    mild = run_power_drop(drop_to=0.5, seed=4)
    severe = run_power_drop(drop_to=0.1, seed=4)
    assert severe.stall_factor > mild.stall_factor


def test_power_surge_speeds_blocks_until_adjustment():
    trace = simulate_difficulty_dynamics(
        target_interval=10.0,
        window=100,
        duration=30_000.0,
        power_schedule=[PowerEvent(10_000.0, 4.0)],
        seed=5,
    )
    before = trace.mean_interval(2_000.0, 10_000.0)
    # A 4x surge quarters the interval until the next retarget window
    # (which the fast blocks reach quickly, ~250 s).
    just_after = trace.mean_interval(10_000.0, 10_240.0)
    assert just_after < before / 2.0
    # After adaptation the interval returns near target.
    late = trace.mean_interval(25_000.0, 30_000.0)
    assert late == pytest.approx(10.0, rel=0.4)


def test_difficulty_trace_structure():
    trace = simulate_difficulty_dynamics(
        target_interval=5.0,
        window=10,
        duration=2_000.0,
        power_schedule=[],
        seed=6,
    )
    assert len(trace.block_times) == len(trace.difficulties)
    assert len(trace.block_times) == len(trace.powers)
    assert trace.block_times == sorted(trace.block_times)
    assert all(i > 0 for i in trace.intervals())


def test_validation():
    with pytest.raises(ValueError):
        simulate_difficulty_dynamics(0, 10, 100, [])
    with pytest.raises(ValueError):
        simulate_difficulty_dynamics(10, 0, 100, [])
    with pytest.raises(ValueError):
        simulate_difficulty_dynamics(
            10, 10, 100, [PowerEvent(5.0, 0.0)]
        )
