"""Planted fixture: a versioned class whose write escapes via a self-call."""


class Leaky:  # repro: versioned
    def __init__(self) -> None:
        self.rows: list[int] = []
        self.version = 0

    def _push(self, row: int) -> None:
        self.rows.append(row)

    def push(self, row: int) -> None:
        self._push(row)
