"""Golden fixture: a cross-module call edge for the mutation fixpoint."""

from helpers import mutate_store


def touch(store) -> None:
    mutate_store(store)
