"""Golden fixture: a versioned container exercising the bump analysis.

`Store.put` bumps directly; `put_many` bumps *through* the self-call
(its bump formula is `("call", "put")`); `drop` has a guard clause
whose early return must not poison the formula.  All three are clean
under NG601 — the symbol-table and call-graph golden tests pin their
extracted summaries instead.
"""


class Store:  # repro: versioned
    def __init__(self) -> None:
        self.items: dict[str, int] = {}
        self.version = 0

    def put(self, key: str, value: int) -> None:
        self.items[key] = value
        self.version += 1

    def put_many(self, pairs) -> None:
        for key, value in pairs:
            self.put(key, value)

    def drop(self, key: str) -> None:
        if key not in self.items:
            return
        del self.items[key]
        self.version += 1
