"""Golden fixture: dataflow helpers for the call-graph/taint tests."""


def mutate_store(store) -> None:
    store.items.update({"x": 1})


def chain_of(node):
    return node.chain


def last_block(node):
    chain = chain_of(node)
    chain.append(None)
    return chain
