"""Smoke tests: the lightweight examples must run clean end to end.

The heavier simulation examples (quickstart, frequency_tradeoff,
power_variation) are exercised through the experiments tests; the quick
ones run here as subprocesses so a refactor cannot silently break the
documented entry points.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "ghost_ambiguity.py",
    "doublespend_poison.py",
    "light_client.py",
    "payment_network.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_all_examples_present():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in scripts
    assert len(scripts) >= 5  # the deliverable floor, with room above
