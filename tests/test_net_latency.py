"""Latency histogram construction and sampling."""

import random

import pytest

from repro.net.latency import (
    LatencyHistogram,
    constant_histogram,
    default_histogram,
)


def test_from_samples_roundtrip():
    samples = [0.05, 0.10, 0.10, 0.20, 0.30]
    hist = LatencyHistogram.from_samples(samples, n_bins=5)
    assert sum(hist.counts) == len(samples)


def test_sampling_within_range():
    hist = LatencyHistogram.from_samples([0.1, 0.2, 0.3], n_bins=4)
    rng = random.Random(0)
    for _ in range(200):
        value = hist.sample(rng)
        assert 0.1 <= value <= 0.3


def test_sampling_follows_mass():
    # 90% of mass in the low bin → most samples low.
    hist = LatencyHistogram([0.0, 1.0, 2.0], [90, 10])
    rng = random.Random(1)
    low = sum(1 for _ in range(2000) if hist.sample(rng) < 1.0)
    assert 1650 <= low <= 1950


def test_quantiles_ordered():
    hist = default_histogram()
    assert hist.quantile(0.25) <= hist.quantile(0.5) <= hist.quantile(0.9)


def test_default_histogram_realistic():
    hist = default_histogram()
    median = hist.quantile(0.5)
    assert 0.05 <= median <= 0.2  # around 110 ms
    assert hist.quantile(0.99) <= 0.45  # clipped tail
    assert hist.mean() > 0


def test_default_histogram_deterministic():
    a = default_histogram(seed=5)
    b = default_histogram(seed=5)
    assert a.counts == b.counts
    assert a.bin_edges == b.bin_edges


def test_constant_histogram():
    hist = constant_histogram(0.1)
    rng = random.Random(0)
    assert hist.sample(rng) == pytest.approx(0.1, rel=1e-6)


def test_validation_errors():
    with pytest.raises(ValueError):
        LatencyHistogram([0.0, 1.0], [1, 2])  # edge/count mismatch
    with pytest.raises(ValueError):
        LatencyHistogram([0.0, 1.0], [0])  # empty mass
    with pytest.raises(ValueError):
        LatencyHistogram([1.0, 0.5], [1])  # non-increasing edges
    with pytest.raises(ValueError):
        LatencyHistogram.from_samples([])
    with pytest.raises(ValueError):
        constant_histogram(0.0)
    with pytest.raises(ValueError):
        default_histogram().quantile(1.5)
