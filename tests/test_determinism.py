"""Whole-simulation determinism: the reproducibility guarantee.

Every experiment in the repository leans on the fact that a seeded
simulation replays identically — block hashes, arrival times, and all
derived metrics.
"""

from repro.experiments import ExperimentConfig, Protocol, run_experiment

CONFIG = ExperimentConfig(
    n_nodes=20,
    target_blocks=20,
    target_key_blocks=6,
    block_rate=0.1,
    block_size_bytes=5000,
    cooldown=20.0,
    seed=9,
)


def _fingerprint(log):
    blocks = sorted(
        (info.hash, info.miner, info.gen_time)
        for info in log.index.all_blocks()
    )
    arrivals = [sorted(node_arrivals.items()) for node_arrivals in log.arrivals]
    return blocks, arrivals, log.main_chain()


def test_bitcoin_simulation_bit_identical():
    _, log_a = run_experiment(CONFIG.with_(protocol=Protocol.BITCOIN))
    _, log_b = run_experiment(CONFIG.with_(protocol=Protocol.BITCOIN))
    assert _fingerprint(log_a) == _fingerprint(log_b)


def test_ng_simulation_bit_identical():
    _, log_a = run_experiment(CONFIG.with_(protocol=Protocol.BITCOIN_NG))
    _, log_b = run_experiment(CONFIG.with_(protocol=Protocol.BITCOIN_NG))
    assert _fingerprint(log_a) == _fingerprint(log_b)


def test_ghost_simulation_bit_identical():
    _, log_a = run_experiment(CONFIG.with_(protocol=Protocol.GHOST))
    _, log_b = run_experiment(CONFIG.with_(protocol=Protocol.GHOST))
    assert _fingerprint(log_a) == _fingerprint(log_b)


def test_different_seeds_different_executions():
    _, log_a = run_experiment(CONFIG.with_(seed=1))
    _, log_b = run_experiment(CONFIG.with_(seed=2))
    assert _fingerprint(log_a) != _fingerprint(log_b)
