"""Whole-simulation determinism: the reproducibility guarantee.

Every experiment in the repository leans on the fact that a seeded
simulation replays identically — block hashes, arrival times, and all
derived metrics.
"""

from repro.experiments import (
    ExperimentConfig,
    Protocol,
    frequency_sweep,
    run_experiment,
)
from repro.experiments.parallel import SweepExecutor

CONFIG = ExperimentConfig(
    n_nodes=20,
    target_blocks=20,
    target_key_blocks=6,
    block_rate=0.1,
    block_size_bytes=5000,
    cooldown=20.0,
    seed=9,
)


def _fingerprint(log):
    blocks = sorted(
        (info.hash, info.miner, info.gen_time)
        for info in log.index.all_blocks()
    )
    arrivals = [sorted(node_arrivals.items()) for node_arrivals in log.arrivals]
    return blocks, arrivals, log.main_chain()


def test_bitcoin_simulation_bit_identical():
    _, log_a = run_experiment(CONFIG.with_(protocol=Protocol.BITCOIN))
    _, log_b = run_experiment(CONFIG.with_(protocol=Protocol.BITCOIN))
    assert _fingerprint(log_a) == _fingerprint(log_b)


def test_ng_simulation_bit_identical():
    _, log_a = run_experiment(CONFIG.with_(protocol=Protocol.BITCOIN_NG))
    _, log_b = run_experiment(CONFIG.with_(protocol=Protocol.BITCOIN_NG))
    assert _fingerprint(log_a) == _fingerprint(log_b)


def test_ghost_simulation_bit_identical():
    _, log_a = run_experiment(CONFIG.with_(protocol=Protocol.GHOST))
    _, log_b = run_experiment(CONFIG.with_(protocol=Protocol.GHOST))
    assert _fingerprint(log_a) == _fingerprint(log_b)


def test_different_seeds_different_executions():
    _, log_a = run_experiment(CONFIG.with_(seed=1))
    _, log_b = run_experiment(CONFIG.with_(seed=2))
    assert _fingerprint(log_a) != _fingerprint(log_b)


# -- observability ----------------------------------------------------------


def test_instrumented_run_bit_identical_to_bare_run():
    """Tracing and sampling must not disturb the simulation.

    Samplers consume event-queue sequence numbers but never reorder
    protocol events or draw from the simulation RNG, so every block
    hash, arrival time, and derived metric matches the bare run.
    (``events_processed`` is excluded: sampler firings are real events.)
    """
    from repro.obs import Observability
    from repro.obs.trace import MemorySink, Tracer

    for protocol in (Protocol.BITCOIN, Protocol.BITCOIN_NG, Protocol.GHOST):
        config = CONFIG.with_(protocol=protocol)
        bare_result, bare_log = run_experiment(config)
        obs = Observability(tracer=Tracer(MemorySink()))
        traced_result, traced_log = run_experiment(config, obs=obs)
        assert _fingerprint(traced_log) == _fingerprint(bare_log)
        assert traced_result.as_row() == bare_result.as_row()


# -- sanitizer --------------------------------------------------------------


def test_checked_run_bit_identical_to_bare_run():
    """``--check`` must observe, never perturb.

    Invariant sweeps and digest captures only read node state — no
    events scheduled, no RNG draws — so a checked run reproduces the
    bare run exactly, including ``events_processed`` (unlike samplers,
    the sanitizer probe piggybacks on existing events).
    """
    for protocol in (Protocol.BITCOIN, Protocol.BITCOIN_NG, Protocol.GHOST):
        config = CONFIG.with_(protocol=protocol)
        bare_result, bare_log = run_experiment(config)
        checked_result, checked_log = run_experiment(
            config.with_(check=True, check_stride=16)
        )
        assert _fingerprint(checked_log) == _fingerprint(bare_log)
        assert checked_result.as_row() == bare_result.as_row()
        assert (
            checked_result.events_processed == bare_result.events_processed
        )
        assert len(checked_result.violations) == 0


# -- profiler ---------------------------------------------------------------


def test_profiled_run_bit_identical_to_bare_run():
    """Profiling must measure, never perturb.

    The profiled dispatch loop only reads the wall clock around work the
    bare loop already does — no events scheduled, no RNG draws — so a
    profiled run reproduces the bare run exactly, including
    ``events_processed``.
    """
    from repro.prof import profile_experiment

    for protocol in (Protocol.BITCOIN, Protocol.BITCOIN_NG, Protocol.GHOST):
        config = CONFIG.with_(protocol=protocol)
        bare_result, bare_log = run_experiment(config)
        prof_result, prof_log, profile = profile_experiment(config)
        assert _fingerprint(prof_log) == _fingerprint(bare_log)
        assert prof_result.as_row() == bare_result.as_row()
        assert prof_result.events_processed == bare_result.events_processed
        assert profile.events_processed == bare_result.events_processed
        # The loop attributes essentially all of its own wall time.
        assert profile.phases
        assert profile.attributed_seconds > 0


def test_profiled_checked_run_bit_identical_to_bare_run():
    """Profiling composes with --check without disturbing either."""
    from repro.prof import profile_experiment

    config = CONFIG.with_(protocol=Protocol.BITCOIN_NG)
    bare_result, bare_log = run_experiment(config)
    prof_result, prof_log, profile = profile_experiment(
        config.with_(check=True, check_stride=16)
    )
    assert _fingerprint(prof_log) == _fingerprint(bare_log)
    assert prof_result.as_row() == bare_result.as_row()
    assert prof_result.events_processed == bare_result.events_processed
    assert len(prof_result.violations) == 0
    # Per-checker attribution was recorded for every registered checker.
    assert profile.checkers
    assert all(stat.calls > 0 for stat in profile.checkers.values())


# -- parallel dispatch ------------------------------------------------------

PARALLEL_BASE = ExperimentConfig(
    n_nodes=12,
    target_blocks=10,
    target_key_blocks=4,
    block_rate=0.1,
    block_size_bytes=4000,
    cooldown=15.0,
)


def test_parallel_executor_bit_identical_to_serial():
    """Process-pool dispatch returns the exact serial results, in order.

    ExperimentResult is a frozen dataclass of the config plus floats
    and counters, so ``==`` here is bit-identical equality of every
    metric of every run, whatever the worker count.
    """
    configs = [
        PARALLEL_BASE.with_(protocol=protocol, seed=seed)
        for protocol in (Protocol.BITCOIN, Protocol.BITCOIN_NG)
        for seed in (0, 1, 2)
    ]
    serial = SweepExecutor(jobs=1).map(configs)
    for workers in (2, 4):
        assert SweepExecutor(jobs=workers).map(configs) == serial


def test_progress_callback_does_not_perturb_results():
    """Per-cell heartbeats observe completions without changing them.

    The callback fires in completion order (nondeterministic under a
    pool) but sees every cell exactly once, and the returned results
    stay in submission order, equal to the quiet run.
    """
    configs = [
        PARALLEL_BASE.with_(protocol=Protocol.BITCOIN_NG, seed=seed)
        for seed in (0, 1, 2, 3)
    ]
    quiet = SweepExecutor(jobs=2).map(configs)
    for workers in (1, 2):
        seen = []
        noisy = SweepExecutor(jobs=workers).map(
            configs, progress=lambda i, n, r: seen.append((i, n, r))
        )
        assert noisy == quiet
        assert sorted(i for i, _, _ in seen) == list(range(len(configs)))
        assert all(n == len(configs) for _, n, _ in seen)
        assert {i: r for i, _, r in seen} == dict(enumerate(noisy))


def test_parallel_sweep_matches_serial_sweep():
    """A multi-seed sweep through the executor equals the serial path."""
    kwargs = dict(
        base=PARALLEL_BASE,
        frequencies=(0.05, 0.2),
        protocols=(Protocol.BITCOIN_NG,),
        seeds=(0, 1),
    )
    serial = frequency_sweep(jobs=1, **kwargs)
    parallel = frequency_sweep(jobs=3, **kwargs)
    assert [(p.x, p.protocol) for p in parallel.points] == [
        (p.x, p.protocol) for p in serial.points
    ]
    assert [p.results for p in parallel.points] == [
        p.results for p in serial.points
    ]
