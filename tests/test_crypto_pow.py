"""Proof-of-work targets, compact encoding, work accounting."""

import pytest

from repro.crypto.pow import (
    GENESIS_TARGET,
    MAX_TARGET,
    InvalidTarget,
    compact_from_target,
    difficulty_from_target,
    meets_target,
    scale_target,
    target_from_compact,
    work_from_target,
)


def test_meets_target_boundary():
    target = 1000
    assert meets_target((1000).to_bytes(32, "big"), target)
    assert not meets_target((1001).to_bytes(32, "big"), target)


def test_work_inverse_to_target():
    assert work_from_target(MAX_TARGET) == 1
    small = work_from_target(GENESIS_TARGET)
    assert small > 2**31  # genesis difficulty is ~2^32 hashes


def test_work_monotone_in_difficulty():
    assert work_from_target(GENESIS_TARGET) > work_from_target(GENESIS_TARGET * 2)


def test_compact_roundtrip_bitcoin_genesis():
    # Bitcoin's genesis nBits.
    bits = 0x1D00FFFF
    target = target_from_compact(bits)
    assert target == GENESIS_TARGET
    assert compact_from_target(target) == bits


def test_compact_roundtrip_regtest():
    bits = 0x207FFFFF
    assert compact_from_target(target_from_compact(bits)) == bits


def test_compact_small_exponent():
    # Exponent <= 3 shifts right.
    assert target_from_compact(0x03123456) == 0x123456
    assert target_from_compact(0x02123456) == 0x1234


def test_compact_rejects_negative_and_zero():
    with pytest.raises(InvalidTarget):
        target_from_compact(0x03800000)  # sign bit set
    with pytest.raises(InvalidTarget):
        target_from_compact(0x03000000)  # zero mantissa


def test_difficulty_relative_to_genesis():
    assert difficulty_from_target(GENESIS_TARGET) == pytest.approx(1.0)
    assert difficulty_from_target(GENESIS_TARGET // 2) == pytest.approx(2.0)


def test_scale_target_clamps():
    target = GENESIS_TARGET
    assert scale_target(target, 100.0) == target * 4  # clamped up
    assert scale_target(target, 0.001) == target // 4  # clamped down


def test_scale_target_within_clamp():
    target = 1 << 200
    assert scale_target(target, 2.0) == target * 2


def test_scale_target_bounds():
    assert scale_target(MAX_TARGET, 4.0) == MAX_TARGET  # never exceeds max
    assert scale_target(1, 0.25) == 1  # never hits zero
    with pytest.raises(ValueError):
        scale_target(1000, 0.0)


def test_target_range_validation():
    with pytest.raises(InvalidTarget):
        work_from_target(0)
    with pytest.raises(InvalidTarget):
        work_from_target(MAX_TARGET + 1)
