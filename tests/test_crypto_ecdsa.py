"""secp256k1 ECDSA: curve arithmetic, signing, verification."""

import pytest

from repro.crypto import ecdsa
from repro.crypto.ecdsa import (
    G,
    INFINITY,
    N,
    InvalidPoint,
    Point,
    is_on_curve,
    point_add,
    point_from_bytes,
    point_mul,
    point_to_bytes,
    sign,
    signature_from_bytes,
    signature_to_bytes,
    verify,
)


def test_generator_on_curve():
    assert is_on_curve(G)


def test_infinity_is_identity():
    assert point_add(G, INFINITY) == G
    assert point_add(INFINITY, G) == G


def test_point_addition_closed():
    p2 = point_add(G, G)
    assert is_on_curve(p2)
    p3 = point_add(p2, G)
    assert is_on_curve(p3)
    assert p3 != p2 != G


def test_inverse_points_sum_to_infinity():
    neg_g = Point(G.x, (-G.y) % ecdsa.P)
    assert point_add(G, neg_g) == INFINITY


def test_scalar_multiplication_consistency():
    # 5G computed two ways.
    by_add = G
    for _ in range(4):
        by_add = point_add(by_add, G)
    assert point_mul(5) == by_add


def test_group_order_annihilates():
    assert point_mul(N) == INFINITY
    assert point_mul(N + 1) == G


def test_point_serialization_roundtrip():
    for k in (1, 2, 7, 123456789):
        point = point_mul(k)
        assert point_from_bytes(point_to_bytes(point)) == point


def test_point_from_bytes_rejects_garbage():
    with pytest.raises(InvalidPoint):
        point_from_bytes(b"\x05" + b"\x00" * 32)
    with pytest.raises(InvalidPoint):
        point_from_bytes(b"\x02" + b"\x00" * 10)
    # x = 1 is not on the curve's quadratic residue for prefix mismatch
    # checks handled internally; an off-curve x must be rejected.
    with pytest.raises(InvalidPoint):
        point_from_bytes(b"\x02" + (5).to_bytes(32, "big"))


def test_sign_verify_roundtrip():
    secret = 0xDEADBEEF
    msg = b"\x11" * 32
    signature = sign(secret, msg)
    assert verify(point_mul(secret), msg, signature)


def test_verify_rejects_wrong_message():
    secret = 42
    signature = sign(secret, b"\x01" * 32)
    assert not verify(point_mul(secret), b"\x02" * 32, signature)


def test_verify_rejects_wrong_key():
    signature = sign(42, b"\x01" * 32)
    assert not verify(point_mul(43), b"\x01" * 32, signature)


def test_signature_is_deterministic():
    assert sign(7, b"\x03" * 32) == sign(7, b"\x03" * 32)


def test_signature_low_s_normalized():
    for secret in (5, 99, 12345):
        _, s = sign(secret, b"\x04" * 32)
        assert s <= N // 2


def test_signature_bytes_roundtrip():
    signature = sign(9, b"\x05" * 32)
    assert signature_from_bytes(signature_to_bytes(signature)) == signature


def test_signature_from_bytes_length_check():
    with pytest.raises(ecdsa.InvalidSignature):
        signature_from_bytes(b"\x00" * 63)


def test_verify_rejects_zero_r_s():
    pub = point_mul(11)
    assert not verify(pub, b"\x06" * 32, (0, 1))
    assert not verify(pub, b"\x06" * 32, (1, 0))
    assert not verify(pub, b"\x06" * 32, (N, 1))


def test_sign_rejects_bad_inputs():
    with pytest.raises(ValueError):
        sign(0, b"\x00" * 32)
    with pytest.raises(ValueError):
        sign(N, b"\x00" * 32)
    with pytest.raises(ValueError):
        sign(1, b"\x00" * 31)


def test_jacobian_matches_affine_addition():
    # Cross-check the fast path against repeated affine additions.
    total = INFINITY
    for k in range(1, 20):
        total = point_add(total, G)
        assert point_mul(k) == total
