"""Appendix A: the GHOST main-chain ambiguity construction."""

from repro.ghost.ambiguity import build_appendix_a, no_view_matches_global


def test_global_chain_goes_through_fork():
    scenario = build_appendix_a()
    labels = scenario.global_main_chain_labels()
    # Globally, subtree(2') = 4 blocks beats subtree(2) = 3 blocks.
    assert labels[:3] == ["0", "1", "2'"]


def test_each_view_follows_long_chain():
    scenario = build_appendix_a()
    for node in range(3):
        labels = scenario.view_main_chain_labels(node)
        # Locally subtree(2)=3 > subtree(2')=2, so the view ends at 4.
        assert labels == ["0", "1", "2", "3", "4"]


def test_no_single_node_knows_the_main_chain():
    scenario = build_appendix_a()
    assert no_view_matches_global(scenario)


def test_views_hold_exactly_one_sibling():
    scenario = build_appendix_a()
    for node, sibling in zip(range(3), ("3'", "3''", "3'''")):
        view = scenario.node_views[node]
        assert scenario.blocks[sibling].hash in view
        others = {"3'", "3''", "3'''"} - {sibling}
        for other in others:
            assert scenario.blocks[other].hash not in view


def test_union_of_views_resolves():
    # Pooling all three views reconstructs the global choice — the
    # paper's "propagate all blocks" fix.
    scenario = build_appendix_a()
    assert (
        scenario.global_tree.main_chain()[:3]
        == [
            scenario.blocks["0"].hash,
            scenario.blocks["1"].hash,
            scenario.blocks["2'"].hash,
        ]
    )
