"""Figure 6: weekly mining-pool power by rank.

Paper: a year of weekly pool shares, ranked; quartile bars per rank;
"we approximate it with an exponential distribution with an exponent of
−0.27.  It yields a 0.99 coefficient of determination compared with the
medians of each rank."
"""

from repro.mining import (
    PAPER_EXPONENT,
    fit_rank_medians,
    generate_year,
    rank_statistics,
)
from conftest import emit


def _figure6():
    weeks = generate_year(n_pools=20, n_weeks=52)
    stats = rank_statistics(weeks, max_rank=20)
    exponent, r_squared = fit_rank_medians(weeks)
    return stats, exponent, r_squared


def test_figure6_mining_power_distribution(benchmark):
    stats, exponent, r_squared = benchmark(_figure6)

    emit("\nFigure 6 — weekly pool power by rank (52 synthetic weeks)")
    emit(f"{'rank':>5}{'p25':>9}{'p50':>9}{'p75':>9}")
    for entry in stats:
        emit(
            f"{int(entry['rank']):>5}{entry['p25']:>9.3f}"
            f"{entry['p50']:>9.3f}{entry['p75']:>9.3f}"
        )
    emit(f"\nexponential fit to rank medians: exponent={exponent:.3f} "
          f"(paper: {PAPER_EXPONENT}), R²={r_squared:.4f} (paper: 0.99)")

    # Shape assertions: the paper's calibration numbers.
    assert abs(exponent - PAPER_EXPONENT) < 0.03
    assert r_squared >= 0.99
    # Quartile bars ordered and medians monotone decreasing by rank.
    medians = [entry["p50"] for entry in stats]
    assert medians == sorted(medians, reverse=True)
    for entry in stats:
        assert entry["p25"] <= entry["p50"] <= entry["p75"]
    # The largest pool holds a bit under 1/4 of the power.
    assert 0.15 <= medians[0] <= 0.25
