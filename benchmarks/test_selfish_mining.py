"""The selfish-mining threshold study behind the 1/4 bound (Section 2).

The model caps Byzantine power at 1/4 "because proof-of-work
blockchains, Bitcoin-NG included, are vulnerable to selfish mining by
attackers larger than 1/4 of the network".  This regenerates the
revenue-vs-α curve at the conservative tie-winning parameter γ = 1/2
and confirms the crossover sits at 1/4.
"""

import pytest

from repro.attacks import revenue_curve, selfish_threshold
from conftest import emit

ALPHAS = (0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40)


def _curve():
    return revenue_curve(gamma=0.5, alphas=ALPHAS, n_blocks=200_000)


def test_selfish_mining_threshold(benchmark):
    curve = benchmark.pedantic(_curve, rounds=1, iterations=1)

    threshold = selfish_threshold(0.5)
    emit("\nSelfish mining revenue share vs attacker size (γ = 0.5)")
    emit(f"{'alpha':>7}{'share':>9}{'gain':>9}")
    for outcome in curve:
        emit(
            f"{outcome.alpha:>7.2f}{outcome.attacker_revenue_share:>9.4f}"
            f"{outcome.relative_gain:>+9.4f}"
        )
    emit(f"\nclosed-form threshold: α = {threshold:.4f}")

    assert threshold == pytest.approx(0.25)
    # Below the threshold selfish mining loses, above it wins.
    for outcome in curve:
        if outcome.alpha <= 0.20:
            assert outcome.relative_gain < 0.005
        if outcome.alpha >= 0.30:
            assert outcome.relative_gain > 0.005
    # Revenue share is monotone in attacker size.
    shares = [o.attacker_revenue_share for o in curve]
    assert shares == sorted(shares)
