"""Network-size scaling: the paper's headline claim, quantified.

"Bitcoin-NG scales optimally, with bandwidth limited only by the
capacity of the individual nodes and latency limited only by the
propagation time of the network."

Random ≥5-degree graphs have diameter ~log N, so NG's consensus delay
should grow slowly (logarithmically) with node count while its
security metrics stay flat.  This benchmark sweeps the network size —
the dimension the paper fixed at 1000 — and checks exactly that.
"""

import math

import pytest

from repro.experiments import ExperimentConfig, Protocol, run_experiment
from repro.experiments.propagation import propagation_samples
from repro.stats import percentile
from conftest import emit

SIZES = (30, 60, 120, 240)


def _study():
    rows = []
    for n_nodes in SIZES:
        config = ExperimentConfig(
            protocol=Protocol.BITCOIN_NG,
            n_nodes=n_nodes,
            block_rate=1.0 / 10.0,
            key_block_rate=1.0 / 100.0,
            block_size_bytes=16_660,
            target_blocks=60,
            target_key_blocks=12,
            cooldown=45.0,
            seed=14,
        )
        result, log = run_experiment(config)
        delay = percentile(propagation_samples(log), 0.9)
        rows.append((n_nodes, delay, result))
    return rows


def test_ng_scales_with_network_size(benchmark):
    rows = benchmark.pedantic(_study, rounds=1, iterations=1)
    emit("\nScaling study — Bitcoin-NG vs network size")
    emit(f"{'nodes':>7}{'p90 prop[s]':>13}{'cons.delay[s]':>15}"
         f"{'util':>7}{'ttp[s]':>8}")
    for n_nodes, delay, result in rows:
        emit(f"{n_nodes:>7}{delay:>13.2f}{result.consensus_delay:>15.2f}"
             f"{result.mining_power_utilization:>7.2f}"
             f"{result.time_to_prune:>8.2f}")

    # Security metrics stay flat as the network grows.
    for _, _, result in rows:
        assert result.mining_power_utilization >= 0.9
    # Consensus delay tracks propagation, which grows sub-linearly
    # (log-diameter): an 8x network must not cost anywhere near 8x.
    first = rows[0]
    last = rows[-1]
    size_ratio = last[0] / first[0]
    delay_ratio = max(last[1], 0.01) / max(first[1], 0.01)
    assert delay_ratio < size_ratio / 2
    # And consensus delay stays within a small multiple of propagation.
    for _, delay, result in rows:
        assert result.consensus_delay <= max(10 * delay, 20.0)
