"""Section 5.2: resilience to mining power variation.

After a sudden power drop, every proof-of-work chain's block rate
stalls until difficulty retargets; the paper's point is that Bitcoin's
*transaction serialization* stalls with it, while Bitcoin-NG keeps
serializing in microblocks at the unchanged rate — only key blocks
(censorship exposure) slow down.  This benchmark runs the drop live in
simulation and regenerates the retargeting recovery numbers.
"""

import pytest

from repro.attacks import power_drop_comparison
from repro.experiments import ExperimentConfig, Protocol
from repro.metrics import ObservationLog, transaction_frequency
from repro.mining.difficulty import expected_block_interval, recovery_blocks
from repro.mining.power import exponential_shares
from repro.net.simulator import Simulator
from repro.experiments.runner import build_network
from repro.protocols import get_adapter
from conftest import emit, BENCH_NODES

DROP_TO = 0.25  # 75% of mining power leaves


def _run_with_power_drop(protocol):
    """Run 1000 s; at t=500 the block rate drops to DROP_TO of itself
    (the scheduler models hash rate; difficulty is still tuned to the
    old rate, so the block interval stretches by 1/DROP_TO)."""
    config = ExperimentConfig(
        protocol=protocol,
        n_nodes=BENCH_NODES,
        block_rate=1.0 / 10.0,
        key_block_rate=1.0 / 50.0,
        block_size_bytes=16_660,
        target_blocks=100,
        cooldown=30.0,
        seed=6,
    )
    sim = Simulator(seed=config.seed)
    network = build_network(config, sim)
    log = ObservationLog(config.n_nodes)
    shares = exponential_shares(config.n_nodes)
    nodes, scheduler = get_adapter(protocol).build_nodes(
        config, sim, network, log, shares
    )
    scheduler.start()
    sim.run(until=500.0)
    scheduler.set_block_rate(scheduler.block_rate * DROP_TO)
    sim.run(until=1000.0)
    scheduler.stop()
    sim.run(until=1030.0)
    log.finalize(1030.0)
    # Split serialized transactions before/after the drop.
    main = log.main_chain()
    before = sum(
        log.index.info(h).n_tx for h in main if log.index.info(h).gen_time < 500
    )
    after = sum(
        log.index.info(h).n_tx
        for h in main
        if log.index.info(h).gen_time >= 500
    )
    return before / 500.0, after / 530.0


def test_power_drop_throughput(benchmark):
    def _both():
        return {
            Protocol.BITCOIN: _run_with_power_drop(Protocol.BITCOIN),
            Protocol.BITCOIN_NG: _run_with_power_drop(Protocol.BITCOIN_NG),
        }

    rates = benchmark.pedantic(_both, rounds=1, iterations=1)
    emit(f"\nSection 5.2 — 75% mining power drop at t=500 s "
          f"({BENCH_NODES} nodes)")
    emit(f"{'protocol':>12}{'tx/s before':>13}{'tx/s after':>13}{'ratio':>8}")
    for protocol, (before, after) in rates.items():
        emit(f"{protocol.value:>12}{before:>13.2f}{after:>13.2f}"
              f"{after / before:>8.2f}")

    bitcoin_before, bitcoin_after = rates[Protocol.BITCOIN]
    ng_before, ng_after = rates[Protocol.BITCOIN_NG]
    # Bitcoin's serialization stalls roughly with the power drop.
    assert bitcoin_after / bitcoin_before < 0.55
    # "transaction processing continues at the same rate, in
    # microblocks" — NG only loses the boundary effects.
    assert ng_after / ng_before > 0.75
    assert ng_after / ng_before > bitcoin_after / bitcoin_before + 0.2


def test_retargeting_recovery_numbers(benchmark):
    def _table():
        return [
            (
                fraction,
                expected_block_interval(1 / 600, fraction),
                recovery_blocks(2016, 4.0, fraction),
            )
            for fraction in (0.5, 0.25, 0.1, 0.01)
        ]

    rows = benchmark(_table)
    emit("\nRetargeting recovery after a power drop (Bitcoin rules)")
    emit(f"{'power left':>11}{'interval[s]':>13}{'recovery blocks':>17}")
    for fraction, interval, blocks in rows:
        emit(f"{fraction:>11.2f}{interval:>13.0f}{blocks:>17}")
    # Intervals stretch inversely with remaining power...
    assert rows[1][1] == pytest.approx(2400)
    # ...and recovery needs whole retarget windows (the alt-coin trap).
    assert rows[2][2] >= 2016
    outcome = power_drop_comparison(0.25)
    assert outcome.ng_tx_rate_factor == 1.0
