"""Fairness under heavy contention, averaged over many seeds.

Fairness is the noisiest of the six metrics (a ratio of small counts),
so the single-seed panels in Figure 8 reproductions carry visible
sampling error.  This benchmark runs a heavy-contention Figure 8b
point (40 kB blocks every 10 s — high load but below the congestion
knee, see EXPERIMENTS.md) across eight seeds and checks the paper's
claim in expectation: Bitcoin's largest miner ends up over-represented
(fairness < 1), Bitcoin-NG's does not.
"""

from repro.experiments import ExperimentConfig, Protocol, run_many
from repro.stats import summarize
from conftest import emit, BENCH_NODES

SEEDS = tuple(range(8))
PROTOCOLS = (Protocol.BITCOIN, Protocol.BITCOIN_NG)


def _study():
    base = ExperimentConfig(
        n_nodes=BENCH_NODES,
        block_rate=1.0 / 10.0,
        key_block_rate=1.0 / 100.0,
        block_size_bytes=40_000,
        target_blocks=250,
        target_key_blocks=60,
        cooldown=60.0,
    )
    # All 16 runs are independent cells; the executor fans them out
    # over worker processes (REPRO_JOBS or CPU count) in deterministic
    # order, so the seed-averaged statistics are unchanged by jobs.
    configs = [
        base.with_(protocol=protocol, seed=seed)
        for protocol in PROTOCOLS
        for seed in SEEDS
    ]
    results = run_many(configs)
    out = {}
    for index, protocol in enumerate(PROTOCOLS):
        chunk = results[index * len(SEEDS) : (index + 1) * len(SEEDS)]
        out[protocol] = [result.fairness for result in chunk]
    return out


def test_fairness_converges_to_paper_shape(benchmark):
    out = benchmark.pedantic(_study, rounds=1, iterations=1)
    bitcoin = summarize(out[Protocol.BITCOIN])
    ng = summarize(out[Protocol.BITCOIN_NG])
    emit("\nFairness under heavy contention (40 kB / 10 s), 8 seeds")
    emit(f"{'protocol':>12}{'mean':>8}{'stdev':>8}{'min':>8}{'max':>8}")
    emit(f"{'bitcoin':>12}{bitcoin.mean:>8.3f}{bitcoin.stdev:>8.3f}"
         f"{bitcoin.minimum:>8.3f}{bitcoin.maximum:>8.3f}")
    emit(f"{'bitcoin-ng':>12}{ng.mean:>8.3f}{ng.stdev:>8.3f}"
         f"{ng.minimum:>8.3f}{ng.maximum:>8.3f}")

    # The paper's claim, in expectation: Bitcoin's fairness degrades
    # below 1 under heavy contention; NG's hovers at the optimum.
    assert bitcoin.mean < 0.99
    assert 0.92 <= ng.mean <= 1.1
    # NG is at least as fair, up to residual sampling noise.
    assert ng.mean > bitcoin.mean - 0.05
