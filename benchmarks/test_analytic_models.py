"""Analytic models vs simulation: the predictive-power check.

The closed forms in :mod:`repro.analysis` let parameter choices be
reasoned about without experiments; this benchmark quantifies how well
they track the simulator across a frequency range — the same kind of
validation the paper does for its testbed against Decker–Wattenhofer
measurements.
"""

import pytest

from repro.analysis import (
    bitcoin_fork_probability,
    expected_mining_power_utilization,
    ng_microblock_prune_probability,
)
from repro.experiments import ExperimentConfig, Protocol, run_experiment
from repro.experiments.propagation import propagation_samples
from repro.stats import percentile
from conftest import emit, BENCH_NODES

INTERVALS = (30.0, 10.0, 5.0)


def _study():
    rows = []
    for interval in INTERVALS:
        config = ExperimentConfig(
            protocol=Protocol.BITCOIN,
            n_nodes=BENCH_NODES,
            block_rate=1.0 / interval,
            block_size_bytes=5_000,
            target_blocks=150,
            cooldown=45.0,
            seed=13,
        )
        result, log = run_experiment(config)
        delay = percentile(propagation_samples(log), 0.5)
        predicted = expected_mining_power_utilization(interval, delay)
        rows.append((interval, delay, predicted, result.mining_power_utilization))
    # NG prune fraction check at one configuration.
    ng_config = ExperimentConfig(
        protocol=Protocol.BITCOIN_NG,
        n_nodes=BENCH_NODES,
        block_rate=1.0 / 10.0,
        key_block_rate=1.0 / 100.0,
        block_size_bytes=10_000,
        target_blocks=200,
        target_key_blocks=25,
        cooldown=45.0,
        seed=13,
    )
    ng_result, ng_log = run_experiment(ng_config)
    main = set(ng_log.main_chain())
    micros = [i for i in ng_log.index.all_blocks() if i.kind == "micro"]
    pruned_fraction = (
        sum(1 for i in micros if i.hash not in main) / len(micros)
    )
    ng_delay = percentile(propagation_samples(ng_log), 0.5)
    ng_predicted = ng_microblock_prune_probability(100.0, ng_delay)
    return rows, (ng_predicted, pruned_fraction)


def test_analytic_models_track_simulation(benchmark):
    rows, (ng_predicted, ng_measured) = benchmark.pedantic(
        _study, rounds=1, iterations=1
    )
    emit("\nAnalytic fork model vs simulation (Bitcoin)")
    emit(f"{'interval[s]':>12}{'delay[s]':>10}{'predicted util':>16}"
         f"{'measured util':>15}")
    for interval, delay, predicted, measured in rows:
        emit(f"{interval:>12.0f}{delay:>10.2f}{predicted:>16.3f}"
             f"{measured:>15.3f}")
    emit(f"\nNG microblock prune fraction: predicted {ng_predicted:.3f}, "
         f"measured {ng_measured:.3f}")

    # The model must track the trend and stay within coarse error.
    for interval, delay, predicted, measured in rows:
        assert measured == pytest.approx(predicted, abs=0.15)
    predictions = [row[2] for row in rows]
    measurements = [row[3] for row in rows]
    # Both decrease as the interval shrinks (contention grows).
    assert predictions == sorted(predictions, reverse=True)
    assert measurements == sorted(measurements, reverse=True)
    # The NG prune model lands in the right regime.
    assert ng_measured == pytest.approx(ng_predicted, abs=0.05)
