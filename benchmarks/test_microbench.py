"""Micro-benchmarks of the core primitives.

Not a paper artifact — performance baselines for the substrates, so
regressions in the hot paths (ECDSA, hashing, UTXO updates, the event
loop) are visible in CI.  These run pytest-benchmark in its natural
multi-round mode, unlike the single-shot figure regenerations.
"""

from repro.bitcoin.blocks import SyntheticPayload, build_block, make_genesis
from repro.bitcoin.chain import BlockTree
from repro.crypto.hashing import sha256d
from repro.crypto.keys import PrivateKey
from repro.crypto.merkle import merkle_root
from repro.ledger.transactions import OutPoint, Transaction, TxInput, TxOutput
from repro.ledger.utxo import UtxoSet
from repro.net.simulator import Simulator

KEY = PrivateKey.from_seed("bench")
MSG = b"\x42" * 32
SIG = KEY.sign(MSG)
PUB = KEY.public_key()
LEAVES = [sha256d(bytes([i])) for i in range(256)]


def test_ecdsa_sign(benchmark):
    result = benchmark(KEY.sign, MSG)
    assert len(result) == 64


def test_ecdsa_verify(benchmark):
    assert benchmark(PUB.verify, MSG, SIG)


def test_sha256d_1kb(benchmark):
    data = b"\x00" * 1024
    assert len(benchmark(sha256d, data)) == 32


def test_merkle_root_256_leaves(benchmark):
    root = benchmark(merkle_root, LEAVES)
    assert len(root) == 32


def test_transaction_roundtrip(benchmark):
    tx = Transaction(
        inputs=(TxInput(OutPoint(b"\x01" * 32, 0)),),
        outputs=(TxOutput(5, bytes(20)),),
        padding=b"p" * 100,
    )

    def roundtrip():
        return Transaction.deserialize(tx.serialize())

    assert benchmark(roundtrip) == tx


def test_utxo_apply_undo(benchmark):
    def apply_undo():
        utxo = UtxoSet(coinbase_maturity=0)
        prev = None
        for i in range(50):
            if prev is None:
                from repro.ledger.transactions import make_coinbase

                tx = make_coinbase([(bytes(20), 100)], tag=bytes([i]))
            else:
                tx = Transaction(
                    inputs=(TxInput(OutPoint(prev, 0)),),
                    outputs=(TxOutput(100, bytes(20)),),
                )
            utxo.apply(tx, i + 200)
            prev = tx.txid
        return len(utxo)

    assert benchmark(apply_undo) == 1


def test_event_loop_throughput(benchmark):
    def pump():
        sim = Simulator(seed=0)
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 5000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(pump) == 5000


def test_block_tree_insert_100(benchmark):
    genesis = make_genesis()
    blocks = []
    prev = genesis.hash
    for i in range(100):
        block = build_block(
            prev_hash=prev,
            payload=SyntheticPayload(n_tx=0, salt=bytes([i])),
            timestamp=float(i),
            bits=0x207FFFFF,
            miner_id=0,
            reward=0,
        )
        blocks.append(block)
        prev = block.hash

    def insert_all():
        tree = BlockTree(genesis)
        for t, block in enumerate(blocks):
            tree.add_block(block, float(t))
        return len(tree)

    assert benchmark(insert_all) == 101
