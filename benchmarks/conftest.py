"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows/series it reports, then asserts the *shape* of the
result (who wins, what degrades, where crossovers fall) rather than
absolute numbers — the substrate here is a simulator, not the authors'
1000-node emulation testbed.

Scale note: benchmarks default to 60-node networks for tractable wall
clock.  Set REPRO_BENCH_NODES to raise fidelity (the harness supports
the paper's 1000 nodes; expect minutes per point).
"""

import os
import pathlib

import pytest

# Node count for simulation benchmarks (override via environment).
BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "60"))

# Seeds averaged for noisy metrics.
BENCH_SEEDS = (0, 1)

# All regenerated tables are appended here so they survive pytest's
# output capture; rerunning the suite rewrites the file.
RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / "bench_results.txt"


def emit(text: str) -> None:
    """Print a regenerated table and persist it to bench_results.txt."""
    print(text)
    with RESULTS_PATH.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text(
        "# Regenerated paper tables (one section per benchmark)\n",
        encoding="utf-8",
    )
    yield


@pytest.fixture(scope="session")
def bench_nodes():
    return BENCH_NODES


@pytest.fixture(scope="session")
def bench_seeds():
    return BENCH_SEEDS
