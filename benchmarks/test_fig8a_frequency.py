"""Figure 8a: the block-frequency sweep (reducing latency).

Paper: Bitcoin's block frequency varies 0.01–1 /s; Bitcoin-NG keeps key
blocks at 1/100 s and varies microblock frequency over the same range;
block size is chosen per frequency to hold payload throughput at the
operational 3.5 tx/s.  Six metrics are reported for both protocols.

Expected shape: higher frequency lowers Bitcoin's consensus delay and
time-to-prune but collapses its mining power utilization (toward the
largest miner's share) — while Bitcoin-NG enjoys the latency gains with
*no* security degradation, since contention is confined to key blocks.
"""

from repro.experiments import (
    ExperimentConfig,
    Protocol,
    format_sweep_table,
    frequency_sweep,
)
from conftest import emit, BENCH_NODES

FREQUENCIES = (0.01, 0.0316, 0.1, 0.316, 1.0)


def _figure8a():
    # Paper-length executions (50-100 blocks): long runs intersect the
    # rare-but-long key-block forks of Figure 3 and inflate the means,
    # exactly the "low frequency" artifact Section 8.1 describes.
    base = ExperimentConfig(
        n_nodes=BENCH_NODES,
        target_blocks=50,
        target_key_blocks=8,
        cooldown=60.0,
    )
    return frequency_sweep(
        base, frequencies=FREQUENCIES, seeds=(0, 1, 2, 3)
    )


def _median(point, metric):
    values = sorted(getattr(r, metric) for r in point.results)
    return values[len(values) // 2]


def test_figure8a_frequency_sweep(benchmark):
    sweep = benchmark.pedantic(_figure8a, rounds=1, iterations=1)

    emit("\nFigure 8a — frequency sweep "
          f"({BENCH_NODES} nodes, seeds (0, 1, 2, 3))")
    emit(format_sweep_table(sweep))

    bitcoin = {p.x: p for p in sweep.series(Protocol.BITCOIN)}
    ng = {p.x: p for p in sweep.series(Protocol.BITCOIN_NG)}

    # -- Bitcoin degrades with frequency -------------------------------
    # "Bitcoin's mining power utilization drops quickly as frequency
    # increases".
    lowest, highest = FREQUENCIES[0], FREQUENCIES[-1]
    assert (
        _median(bitcoin[highest], "mining_power_utilization")
        < _median(bitcoin[lowest], "mining_power_utilization") - 0.1
    )
    # "Time to prune improves significantly as block frequency increases."
    assert (
        _median(bitcoin[highest], "time_to_prune")
        < _median(bitcoin[lowest], "time_to_prune")
    )
    # "a higher block frequency reduces Bitcoin's consensus latency".
    assert (
        _median(bitcoin[highest], "consensus_delay")
        < _median(bitcoin[lowest], "consensus_delay")
    )

    # -- Bitcoin-NG does not ------------------------------------------
    # "All other metrics are unaffected and remain at the optimal level."
    # (medians: a run can still catch a rare long key fork, the paper's
    # own low-frequency artifact)
    for frequency in FREQUENCIES:
        assert _median(ng[frequency], "mining_power_utilization") >= 0.93
    # "Increasing the microblock frequency achieves consensus delay and
    # time to prune reduction."
    assert _median(ng[highest], "consensus_delay") < _median(
        ng[lowest], "consensus_delay"
    )

    # -- NG beats Bitcoin across the range ------------------------------
    for frequency in FREQUENCIES:
        assert _median(ng[frequency], "mining_power_utilization") >= (
            _median(bitcoin[frequency], "mining_power_utilization") - 0.02
        )
        assert _median(ng[frequency], "time_to_prune") <= (
            _median(bitcoin[frequency], "time_to_prune") + 1.0
        )

    # Throughput: Bitcoin-NG holds near the operational 3.5 tx/s (its
    # low-frequency corner undershoots — the Section 8.1 artifact),
    # while Bitcoin's forks eat into its main-chain throughput as the
    # frequency grows: "In our experiments, Bitcoin's bandwidth is
    # smaller than that of Bitcoin-NG".
    for frequency in FREQUENCIES[1:]:
        assert 2.0 <= _median(ng[frequency], "transaction_frequency") <= 4.5
    assert _median(bitcoin[highest], "transaction_frequency") < _median(
        ng[highest], "transaction_frequency"
    )
