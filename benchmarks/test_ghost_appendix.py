"""Appendix A: GHOST's main-chain ambiguity, plus a GHOST-vs-Bitcoin run.

The appendix shows a block tree where no single node can determine the
GHOST main chain.  The paper also reports (Section 9) that GHOST's
requirement to propagate all blocks made it *worse* than Bitcoin in
their testbed, while its chain rule improves utilization under
contention — both facets are measured here.
"""

from repro.experiments import ExperimentConfig, Protocol, run_experiment
from repro.ghost import build_appendix_a, no_view_matches_global
from conftest import emit, BENCH_NODES


def test_appendix_a_ambiguity(benchmark):
    scenario = benchmark(build_appendix_a)
    emit("\nAppendix A — partial GHOST views (Figure 9)")
    emit(f"global main chain: {scenario.global_main_chain_labels()}")
    for node in range(3):
        emit(f"node {node + 1} view:       "
              f"{scenario.view_main_chain_labels(node)}")
    # Globally the fork block 2' wins by subtree mass...
    assert scenario.global_main_chain_labels()[2] == "2'"
    # ...but every node's partial view picks the long chain instead.
    assert no_view_matches_global(scenario)
    for node in range(3):
        assert scenario.view_main_chain_labels(node)[-1] == "4"


def _ghost_vs_bitcoin():
    base = ExperimentConfig(
        n_nodes=BENCH_NODES,
        block_rate=1.0 / 2.0,  # heavy contention
        block_size_bytes=5_000,
        target_blocks=120,
        cooldown=60.0,
        seed=4,
    )
    results = {}
    for protocol in (Protocol.BITCOIN, Protocol.GHOST):
        result, _ = run_experiment(base.with_(protocol=protocol))
        results[protocol] = result
    return results


def test_ghost_utilization_under_contention(benchmark):
    results = benchmark.pedantic(_ghost_vs_bitcoin, rounds=1, iterations=1)
    bitcoin = results[Protocol.BITCOIN]
    ghost = results[Protocol.GHOST]
    emit("\nGHOST vs Bitcoin under heavy contention (blocks every 2 s)")
    emit(f"{'metric':<28}{'bitcoin':>10}{'ghost':>10}")
    for attr in ("mining_power_utilization", "fairness", "consensus_delay"):
        emit(f"{attr:<28}{getattr(bitcoin, attr):>10.3f}"
              f"{getattr(ghost, attr):>10.3f}")
    # "GHOST improves both fairness and the mining power utilization
    # under high contention" — the chain-rule benefit.
    assert ghost.mining_power_utilization >= (
        bitcoin.mining_power_utilization - 0.05
    )
    # Both remain valid protocol executions.
    assert 0 < ghost.mining_power_utilization <= 1
