"""Figure 7: block propagation latency grows linearly with block size.

Paper: "We perform experiments with different block sizes while
changing the block frequency so that the transaction-per-second load is
constant.  Figure 7 shows a linear relation between the block size and
the propagation time" (25/50/75th percentiles, sizes 20–100 kB).
"""

from repro.experiments import (
    ExperimentConfig,
    PROPAGATION_SIZE_POINTS,
    format_propagation_table,
    linear_fit,
    propagation_study,
)
from conftest import emit, BENCH_NODES


def _figure7():
    base = ExperimentConfig(
        n_nodes=BENCH_NODES,
        target_blocks=30,
        cooldown=60.0,
        seed=0,
    )
    return propagation_study(base, sizes=PROPAGATION_SIZE_POINTS)


def test_figure7_propagation_linear(benchmark):
    points = benchmark.pedantic(_figure7, rounds=1, iterations=1)

    emit("\nFigure 7 — propagation latency vs block size")
    emit(format_propagation_table(points))
    slope, intercept, r_squared = linear_fit(points)
    emit(f"\nlinear fit of medians: slope={slope * 1000:.3f} ms/kB, "
          f"intercept={intercept:.2f} s, R²={r_squared:.4f}")

    # Shape: latency grows with size, and the growth is linear.
    medians = [p.p50 for p in points]
    assert medians == sorted(medians)
    assert slope > 0
    assert r_squared > 0.95
    # Percentile bands ordered at every size.
    for point in points:
        assert point.p25 <= point.p50 <= point.p75
    # Magnitude: at ~12.5 kB/s pair bandwidth a 100 kB block needs
    # seconds per hop — median propagation is tens of seconds, matching
    # the scale of the paper's Figure 7 (up to ~40 s at 100 kB).
    assert 1.0 < points[-1].p50 < 120.0
