"""Figures 2 & 3: microblock forks vs key-block forks.

Figure 2: "When microblocks are frequent, short forks occur on almost
every leader switch" — resolved as soon as the key block propagates.

Figure 3: key-block forks are rare (low frequency, small fast blocks)
but long-lived — "only resolved on the next key block generation".
"""

from repro.experiments import ExperimentConfig, Protocol, run_experiment
from repro.metrics.prune import prune_samples
from conftest import emit, BENCH_NODES


def _ng_fork_census():
    config = ExperimentConfig(
        protocol=Protocol.BITCOIN_NG,
        n_nodes=BENCH_NODES,
        block_rate=1.0 / 10.0,  # frequent microblocks
        key_block_rate=1.0 / 100.0,
        block_size_bytes=20_000,
        target_blocks=200,
        target_key_blocks=25,
        cooldown=60.0,
        seed=2,
    )
    result, log = run_experiment(config)
    main = set(log.main_chain())
    pruned_micros = [
        info
        for info in log.index.all_blocks()
        if info.hash not in main and info.kind == "micro"
    ]
    pruned_keys = [
        info
        for info in log.index.all_blocks()
        if info.hash not in main and info.kind == "key"
    ]
    keys_total = sum(1 for i in log.index.all_blocks() if i.kind == "key")
    micros_total = sum(1 for i in log.index.all_blocks() if i.kind == "micro")
    samples = prune_samples(log)
    return (
        result,
        keys_total,
        micros_total,
        pruned_micros,
        pruned_keys,
        samples,
    )


def test_microblock_and_keyblock_forks(benchmark):
    (
        result,
        keys_total,
        micros_total,
        pruned_micros,
        pruned_keys,
        samples,
    ) = benchmark.pedantic(_ng_fork_census, rounds=1, iterations=1)

    emit("\nFigures 2/3 — Bitcoin-NG fork census "
          f"(micro 1/10s, key 1/100s, {BENCH_NODES} nodes)")
    emit(f"key blocks generated:        {keys_total}")
    emit(f"microblocks generated:       {micros_total}")
    emit(f"pruned microblocks (Fig. 2): {len(pruned_micros)}")
    emit(f"pruned key blocks  (Fig. 3): {len(pruned_keys)}")
    if samples:
        emit(f"prune delay p50/p90:         "
              f"{sorted(samples)[len(samples)//2]:.2f}s / "
              f"{sorted(samples)[int(len(samples)*0.9)]:.2f}s")

    # Figure 2's shape: leader switches prune trailing microblocks —
    # forks exist, but they are a small fraction of all microblocks.
    assert len(pruned_micros) > 0
    assert len(pruned_micros) < 0.25 * micros_total
    # Key-block forks are rarer than microblock forks.
    assert len(pruned_keys) <= len(pruned_micros)
    # Microblock forks resolve in about a propagation time: the common
    # prune delay is a few seconds, far below the 100 s key interval.
    if samples:
        median = sorted(samples)[len(samples) // 2]
        assert median < 20.0
    # And none of this costs mining power (microblocks carry no work).
    assert result.mining_power_utilization >= 0.9
