"""Performance regression microbenchmarks (emits ``BENCH_simcore.json``).

Three measurements, each written into a machine-readable JSON at the
repository root so every PR leaves a perf trajectory behind:

* **event core** — a 200k-event chained-timer pump: pure scheduler
  dispatch, no protocol logic.
* **single run** — one Bitcoin-NG experiment, reporting wall time and
  events/sec through :mod:`repro.profiling`.
* **1000-node scale** — the paper's full network size, gating that the
  array-core network layer retains at least a third of the 60-node
  dispatch rate at 16x the node count.
* **sweep dispatch** — a 4-seed sweep executed serially and through the
  parallel :class:`~repro.experiments.parallel.SweepExecutor` with four
  workers, asserting bit-identical results and recording the speedup.

The ``BASELINE`` numbers were measured on the pre-optimization tree
(commit bc0571a) on the same container these benchmarks run in, so the
JSON shows the improvement of this tree over that baseline.  Absolute
assertions are kept generous (they guard against pathological
regressions, not noise); the parallel speedup assertion only applies
when the machine actually has enough cores to parallelize.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.experiments import ExperimentConfig, Protocol, run_experiment
from repro.experiments.parallel import SweepExecutor
from repro.net.simulator import Simulator
from repro.profiling import best_of, update_bench

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_simcore.json"

# Pre-PR numbers, measured at commit bc0571a (seed tree) on this
# container (single CPU), best of repeated runs of the identical
# workloads below.
BASELINE = {
    "commit": "bc0571a",
    "event_core_events_per_sec": 641_693.0,
    "single_run": {
        "wall_seconds": 1.731,
        "events_processed": 171_946,
        "events_per_sec": 99_340.0,
    },
    "sweep_serial_wall_seconds": 1.390,
}

# Single-run workload: a Bitcoin-NG execution heavy enough to time
# stably (~170k events on the seed tree).
MICRO_CONFIG = ExperimentConfig(
    protocol=Protocol.BITCOIN_NG,
    n_nodes=60,
    target_blocks=120,
    target_key_blocks=8,
    block_rate=0.4,
    key_block_rate=0.02,
    block_size_bytes=8000,
    cooldown=15.0,
    seed=7,
)

# Full-scale workload: the paper's 1000-node network, sized so one
# repeat finishes in a few seconds (the array core sustains well over
# 100k events/sec at this size on the baseline container).
SCALE_CONFIG = ExperimentConfig(
    protocol=Protocol.BITCOIN_NG,
    n_nodes=1000,
    target_blocks=16,
    target_key_blocks=2,
    block_rate=0.4,
    key_block_rate=0.05,
    block_size_bytes=8000,
    cooldown=15.0,
    seed=7,
)

# Sweep workload: four seeds of one moderate cell.
SWEEP_BASE = ExperimentConfig(
    protocol=Protocol.BITCOIN_NG,
    n_nodes=40,
    target_blocks=60,
    target_key_blocks=6,
    block_rate=0.2,
    key_block_rate=0.02,
    block_size_bytes=8000,
    cooldown=15.0,
)
SWEEP_SEEDS = (0, 1, 2, 3)
SWEEP_WORKERS = 4

# Generous wall-clock ceilings: ~20x the expected numbers, so only a
# pathological regression (or a dead machine) trips them.
SINGLE_RUN_WALL_CEILING = 40.0
SWEEP_WALL_CEILING = 60.0
PUMP_EVENTS = 200_000

# The incremental-sanitizer gate: a cold-cache checked 60-node NG run
# must stay within this multiple of the bare run's wall time (the
# full-sweep strategy cost 20-30x on the same workload).
INCREMENTAL_RATIO_CEILING = 3.0


def _pump_events_per_sec() -> float:
    """Dispatch rate of the bare event loop (no network, no protocol)."""

    def one_round() -> float:
        sim = Simulator(seed=0)
        count = 0

        def tick() -> None:
            nonlocal count
            count += 1
            if count < PUMP_EVENTS:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run()
        return PUMP_EVENTS / (time.perf_counter() - start)

    return max(one_round() for _ in range(3))


def test_event_core_dispatch_rate():
    rate = _pump_events_per_sec()
    update_bench(
        BENCH_JSON,
        "event_core",
        {
            "events": PUMP_EVENTS,
            "events_per_sec": round(rate, 1),
            "baseline_events_per_sec": BASELINE["event_core_events_per_sec"],
            "speedup_vs_baseline": round(
                rate / BASELINE["event_core_events_per_sec"], 3
            ),
        },
    )
    # The tuple-heap core more than doubled this on the baseline host;
    # the floor only guards against a wholesale regression.
    assert rate > 100_000, f"event core collapsed to {rate:,.0f} ev/s"


def test_single_run_event_rate():
    perf = best_of(MICRO_CONFIG, repeats=3)
    update_bench(
        BENCH_JSON,
        "single_run",
        {
            "config": {
                "protocol": MICRO_CONFIG.protocol.value,
                "n_nodes": MICRO_CONFIG.n_nodes,
                "block_rate": MICRO_CONFIG.block_rate,
                "block_size_bytes": MICRO_CONFIG.block_size_bytes,
                "seed": MICRO_CONFIG.seed,
            },
            **{k: round(v, 3) if isinstance(v, float) else v
               for k, v in perf.as_dict().items()},
            "baseline": BASELINE["single_run"],
            "wall_speedup_vs_baseline": round(
                BASELINE["single_run"]["wall_seconds"] / perf.wall_seconds, 3
            ),
            "events_per_sec_vs_baseline": round(
                perf.events_per_sec
                / BASELINE["single_run"]["events_per_sec"],
                3,
            ),
        },
    )
    assert perf.wall_seconds < SINGLE_RUN_WALL_CEILING
    assert perf.events_processed > 0


def test_scale_1000_event_rate():
    """The paper-scale network keeps >= 1/3 of the 60-node event rate.

    This is the array-core contract made into a perf gate: per-event
    cost in ``repro.net`` is O(neighbor degree) arithmetic over flat
    arrays, so growing the network 16x (60 -> 1000 nodes) may dilute
    the dispatch rate through cache pressure and deeper heaps, but must
    not collapse it the way per-edge hash lookups and tuple allocation
    did.  Both sides are measured fresh here (same ``best_of`` harness)
    so the ratio compares like with like on whatever machine runs this.
    """
    small = best_of(MICRO_CONFIG, repeats=2)
    big = best_of(SCALE_CONFIG, repeats=2)
    ratio = big.events_per_sec / small.events_per_sec
    update_bench(
        BENCH_JSON,
        "scale_1000",
        {
            "config": {
                "protocol": SCALE_CONFIG.protocol.value,
                "n_nodes": SCALE_CONFIG.n_nodes,
                "block_rate": SCALE_CONFIG.block_rate,
                "key_block_rate": SCALE_CONFIG.key_block_rate,
                "block_size_bytes": SCALE_CONFIG.block_size_bytes,
                "seed": SCALE_CONFIG.seed,
            },
            **{k: round(v, 3) if isinstance(v, float) else v
               for k, v in big.as_dict().items()},
            "small_run_events_per_sec": round(small.events_per_sec, 1),
            "scale_retention_vs_60_nodes": round(ratio, 3),
        },
    )
    assert big.events_processed > 100_000  # genuinely full-scale work
    assert ratio >= 1 / 3, (
        f"1000-node rate fell to {ratio:.1%} of the 60-node rate "
        f"({big.events_per_sec:,.0f} vs {small.events_per_sec:,.0f} ev/s)"
    )


def test_sweep_parallel_identical_and_timed():
    configs = [SWEEP_BASE.with_(seed=seed) for seed in SWEEP_SEEDS]

    start = time.perf_counter()
    serial = SweepExecutor(jobs=1).map(configs)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    parallel = SweepExecutor(jobs=SWEEP_WORKERS).map(configs)
    parallel_wall = time.perf_counter() - start

    # Determinism across dispatch modes: the whole point of result
    # ordering being submission order.
    assert parallel == serial

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    speedup = serial_wall / max(parallel_wall, 1e-9)
    update_bench(
        BENCH_JSON,
        "sweep_dispatch",
        {
            "seeds": list(SWEEP_SEEDS),
            "workers": SWEEP_WORKERS,
            "cpus_available": cpus,
            "serial_wall_seconds": round(serial_wall, 3),
            "parallel_wall_seconds": round(parallel_wall, 3),
            "speedup_parallel_over_serial": round(speedup, 3),
            "baseline_serial_wall_seconds": BASELINE[
                "sweep_serial_wall_seconds"
            ],
            "serial_speedup_vs_baseline": round(
                BASELINE["sweep_serial_wall_seconds"] / max(serial_wall, 1e-9),
                3,
            ),
        },
    )
    update_bench(BENCH_JSON, "baseline", BASELINE)

    assert serial_wall < SWEEP_WALL_CEILING
    assert parallel_wall < SWEEP_WALL_CEILING
    if cpus >= SWEEP_WORKERS:
        # Four independent single-CPU simulations on >=4 cores: anything
        # under 2x means the pool is broken, not merely noisy.
        assert speedup >= 2.0, f"parallel dispatch only {speedup:.2f}x"


def test_obs_disabled_overhead():
    """Disabled observability keeps the dispatch benchmark within 5%.

    Interleaves rounds of the bare 200k-event pump with rounds of the
    same pump under a disabled-observability install — exactly what
    ``run_experiment`` does when ``--obs`` is not given.  The disabled
    path adds nothing to ``Simulator.run`` (samplers are only scheduled
    when enabled), so the two rates must be statistically identical;
    the bound trips if anyone later threads per-event work into the
    disabled path.
    """
    from repro.obs.facade import NULL_OBS

    def one_round(install_obs: bool) -> float:
        sim = Simulator(seed=0)
        if install_obs:
            NULL_OBS.install(sim, None, (), horizon=float(PUMP_EVENTS))
        count = 0

        def tick() -> None:
            nonlocal count
            count += 1
            if count < PUMP_EVENTS:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run()
        return PUMP_EVENTS / (time.perf_counter() - start)

    bare_rate = 0.0
    disabled_rate = 0.0
    # Interleave the A/B rounds so thermal or scheduler drift hits both
    # measurements equally, then compare the bests.
    for _ in range(3):
        bare_rate = max(bare_rate, one_round(install_obs=False))
        disabled_rate = max(disabled_rate, one_round(install_obs=True))

    # Informative (unasserted): what turning observability fully on
    # costs the real experiment hot path, for the docs.
    obs_config = SWEEP_BASE.with_(seed=0)
    start = time.perf_counter()
    run_experiment(obs_config)
    off_wall = time.perf_counter() - start
    from repro.obs import Observability
    from repro.obs.trace import MemorySink, Tracer

    start = time.perf_counter()
    run_experiment(obs_config, obs=Observability(tracer=Tracer(MemorySink())))
    on_wall = time.perf_counter() - start

    ratio = disabled_rate / bare_rate
    update_bench(
        BENCH_JSON,
        "obs_overhead",
        {
            "pump_events": PUMP_EVENTS,
            "bare_events_per_sec": round(bare_rate, 1),
            "disabled_obs_events_per_sec": round(disabled_rate, 1),
            "disabled_over_bare_ratio": round(ratio, 4),
            "enabled_run_wall_seconds": round(on_wall, 3),
            "disabled_run_wall_seconds": round(off_wall, 3),
            "enabled_over_disabled_wall_ratio": round(
                on_wall / max(off_wall, 1e-9), 3
            ),
        },
    )
    assert ratio >= 0.95, (
        f"disabled observability cost {1 - ratio:.1%} of dispatch rate "
        f"(bound: 5%)"
    )


def test_sanitizer_disabled_overhead():
    """A run without ``--check`` pays nothing for the sanitizer.

    The disabled path is one ``None``-check of the simulator's probe
    slot per event — ``run_experiment`` installs no probe unless
    ``config.check`` is on.  Interleaved A/B rounds of the 200k-event
    pump, bare versus explicitly-disabled (``set_probe(None)``), must
    stay within the same 5% bound the observability layer honors; the
    bound trips if a default probe or extra per-event work ever lands
    in the disabled path.  The checked-run wall numbers are recorded
    unasserted, as the documented cost of turning checking on.
    """

    def one_round(install_probe: bool) -> float:
        sim = Simulator(seed=0)
        if install_probe:
            sim.set_probe(None)  # the disabled state, made explicit
        count = 0

        def tick() -> None:
            nonlocal count
            count += 1
            if count < PUMP_EVENTS:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run()
        return PUMP_EVENTS / (time.perf_counter() - start)

    bare_rate = 0.0
    disabled_rate = 0.0
    for _ in range(3):
        bare_rate = max(bare_rate, one_round(install_probe=False))
        disabled_rate = max(disabled_rate, one_round(install_probe=True))

    # Informative (unasserted): full-sweep checked-mode cost on a real
    # run.  Pinned to ``check_mode="full"`` so this section keeps
    # recording the original stateless-sweep cost; the incremental
    # strategy has its own gated section (``sanitizer_incremental``).
    check_config = SWEEP_BASE.with_(seed=0)
    start = time.perf_counter()
    run_experiment(check_config)
    off_wall = time.perf_counter() - start
    start = time.perf_counter()
    checked_result, _ = run_experiment(
        check_config.with_(check=True, check_mode="full", check_stride=64)
    )
    on_wall = time.perf_counter() - start
    assert len(checked_result.violations) == 0

    ratio = disabled_rate / bare_rate
    update_bench(
        BENCH_JSON,
        "sanitizer",
        {
            "pump_events": PUMP_EVENTS,
            "bare_events_per_sec": round(bare_rate, 1),
            "disabled_check_events_per_sec": round(disabled_rate, 1),
            "disabled_over_bare_ratio": round(ratio, 4),
            "checked_run_wall_seconds": round(on_wall, 3),
            "unchecked_run_wall_seconds": round(off_wall, 3),
            "checked_over_unchecked_wall_ratio": round(
                on_wall / max(off_wall, 1e-9), 3
            ),
            "checked_run_violations": len(checked_result.violations),
        },
    )
    assert ratio >= 0.95, (
        f"disabled sanitizer cost {1 - ratio:.1%} of dispatch rate "
        f"(bound: 5%)"
    )


def test_sanitizer_incremental_speed():
    """Incremental checking keeps the 60-node NG run within 3x of bare.

    The gate the incremental redesign exists for: the full-sweep
    sanitizer cost 20-30x bare wall on this workload, almost entirely
    INV104 re-verifying every microblock signature on every node.  The
    incremental runtime skips provably-clean nodes via the dirty-set
    tracker and memoizes signature verdicts in the process-wide
    :class:`~repro.sanitizer.checkers.SignatureCache`, so a *cold-cache*
    checked run must now land within ``INCREMENTAL_RATIO_CEILING`` of
    bare — and stay bit-identical to it.  A warm-cache repeat is
    recorded unasserted (that is the cost sweeps and repeated runs pay).
    """
    from repro.sanitizer.checkers import shared_signature_cache

    bare_wall = float("inf")
    bare_result = None
    for _ in range(2):
        start = time.perf_counter()
        bare_result, _ = run_experiment(MICRO_CONFIG)
        bare_wall = min(bare_wall, time.perf_counter() - start)

    checked_config = MICRO_CONFIG.with_(
        check=True, check_mode="incremental", check_stride=64
    )
    cache = shared_signature_cache()
    cache.clear()
    start = time.perf_counter()
    cold_result, _ = run_experiment(checked_config)
    cold_wall = time.perf_counter() - start
    cold_misses, cold_hits = cache.misses, cache.hits

    start = time.perf_counter()
    warm_result, _ = run_experiment(checked_config)
    warm_wall = time.perf_counter() - start

    # Checked runs observe, never perturb: bit-identical to bare.
    assert len(cold_result.violations) == 0
    assert cold_result.as_row() == bare_result.as_row()
    assert cold_result.events_processed == bare_result.events_processed
    assert cold_result.messages_delivered == bare_result.messages_delivered
    assert warm_result.as_row() == cold_result.as_row()

    cold_ratio = cold_wall / max(bare_wall, 1e-9)
    warm_ratio = warm_wall / max(bare_wall, 1e-9)
    update_bench(
        BENCH_JSON,
        "sanitizer_incremental",
        {
            "config": {
                "protocol": MICRO_CONFIG.protocol.value,
                "n_nodes": MICRO_CONFIG.n_nodes,
                "block_rate": MICRO_CONFIG.block_rate,
                "block_size_bytes": MICRO_CONFIG.block_size_bytes,
                "seed": MICRO_CONFIG.seed,
            },
            "bare_wall_seconds": round(bare_wall, 3),
            "checked_cold_wall_seconds": round(cold_wall, 3),
            "checked_warm_wall_seconds": round(warm_wall, 3),
            "checked_cold_over_bare_ratio": round(cold_ratio, 3),
            "checked_warm_over_bare_ratio": round(warm_ratio, 3),
            "signature_cache_misses_cold": cold_misses,
            "signature_cache_hits_cold": cold_hits,
            "ratio_ceiling": INCREMENTAL_RATIO_CEILING,
            "bit_identical_to_bare": True,
        },
    )
    assert cold_ratio <= INCREMENTAL_RATIO_CEILING, (
        f"incremental checked run cost {cold_ratio:.2f}x bare wall "
        f"(gate: {INCREMENTAL_RATIO_CEILING}x)"
    )


def test_scenario_disabled_overhead():
    """A run without a scenario pays nothing for the fault engine.

    ``run_experiment`` only constructs a :class:`ScenarioEngine` when
    ``config.scenario`` is set, and an empty scenario schedules zero
    events — so the no-scenario and empty-scenario executions must be
    result-identical, and their wall times statistically the same.  The
    bound trips if scenario dispatch ever leaks into the per-event hot
    path of bare runs.
    """
    bare_config = SWEEP_BASE.with_(seed=2)
    empty_config = bare_config.with_(
        scenario={"version": 1, "name": "empty", "faults": []}
    )

    bare_wall = float("inf")
    empty_wall = float("inf")
    bare_result = empty_result = None
    # Interleaved best-of rounds, like the obs A/B above.
    for _ in range(2):
        start = time.perf_counter()
        bare_result, _ = run_experiment(bare_config)
        bare_wall = min(bare_wall, time.perf_counter() - start)
        start = time.perf_counter()
        empty_result, _ = run_experiment(empty_config)
        empty_wall = min(empty_wall, time.perf_counter() - start)

    # Bit-identical executions (config differs, so compare the rows and
    # execution counters rather than the frozen result objects).
    assert empty_result.as_row() == bare_result.as_row()
    assert empty_result.events_processed == bare_result.events_processed
    assert empty_result.messages_delivered == bare_result.messages_delivered
    assert empty_result.faults_injected == 0

    ratio = empty_wall / max(bare_wall, 1e-9)
    update_bench(
        BENCH_JSON,
        "scenario_overhead",
        {
            "bare_wall_seconds": round(bare_wall, 3),
            "empty_scenario_wall_seconds": round(empty_wall, 3),
            "empty_over_bare_wall_ratio": round(ratio, 4),
            "events_processed": bare_result.events_processed,
            "identical_results": True,
        },
    )
    # Generous: the empty engine costs one validation + zero events, so
    # anything beyond noise means dispatch leaked into the hot path.
    assert ratio < 1.20, (
        f"empty scenario cost {ratio - 1:.1%} wall time over a bare run"
    )


def test_profiler_disabled_overhead():
    """A run without ``--prof`` pays nothing for the profiler.

    The disabled path is one ``None``-check of the simulator's profiler
    slot at the top of ``run()`` — a profiled run branches into its own
    loop, so the bare dispatch loop is byte-identical with or without
    the profiler subsystem present.  Interleaved A/B rounds of the
    200k-event pump, bare versus explicitly-disabled
    (``set_profiler(None)``), must stay within the same 5% bound the
    observability and sanitizer layers honor.
    """

    def one_round(install_profiler: bool) -> float:
        sim = Simulator(seed=0)
        if install_profiler:
            sim.set_profiler(None)  # the disabled state, made explicit
        count = 0

        def tick() -> None:
            nonlocal count
            count += 1
            if count < PUMP_EVENTS:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run()
        return PUMP_EVENTS / (time.perf_counter() - start)

    bare_rate = 0.0
    disabled_rate = 0.0
    for _ in range(3):
        bare_rate = max(bare_rate, one_round(install_profiler=False))
        disabled_rate = max(disabled_rate, one_round(install_profiler=True))

    ratio = disabled_rate / bare_rate
    update_bench(
        BENCH_JSON,
        "profiler_overhead",
        {
            "pump_events": PUMP_EVENTS,
            "bare_events_per_sec": round(bare_rate, 1),
            "disabled_prof_events_per_sec": round(disabled_rate, 1),
            "disabled_over_bare_ratio": round(ratio, 4),
        },
    )
    assert ratio >= 0.95, (
        f"disabled profiler cost {1 - ratio:.1%} of dispatch rate "
        f"(bound: 5%)"
    )


def _phase_breakdown(profile, top: int = 10) -> dict:
    """Compact per-phase JSON rows for the trajectory file."""
    total = profile.wall_simulate_seconds
    return {
        phase: {
            "seconds": round(stat.seconds, 3),
            "share": round(stat.seconds / total, 4) if total else 0.0,
            "calls": stat.calls,
        }
        for phase, stat in profile.top_phases(top)
    }


def test_profiler_attribution():
    """Profiled runs stay bit-identical and attribute >= 95% of wall.

    Three real workloads feed the ``profile`` trajectory section: the
    60-node micro run (with an A/B bit-identicality check against a
    bare run), the paper's 1000-node network (gating the >= 95%
    attribution coverage the profiler promises), and a checked run
    whose per-INV1xx-checker costs answer "which invariant makes
    ``--check`` slow" with measured numbers.
    """
    from repro.prof import profile_experiment

    bare_result, _ = run_experiment(MICRO_CONFIG)
    start = time.perf_counter()
    prof_result, _, small = profile_experiment(MICRO_CONFIG)
    prof_wall = time.perf_counter() - start
    # Profiling measures, never perturbs.
    assert prof_result.as_row() == bare_result.as_row()
    assert prof_result.events_processed == bare_result.events_processed

    _, _, big = profile_experiment(SCALE_CONFIG)
    assert big.coverage >= 0.95, (
        f"1000-node profile attributes only {big.coverage:.1%} "
        f"of simulate wall (bound: 95%)"
    )

    checked_config = SWEEP_BASE.with_(seed=0, check=True, check_stride=64)
    _, _, checked = profile_experiment(checked_config)
    assert checked.checkers, "checked profiled run recorded no checker costs"
    checker_rows = {
        code: {
            "seconds": round(stat.seconds, 3),
            "share": round(
                stat.seconds / checked.wall_simulate_seconds, 4
            ),
            "calls": stat.calls,
        }
        for code, stat in sorted(
            checked.checkers.items(),
            key=lambda item: -item[1].seconds,
        )
    }

    update_bench(
        BENCH_JSON,
        "profile",
        {
            "micro_60": {
                "events_processed": small.events_processed,
                "wall_simulate_seconds": round(
                    small.wall_simulate_seconds, 3
                ),
                "coverage": round(small.coverage, 4),
                "bit_identical_to_bare": True,
                "phases": _phase_breakdown(small),
            },
            "scale_1000": {
                "events_processed": big.events_processed,
                "wall_simulate_seconds": round(big.wall_simulate_seconds, 3),
                "coverage": round(big.coverage, 4),
                "epoch_spans": len(big.spans),
                "phases": _phase_breakdown(big),
            },
            "checked_40": {
                "events_processed": checked.events_processed,
                "wall_simulate_seconds": round(
                    checked.wall_simulate_seconds, 3
                ),
                "sanitize_share": round(
                    checked.phases["sanitize"].seconds
                    / checked.wall_simulate_seconds,
                    4,
                ),
                "checkers": checker_rows,
            },
            "profiled_run_wall_seconds": round(prof_wall, 3),
        },
    )


def test_lint_speed():
    """The static analyzer fits a pre-commit budget: src/ in under 10s.

    ``repro lint`` is wired into CI and meant for pre-commit hooks, so
    its wall time on the full tree is a perf surface like any other:
    the budget trips if a rule ever grows a quadratic pass.  The clean
    assertion doubles as the merged-tree invariant the CI lint job
    enforces — zero findings, no frozen baseline debt.
    """
    from repro.lint import RULES, lint_paths

    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    start = time.perf_counter()
    report = lint_paths([src])
    wall = time.perf_counter() - start
    update_bench(
        BENCH_JSON,
        "lint",
        {
            "files_scanned": report.files_scanned,
            "rules": len(RULES),
            "wall_seconds": round(wall, 3),
            "findings": len(report.findings),
        },
    )
    assert report.findings == [], "\n".join(
        finding.format() for finding in report.findings
    )
    assert wall < 10.0, f"lint took {wall:.2f}s on src/ (budget: 10s)"


def test_lint_semantic_index_speed(tmp_path):
    """The semantic index build and the warm full lint fit the budget.

    The NG6xx rules run on a project-wide index that is cached on disk
    keyed by file content hashes.  Two walls matter: the cold build
    (first lint after a clean checkout, every module extracted) and the
    warm full lint (cache hot, the pre-commit steady state).  Both are
    recorded so the trajectory shows when either regresses; the warm
    lint shares the 10s pre-commit budget, the cold build gets its own
    ceiling since it runs once per checkout.
    """
    from repro.lint import lint_paths

    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    cache = tmp_path / "semantic-index.json"

    start = time.perf_counter()
    cold = lint_paths([src], semantic_cache=cache)
    cold_wall = time.perf_counter() - start
    assert cold.index_cache_hits == 0
    assert cold.index_cache_misses == cold.files_scanned

    start = time.perf_counter()
    warm = lint_paths([src], semantic_cache=cache)
    warm_wall = time.perf_counter() - start
    assert warm.index_cache_misses == 0
    assert warm.index_cache_hits == cold.index_cache_misses

    update_bench(
        BENCH_JSON,
        "lint_semantic",
        {
            "modules_indexed": cold.index_cache_misses,
            "cold_build_wall_seconds": round(cold_wall, 3),
            "warm_lint_wall_seconds": round(warm_wall, 3),
        },
    )
    assert cold_wall < 10.0, (
        f"cold index build + lint took {cold_wall:.2f}s (budget: 10s)"
    )
    assert warm_wall < 10.0, (
        f"warm full lint took {warm_wall:.2f}s (budget: 10s)"
    )


def test_mutate_speed(tmp_path):
    """A scoped mutation run fits CI and warm re-runs are near-free.

    Runs a small but real slice of the mutation pipeline — every tier,
    one anchor module, a dozen mutants — twice against the same verdict
    cache.  The cold pass pays for the baseline probe plus one shadow
    evaluation per mutant; the warm pass must be served almost entirely
    from the content-addressed cache (the steady state for PR-scoped CI
    runs and local re-runs), so its wall is gated at a tenth of cold.
    The emitted section carries the kill statistics for the trajectory.
    """
    from repro.mutate import MutationEngine, bench_section

    repo = pathlib.Path(__file__).resolve().parent.parent
    engine = MutationEngine(
        repo, cache_path=tmp_path / "mutate-cache.json"
    )
    scope = dict(
        only_files=["src/repro/core/incentives.py"], max_mutants=12
    )

    start = time.perf_counter()
    cold = engine.run(**scope)
    cold_wall = time.perf_counter() - start
    assert cold.cache_hits == 0

    warm_engine = MutationEngine(
        repo, cache_path=tmp_path / "mutate-cache.json"
    )
    start = time.perf_counter()
    warm = warm_engine.run(**scope)
    warm_wall = time.perf_counter() - start
    assert warm.cache_misses == 0
    assert [v.to_dict() for v in warm.verdicts] == [
        v.to_dict() for v in cold.verdicts
    ]

    ratio = warm_wall / max(cold_wall, 1e-9)
    update_bench(
        BENCH_JSON,
        "mutation",
        {
            **bench_section(cold),
            "scope": "src/repro/core/incentives.py (first 12 mutants)",
            "cold_wall_seconds": round(cold_wall, 3),
            "warm_wall_seconds": round(warm_wall, 3),
            "warm_over_cold_ratio": round(ratio, 4),
        },
    )
    assert len(cold.verdicts) > 0
    assert ratio < 0.10, (
        f"warm mutation re-run cost {ratio:.1%} of cold (gate: 10%)"
    )


def test_bench_json_is_valid():
    """The emitted trajectory file parses and has every section."""
    data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    for section in (
        "event_core",
        "single_run",
        "scale_1000",
        "sweep_dispatch",
        "obs_overhead",
        "sanitizer",
        "sanitizer_incremental",
        "scenario_overhead",
        "profiler_overhead",
        "profile",
        "lint",
        "lint_semantic",
        "mutation",
        "baseline",
    ):
        assert section in data, f"missing {section}"
