"""Ablations of the design choices DESIGN.md calls out.

1. Microblock weight — Section 5.1 argues microblocks must carry *no*
   weight or withholding strategies strengthen; the ablation quantifies
   the leadership-retention probability a weighted variant would hand a
   zero-power leader.
2. Fee split r — sweep r and locate the profitable-deviation window.
3. Key-block interval — censorship exposure vs key-block fork rate.
4. Gossip style — inv/getdata vs full flood: latency/bandwidth trade.
"""

import pytest

from repro.attacks import (
    expected_censorship_wait_time,
    leadership_retention_probability,
    simulate_extension_strategy,
    simulate_inclusion_strategy,
    simulate_weighted_micro_takeover,
)
from repro.experiments import ExperimentConfig, Protocol, run_experiment
from repro.net.gossip import RelayMode
from conftest import emit, BENCH_NODES

WEIGHT_FRACTIONS = (0.0, 0.01, 0.05, 0.1, 0.5)


def _weighted_micro():
    rows = []
    for fraction in WEIGHT_FRACTIONS:
        analytic = leadership_retention_probability(fraction, 100.0, 10.0)
        empirical = simulate_weighted_micro_takeover(
            fraction, 100.0, 10.0, n_trials=50_000
        )
        rows.append((fraction, analytic, empirical))
    return rows


def test_ablation_weighted_microblocks(benchmark):
    rows = benchmark.pedantic(_weighted_micro, rounds=1, iterations=1)
    emit("\nAblation — microblocks carrying weight (fraction of key work)")
    emit(f"{'weight':>8}{'P(retain) analytic':>20}{'Monte-Carlo':>14}")
    for fraction, analytic, empirical in rows:
        emit(f"{fraction:>8.2f}{analytic:>20.4f}{empirical:>14.4f}")
    # Bitcoin-NG's rule (weight 0) gives an attacker nothing.
    assert rows[0][1] == 0.0
    # Any positive weight lets a zero-power leader retain leadership
    # with positive probability — the paper's reason to forbid it.
    for fraction, analytic, empirical in rows[1:]:
        assert analytic > 0
        assert empirical == pytest.approx(analytic, abs=0.02)
    # Monotone in the weight fraction.
    values = [row[1] for row in rows]
    assert values == sorted(values)


FRACTIONS = tuple(i / 20 for i in range(1, 20))


def _fee_split_sweep():
    rows = []
    for r in FRACTIONS:
        inclusion = simulate_inclusion_strategy(0.25, r, n_trials=60_000)
        extension = simulate_extension_strategy(0.25, r, n_trials=60_000)
        rows.append(
            (r, inclusion.deviation_profitable, extension.deviation_profitable)
        )
    return rows


def test_ablation_fee_split(benchmark):
    rows = benchmark.pedantic(_fee_split_sweep, rounds=1, iterations=1)
    emit("\nAblation — leader fee fraction r (α = 1/4)")
    emit(f"{'r':>6}{'withholding wins':>18}{'mine-around wins':>18}")
    for r, inclusion_wins, extension_wins in rows:
        emit(f"{r:>6.2f}{str(inclusion_wins):>18}{str(extension_wins):>18}")
    safe = [r for r, a, b in rows if not a and not b]
    emit(f"safe region: [{min(safe):.2f}, {max(safe):.2f}] "
          f"(paper: 0.37 < r < 0.43 → picks 0.40)")
    assert 0.40 in [round(r, 2) for r in safe]
    assert min(safe) >= 0.30
    assert max(safe) <= 0.50


KEY_INTERVALS = (25.0, 50.0, 100.0, 200.0, 400.0)


def test_ablation_key_interval_censorship(benchmark):
    def _sweep():
        return [
            (interval, expected_censorship_wait_time(0.25, interval))
            for interval in KEY_INTERVALS
        ]

    rows = benchmark(_sweep)
    emit("\nAblation — key-block interval vs censorship exposure (α = 1/4)")
    emit(f"{'interval[s]':>12}{'expected wait[s]':>18}")
    for interval, wait in rows:
        emit(f"{interval:>12.0f}{wait:>18.1f}")
    # Censorship exposure is linear in the key interval: 4/3 blocks.
    for interval, wait in rows:
        assert wait == pytest.approx(interval * 4 / 3)


def _gossip_comparison():
    base = ExperimentConfig(
        protocol=Protocol.BITCOIN,
        n_nodes=BENCH_NODES,
        block_rate=1.0 / 20.0,
        block_size_bytes=20_000,
        target_blocks=40,
        cooldown=60.0,
        seed=5,
    )
    out = {}
    for mode in (RelayMode.INV, RelayMode.FLOOD):
        result, log = run_experiment(base.with_(relay_mode=mode))
        from repro.experiments import propagation_samples

        samples = sorted(propagation_samples(log))
        median = samples[len(samples) // 2]
        out[mode] = (result, median)
    return out


def test_ablation_gossip_style(benchmark):
    out = benchmark.pedantic(_gossip_comparison, rounds=1, iterations=1)
    inv_result, inv_median = out[RelayMode.INV]
    flood_result, flood_median = out[RelayMode.FLOOD]
    emit("\nAblation — inv/getdata vs flood relay (Bitcoin, 20 kB blocks)")
    emit(f"{'mode':>8}{'median prop[s]':>16}{'utilization':>13}")
    emit(f"{'inv':>8}{inv_median:>16.2f}"
          f"{inv_result.mining_power_utilization:>13.3f}")
    emit(f"{'flood':>8}{flood_median:>16.2f}"
          f"{flood_result.mining_power_utilization:>13.3f}")
    # Flood skips the inv/getdata round trips: faster propagation, as
    # fast-relay networks [Corallo 2013] exploit.
    assert flood_median <= inv_median
    # Both produce sane consensus.
    assert inv_result.mining_power_utilization > 0.5
    assert flood_result.mining_power_utilization > 0.5


def _ghost_ng_comparison():
    """High key-block frequency: plain NG vs GHOST-NG fork choice."""
    base = ExperimentConfig(
        protocol=Protocol.BITCOIN_NG,
        n_nodes=BENCH_NODES,
        block_rate=1.0 / 5.0,        # microblocks
        key_block_rate=1.0 / 10.0,   # unusually frequent key blocks
        block_size_bytes=8_000,
        target_blocks=150,
        target_key_blocks=60,
        cooldown=60.0,
        seed=8,
    )
    out = {}
    for ghost in (False, True):
        result, log = run_experiment(base.with_(ng_ghost_fork_choice=ghost))
        main = set(log.main_chain())
        pruned_keys = sum(
            1
            for info in log.index.all_blocks()
            if info.kind == "key" and info.hash not in main
        )
        out[ghost] = (result, pruned_keys)
    return out


def test_ablation_ghost_ng_fork_choice(benchmark):
    """Section 9 future work: GHOST over key blocks at high frequency."""
    out = benchmark.pedantic(_ghost_ng_comparison, rounds=1, iterations=1)
    plain_result, plain_pruned = out[False]
    ghost_result, ghost_pruned = out[True]
    emit("\nAblation — NG key-block fork choice at 1 key block / 10 s")
    emit(f"{'rule':>16}{'pruned keys':>13}{'utilization':>13}{'cons.delay':>12}")
    emit(f"{'heaviest-chain':>16}{plain_pruned:>13}"
         f"{plain_result.mining_power_utilization:>13.3f}"
         f"{plain_result.consensus_delay:>12.2f}")
    emit(f"{'ghost':>16}{ghost_pruned:>13}"
         f"{ghost_result.mining_power_utilization:>13.3f}"
         f"{ghost_result.consensus_delay:>12.2f}")
    # GHOST counts pruned-subtree work at forks, so it never does worse
    # on utilization at high key frequency, enabling the higher key
    # rates Section 9 envisions.
    assert ghost_result.mining_power_utilization >= (
        plain_result.mining_power_utilization - 0.03
    )
    # Both variants converge to one chain.
    assert plain_result.main_chain_length > 0
    assert ghost_result.main_chain_length > 0
