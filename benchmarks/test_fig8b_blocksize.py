"""Figure 8b: the block-size sweep (increasing throughput).

Paper: Bitcoin at 1 block / 10 s, Bitcoin-NG at 1 microblock / 10 s
with key blocks at 1/100 s; block sizes 1280 B – 80 kB.

Expected shape: throughput rises with size for both, but Bitcoin pays
with collapsing fairness and mining power utilization ("reaching about
80%" loss) and exploding time-to-win, while "Bitcoin-NG demonstrates
qualitative improvement, suffering no significant degradation in the
security-related metrics".
"""

from repro.experiments import (
    ExperimentConfig,
    Protocol,
    format_sweep_table,
    size_sweep,
)
from conftest import emit, BENCH_NODES

SIZES = (1280, 2500, 5000, 10_000, 20_000, 40_000, 80_000)


def _figure8b():
    # The paper runs 50-100 blocks per execution; matching that length
    # keeps runs short enough that the rare-but-long key-block forks
    # (Figure 3) seldom intersect an execution, exactly as in Section 8.
    base = ExperimentConfig(
        n_nodes=BENCH_NODES,
        target_blocks=80,
        target_key_blocks=8,
        cooldown=60.0,
    )
    return size_sweep(
        base,
        sizes=SIZES,
        seeds=(0, 1, 2, 3),
        block_rate=1.0 / 10.0,
        key_block_rate=1.0 / 100.0,
    )


def _median(point, metric):
    values = sorted(getattr(r, metric) for r in point.results)
    return values[len(values) // 2]


def test_figure8b_size_sweep(benchmark):
    sweep = benchmark.pedantic(_figure8b, rounds=1, iterations=1)

    emit("\nFigure 8b — block size sweep "
          f"({BENCH_NODES} nodes, seeds (0, 1, 2, 3))")
    emit(format_sweep_table(sweep))

    bitcoin = {p.x: p for p in sweep.series(Protocol.BITCOIN)}
    ng = {p.x: p for p in sweep.series(Protocol.BITCOIN_NG)}
    small, large = float(SIZES[0]), float(SIZES[-1])

    # -- throughput scales with size for both protocols ----------------
    assert bitcoin[large].mean("transaction_frequency") > 3 * bitcoin[
        small
    ].mean("transaction_frequency")
    assert ng[large].mean("transaction_frequency") > 3 * ng[small].mean(
        "transaction_frequency"
    )

    # -- Bitcoin's security collapses ----------------------------------
    # "The forks cause significant mining power loss".
    assert (
        bitcoin[large].mean("mining_power_utilization")
        < bitcoin[small].mean("mining_power_utilization") - 0.15
    )
    assert bitcoin[large].mean("mining_power_utilization") < 0.75
    # "Even more detrimental is the reduction in fairness."
    assert bitcoin[large].mean("fairness") < bitcoin[small].mean("fairness")
    # "The time to win also increases, as blocks take longer..."
    assert bitcoin[large].mean("time_to_win") > bitcoin[small].mean(
        "time_to_win"
    )

    # -- Bitcoin-NG does not collapse -----------------------------------
    # Medians across seeds: robust to the occasional run that catches a
    # rare-but-long key-block fork (Figure 3), which the paper's short
    # executions mostly dodge and its error bars absorb.
    for size in SIZES:
        assert _median(ng[float(size)], "mining_power_utilization") >= 0.9
    # NG fairness stays near optimal (sampling noise allowed; the shape
    # claim is "no significant degradation" relative to Bitcoin's drop).
    assert _median(ng[large], "fairness") >= _median(bitcoin[large], "fairness") - 0.1

    # NG's consensus delay and time to prune do grow at high bandwidth
    # ("the clients are approaching their capacity") but stay below
    # Bitcoin's.
    assert _median(ng[large], "consensus_delay") <= _median(
        bitcoin[large], "consensus_delay"
    )
    assert _median(ng[large], "time_to_prune") <= _median(
        bitcoin[large], "time_to_prune"
    )
