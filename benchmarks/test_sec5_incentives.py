"""Section 5's incentive table: the fee-split window.

Regenerates the paper's implicit table of bounds:

* transaction-inclusion deviation → r > 1 − (1−α)/(1+α−α²) → 37% @ α=1/4
* longest-chain-extension deviation → r < (1−α)/(2−α)      → 43% @ α=1/4
* optimal-network case (α = 1/3) → r > 45% and r < 40%: empty window
* Appendix B: fee competition on a key-block fork is self-defeating

Each closed form is cross-validated by a Monte-Carlo strategy
simulation.
"""

import pytest

from repro.attacks import (
    fork_fee_competition,
    profitable_window,
    simulate_extension_strategy,
    simulate_inclusion_strategy,
)
from repro.core.incentives import (
    BYZANTINE_BOUND,
    OPTIMAL_NETWORK_BOUND,
    critical_alpha,
    incentive_window,
)
from conftest import emit


def _section5():
    alphas = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, OPTIMAL_NETWORK_BOUND)
    rows = []
    for alpha in alphas:
        window = incentive_window(alpha)
        inclusion = simulate_inclusion_strategy(alpha, 0.40, n_trials=150_000)
        extension = simulate_extension_strategy(alpha, 0.40, n_trials=150_000)
        rows.append((alpha, window, inclusion, extension))
    empirical = profitable_window(BYZANTINE_BOUND, n_trials=60_000)
    return rows, empirical


def test_section5_incentive_window(benchmark):
    rows, empirical = benchmark.pedantic(_section5, rounds=1, iterations=1)

    emit("\nSection 5 — safe leader-fee window r(α), with r = 40% played")
    emit(f"{'alpha':>7}{'lower':>9}{'upper':>9}{'feasible':>10}"
          f"{'incl.dev':>10}{'ext.dev':>10}")
    for alpha, window, inclusion, extension in rows:
        emit(
            f"{alpha:>7.3f}{window.lower:>9.4f}{window.upper:>9.4f}"
            f"{str(window.feasible):>10}"
            f"{inclusion.deviation_revenue:>10.4f}"
            f"{extension.deviation_revenue:>10.4f}"
        )
    emit(f"\nMonte-Carlo safe window at α=1/4: "
          f"({empirical[0]:.2f}, {empirical[1]:.2f}); paper: (0.37, 0.43)")
    emit(f"critical α for r=40%: {critical_alpha(0.40):.4f}")

    # Paper's headline numbers at α = 1/4.
    paper = next(w for a, w, _, _ in rows if a == BYZANTINE_BOUND)
    assert paper.lower == pytest.approx(0.368, abs=2e-3)
    assert paper.upper == pytest.approx(0.429, abs=2e-3)
    assert paper.contains(0.40)
    # Optimal network: no feasible window at α = 1/3.
    optimal = next(w for a, w, _, _ in rows if a == OPTIMAL_NETWORK_BOUND)
    assert not optimal.feasible
    # Monte-Carlo brackets the paper's choice and the closed forms.
    assert empirical[0] < 0.40 < empirical[1]
    assert empirical[0] == pytest.approx(paper.lower, abs=0.04)
    assert empirical[1] == pytest.approx(paper.upper, abs=0.04)
    # Under α = 1/4, neither deviation beats honest play at r = 40%.
    at_bound = next(r for r in rows if r[0] == BYZANTINE_BOUND)
    assert not at_bound[2].deviation_profitable
    assert not at_bound[3].deviation_profitable


def test_appendix_b_fee_competition(benchmark):
    outcome = benchmark(
        fork_fee_competition, (1000, 2000, 3000), 1_000_000
    )
    emit("\nAppendix B — key-block fork fee competition")
    emit(f"attacker branch fees:   {outcome.attacker_branch_fees}")
    emit(f"competitor branch fees: {outcome.competitor_branch_fees}")
    # "its competitor will copy those same transactions and remove the
    # attacker's advantage."
    assert outcome.advantage_eliminated
