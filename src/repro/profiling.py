"""Profiling and performance measurement for simulation runs.

Three layers, all built on the execution counters every
:class:`~repro.experiments.runner.ExperimentResult` now carries:

* :func:`measure_run` — one experiment with wall-clock timing and
  event/message rates (:class:`RunPerf`).
* :func:`profile_run` — the same experiment under :mod:`cProfile`,
  returning the hot-spot table as text.
* :func:`write_bench` — dump a machine-readable benchmark payload
  (``BENCH_simcore.json``) so every PR leaves a perf trajectory behind.

Usage::

    from repro.experiments import ExperimentConfig
    from repro.profiling import measure_run, profile_run

    result, perf = measure_run(ExperimentConfig(n_nodes=60))
    print(f"{perf.events_per_sec:,.0f} events/sec")
    print(profile_run(ExperimentConfig(n_nodes=60), top=15))
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from .clock import wall_clock
from .experiments.config import ExperimentConfig
from .experiments.runner import ExperimentResult, run_experiment


@dataclass(frozen=True)
class RunPerf:
    """Wall-clock performance counters for one simulation run."""

    wall_seconds: float
    events_processed: int
    messages_delivered: int
    events_per_sec: float
    messages_per_sec: float
    sim_seconds: float
    sim_seconds_per_wall_second: float

    def as_dict(self) -> dict[str, float]:
        return asdict(self)


def _perf(result: ExperimentResult, wall: float) -> RunPerf:
    wall = max(wall, 1e-9)
    return RunPerf(
        wall_seconds=wall,
        events_processed=result.events_processed,
        messages_delivered=result.messages_delivered,
        events_per_sec=result.events_processed / wall,
        messages_per_sec=result.messages_delivered / wall,
        sim_seconds=result.duration,
        sim_seconds_per_wall_second=result.duration / wall,
    )


def measure_run(
    config: ExperimentConfig,
) -> tuple[ExperimentResult, RunPerf]:
    """Run one experiment, returning its result and perf counters."""
    start = wall_clock()
    result, _log = run_experiment(config)
    return result, _perf(result, wall_clock() - start)


def best_of(config: ExperimentConfig, repeats: int = 3) -> RunPerf:
    """The fastest of ``repeats`` measurements — least scheduler noise."""
    if repeats < 1:
        raise ValueError("need at least one repeat")
    best: RunPerf | None = None
    for _ in range(repeats):
        _, perf = measure_run(config)
        if best is None or perf.wall_seconds < best.wall_seconds:
            best = perf
    assert best is not None
    return best


def profile_run(
    config: ExperimentConfig, top: int = 25, sort: str = "cumulative"
) -> str:
    """Run one experiment under cProfile; return the stats table."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_experiment(config)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return buffer.getvalue()


def write_bench(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a benchmark payload as stable, diff-friendly JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def update_bench(path: str | Path, section: str, payload: Any) -> Path:
    """Merge one section into an existing benchmark JSON (or create it)."""
    target = Path(path)
    data: dict[str, Any] = {}
    if target.exists():
        data = json.loads(target.read_text(encoding="utf-8"))
    data[section] = payload
    return write_bench(target, data)
