"""Chain queries: transaction lookup, confirmations, address history.

A thin read API over a node's chain — what an explorer or wallet
backend needs.  Works against both node types by duck-typing their
chain views (``BitcoinNode.tree`` / ``NGNode.chain``); results are
recomputed per call against the current main chain, so reorgs are
always reflected.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bitcoin.blocks import Block, TxPayload
from .bitcoin.node import BitcoinNode
from .core.blocks import KeyBlock, Microblock
from .core.node import NGNode
from .ledger.transactions import Transaction


@dataclass(frozen=True)
class TxLocation:
    """Where a transaction sits in the main chain."""

    txid: bytes
    block_hash: bytes
    height: int  # chain position of the containing block
    is_coinbase: bool


@dataclass(frozen=True)
class AddressEvent:
    """One credit or debit touching an address."""

    txid: bytes
    block_hash: bytes
    height: int
    delta: int  # positive = received, negative = spent


class ChainQuery:
    """Read-only queries against one node's view of the chain."""

    def __init__(self, node: BitcoinNode | NGNode) -> None:
        self.node = node

    # -- plumbing -------------------------------------------------------

    def _view(self):
        if isinstance(self.node, NGNode):
            return self.node.chain
        return self.node.tree

    def _main_chain(self) -> list[bytes]:
        return self._view().main_chain()

    def _block_of(self, block_hash: bytes):
        return self._view().record(block_hash).block

    def _transactions_in(self, block) -> list[Transaction]:
        if isinstance(block, Block):
            txs = [block.coinbase]
            if isinstance(block.payload, TxPayload):
                txs.extend(block.payload.transactions)
            return txs
        if isinstance(block, KeyBlock):
            return [block.coinbase]
        assert isinstance(block, Microblock)
        if isinstance(block.payload, TxPayload):
            return list(block.payload.transactions)
        return []

    # -- queries --------------------------------------------------------

    def chain_height(self) -> int:
        return len(self._main_chain()) - 1

    def block_at_height(self, height: int):
        """The main-chain block at a 0-indexed position (genesis = 0)."""
        chain = self._main_chain()
        if not 0 <= height < len(chain):
            raise IndexError(f"height {height} beyond tip {len(chain) - 1}")
        return self._block_of(chain[height])

    def locate_transaction(self, txid: bytes) -> TxLocation | None:
        """Find the main-chain block containing ``txid`` (None if absent)."""
        for height, block_hash in enumerate(self._main_chain()):
            block = self._block_of(block_hash)
            for tx in self._transactions_in(block):
                if tx.txid == txid:
                    return TxLocation(
                        txid=txid,
                        block_hash=block_hash,
                        height=height,
                        is_coinbase=tx.is_coinbase,
                    )
        return None

    def confirmations(self, txid: bytes) -> int:
        """Weight-carrying blocks at or above the transaction's block.

        Bitcoin: classic block confirmations (its own block counts).
        Bitcoin-NG: *key blocks* at or above the containing block — the
        unit of burial the protocol's security argument uses.  0 means
        unconfirmed/unknown.
        """
        location = self.locate_transaction(txid)
        if location is None:
            return 0
        chain = self._main_chain()
        view = self._view()
        if isinstance(self.node, NGNode):
            tip_keys = view.tip_record.key_height
            containing_keys = view.record(location.block_hash).key_height
            block = self._block_of(location.block_hash)
            # A transaction inside a key block is confirmed by it.
            own = 1 if isinstance(block, KeyBlock) else 0
            return tip_keys - containing_keys + own
        return len(chain) - location.height

    def address_history(self, pubkey_hash: bytes) -> list[AddressEvent]:
        """Chronological credits/debits touching ``pubkey_hash``.

        Spends are attributed by looking up each input's source output
        in the chain itself, so the history is self-contained.
        """
        outputs_seen: dict[tuple[bytes, int], int] = {}
        events: list[AddressEvent] = []
        for height, block_hash in enumerate(self._main_chain()):
            block = self._block_of(block_hash)
            for tx in self._transactions_in(block):
                delta = 0
                for txin in tx.inputs:
                    key = (txin.outpoint.txid, txin.outpoint.index)
                    value = outputs_seen.get(key)
                    if value is not None:
                        delta -= value
                for index, out in enumerate(tx.outputs):
                    if out.pubkey_hash == pubkey_hash:
                        outputs_seen[(tx.txid, index)] = out.value
                        delta += out.value
                if delta != 0:
                    events.append(
                        AddressEvent(
                            txid=tx.txid,
                            block_hash=block_hash,
                            height=height,
                            delta=delta,
                        )
                    )
        return events

    def balance_from_history(self, pubkey_hash: bytes) -> int:
        """Sum of history deltas — must equal the UTXO balance."""
        return sum(e.delta for e in self.address_history(pubkey_hash))
