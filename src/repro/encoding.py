"""Wire-format helpers: a byte cursor and length-prefixed fields.

Blocks, headers, and payloads serialize to deterministic byte strings
so hashes are stable and objects can round-trip through a real network
layer.  The framing is simple little-endian with explicit length
prefixes — close in spirit to Bitcoin's wire format without its
var-int historical baggage.
"""

from __future__ import annotations

import struct


class DecodeError(Exception):
    """Raised when bytes cannot be decoded into the expected structure."""


class ByteReader:
    """A cursor over immutable bytes with checked reads."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def take(self, count: int) -> bytes:
        if count < 0 or self._pos + count > len(self._data):
            raise DecodeError(
                f"cannot take {count} bytes, {self.remaining} remain"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def bytes_u16(self) -> bytes:
        return self.take(self.u16())

    def bytes_u32(self) -> bytes:
        return self.take(self.u32())

    def expect_end(self) -> None:
        if self.remaining:
            raise DecodeError(f"{self.remaining} trailing bytes")


def u8(value: int) -> bytes:
    if not 0 <= value < 256:
        raise DecodeError(f"u8 out of range: {value}")
    return bytes([value])


def u16(value: int) -> bytes:
    return struct.pack("<H", value)


def u32(value: int) -> bytes:
    return struct.pack("<I", value)


def u64(value: int) -> bytes:
    return struct.pack("<Q", value)


def f64(value: float) -> bytes:
    return struct.pack("<d", value)


def bytes_u16(data: bytes) -> bytes:
    if len(data) > 0xFFFF:
        raise DecodeError("field too long for u16 prefix")
    return u16(len(data)) + data


def bytes_u32(data: bytes) -> bytes:
    if len(data) > 0xFFFFFFFF:
        raise DecodeError("field too long for u32 prefix")
    return u32(len(data)) + data
