"""Stateless and stateful transaction validation.

"Miners accept transactions only if their sources have not been spent"
(Section 3); validity of microblock entries follows "the specification of
the state machine" (Section 4.2).  Both protocols share these rules.

``check_transaction`` is stateless (structure only); ``validate_spend``
consults a UTXO set and verifies ownership signatures; ``compute_fee``
returns the fee that Bitcoin-NG splits 40/60 between leaders.
"""

from __future__ import annotations

from ..crypto.hashing import hash160
from ..crypto.keys import PublicKey
from .errors import BadSignature, MalformedTransaction, ValueError_
from .transactions import MAX_MONEY, Transaction
from .utxo import UtxoSet

# A hard structural cap mirroring Bitcoin's 100 kB standard tx limit.
MAX_TX_SIZE = 100_000


def check_transaction(tx: Transaction) -> None:
    """Stateless structural checks; raises on violation."""
    if tx.size > MAX_TX_SIZE:
        raise MalformedTransaction(f"transaction size {tx.size} exceeds cap")
    if not tx.outputs:
        raise MalformedTransaction("no outputs")
    total = 0
    for output in tx.outputs:
        if output.value < 0:
            raise ValueError_("negative output value")
        total += output.value
        if total > MAX_MONEY:
            raise ValueError_("output total exceeds MAX_MONEY")
    outpoints = [txin.outpoint for txin in tx.inputs]
    if len(set(outpoints)) != len(outpoints):
        raise MalformedTransaction("duplicate inputs within transaction")


def verify_input_signatures(tx: Transaction, utxo: UtxoSet) -> None:
    """Verify every input's signature and key-hash ownership proof."""
    for index, txin in enumerate(tx.inputs):
        coin = utxo.get(txin.outpoint)
        if coin is None:
            raise BadSignature(f"input {index} references unknown coin")
        if hash160(txin.pubkey) != coin.output.pubkey_hash:
            raise BadSignature(f"input {index} pubkey does not match owner hash")
        try:
            pubkey = PublicKey.from_bytes(txin.pubkey)
        except Exception as exc:
            raise BadSignature(f"input {index} pubkey undecodable: {exc}") from exc
        if not pubkey.verify(tx.sighash(index), txin.signature):
            raise BadSignature(f"input {index} signature invalid")


def validate_spend(
    tx: Transaction,
    utxo: UtxoSet,
    height: int,
    check_signatures: bool = True,
) -> int:
    """Full validation of a non-coinbase transaction against ``utxo``.

    Returns the transaction fee.  ``check_signatures=False`` reproduces
    the paper's testbed shortcut ("we did not implement ... the microblock
    signature check") for performance experiments; ownership and value
    rules still apply.
    """
    check_transaction(tx)
    if tx.is_coinbase:
        raise MalformedTransaction("coinbase cannot be validated as a spend")
    in_value = utxo.input_value(tx, height)
    out_value = sum(out.value for out in tx.outputs)
    if out_value > in_value:
        raise ValueError_(f"spends {out_value} but only provides {in_value}")
    if check_signatures:
        verify_input_signatures(tx, utxo)
    return in_value - out_value


def compute_fee(tx: Transaction, utxo: UtxoSet, height: int) -> int:
    """Fee = inputs − outputs; zero for coinbase."""
    if tx.is_coinbase:
        return 0
    in_value = utxo.input_value(tx, height)
    return in_value - sum(out.value for out in tx.outputs)
