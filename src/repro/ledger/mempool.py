"""The mempool: transactions awaiting serialization into blocks.

The paper pre-fills every node's mempool "with the same set of
independent transactions that can be serialized in arbitrary order" and
then disables transaction propagation.  This mempool supports both that
experimental mode (bulk seeding, FIFO draining) and normal operation
(fee-rate-ordered block template construction, double-spend rejection,
eviction of conflicting entries after a block connects).
"""

from __future__ import annotations

from collections import OrderedDict

from .errors import MempoolError
from .transactions import OutPoint, Transaction

# Default capacity, sized like Bitcoin Core's 300 MB default assuming
# ~300 byte transactions.
DEFAULT_MAX_ENTRIES = 1_000_000


class Mempool:  # repro: versioned
    """Pending-transaction store with spend-conflict tracking."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self._entries: OrderedDict[bytes, Transaction] = OrderedDict()
        self._fees: dict[bytes, int] = {}
        self._spends: dict[OutPoint, bytes] = {}
        self.max_entries = max_entries
        # Monotonic mutation counter: bumped by every successful state
        # change.  The sanitizer's dirty-set tracker compares it between
        # sweeps to skip pools that did not change (repro.sanitizer).
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._entries

    def get(self, txid: bytes) -> Transaction | None:
        return self._entries.get(txid)

    # -- read-only views (sanitizer cross-checks, state digests) ---------

    def transactions(self) -> list[Transaction]:
        """Pool entries in insertion order (a copy)."""
        return list(self._entries.values())

    def txids(self) -> list[bytes]:
        """Pool transaction ids in insertion order (a copy)."""
        return list(self._entries)

    def spend_index(self) -> dict[OutPoint, bytes]:
        """Copy of the outpoint → spending-txid conflict map."""
        return dict(self._spends)

    def fee_index(self) -> dict[bytes, int]:
        """Copy of the txid → fee map."""
        return dict(self._fees)

    def add(self, tx: Transaction, fee: int = 0) -> None:
        """Insert a transaction; rejects duplicates and in-pool conflicts."""
        if tx.txid in self._entries:
            raise MempoolError("transaction already in mempool")
        if len(self._entries) >= self.max_entries:
            raise MempoolError("mempool full")
        for txin in tx.inputs:
            conflict = self._spends.get(txin.outpoint)
            if conflict is not None:
                raise MempoolError(
                    f"outpoint {txin.outpoint!r} already spent by "
                    f"{conflict.hex()[:8]}"
                )
        self._entries[tx.txid] = tx
        self._fees[tx.txid] = fee
        for txin in tx.inputs:
            self._spends[txin.outpoint] = tx.txid
        self.version += 1

    def remove(self, txid: bytes) -> Transaction | None:
        """Remove and return a transaction (None if absent)."""
        tx = self._entries.pop(txid, None)
        if tx is None:
            return None
        self._fees.pop(txid, None)
        for txin in tx.inputs:
            if self._spends.get(txin.outpoint) == txid:
                del self._spends[txin.outpoint]
        self.version += 1
        return tx

    def evict_conflicts(self, tx: Transaction) -> list[Transaction]:
        """Drop pool entries whose inputs conflict with a confirmed tx.

        Called when a block connects: the confirmed transaction wins and
        any pending double-spends become invalid.
        """
        evicted = []
        for txin in tx.inputs:
            conflict = self._spends.get(txin.outpoint)
            if conflict is not None and conflict != tx.txid:
                removed = self.remove(conflict)
                if removed is not None:
                    evicted.append(removed)
        self.remove(tx.txid)
        return evicted

    def select(self, max_bytes: int, by_fee_rate: bool = True) -> list[Transaction]:
        """Choose transactions for a block template within ``max_bytes``.

        With ``by_fee_rate`` (normal operation) the highest fee-per-byte
        entries win; without it (the paper's experiment mode) insertion
        order is kept so all nodes drain identically-seeded pools the
        same way.  Selected entries stay in the pool until confirmed.
        """
        if by_fee_rate:
            ordered = sorted(
                self._entries.values(),
                key=lambda tx: self._fees[tx.txid] / max(tx.size, 1),
                reverse=True,
            )
        else:
            ordered = list(self._entries.values())
        selected: list[Transaction] = []
        used = 0
        for tx in ordered:
            if used + tx.size > max_bytes:
                continue
            selected.append(tx)
            used += tx.size
        return selected

    def seed(self, transactions: list[Transaction]) -> None:
        """Bulk-load independent transactions (experiment initialization)."""
        for tx in transactions:
            self.add(tx, fee=0)

    def clear(self) -> None:
        self._entries.clear()
        self._fees.clear()
        self._spends.clear()
        self.version += 1
