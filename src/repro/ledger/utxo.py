"""The UTXO set: the replicated state machine's state.

Applying a transaction consumes its inputs and creates its outputs.
Every apply returns an :class:`UndoRecord` so a chain reorganization can
roll the state back block by block — exactly what Bitcoin's ``CCoinsView``
undo data is for.  The set also tracks the height at which each coinbase
output was created so maturity (100 blocks in the paper, configurable
here) can be enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import DoubleSpend, ImmatureSpend, MissingInput, ValueError_
from .transactions import MAX_MONEY, OutPoint, Transaction, TxOutput

# The paper: "this transaction can only be spent after a maturity period
# of 100 blocks, to avoid non-mergeable transactions following a fork."
DEFAULT_COINBASE_MATURITY = 100


@dataclass(frozen=True)
class Coin:
    """An unspent output plus the metadata validation needs."""

    output: TxOutput
    height: int
    is_coinbase: bool


@dataclass
class UndoRecord:
    """Everything needed to reverse one transaction's application."""

    txid: bytes
    spent: list[tuple[OutPoint, Coin]] = field(default_factory=list)
    created: list[OutPoint] = field(default_factory=list)


class UtxoSet:  # repro: versioned
    """Mutable set of unspent transaction outputs.

    Not thread-safe; each simulated node owns its own instance.
    """

    def __init__(self, coinbase_maturity: int = DEFAULT_COINBASE_MATURITY) -> None:
        self._coins: dict[OutPoint, Coin] = {}
        self.coinbase_maturity = coinbase_maturity
        # Monotonic mutation counter: bumped by every apply/undo/credit.
        # The sanitizer's dirty-set tracker compares it between sweeps
        # to skip UTXO sets that did not change (repro.sanitizer).
        self.version = 0

    def __len__(self) -> int:
        return len(self._coins)

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self._coins

    def get(self, outpoint: OutPoint) -> Coin | None:
        return self._coins.get(outpoint)

    def total_value(self) -> int:
        """Sum of all unspent output values (the monetary base)."""
        return sum(coin.output.value for coin in self._coins.values())

    def balance(self, pubkey_hash: bytes) -> int:
        """Aggregate unspent value owned by ``pubkey_hash``."""
        return sum(
            coin.output.value
            for coin in self._coins.values()
            if coin.output.pubkey_hash == pubkey_hash
        )

    def outpoints_for(self, pubkey_hash: bytes) -> list[OutPoint]:
        """All outpoints currently spendable by ``pubkey_hash``."""
        return [
            outpoint
            for outpoint, coin in self._coins.items()
            if coin.output.pubkey_hash == pubkey_hash
        ]

    def input_value(self, tx: Transaction, height: int) -> int:
        """Total value of a transaction's inputs, with maturity checks.

        Raises :class:`MissingInput` if any input is absent and
        :class:`ImmatureSpend` if it spends a young coinbase.
        """
        total = 0
        for txin in tx.inputs:
            coin = self._coins.get(txin.outpoint)
            if coin is None:
                raise MissingInput(f"missing {txin.outpoint!r}")
            if coin.is_coinbase and height - coin.height < self.coinbase_maturity:
                raise ImmatureSpend(
                    f"coinbase from height {coin.height} spent at {height}"
                )
            total += coin.output.value
        return total

    def apply(self, tx: Transaction, height: int) -> UndoRecord:
        """Apply a (pre-validated) transaction, returning undo data.

        Still enforces existence, no-double-spend, maturity, and value
        conservation as a defence in depth; signature validity is the
        caller's job (see :mod:`repro.ledger.validation`).
        """
        undo = UndoRecord(txid=tx.txid)
        seen: set[OutPoint] = set()
        for txin in tx.inputs:
            if txin.outpoint in seen:
                raise DoubleSpend(f"duplicate input {txin.outpoint!r}")
            seen.add(txin.outpoint)
        if not tx.is_coinbase:
            in_value = self.input_value(tx, height)
            out_value = sum(out.value for out in tx.outputs)
            if out_value > in_value:
                raise ValueError_(
                    f"outputs {out_value} exceed inputs {in_value}"
                )
        for txin in tx.inputs:
            coin = self._coins.pop(txin.outpoint)
            undo.spent.append((txin.outpoint, coin))
        for index, output in enumerate(tx.outputs):
            outpoint = OutPoint(tx.txid, index)
            self._coins[outpoint] = Coin(output, height, tx.is_coinbase)
            undo.created.append(outpoint)
        self.version += 1
        return undo

    def undo(self, record: UndoRecord) -> None:
        """Reverse a previously applied transaction (LIFO order required)."""
        for outpoint in record.created:
            self._coins.pop(outpoint, None)
        for outpoint, coin in record.spent:
            self._coins[outpoint] = coin
        self.version += 1

    def credit(self, output: TxOutput, outpoint: OutPoint, height: int = 0) -> None:
        """Insert a coin directly — used to seed genesis allocations."""
        if outpoint in self._coins:
            raise DoubleSpend(f"outpoint {outpoint!r} already exists")
        if output.value > MAX_MONEY:
            raise ValueError_("genesis credit exceeds MAX_MONEY")
        self._coins[outpoint] = Coin(output, height, is_coinbase=False)
        self.version += 1

    def snapshot(self) -> dict[OutPoint, Coin]:
        """Shallow copy of the coin map, for assertions in tests."""
        return dict(self._coins)
