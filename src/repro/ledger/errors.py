"""Exception hierarchy for ledger validation.

Every rejection reason gets its own class so tests and callers can assert
on *why* a transaction or block was refused, not just that it was.
"""

from __future__ import annotations


class LedgerError(Exception):
    """Base class for all ledger validation failures."""


class MalformedTransaction(LedgerError):
    """Structurally invalid: bad sizes, empty inputs/outputs, etc."""


class MissingInput(LedgerError):
    """An input references an output that is not in the UTXO set."""


class DoubleSpend(LedgerError):
    """Two transactions spend the same output."""


class BadSignature(LedgerError):
    """An input's signature or ownership proof does not verify."""


class ValueError_(LedgerError):
    """Outputs exceed inputs, or a value is negative/overflows."""


class ImmatureSpend(LedgerError):
    """A coinbase output was spent before the maturity period elapsed."""


class MempoolError(LedgerError):
    """A transaction was rejected by mempool policy (full, duplicate...)."""
