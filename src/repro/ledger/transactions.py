"""Transactions: the ledger entries serialized by both protocols.

The model is Bitcoin's UTXO design (Section 3 of the paper): a
transaction spends previous outputs and creates new ones, ownership is
proven by a signature matching the public key hash in the spent output.
Script evaluation is deliberately replaced by direct pay-to-pubkey-hash
semantics — the paper's evaluation never exercises scripts.

Coinbase transactions have no inputs and may pay several outputs; the
Bitcoin-NG coinbase "deposits the funds to the current and previous
leaders" in a single transaction (Section 4.4).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from functools import cached_property

from ..crypto.hashing import hash160, sha256d
from ..crypto.keys import PrivateKey, PublicKey
from .errors import MalformedTransaction

# Smallest indivisible unit; 1 coin = 10^8 units, as in Bitcoin.
COIN = 100_000_000

# Total value can never exceed this (21M coins), guarding overflow games.
MAX_MONEY = 21_000_000 * COIN


def _encode_bytes(data: bytes) -> bytes:
    return struct.pack("<H", len(data)) + data


def _encode_long_bytes(data: bytes) -> bytes:
    """Length-prefixed with 4 bytes — for fields that may exceed 64 KiB."""
    return struct.pack("<I", len(data)) + data


class _Reader:
    """Cursor over a byte string for deserialization."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise MalformedTransaction("truncated serialization")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def take_bytes(self) -> bytes:
        (length,) = struct.unpack("<H", self.take(2))
        return self.take(length)

    def take_long_bytes(self) -> bytes:
        (length,) = struct.unpack("<I", self.take(4))
        return self.take(length)

    def take_u16(self) -> int:
        (value,) = struct.unpack("<H", self.take(2))
        return value

    def take_u32(self) -> int:
        (value,) = struct.unpack("<I", self.take(4))
        return value

    def take_u64(self) -> int:
        (value,) = struct.unpack("<Q", self.take(8))
        return value

    def done(self) -> bool:
        return self._pos == len(self._data)


@dataclass(frozen=True)
class OutPoint:
    """Reference to a specific output of a previous transaction."""

    txid: bytes
    index: int

    def __post_init__(self) -> None:
        if len(self.txid) != 32:
            raise MalformedTransaction("outpoint txid must be 32 bytes")
        if not 0 <= self.index < 2**32:
            raise MalformedTransaction("outpoint index out of range")

    def serialize(self) -> bytes:
        return self.txid + struct.pack("<I", self.index)

    @classmethod
    def deserialize(cls, reader: _Reader) -> "OutPoint":
        txid = reader.take(32)
        index = reader.take_u32()
        return cls(txid, index)

    def __repr__(self) -> str:
        return f"OutPoint({self.txid.hex()[:8]}…:{self.index})"


@dataclass(frozen=True)
class TxInput:
    """Spends an outpoint; ``pubkey``/``signature`` prove ownership.

    The fields are empty while a transaction is being built and are
    populated by :meth:`Transaction.sign_input`.
    """

    outpoint: OutPoint
    pubkey: bytes = b""
    signature: bytes = b""

    def serialize(self) -> bytes:
        return (
            self.outpoint.serialize()
            + _encode_bytes(self.pubkey)
            + _encode_bytes(self.signature)
        )

    def serialize_unsigned(self) -> bytes:
        """Serialization with witness data blanked, for sighash."""
        return self.outpoint.serialize() + _encode_bytes(b"") + _encode_bytes(b"")

    @classmethod
    def deserialize(cls, reader: _Reader) -> "TxInput":
        outpoint = OutPoint.deserialize(reader)
        pubkey = reader.take_bytes()
        signature = reader.take_bytes()
        return cls(outpoint, pubkey, signature)


@dataclass(frozen=True)
class TxOutput:
    """Pays ``value`` units to the owner of ``pubkey_hash``."""

    value: int
    pubkey_hash: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_MONEY:
            raise MalformedTransaction(f"output value {self.value} out of range")
        if len(self.pubkey_hash) != 20:
            raise MalformedTransaction("pubkey hash must be 20 bytes")

    def serialize(self) -> bytes:
        return struct.pack("<Q", self.value) + self.pubkey_hash

    @classmethod
    def deserialize(cls, reader: _Reader) -> "TxOutput":
        value = reader.take_u64()
        pubkey_hash = reader.take(20)
        return cls(value, pubkey_hash)

    @classmethod
    def to_key(cls, value: int, pubkey: PublicKey) -> "TxOutput":
        """Convenience constructor paying a public key directly."""
        return cls(value, hash160(pubkey.to_bytes()))


@dataclass(frozen=True)
class Transaction:
    """A ledger entry: inputs spent, outputs created, optional padding.

    ``padding`` reserves on-wire bytes without semantic content; the
    experiments use it to produce the paper's identically-sized artificial
    transactions.
    """

    inputs: tuple[TxInput, ...]
    outputs: tuple[TxOutput, ...]
    padding: bytes = b""

    def __post_init__(self) -> None:
        if not self.outputs:
            raise MalformedTransaction("transaction must have outputs")
        total = sum(out.value for out in self.outputs)
        if total > MAX_MONEY:
            raise MalformedTransaction("outputs exceed MAX_MONEY")

    @property
    def is_coinbase(self) -> bool:
        """Coinbase transactions mint coins and therefore have no inputs."""
        return not self.inputs

    def serialize(self) -> bytes:
        parts = [struct.pack("<HH", len(self.inputs), len(self.outputs))]
        parts.extend(txin.serialize() for txin in self.inputs)
        parts.extend(txout.serialize() for txout in self.outputs)
        parts.append(_encode_long_bytes(self.padding))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, data: bytes) -> "Transaction":
        reader = _Reader(data)
        tx = cls._read(reader)
        if not reader.done():
            raise MalformedTransaction("trailing bytes after transaction")
        return tx

    @classmethod
    def _read(cls, reader: _Reader) -> "Transaction":
        n_in = reader.take_u16()
        n_out = reader.take_u16()
        inputs = tuple(TxInput.deserialize(reader) for _ in range(n_in))
        outputs = tuple(TxOutput.deserialize(reader) for _ in range(n_out))
        padding = reader.take_long_bytes()
        return cls(inputs, outputs, padding)

    @cached_property
    def txid(self) -> bytes:
        """Double-SHA256 of the serialized transaction."""
        return sha256d(self.serialize())

    @property
    def size(self) -> int:
        """On-wire size in bytes."""
        return len(self.serialize())

    def sighash(self, input_index: int) -> bytes:
        """Hash committed to by the signature on ``input_index``.

        Commits to every input outpoint and every output (SIGHASH_ALL
        semantics) so signatures cannot be transplanted between
        transactions.
        """
        if not 0 <= input_index < len(self.inputs):
            raise MalformedTransaction("sighash input index out of range")
        parts = [struct.pack("<HHI", len(self.inputs), len(self.outputs), input_index)]
        parts.extend(txin.serialize_unsigned() for txin in self.inputs)
        parts.extend(txout.serialize() for txout in self.outputs)
        parts.append(_encode_long_bytes(self.padding))
        return sha256d(b"".join(parts))

    def sign_input(self, input_index: int, key: PrivateKey) -> "Transaction":
        """Return a copy with ``input_index`` signed by ``key``."""
        signature = key.sign(self.sighash(input_index))
        pubkey = key.public_key().to_bytes()
        old = self.inputs[input_index]
        signed = TxInput(old.outpoint, pubkey, signature)
        inputs = self.inputs[:input_index] + (signed,) + self.inputs[input_index + 1 :]
        return Transaction(inputs, self.outputs, self.padding)

    def __repr__(self) -> str:
        kind = "coinbase" if self.is_coinbase else "tx"
        return (
            f"<{kind} {self.txid.hex()[:8]} in={len(self.inputs)} "
            f"out={len(self.outputs)} size={self.size}>"
        )


def make_coinbase(
    payouts: list[tuple[bytes, int]], tag: bytes = b""
) -> Transaction:
    """Mint a coinbase paying each (pubkey_hash, value) in ``payouts``.

    ``tag`` is arbitrary padding that makes otherwise-identical coinbases
    distinct (Bitcoin uses the block height for the same reason).
    """
    if not payouts:
        raise MalformedTransaction("coinbase needs at least one payout")
    outputs = tuple(TxOutput(value, pkh) for pkh, value in payouts)
    return Transaction(inputs=(), outputs=outputs, padding=tag)
