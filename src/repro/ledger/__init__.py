"""Ledger substrate: UTXO transactions, validation, and the mempool."""

from .errors import (
    BadSignature,
    DoubleSpend,
    ImmatureSpend,
    LedgerError,
    MalformedTransaction,
    MempoolError,
    MissingInput,
    ValueError_,
)
from .mempool import Mempool
from .transactions import (
    COIN,
    MAX_MONEY,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
)
from .utxo import DEFAULT_COINBASE_MATURITY, Coin, UndoRecord, UtxoSet
from .validation import (
    check_transaction,
    compute_fee,
    validate_spend,
    verify_input_signatures,
)

__all__ = [
    "COIN",
    "DEFAULT_COINBASE_MATURITY",
    "MAX_MONEY",
    "BadSignature",
    "Coin",
    "DoubleSpend",
    "ImmatureSpend",
    "LedgerError",
    "MalformedTransaction",
    "Mempool",
    "MempoolError",
    "MissingInput",
    "OutPoint",
    "Transaction",
    "TxInput",
    "TxOutput",
    "UndoRecord",
    "UtxoSet",
    "ValueError_",
    "check_transaction",
    "compute_fee",
    "make_coinbase",
    "validate_spend",
    "verify_input_signatures",
]
