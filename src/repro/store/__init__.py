"""Persistence: the append-only block store."""

from .blockstore import BlockStore, StoreError

__all__ = ["BlockStore", "StoreError"]
