"""Persistent block storage: an append-only log with an in-memory index.

A production node must survive restarts; this store persists every
block in wire format (see :mod:`repro.wire`) to an append-only file and
rebuilds its index by scanning on open.  Corrupt tails (a crash mid-
append) are truncated on recovery, mirroring how Bitcoin Core treats
its block files.

Record framing: ``[u32 length][u32 crc32][payload]``.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

from ..bitcoin.blocks import Block
from ..core.blocks import KeyBlock, Microblock
from ..encoding import DecodeError
from ..wire import decode, encode

AnyBlock = Block | KeyBlock | Microblock

_HEADER = struct.Struct("<II")  # length, crc32


class StoreError(Exception):
    """Raised for unrecoverable storage failures."""


class BlockStore:
    """Append-only persistent storage for blocks of any type."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offsets: dict[bytes, int] = {}
        self._order: list[bytes] = []
        self.recovered_bytes_dropped = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            self._scan()
        else:
            self.path.touch()
        self._append_handle = self.path.open("ab")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._append_handle.close()

    def __enter__(self) -> "BlockStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reads ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, block_hash: bytes) -> bool:
        return block_hash in self._offsets

    def hashes(self) -> list[bytes]:
        """All stored block hashes in append order."""
        return list(self._order)

    def get(self, block_hash: bytes) -> AnyBlock | None:
        offset = self._offsets.get(block_hash)
        if offset is None:
            return None
        with self.path.open("rb") as handle:
            handle.seek(offset)
            header = handle.read(_HEADER.size)
            length, crc = _HEADER.unpack(header)
            payload = handle.read(length)
        if zlib.crc32(payload) != crc:
            raise StoreError(
                f"checksum mismatch for block {block_hash.hex()[:8]}"
            )
        return decode(payload)

    def iter_blocks(self):
        """Yield every stored block in append order."""
        for block_hash in self._order:
            block = self.get(block_hash)
            assert block is not None
            yield block

    # -- writes ------------------------------------------------------------------

    def put(self, block: AnyBlock) -> bool:
        """Persist a block; returns False if it was already stored."""
        if block.hash in self._offsets:
            return False
        payload = encode(block)
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        offset = self._append_handle.tell()
        self._append_handle.write(record)
        self._append_handle.flush()
        self._offsets[block.hash] = offset
        self._order.append(block.hash)
        return True

    # -- recovery -------------------------------------------------------------------

    def _scan(self) -> None:
        """Rebuild the index; truncate a corrupt tail if found."""
        good_until = 0
        with self.path.open("rb") as handle:
            data_size = self.path.stat().st_size
            while True:
                offset = handle.tell()
                header = handle.read(_HEADER.size)
                if not header:
                    good_until = offset
                    break
                if len(header) < _HEADER.size:
                    good_until = offset
                    break
                length, crc = _HEADER.unpack(header)
                if offset + _HEADER.size + length > data_size:
                    good_until = offset
                    break
                payload = handle.read(length)
                if zlib.crc32(payload) != crc:
                    good_until = offset
                    break
                try:
                    block = decode(payload)
                except DecodeError:
                    good_until = offset
                    break
                self._offsets[block.hash] = offset
                self._order.append(block.hash)
                good_until = handle.tell()
        actual = self.path.stat().st_size
        if good_until < actual:
            self.recovered_bytes_dropped = actual - good_until
            with self.path.open("rb+") as handle:
                handle.truncate(good_until)
