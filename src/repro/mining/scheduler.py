"""Simulated mining: the paper's exponential block-generation oracle.

Section 7: "we replace the proof of work mechanism with a scheduler that
triggers block generation at different miners with exponentially
distributed intervals", the winner being chosen in proportion to mining
power.  Sampling one global exponential inter-arrival time and then a
power-weighted winner is statistically identical to independent
per-miner exponential clocks (superposition of Poisson processes) and
costs O(1) events per block.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Callable

from ..net.events import Event
from ..net.simulator import Simulator

# Callback invoked when a miner wins a block: receives the miner index.
WinnerCallback = Callable[[int], None]


class MiningScheduler:
    """Triggers block generation events with exponential intervals."""

    def __init__(
        self,
        sim: Simulator,
        powers: list[float],
        block_rate: float,
        on_block: WinnerCallback,
    ) -> None:
        if not powers:
            raise ValueError("no miners")
        if any(power < 0 for power in powers):
            raise ValueError("negative mining power")
        if sum(powers) <= 0:
            raise ValueError("total mining power must be positive")
        if block_rate <= 0:
            raise ValueError("block rate must be positive")
        self.sim = sim
        self.on_block = on_block
        self._block_rate = block_rate
        self._powers = list(powers)
        self._rebuild_cumulative()
        self._pending: Event | None = None
        self._running = False
        self.blocks_triggered = 0
        self.wins_by_miner = [0] * len(powers)

    def _rebuild_cumulative(self) -> None:
        self._cumulative = list(itertools.accumulate(self._powers))
        self._total_power = self._cumulative[-1]

    @property
    def block_rate(self) -> float:
        return self._block_rate

    def set_block_rate(self, rate: float) -> None:
        """Change the global block rate (difficulty adjustment analogue)."""
        if rate <= 0:
            raise ValueError("block rate must be positive")
        self._block_rate = rate
        if self._running:
            self._reschedule()

    def set_power(self, miner: int, power: float) -> None:
        """Change one miner's power (mining power variation studies)."""
        if power < 0:
            raise ValueError("negative mining power")
        self._powers[miner] = power
        self._rebuild_cumulative()
        if self._total_power <= 0:
            raise ValueError("total mining power must stay positive")

    def power_share(self, miner: int) -> float:
        return self._powers[miner] / self._total_power

    def start(self) -> None:
        """Begin triggering block events."""
        if self._running:
            return
        self._running = True
        self._reschedule()

    def stop(self) -> None:
        """Stop triggering events (pending event is cancelled)."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _reschedule(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
        delay = self.sim.exponential(self._block_rate)
        self._pending = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self._pending = None
        winner = self._pick_winner()
        self.blocks_triggered += 1
        self.wins_by_miner[winner] += 1
        # Reschedule before the callback so a callback that stops the
        # scheduler (end of experiment) cancels cleanly.
        self._reschedule()
        self.on_block(winner)

    def _pick_winner(self) -> int:
        """Power-weighted random miner selection."""
        pick = self.sim.rng.uniform(0.0, self._total_power)
        return min(
            bisect.bisect_right(self._cumulative, pick), len(self._powers) - 1
        )
