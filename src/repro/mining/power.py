"""Mining power distributions.

Section 7: "To model the size distribution of mining entities, we
approximate it with an exponential distribution with an exponent of
−0.27. It yields a 0.99 coefficient of determination compared with the
medians of each rank."  This module generates that distribution and
provides the fitting machinery used to verify synthetic pool data
against it.
"""

from __future__ import annotations

import math

# The paper's fitted exponent for pool size by rank.
PAPER_EXPONENT = -0.27


def exponential_shares(n_miners: int, exponent: float = PAPER_EXPONENT) -> list[float]:
    """Power share per rank: share(r) ∝ exp(exponent · r), normalized.

    Rank 1 is the largest miner.  With the paper's exponent and 20
    ranks, the largest miner holds just under a quarter of the power —
    consistent with the paper's threat model boundary.
    """
    if n_miners < 1:
        raise ValueError("need at least one miner")
    raw = [math.exp(exponent * rank) for rank in range(1, n_miners + 1)]
    total = sum(raw)
    return [value / total for value in raw]


def uniform_shares(n_miners: int) -> list[float]:
    """Equal power for every miner — the idealized decentralized case."""
    if n_miners < 1:
        raise ValueError("need at least one miner")
    return [1.0 / n_miners] * n_miners


def single_large_miner(n_miners: int, large_share: float) -> list[float]:
    """One miner with ``large_share``, the rest equal — attack scenarios."""
    if not 0 < large_share < 1:
        raise ValueError("large_share must be in (0, 1)")
    if n_miners < 2:
        raise ValueError("need at least two miners")
    rest = (1.0 - large_share) / (n_miners - 1)
    return [large_share] + [rest] * (n_miners - 1)


def fit_exponential(shares_by_rank: list[float]) -> tuple[float, float]:
    """Least-squares fit of log(share) against rank.

    Returns (exponent, r_squared).  Used to validate that synthetic pool
    data reproduces the paper's (−0.27, 0.99) fit.
    """
    if len(shares_by_rank) < 2:
        raise ValueError("need at least two ranks to fit")
    if any(share <= 0 for share in shares_by_rank):
        raise ValueError("shares must be positive to fit in log space")
    ranks = list(range(1, len(shares_by_rank) + 1))
    logs = [math.log(share) for share in shares_by_rank]
    n = len(ranks)
    mean_x = sum(ranks) / n
    mean_y = sum(logs) / n
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(ranks, logs))
    ss_xx = sum((x - mean_x) ** 2 for x in ranks)
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(ranks, logs)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in logs)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return slope, r_squared


def largest_share(shares: list[float]) -> float:
    """The largest miner's fraction — the fairness denominator input."""
    if not shares:
        raise ValueError("empty share list")
    return max(shares)
