"""Mining substrate: power distributions, pool data, scheduler, difficulty."""

from .difficulty import (
    BITCOIN_BLOCK_SPACING,
    BITCOIN_RETARGET_WINDOW,
    EpochRetargeter,
    PerBlockRetargeter,
    expected_block_interval,
    recovery_blocks,
)
from .pools import (
    BLOCKS_PER_WEEK,
    UNIDENTIFIED_FRACTION,
    WeeklyShares,
    fit_rank_medians,
    generate_year,
    rank_statistics,
)
from .power import (
    PAPER_EXPONENT,
    exponential_shares,
    fit_exponential,
    largest_share,
    single_large_miner,
    uniform_shares,
)
from .scheduler import MiningScheduler

__all__ = [
    "BITCOIN_BLOCK_SPACING",
    "BITCOIN_RETARGET_WINDOW",
    "BLOCKS_PER_WEEK",
    "PAPER_EXPONENT",
    "UNIDENTIFIED_FRACTION",
    "EpochRetargeter",
    "MiningScheduler",
    "PerBlockRetargeter",
    "WeeklyShares",
    "expected_block_interval",
    "exponential_shares",
    "fit_exponential",
    "fit_rank_medians",
    "generate_year",
    "largest_share",
    "rank_statistics",
    "recovery_blocks",
    "single_large_miner",
    "uniform_shares",
]
