"""Difficulty retargeting and mining-power-variation dynamics.

Section 5.2 ("Resilience to Mining Power Variation") compares adjustment
schedules — Bitcoin every 2016 blocks, Litecoin every 2016 (faster
blocks), Ethereum every block — and argues all are sensitive to sudden
mining power drops, while Bitcoin-NG keeps serializing transactions in
microblocks regardless.  This module implements the retargeting
algorithms and a small analytical model of recovery time after a power
drop, used by the resilience benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.pow import check_target, scale_target

# Bitcoin's retarget window and spacing.
BITCOIN_RETARGET_WINDOW = 2016
BITCOIN_BLOCK_SPACING = 600.0


@dataclass
class EpochRetargeter:
    """Bitcoin/Litecoin-style retargeting every ``window`` blocks.

    Adjusts the target so the last window would have taken
    ``window * spacing`` seconds, clamped to 4x per adjustment.
    """

    spacing: float = BITCOIN_BLOCK_SPACING
    window: int = BITCOIN_RETARGET_WINDOW
    clamp: float = 4.0

    def __post_init__(self) -> None:
        if self.spacing <= 0 or self.window < 1:
            raise ValueError("spacing and window must be positive")

    def retarget(self, target: int, window_duration: float) -> int:
        """New target given the observed duration of the last window."""
        check_target(target)
        if window_duration <= 0:
            raise ValueError("window duration must be positive")
        expected = self.spacing * self.window
        return scale_target(target, window_duration / expected, self.clamp)

    def should_retarget(self, height: int) -> bool:
        """True at heights where an adjustment happens (Bitcoin rule)."""
        return height > 0 and height % self.window == 0


@dataclass
class PerBlockRetargeter:
    """Ethereum-style smooth per-block adjustment.

    Nudges the target by ``step`` (default 1/2048, Ethereum's Homestead
    constant) toward the desired spacing based on the last interval.
    """

    spacing: float = 12.0
    step: float = 1.0 / 2048.0

    def retarget(self, target: int, last_interval: float) -> int:
        check_target(target)
        if last_interval <= 0:
            raise ValueError("interval must be positive")
        if last_interval < self.spacing:
            factor = 1.0 - self.step
        else:
            factor = 1.0 + self.step * min(
                (last_interval / self.spacing), 99.0
            )
        return scale_target(target, factor, clamp=2.0)


def expected_block_interval(
    difficulty_rate: float, power_fraction_remaining: float
) -> float:
    """Expected interval after a power drop, before retargeting reacts.

    With block rate tuned to ``difficulty_rate`` under full power, losing
    power stretches the interval by its reciprocal: half the miners leave
    → blocks take twice as long.  The paper's point is that this stall
    can last "potentially orders of magnitude longer" for alt-coins.
    """
    if difficulty_rate <= 0:
        raise ValueError("rate must be positive")
    if not 0 < power_fraction_remaining <= 1:
        raise ValueError("remaining power fraction must be in (0, 1]")
    return (1.0 / difficulty_rate) / power_fraction_remaining


def recovery_blocks(window: int, clamp: float, power_fraction_remaining: float) -> int:
    """Blocks needed until retargeting restores the intended interval.

    Each epoch the difficulty can fall by at most ``clamp``x, so after a
    drop to fraction f the retargeter needs ceil(log_clamp(1/f)) epochs;
    each of those epochs is ``window`` blocks mined at depressed speed.
    """
    import math

    if not 0 < power_fraction_remaining <= 1:
        raise ValueError("remaining power fraction must be in (0, 1]")
    if clamp <= 1:
        raise ValueError("clamp must exceed 1")
    epochs = math.ceil(
        math.log(1.0 / power_fraction_remaining) / math.log(clamp)
    ) if power_fraction_remaining < 1 else 0
    return epochs * window
