"""The Bitcoin-NG chain: fork choice by key-block weight only.

"In case of a fork, the chain is defined to be the one which represents
the most work done, aggregated over all key blocks, with random tie
breaking" (Section 4.1).  "Microblocks do not affect the weight of the
chain, as they do not contain proof of work" (Section 4.2) — this is
what produces the short microblock forks of Figure 2 (a new key block
prunes microblocks its miner had not yet heard) and the rare-but-long
key block forks of Figure 3.

The chain also validates microblocks in context: the signature must
match "the public key in the latest key block in the chain", and the
timestamp rate limit "prohibits a leader (malicious, greedy, or broken)
from swamping the system with microblocks".  Leader equivocation — two
microblocks extending the same predecessor — is detected here and
yields the fraud proof a poison transaction needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..bitcoin.chain import Reorg, TieBreak
from .blocks import InvalidNGBlock, KeyBlock, Microblock
from .params import NGParams

NGBlock = KeyBlock | Microblock


@dataclass
class NGRecord:
    """One block's position in the NG block tree."""

    block: NGBlock
    is_key: bool
    height: int  # blocks of any kind since genesis
    key_height: int  # key blocks on the path (epoch number)
    cumulative_work: int  # aggregated over key blocks only
    leader_pubkey: bytes  # epoch key in force after this block
    arrival_time: float
    children: list[bytes] = field(default_factory=list)

    @property
    def hash(self) -> bytes:
        return self.block.hash

    @property
    def parent_hash(self) -> bytes:
        return self.block.header.prev_hash

    @property
    def timestamp(self) -> float:
        return self.block.header.timestamp


@dataclass(frozen=True)
class FraudProof:
    """Evidence of leader equivocation: a pruned sibling microblock.

    "The entry ... contains the header of the first block in the pruned
    branch as a proof of fraud" (Section 4.5).  We keep the whole
    microblock header plus signature — exactly what a verifier needs.
    """

    offender_pubkey: bytes
    pruned_micro: Microblock
    retained_micro_hash: bytes

    def verify(self) -> bool:
        """The proof stands if the pruned header really was leader-signed."""
        return self.pruned_micro.verify_signature(self.offender_pubkey)


class NGChain:
    """One node's view of the Bitcoin-NG block tree."""

    def __init__(
        self,
        genesis: KeyBlock,
        params: NGParams,
        tie_break: TieBreak = TieBreak.RANDOM,
        rng: random.Random | None = None,
    ) -> None:
        self.params = params
        self.tie_break = tie_break
        self.rng = rng or random.Random(0)
        self.genesis_hash = genesis.hash
        self._records: dict[bytes, NGRecord] = {}
        self._orphans: dict[bytes, list[tuple[NGBlock, float]]] = {}
        self._records[genesis.hash] = NGRecord(
            block=genesis,
            is_key=True,
            height=0,
            key_height=0,
            cumulative_work=0,
            leader_pubkey=genesis.header.leader_pubkey,
            arrival_time=0.0,
        )
        self._tip = genesis.hash
        self._equivocations: list[FraudProof] = []

    # -- queries --------------------------------------------------------

    def __contains__(self, block_hash: bytes) -> bool:
        return block_hash in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def tip(self) -> bytes:
        return self._tip

    @property
    def tip_record(self) -> NGRecord:
        return self._records[self._tip]

    def record(self, block_hash: bytes) -> NGRecord:
        return self._records[block_hash]

    def get(self, block_hash: bytes) -> NGRecord | None:
        return self._records.get(block_hash)

    def current_leader_pubkey(self) -> bytes:
        """The epoch key in force at the tip."""
        return self._records[self._tip].leader_pubkey

    def latest_key_block(self, start: bytes | None = None) -> NGRecord:
        """The most recent key block at or above ``start`` (default tip)."""
        cursor = self._records[start if start is not None else self._tip]
        while not cursor.is_key:
            cursor = self._records[cursor.parent_hash]
        return cursor

    def main_chain(self, tip: bytes | None = None) -> list[bytes]:
        chain: list[bytes] = []
        cursor = tip if tip is not None else self._tip
        while True:
            chain.append(cursor)
            if cursor == self.genesis_hash:
                break
            cursor = self._records[cursor].parent_hash
        chain.reverse()
        return chain

    def is_in_main_chain(self, block_hash: bytes) -> bool:
        record = self._records.get(block_hash)
        if record is None:
            return False
        cursor = self._records[self._tip]
        while cursor.height > record.height:
            cursor = self._records[cursor.parent_hash]
        return cursor.hash == block_hash

    def find_fork_point(self, a: bytes, b: bytes) -> bytes:
        ra, rb = self._records[a], self._records[b]
        while ra.height > rb.height:
            ra = self._records[ra.parent_hash]
        while rb.height > ra.height:
            rb = self._records[rb.parent_hash]
        while ra.hash != rb.hash:
            ra = self._records[ra.parent_hash]
            rb = self._records[rb.parent_hash]
        return ra.hash

    def equivocations(self) -> list[FraudProof]:
        """Fraud proofs discovered so far (one per offense observed)."""
        return list(self._equivocations)

    def pruned_blocks(self) -> list[bytes]:
        main = set(self.main_chain())
        return [h for h in self._records if h not in main]

    # -- validation -----------------------------------------------------

    def validate_microblock(
        self,
        micro: Microblock,
        local_time: float,
        check_signature: bool = True,
    ) -> None:
        """Contextual microblock checks against its (known) parent.

        Raises :class:`InvalidNGBlock`; the parent must already be in
        the tree (orphans are validated when adopted).
        """
        parent = self._records.get(micro.header.prev_hash)
        if parent is None:
            raise InvalidNGBlock("microblock parent unknown")
        # "if the timestamp of a microblock is in the future ... invalid"
        if micro.header.timestamp > local_time + self.params.max_future_drift:
            raise InvalidNGBlock("microblock timestamp in the future")
        # "or if its difference with its predecessor's timestamp is
        # smaller than the minimum"
        gap = micro.header.timestamp - parent.timestamp
        if gap < self.params.min_microblock_interval - 1e-9:
            raise InvalidNGBlock(
                f"microblock interval {gap:.3f}s below the minimum "
                f"{self.params.min_microblock_interval}s"
            )
        if check_signature and not micro.verify_signature(parent.leader_pubkey):
            raise InvalidNGBlock("microblock not signed by the epoch leader")

    # -- mutation -------------------------------------------------------

    def add_block(
        self,
        block: NGBlock,
        arrival_time: float,
        local_time: float | None = None,
        check_signature: bool = True,
    ) -> list[Reorg]:
        """Insert a key block or microblock; returns resulting tip moves.

        Invalid microblocks raise; unknown-parent blocks are buffered.
        """
        if block.hash in self._records:
            return []
        if block.header.prev_hash not in self._records:
            self._orphans.setdefault(block.header.prev_hash, []).append(
                (block, arrival_time)
            )
            return []
        reorgs = [
            self._connect(
                block,
                arrival_time,
                local_time if local_time is not None else arrival_time,
                check_signature,
            )
        ]
        pending = [block.hash]
        while pending:
            parent_hash = pending.pop()
            for orphan, orphan_time in self._orphans.pop(parent_hash, []):
                try:
                    reorg = self._connect(
                        orphan,
                        max(orphan_time, arrival_time),
                        local_time if local_time is not None else arrival_time,
                        check_signature,
                    )
                except InvalidNGBlock:
                    continue
                reorgs.append(reorg)
                pending.append(orphan.hash)
        return [r for r in reorgs if r is not None]

    def _connect(
        self,
        block: NGBlock,
        arrival_time: float,
        local_time: float,
        check_signature: bool,
    ) -> Reorg | None:
        parent = self._records[block.header.prev_hash]
        is_key = isinstance(block, KeyBlock)
        if is_key:
            record = NGRecord(
                block=block,
                is_key=True,
                height=parent.height + 1,
                key_height=parent.key_height + 1,
                cumulative_work=parent.cumulative_work + block.header.work,
                leader_pubkey=block.header.leader_pubkey,
                arrival_time=arrival_time,
            )
        else:
            assert isinstance(block, Microblock)
            self.validate_microblock(block, local_time, check_signature)
            record = NGRecord(
                block=block,
                is_key=False,
                height=parent.height + 1,
                key_height=parent.key_height,
                cumulative_work=parent.cumulative_work,
                leader_pubkey=parent.leader_pubkey,
                arrival_time=arrival_time,
            )
            self._detect_equivocation(parent, block)
        self._records[block.hash] = record
        parent.children.append(block.hash)
        self._on_connected(record)
        return self._maybe_switch_tip(record)

    def _on_connected(self, record: NGRecord) -> None:
        """Hook for subclasses to index a freshly connected record."""

    def _detect_equivocation(self, parent: NGRecord, new_micro: Microblock) -> None:
        """Two leader-signed microblocks on one parent is fraud."""
        siblings = [
            self._records[child]
            for child in parent.children
            if not self._records[child].is_key
        ]
        for sibling in siblings:
            assert isinstance(sibling.block, Microblock)
            self._equivocations.append(
                FraudProof(
                    offender_pubkey=parent.leader_pubkey,
                    pruned_micro=new_micro,
                    retained_micro_hash=sibling.hash,
                )
            )

    def _maybe_switch_tip(self, candidate: NGRecord) -> Reorg | None:
        current = self._records[self._tip]
        if candidate.cumulative_work > current.cumulative_work:
            return self._switch_tip(candidate.hash)
        if candidate.cumulative_work < current.cumulative_work:
            return None
        if candidate.hash == current.hash:
            return None
        # Equal weight: adopt a microblock that extends the current tip;
        # anything else is a genuine fork.
        if self._is_descendant(candidate.hash, self._tip):
            return self._switch_tip(candidate.hash)
        if candidate.is_key:
            # Competing key blocks (Figure 3): tie-break policy applies.
            if self.tie_break is TieBreak.FIRST_SEEN:
                return None
            if self.rng.random() < 0.5:
                return None
            return self._switch_tip(candidate.hash)
        # Competing microblock (leader equivocation): keep the first seen.
        return None

    def _is_descendant(self, descendant: bytes, ancestor: bytes) -> bool:
        if descendant == ancestor:
            return True
        target = self._records[ancestor]
        cursor = self._records[descendant]
        while cursor.height > target.height:
            cursor = self._records[cursor.parent_hash]
        return cursor.hash == ancestor

    def _switch_tip(self, new_tip: bytes) -> Reorg:
        old_tip = self._tip
        fork = self.find_fork_point(old_tip, new_tip)
        disconnected = []
        cursor = old_tip
        while cursor != fork:
            disconnected.append(cursor)
            cursor = self._records[cursor].parent_hash
        connected = []
        cursor = new_tip
        while cursor != fork:
            connected.append(cursor)
            cursor = self._records[cursor].parent_hash
        connected.reverse()
        self._tip = new_tip
        return Reorg(old_tip, new_tip, tuple(disconnected), tuple(connected))

    # -- invariants -------------------------------------------------------

    def assert_consistent(self) -> None:
        """Structural invariants for property-based tests."""
        for block_hash, record in self._records.items():
            if block_hash == self.genesis_hash:
                continue
            parent = self._records.get(record.parent_hash)
            if parent is None:
                raise InvalidNGBlock("dangling parent pointer")
            if record.height != parent.height + 1:
                raise InvalidNGBlock("height mismatch")
            expected_key_height = parent.key_height + (1 if record.is_key else 0)
            if record.key_height != expected_key_height:
                raise InvalidNGBlock("key height mismatch")
            if record.is_key:
                expected_work = parent.cumulative_work + record.block.header.work
                expected_leader = record.block.header.leader_pubkey  # type: ignore[union-attr]
            else:
                expected_work = parent.cumulative_work
                expected_leader = parent.leader_pubkey
            if record.cumulative_work != expected_work:
                raise InvalidNGBlock("cumulative work mismatch")
            if record.leader_pubkey != expected_leader:
                raise InvalidNGBlock("leader key mismatch")
        best = max(r.cumulative_work for r in self._records.values())
        if self._records[self._tip].cumulative_work != best:
            raise InvalidNGBlock("tip does not carry maximal key work")
