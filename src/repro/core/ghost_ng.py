"""GHOST-augmented Bitcoin-NG: the paper's Section 9 future work.

"Such a practical implementation of GHOST can be used to complement
Bitcoin-NG and allow for a higher frequency of key blocks."

Plain Bitcoin-NG resolves competing key blocks by the heaviest *chain*
of key work; at high key-block frequency that reproduces Bitcoin's
fork-rate pathology on the leader-election plane.  This variant applies
the GHOST rule to key blocks: at a fork, follow the branch whose
subtree contains the most aggregate key-block work.  Microblocks remain
weightless (Section 5.1's requirement stands) and within a branch the
latest microblock extension is followed as usual.
"""

from __future__ import annotations

from ..bitcoin.chain import Reorg, TieBreak
from .chain import NGChain, NGRecord


class GhostNGChain(NGChain):
    """An NG chain whose key-block fork choice is heaviest-subtree."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Aggregate key work in each block's subtree (incl. itself).
        self._subtree_key_work: dict[bytes, int] = {self.genesis_hash: 0}

    # -- bookkeeping ------------------------------------------------------

    def _on_connected(self, record: NGRecord) -> None:
        work = record.block.header.work if record.is_key else 0
        self._subtree_key_work[record.hash] = work
        if work:
            cursor = self._records[record.parent_hash]
            while True:
                self._subtree_key_work[cursor.hash] += work
                if cursor.hash == self.genesis_hash:
                    break
                cursor = self._records[cursor.parent_hash]

    def subtree_key_work(self, block_hash: bytes) -> int:
        return self._subtree_key_work[block_hash]

    # -- fork choice --------------------------------------------------------

    def _ghost_tip(self) -> bytes:
        """Descend by heaviest key subtree; follow microblocks at ties."""
        cursor = self._records[self.genesis_hash]
        while cursor.children:
            best = None
            best_weight = -1
            for child_hash in cursor.children:
                weight = self._subtree_key_work[child_hash]
                if weight > best_weight:
                    best_weight = weight
                    best = child_hash
                elif weight == best_weight and best is not None:
                    # Equal subtrees: keep the earlier-arrived branch
                    # unless the random policy says otherwise.
                    if (
                        self.tie_break is TieBreak.RANDOM
                        and self.rng.random() < 0.5
                    ):
                        best = child_hash
            assert best is not None
            cursor = self._records[best]
        return cursor.hash

    def _maybe_switch_tip(self, candidate: NGRecord) -> Reorg | None:
        new_tip = self._ghost_tip()
        if new_tip == self._tip:
            return None
        return self._switch_tip(new_tip)

    def assert_consistent(self) -> None:
        """Extend the base invariants with subtree-weight bookkeeping."""
        # The base class checks the heaviest-*chain* tip; under GHOST the
        # tip follows subtree weight instead, so re-check everything but
        # that final condition, then verify the subtree sums.
        for block_hash, record in self._records.items():
            if block_hash == self.genesis_hash:
                continue
            parent = self._records[record.parent_hash]
            if record.height != parent.height + 1:
                raise AssertionError("height mismatch")

        def subtree_sum(block_hash: bytes) -> int:
            record = self._records[block_hash]
            own = record.block.header.work if record.is_key else 0
            if block_hash == self.genesis_hash:
                own = 0
            return own + sum(
                subtree_sum(child) for child in record.children
            )

        for block_hash in self._records:
            if self._subtree_key_work[block_hash] != subtree_sum(block_hash):
                raise AssertionError("subtree key work out of sync")
        if self._tip != self._ghost_tip():
            raise AssertionError("tip diverges from GHOST descent")
