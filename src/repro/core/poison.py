"""Poison transactions: punishing equivocating leaders (Section 4.5).

"the entry is called a poison transaction, and it contains the header of
the first block in the pruned branch as a proof of fraud.  The poison
transaction has to be placed after the subsequent key block, and before
the revenue is spent by the malicious leader.  Besides invalidating the
compensation sent to the leader that generated the fork, a poison
transaction grants the current leader a fraction of that compensation,
e.g., 5%.  Only one poison transaction can be placed per cheater."
"""

from __future__ import annotations

from dataclasses import dataclass

from .blocks import MICRO_HEADER_SIZE
from .chain import FraudProof, NGChain


class InvalidPoison(Exception):
    """Raised when a poison entry fails validation."""


@dataclass(frozen=True)
class PoisonEntry:
    """A ledger entry carrying a fraud proof against an epoch leader."""

    proof: FraudProof
    reporter_miner: int

    @property
    def offender_pubkey(self) -> bytes:
        return self.proof.offender_pubkey

    @property
    def size(self) -> int:
        """Wire size: a pruned microblock header plus bookkeeping."""
        return MICRO_HEADER_SIZE + 8


def validate_poison(
    chain: NGChain,
    poison: PoisonEntry,
    placement_key_height: int,
) -> None:
    """Check a poison entry against the chain's current main chain.

    Requirements enforced:

    1. the fraud proof's signature verifies under the offender key;
    2. the pruned microblock is *not* on the main chain while a
       conflicting sibling (same parent) *is* known — i.e. the leader
       really produced two successors;
    3. the offender key matches the epoch leader at the fraud's parent;
    4. placement happens after the offender's epoch ended (a subsequent
       key block exists) and before the offender's revenue matures.
    """
    proof = poison.proof
    if not proof.verify():
        raise InvalidPoison("fraud proof signature does not verify")
    pruned = proof.pruned_micro
    if chain.is_in_main_chain(pruned.hash):
        raise InvalidPoison("claimed pruned microblock is on the main chain")
    parent = chain.get(pruned.header.prev_hash)
    if parent is None:
        raise InvalidPoison("fraud parent unknown")
    if parent.leader_pubkey != proof.offender_pubkey:
        raise InvalidPoison("offender key does not match the epoch leader")
    sibling = chain.get(proof.retained_micro_hash)
    if sibling is None or sibling.parent_hash != pruned.header.prev_hash:
        raise InvalidPoison("no conflicting sibling microblock known")
    # Placement window: after the subsequent key block...
    offender_epoch = parent.key_height
    if placement_key_height <= offender_epoch:
        raise InvalidPoison("poison placed before the subsequent key block")
    # ...and before the offender's coinbase matures and can be spent.
    if placement_key_height > offender_epoch + chain.params.coinbase_maturity:
        raise InvalidPoison("offender revenue already spendable; too late")


class PoisonRegistry:
    """Tracks accepted poisons; enforces one poison per cheater.

    Maps offender epoch pubkey → reporter miner id, the exact structure
    :class:`~repro.core.remuneration.RewardLedger` consumes.
    """

    def __init__(self) -> None:
        self._by_offender: dict[bytes, int] = {}

    def __len__(self) -> int:
        return len(self._by_offender)

    def __contains__(self, offender_pubkey: bytes) -> bool:
        return offender_pubkey in self._by_offender

    def register(
        self, chain: NGChain, poison: PoisonEntry, placement_key_height: int
    ) -> bool:
        """Validate and record a poison; returns False for duplicates."""
        if poison.offender_pubkey in self._by_offender:
            return False
        validate_poison(chain, poison, placement_key_height)
        self._by_offender[poison.offender_pubkey] = poison.reporter_miner
        return True

    def revocations(self) -> dict[bytes, int]:
        return dict(self._by_offender)
