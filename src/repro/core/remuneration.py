"""Remuneration: the 40%/60% fee split and reward accounting (Section 4.4).

"Each key block entitles its generator a set amount.  Second, each
ledger entry carries a fee.  This fee is split by the leader that places
this entry in a microblock, and the subsequent leader that generates the
next key block.  Specifically, the current leader earns 40% of the fee,
and the subsequent leader earns 60%."

"In practice, the remuneration is implemented by having each key block
contain a single coinbase transaction that mints new coins and deposits
the funds to the current and previous leaders."

:class:`RewardLedger` computes realized per-miner revenue over a main
chain, applying poison-transaction revocations (Section 4.5), and is the
workhorse of the incentive experiments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Iterable

from ..ledger.transactions import Transaction, make_coinbase
from .blocks import KeyBlock, Microblock
from .chain import NGRecord
from .params import NGParams


def split_fee(fee: int, leader_fraction: float) -> tuple[int, int]:
    """Split ``fee`` into (placing leader's cut, next leader's cut).

    Integer-exact: the two parts always sum to ``fee``; rounding dust
    goes to the next leader, mirroring how coinbase arithmetic must
    conserve value.
    """
    if fee < 0:
        raise ValueError("negative fee")
    current = int(fee * leader_fraction)
    return current, fee - current


def build_ng_coinbase(
    miner_id: int,
    timestamp: float,
    self_pubkey_hash: bytes,
    prev_leader_pubkey_hash: bytes | None,
    prev_epoch_fees: int,
    params: NGParams,
) -> Transaction:
    """Coinbase for a new key block.

    Pays the generator its subsidy plus 60% of the previous epoch's
    entry fees, and the previous leader its 40% share — one transaction,
    as the paper prescribes.
    """
    prev_cut, self_cut = split_fee(prev_epoch_fees, params.leader_fee_fraction)
    payouts = [(self_pubkey_hash, params.key_block_reward + self_cut)]
    if prev_leader_pubkey_hash is not None and prev_cut > 0:
        payouts.append((prev_leader_pubkey_hash, prev_cut))
    tag = struct.pack("<i", miner_id) + struct.pack("<d", timestamp)
    return make_coinbase(payouts, tag=tag)


# Maps a microblock to the total fees of its entries.  Synthetic-payload
# experiments supply ``lambda m: m.n_tx * fee_per_tx``.
FeeFunction = Callable[[Microblock], int]


@dataclass(frozen=True)
class EpochReward:
    """Revenue attribution for one completed epoch."""

    leader_miner: int
    leader_pubkey: bytes
    key_block_hash: bytes
    subsidy: int
    placed_fee_share: int  # 40% of fees this leader placed
    next_fee_share: int  # 60% of the *previous* epoch's fees
    revoked: bool = False

    @property
    def total(self) -> int:
        if self.revoked:
            return 0
        return self.subsidy + self.placed_fee_share + self.next_fee_share


class RewardLedger:
    """Computes per-miner realized revenue over a main chain.

    Walks the chain epoch by epoch: each key block closes the previous
    epoch, crediting 40% of its fees to the previous leader and 60% to
    the new one.  Poison revocations void the offending leader's epoch
    revenue and grant the reporter the bounty fraction.
    """

    def __init__(self, params: NGParams, fee_of: FeeFunction) -> None:
        self.params = params
        self.fee_of = fee_of

    def compute(
        self,
        chain: Iterable[NGRecord],
        revoked_leaders: dict[bytes, int] | None = None,
    ) -> tuple[list[EpochReward], dict[int, int]]:
        """Attribute revenue along ``chain`` (genesis-first records).

        ``revoked_leaders`` maps an offender's epoch pubkey to the
        reporter's miner id (from validated poison entries).  Returns the
        per-epoch breakdown and the aggregated miner → revenue map.
        """
        revoked_leaders = revoked_leaders or {}
        epochs: list[EpochReward] = []
        revenue: dict[int, int] = {}
        current_leader: tuple[int, bytes, bytes] | None = None  # miner, pubkey, hash
        epoch_fees = 0
        prev_fees = 0
        for record in chain:
            if record.is_key:
                block = record.block
                assert isinstance(block, KeyBlock)
                if current_leader is not None:
                    miner, pubkey, key_hash = current_leader
                    placed_cut, _ = split_fee(
                        epoch_fees, self.params.leader_fee_fraction
                    )
                    _, next_cut = split_fee(
                        prev_fees, self.params.leader_fee_fraction
                    )
                    epochs.append(
                        EpochReward(
                            leader_miner=miner,
                            leader_pubkey=pubkey,
                            key_block_hash=key_hash,
                            subsidy=self.params.key_block_reward,
                            placed_fee_share=placed_cut,
                            next_fee_share=next_cut,
                            revoked=pubkey in revoked_leaders,
                        )
                    )
                prev_fees = epoch_fees
                epoch_fees = 0
                current_leader = (
                    block.miner_hint,
                    block.header.leader_pubkey,
                    block.hash,
                )
            else:
                micro = record.block
                assert isinstance(micro, Microblock)
                epoch_fees += self.fee_of(micro)
        # The final (open) epoch: subsidy plus 60% of the one before it;
        # its own placed fees are not yet payable (no subsequent leader).
        if current_leader is not None:
            miner, pubkey, key_hash = current_leader
            _, next_cut = split_fee(prev_fees, self.params.leader_fee_fraction)
            epochs.append(
                EpochReward(
                    leader_miner=miner,
                    leader_pubkey=pubkey,
                    key_block_hash=key_hash,
                    subsidy=self.params.key_block_reward,
                    placed_fee_share=0,
                    next_fee_share=next_cut,
                    revoked=pubkey in revoked_leaders,
                )
            )
        for epoch in epochs:
            revenue[epoch.leader_miner] = (
                revenue.get(epoch.leader_miner, 0) + epoch.total
            )
            if epoch.revoked:
                reporter = revoked_leaders[epoch.leader_pubkey]
                would_have_earned = (
                    epoch.subsidy + epoch.placed_fee_share + epoch.next_fee_share
                )
                bounty = int(
                    would_have_earned * self.params.poison_bounty_fraction
                )
                revenue[reporter] = revenue.get(reporter, 0) + bounty
        return epochs, revenue
