"""Light-client (SPV) verification for Bitcoin-NG.

A light client keeps only key block *headers* — they are tiny and rare,
which makes NG unusually SPV-friendly: the header chain grows at the
key-block rate regardless of transaction throughput.  A full node hands
the client an :class:`InclusionProof` for a payment:

* the Merkle branch from the transaction to the microblock's
  ``entries_root`` (Section 4.2's "cryptographic hash of its ledger
  entries" is a Merkle root here, as in Bitcoin);
* the signed microblock header;
* the hash of the key block whose epoch signed it.

The client checks the branch, the leader signature against the epoch
key from its own header chain, and how deeply the epoch is buried under
later key blocks — the Nakamoto-style confidence knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bitcoin.blocks import TxPayload
from ..crypto.merkle import merkle_proof, verify_proof
from .blocks import (
    InvalidNGBlock,
    KeyBlock,
    KeyBlockHeader,
    Microblock,
    MicroblockHeader,
    check_key_block,
)


class SpvError(Exception):
    """Raised when a proof cannot be constructed or a header rejected."""


@dataclass(frozen=True)
class InclusionProof:
    """Everything needed to verify a payment against key headers only."""

    txid: bytes
    merkle_branch: tuple[tuple[bytes, bool], ...]
    micro_header: MicroblockHeader
    micro_signature: bytes
    key_block_hash: bytes  # the epoch whose leader signed the microblock


def build_inclusion_proof(
    micro: Microblock, txid: bytes, key_block_hash: bytes
) -> InclusionProof:
    """Full-node side: extract the proof for ``txid`` from a microblock."""
    if not isinstance(micro.payload, TxPayload):
        raise SpvError("inclusion proofs need a transaction payload")
    hashes = micro.payload.entry_hashes
    try:
        index = hashes.index(txid)
    except ValueError:
        raise SpvError("transaction not in this microblock") from None
    branch = tuple(merkle_proof(hashes, index))
    return InclusionProof(
        txid=txid,
        merkle_branch=branch,
        micro_header=micro.header,
        micro_signature=micro.signature,
        key_block_hash=key_block_hash,
    )


class LightClient:
    """Tracks key block headers and verifies inclusion proofs.

    Headers are accepted if they chain to a known parent; the best
    chain is the one with the most cumulative key work, exactly the
    full protocol's rule restricted to headers.
    """

    def __init__(self, genesis: KeyBlock, require_pow: bool = False) -> None:
        self.require_pow = require_pow
        self.genesis_hash = genesis.hash
        self._headers: dict[bytes, KeyBlockHeader] = {
            genesis.hash: genesis.header
        }
        self._parents: dict[bytes, bytes] = {}
        self._work: dict[bytes, int] = {genesis.hash: 0}
        self._height: dict[bytes, int] = {genesis.hash: 0}
        self._best = genesis.hash

    # -- header sync -------------------------------------------------------

    def add_header(
        self, header: KeyBlockHeader, parent_key_hash: bytes
    ) -> bool:
        """Accept one key header; ``parent_key_hash`` is the previous
        *key block* (microblocks between them are invisible to SPV).

        Returns True if the best chain advanced.
        """
        if parent_key_hash not in self._headers:
            raise SpvError("unknown parent key header")
        if header.hash in self._headers:
            return False
        if self.require_pow and not header.meets_pow():
            raise SpvError("key header fails proof of work")
        self._headers[header.hash] = header
        self._parents[header.hash] = parent_key_hash
        self._work[header.hash] = self._work[parent_key_hash] + header.work
        self._height[header.hash] = self._height[parent_key_hash] + 1
        if self._work[header.hash] > self._work[self._best]:
            self._best = header.hash
            return True
        return False

    @property
    def best_hash(self) -> bytes:
        return self._best

    def height(self) -> int:
        return self._height[self._best]

    def _on_best_chain(self, key_hash: bytes) -> bool:
        cursor = self._best
        while True:
            if cursor == key_hash:
                return True
            parent = self._parents.get(cursor)
            if parent is None:
                return False
            cursor = parent

    def burial_depth(self, key_hash: bytes) -> int:
        """Key blocks on the best chain above ``key_hash`` (−1 if off-chain)."""
        if key_hash not in self._headers or not self._on_best_chain(key_hash):
            return -1
        return self._height[self._best] - self._height[key_hash]

    # -- verification -----------------------------------------------------------

    def verify(self, proof: InclusionProof, min_key_depth: int = 1) -> bool:
        """Check an inclusion proof against the known header chain.

        Verifies (1) the Merkle branch, (2) the leader signature under
        the epoch key taken from *our* header for the named key block,
        and (3) that the epoch is on the best chain and buried under at
        least ``min_key_depth`` newer key blocks.
        """
        header = self._headers.get(proof.key_block_hash)
        if header is None:
            return False
        if self.burial_depth(proof.key_block_hash) < min_key_depth:
            return False
        if not verify_proof(
            proof.txid, list(proof.merkle_branch), proof.micro_header.entries_root
        ):
            return False
        micro = Microblock(
            proof.micro_header,
            proof.micro_signature,
            # Payload irrelevant for signature verification.
            TxPayload(()),
        )
        return micro.verify_signature(header.leader_pubkey)
