"""The Bitcoin-NG full node: miner, leader, and relay.

Mining wins (delivered by the shared scheduler) produce key blocks; the
winner becomes leader and generates microblocks at the configured rate
until it learns of a newer key block.  Received blocks are validated,
added to the chain, and relayed through the gossip layer.  Leader
equivocations observed on the chain yield poison entries that the node
publishes when it later becomes leader itself.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..bitcoin.blocks import SyntheticPayload, TxPayload
from ..crypto.hashing import hash160
from ..crypto.keys import PrivateKey
from ..ledger.errors import LedgerError
from ..ledger.mempool import Mempool
from ..ledger.transactions import Transaction
from ..ledger.utxo import UndoRecord, UtxoSet
from ..ledger.validation import compute_fee, validate_spend
from ..metrics.collector import BlockInfo, ObservationLog
from ..net.gossip import GossipNode, RelayMode, StoredObject
from ..obs.trace import short_hash
from ..net.network import Network
from ..net.simulator import Simulator
from .blocks import (
    InvalidNGBlock,
    KeyBlock,
    Microblock,
    build_key_block,
    build_microblock,
    check_key_block,
    check_microblock_structure,
)
from .chain import NGChain, Reorg
from ..bitcoin.chain import TieBreak
from .params import NGParams
from .poison import PoisonEntry, PoisonRegistry
from .remuneration import build_ng_coinbase

KIND_KEY = "key"
KIND_MICRO = "micro"


@dataclass
class MicroblockPolicy:
    """What the leader puts into its microblocks."""

    target_bytes: int = 50_000
    synthetic: bool = True
    synthetic_tx_size: int = 476
    synthetic_fee_per_tx: int = 0

    def synthetic_tx_count(self) -> int:
        return max(0, self.target_bytes // self.synthetic_tx_size)


class NGNode(GossipNode):
    """A Bitcoin-NG miner/relay node."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        genesis: KeyBlock,
        params: NGParams,
        log: ObservationLog | None = None,
        policy: MicroblockPolicy | None = None,
        microblock_interval: float | None = None,
        tie_break: TieBreak = TieBreak.RANDOM,
        relay_mode: RelayMode = RelayMode.INV,
        require_pow: bool = False,
        check_signatures: bool = True,
        verification_seconds_per_byte: float = 0.0,
        key: PrivateKey | None = None,
        bits: int = 0x207FFFFF,
        ghost_fork_choice: bool = False,
    ) -> None:
        super().__init__(
            node_id,
            sim,
            network,
            relay_mode=relay_mode,
            verification_seconds_per_byte=verification_seconds_per_byte,
        )
        self.params = params
        self.log = log
        self.policy = policy or MicroblockPolicy()
        self.require_pow = require_pow
        self.check_signatures = check_signatures
        self.bits = bits
        # The rate the leader actually generates at; must respect the cap.
        self.microblock_interval = (
            microblock_interval
            if microblock_interval is not None
            else params.min_microblock_interval
        )
        if self.microblock_interval < params.min_microblock_interval:
            raise ValueError(
                "generation interval below the protocol minimum"
            )
        self.key = key or PrivateKey.from_seed(f"ng-node-{node_id}")
        self.pubkey_bytes = self.key.public_key().to_bytes()
        self.pubkey_hash = hash160(self.pubkey_bytes)
        if ghost_fork_choice:
            # Section 9 future work: GHOST over key blocks, enabling
            # higher key-block frequencies.
            from .ghost_ng import GhostNGChain

            self.chain: NGChain = GhostNGChain(
                genesis, params, tie_break=tie_break, rng=sim.rng
            )
        else:
            self.chain = NGChain(
                genesis, params, tie_break=tie_break, rng=sim.rng
            )
        self.utxo = UtxoSet(coinbase_maturity=params.coinbase_maturity)
        self.mempool = Mempool()
        self._undo: dict[bytes, list[UndoRecord]] = {}
        self._fees_by_micro: dict[bytes, int] = {}
        self._micro_counter = 0
        self._leading_epoch: bytes | None = None  # our key block when leader
        self.key_blocks_mined = 0
        self.microblocks_generated = 0
        self.blocks_rejected = 0
        self.poison_registry = PoisonRegistry()
        self.poisons_published: list[PoisonEntry] = []
        # Pubkey → key-block hash of known leaders (for fee attribution).
        self._known_leader_hashes: dict[bytes, bytes] = {
            genesis.header.leader_pubkey: genesis.hash
        }
        registry = network.obs.registry
        self._c_gen = registry.counter(
            "node_blocks_generated", "blocks created, by kind", ("kind",)
        )
        self._c_tip = registry.counter(
            "node_tip_changes", "main-chain tip movements across all nodes"
        )
        self._c_epochs = registry.counter(
            "ng_leader_epochs", "leader epochs started across all nodes"
        )
        if log is not None:
            log.record_tip(node_id, genesis.hash, sim.now)

    # -- key block mining ---------------------------------------------------

    def generate_key_block(self) -> KeyBlock:
        """Mine a key block on the current tip and become leader."""
        tip = self.chain.tip
        tip_record = self.chain.record(tip)
        prev_leader_hash = self._prev_leader_payout_hash(tip)
        coinbase = build_ng_coinbase(
            miner_id=self.node_id,
            timestamp=self.sim.now,
            self_pubkey_hash=self.pubkey_hash,
            prev_leader_pubkey_hash=prev_leader_hash,
            prev_epoch_fees=self._epoch_fees_behind(tip),
            params=self.params,
        )
        block = build_key_block(
            prev_hash=tip,
            timestamp=self.sim.now,
            bits=self.bits,
            leader_pubkey=self.pubkey_bytes,
            coinbase=coinbase,
        )
        self.key_blocks_mined += 1
        if self.log is not None:
            self.log.record_generation(
                BlockInfo(
                    hash=block.hash,
                    parent=tip,
                    miner=self.node_id,
                    gen_time=self.sim.now,
                    work=block.header.work,
                    kind=KIND_KEY,
                    n_tx=0,
                    size=block.size,
                )
            )
            self.log.record_arrival(self.node_id, block.hash, self.sim.now)
        self._c_gen.labels(kind=KIND_KEY).inc()
        if self._tracer is not None:
            self._tracer.emit(
                "block_gen",
                self.sim.now,
                hash=short_hash(block.hash),
                parent=short_hash(tip),
                kind=KIND_KEY,
                miner=self.node_id,
                size=block.size,
                n_tx=0,
            )
        self.announce(block.hash, KIND_KEY, block, block.size)
        self._start_leading(block)
        return block

    def _prev_leader_payout_hash(self, tip: bytes) -> bytes | None:
        """Payout hash for the leader whose epoch this key block closes."""
        latest_key = self.chain.latest_key_block(tip)
        pubkey = latest_key.block.header.leader_pubkey  # type: ignore[union-attr]
        return hash160(pubkey)

    def _epoch_fees_behind(self, tip: bytes) -> int:
        """Total entry fees in the epoch ending at ``tip``."""
        fees = 0
        cursor = self.chain.record(tip)
        while not cursor.is_key:
            micro = cursor.block
            assert isinstance(micro, Microblock)
            fees += self._microblock_fees(micro)
            cursor = self.chain.record(cursor.parent_hash)
        return fees

    def _microblock_fees(self, micro: Microblock) -> int:
        if isinstance(micro.payload, SyntheticPayload):
            return micro.n_tx * self.policy.synthetic_fee_per_tx
        # Real fees need UTXO context at connect height; the node records
        # them as each microblock connects (see _connect_block).
        return self._fees_by_micro.get(micro.hash, 0)

    # -- leadership -----------------------------------------------------------

    def _start_leading(self, key_block: KeyBlock) -> None:
        self._leading_epoch = key_block.hash
        self._c_epochs.inc()
        if self._tracer is not None:
            self._tracer.emit(
                "epoch_start",
                self.sim.now,
                leader=self.node_id,
                key_block=short_hash(key_block.hash),
            )
        self._schedule_microblock(
            at=key_block.header.timestamp + self.microblock_interval
        )

    def _schedule_microblock(self, at: float) -> None:
        when = max(at, self.sim.now)
        self.sim.schedule_at(when, self._maybe_generate_microblock)

    def is_leader(self) -> bool:
        """True while our key block heads the epoch at the tip."""
        if self._leading_epoch is None:
            return False
        latest_key = self.chain.latest_key_block()
        return latest_key.hash == self._leading_epoch

    def abdicate(self) -> None:
        """Drop leadership immediately without a successor key block.

        Models the paper's crashed leader: "a benign leader that
        crashes during his epoch of leadership will publish no
        microblocks".  The pending generation timer finds
        ``_leading_epoch`` cleared and dies without rescheduling.
        """
        if self._leading_epoch is None:
            return
        if self._tracer is not None:
            self._tracer.emit(
                "epoch_end",
                self.sim.now,
                leader=self.node_id,
                key_block=short_hash(self._leading_epoch),
            )
        self._leading_epoch = None

    def _maybe_generate_microblock(self) -> None:
        if not self.is_leader():
            if self._leading_epoch is not None and self._tracer is not None:
                self._tracer.emit(
                    "epoch_end",
                    self.sim.now,
                    leader=self.node_id,
                    key_block=short_hash(self._leading_epoch),
                )
            self._leading_epoch = None
            return
        tip_record = self.chain.tip_record
        earliest = tip_record.timestamp + self.params.min_microblock_interval
        if self.sim.now < earliest - 1e-9:
            self._schedule_microblock(at=earliest)
            return
        self._generate_microblock()
        self._schedule_microblock(at=self.sim.now + self.microblock_interval)

    def _generate_microblock(self) -> Microblock:
        tip = self.chain.tip
        if self.policy.synthetic:
            payload: TxPayload | SyntheticPayload = SyntheticPayload(
                n_tx=self.policy.synthetic_tx_count(),
                tx_size=self.policy.synthetic_tx_size,
                salt=struct.pack("<iI", self.node_id, self._micro_counter) + tip,
            )
        else:
            selected = self.mempool.select(self.policy.target_bytes)
            payload = TxPayload(tuple(selected))
        self._micro_counter += 1
        micro = build_microblock(
            prev_hash=tip,
            timestamp=self.sim.now,
            payload=payload,
            leader_key=self.key,
        )
        self.microblocks_generated += 1
        if self.log is not None:
            self.log.record_generation(
                BlockInfo(
                    hash=micro.hash,
                    parent=tip,
                    miner=self.node_id,
                    gen_time=self.sim.now,
                    work=0,
                    kind=KIND_MICRO,
                    n_tx=micro.n_tx,
                    size=micro.size,
                )
            )
            self.log.record_arrival(self.node_id, micro.hash, self.sim.now)
        self._c_gen.labels(kind=KIND_MICRO).inc()
        if self._tracer is not None:
            self._tracer.emit(
                "block_gen",
                self.sim.now,
                hash=short_hash(micro.hash),
                parent=short_hash(tip),
                kind=KIND_MICRO,
                miner=self.node_id,
                size=micro.size,
                n_tx=micro.n_tx,
            )
        self.announce(micro.hash, KIND_MICRO, micro, micro.size)
        self._publish_poisons()
        return micro

    def _publish_poisons(self) -> None:
        """As leader, claim any outstanding fraud proofs (Section 4.5)."""
        placement_height = self.chain.tip_record.key_height
        for proof in self.chain.equivocations():
            if proof.offender_pubkey in self.poison_registry:
                continue
            poison = PoisonEntry(proof=proof, reporter_miner=self.node_id)
            try:
                if self.poison_registry.register(
                    self.chain, poison, placement_height
                ):
                    self.poisons_published.append(poison)
            except Exception:
                continue

    # -- transactions ---------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> None:
        """Accept a locally submitted transaction and gossip it."""
        height = self.chain.tip_record.height + 1
        fee = validate_spend(
            tx, self.utxo, height, check_signatures=self.check_signatures
        )
        self.mempool.add(tx, fee)
        self.announce(tx.txid, "tx", tx, tx.size)

    def _accept_relayed_transaction(self, tx: Transaction) -> None:
        """Admit a gossiped transaction if it validates; drop otherwise."""
        height = self.chain.tip_record.height + 1
        try:
            fee = validate_spend(
                tx, self.utxo, height, check_signatures=self.check_signatures
            )
            self.mempool.add(tx, fee)
        except LedgerError:
            return

    # -- delivery ---------------------------------------------------------------

    def deliver(self, obj: StoredObject, sender: int | None):
        if obj.kind == KIND_KEY:
            return self._deliver_key_block(obj.data, sender)
        if obj.kind == KIND_MICRO:
            return self._deliver_microblock(obj.data, sender)
        if obj.kind == "tx":
            if sender is not None:
                self._accept_relayed_transaction(obj.data)
            return None
        return False  # unknown object kinds are not relayed

    def _deliver_key_block(self, block: KeyBlock, sender: int | None):
        if sender is not None:
            if self.log is not None:
                self.log.record_arrival(self.node_id, block.hash, self.sim.now)
            if self._tracer is not None:
                self._tracer.emit(
                    "block_arrival",
                    self.sim.now,
                    node=self.node_id,
                    hash=short_hash(block.hash),
                    kind=KIND_KEY,
                )
        if sender is not None:
            try:
                check_key_block(block, require_pow=self.require_pow)
            except InvalidNGBlock:
                self.blocks_rejected += 1
                return False
        self._known_leader_hashes[block.header.leader_pubkey] = block.hash
        return self._add_and_apply(block, sender)

    def _deliver_microblock(self, micro: Microblock, sender: int | None):
        if sender is not None:
            if self.log is not None:
                self.log.record_arrival(self.node_id, micro.hash, self.sim.now)
            if self._tracer is not None:
                self._tracer.emit(
                    "block_arrival",
                    self.sim.now,
                    node=self.node_id,
                    hash=short_hash(micro.hash),
                    kind=KIND_MICRO,
                )
        if sender is not None:
            try:
                check_microblock_structure(
                    micro, self.params.max_microblock_bytes
                )
            except InvalidNGBlock:
                self.blocks_rejected += 1
                return False
        return self._add_and_apply(micro, sender)

    def _add_and_apply(
        self, block: KeyBlock | Microblock, sender: int | None = None
    ):
        try:
            reorgs = self.chain.add_block(
                block,
                arrival_time=self.sim.now,
                local_time=self.sim.now,
                check_signature=self.check_signatures,
            )
        except InvalidNGBlock:
            self.blocks_rejected += 1
            return False
        parent_hash = block.header.prev_hash
        if (
            sender is not None
            and block.hash not in self.chain
            and parent_hash not in self.chain
        ):
            # Orphan: backfill the missing ancestor from the sender.
            self.request_object(sender, parent_hash)
        for reorg in reorgs:
            self._apply_reorg(reorg)
        if reorgs:
            if self.log is not None:
                self.log.record_tip(self.node_id, self.chain.tip, self.sim.now)
            self._c_tip.inc()
            if self._tracer is not None:
                self._tracer.emit(
                    "tip_change",
                    self.sim.now,
                    node=self.node_id,
                    tip=short_hash(self.chain.tip),
                    height=self.chain.tip_record.height,
                )

    # -- state management ----------------------------------------------------

    def _apply_reorg(self, reorg: Reorg) -> None:
        for block_hash in reorg.disconnected:
            self._disconnect_block(block_hash)
        for block_hash in reorg.connected:
            self._connect_block(block_hash)

    def _connect_block(self, block_hash: bytes) -> None:
        record = self.chain.record(block_hash)
        block = record.block
        height = record.height
        undo_records: list[UndoRecord] = []
        if isinstance(block, KeyBlock):
            undo_records.append(self.utxo.apply(block.coinbase, height))
        elif isinstance(block.payload, TxPayload):
            fees = 0
            for tx in block.payload.transactions:
                try:
                    fees += validate_spend(
                        tx,
                        self.utxo,
                        height,
                        check_signatures=self.check_signatures,
                    )
                except LedgerError:
                    for done in reversed(undo_records):
                        self.utxo.undo(done)
                    raise InvalidNGBlock(
                        f"microblock {block_hash.hex()[:8]} has invalid spend"
                    )
                undo_records.append(self.utxo.apply(tx, height))
                self.mempool.evict_conflicts(tx)
            self._fees_by_micro[block_hash] = fees
        if undo_records:
            self._undo[block_hash] = undo_records

    def _disconnect_block(self, block_hash: bytes) -> None:
        undo_records = self._undo.pop(block_hash, None)
        if undo_records is None:
            return
        record = self.chain.record(block_hash)
        block = record.block
        for undo in reversed(undo_records):
            self.utxo.undo(undo)
        if isinstance(block, Microblock) and isinstance(block.payload, TxPayload):
            for tx in block.payload.transactions:
                try:
                    fee = compute_fee(tx, self.utxo, record.height)
                    self.mempool.add(tx, fee)
                except LedgerError:
                    continue

    # -- introspection ------------------------------------------------------

    def best_object_id(self) -> bytes | None:
        return self.chain.tip

    @property
    def tip(self) -> bytes:
        return self.chain.tip

    def balance_of(self, pubkey_hash: bytes) -> int:
        return self.utxo.balance(pubkey_hash)
