"""Bitcoin-NG core: key blocks, microblocks, epochs, incentives, poison.

This package is the paper's primary contribution.  The protocol
decouples leader election (proof-of-work key blocks) from transaction
serialization (leader-signed microblocks), keeping Bitcoin's trust model
while removing the throughput/latency coupling of its block parameters.
"""

from .blocks import (
    KEY_HEADER_SIZE,
    MICRO_HEADER_SIZE,
    InvalidNGBlock,
    KeyBlock,
    KeyBlockHeader,
    Microblock,
    MicroblockHeader,
    build_key_block,
    build_microblock,
    check_key_block,
    check_microblock_structure,
    mine_key_block,
)
from .chain import FraudProof, NGChain, NGRecord
from .genesis import GENESIS_LEADER_KEY, make_ng_genesis, seed_genesis_coins
from .ghost_ng import GhostNGChain
from .spv import InclusionProof, LightClient, SpvError, build_inclusion_proof
from .incentives import (
    BYZANTINE_BOUND,
    OPTIMAL_NETWORK_BOUND,
    IncentiveWindow,
    critical_alpha,
    extension_deviation_revenue,
    extension_honest_revenue,
    incentive_window,
    inclusion_deviation_revenue,
    inclusion_honest_revenue,
    is_incentive_compatible,
    max_leader_fraction,
    min_leader_fraction,
)
from .node import KIND_KEY, KIND_MICRO, MicroblockPolicy, NGNode
from .params import PAPER_EVALUATION_PARAMS, NGParams
from .poison import InvalidPoison, PoisonEntry, PoisonRegistry, validate_poison
from .remuneration import (
    EpochReward,
    RewardLedger,
    build_ng_coinbase,
    split_fee,
)

__all__ = [
    "BYZANTINE_BOUND",
    "GENESIS_LEADER_KEY",
    "KEY_HEADER_SIZE",
    "KIND_KEY",
    "KIND_MICRO",
    "MICRO_HEADER_SIZE",
    "OPTIMAL_NETWORK_BOUND",
    "PAPER_EVALUATION_PARAMS",
    "EpochReward",
    "FraudProof",
    "GhostNGChain",
    "IncentiveWindow",
    "InclusionProof",
    "LightClient",
    "SpvError",
    "build_inclusion_proof",
    "InvalidNGBlock",
    "InvalidPoison",
    "KeyBlock",
    "KeyBlockHeader",
    "Microblock",
    "MicroblockHeader",
    "MicroblockPolicy",
    "NGChain",
    "NGNode",
    "NGParams",
    "NGRecord",
    "PoisonEntry",
    "PoisonRegistry",
    "RewardLedger",
    "build_key_block",
    "build_microblock",
    "build_ng_coinbase",
    "check_key_block",
    "check_microblock_structure",
    "critical_alpha",
    "extension_deviation_revenue",
    "extension_honest_revenue",
    "incentive_window",
    "inclusion_deviation_revenue",
    "inclusion_honest_revenue",
    "is_incentive_compatible",
    "make_ng_genesis",
    "max_leader_fraction",
    "mine_key_block",
    "min_leader_fraction",
    "seed_genesis_coins",
    "split_fee",
    "validate_poison",
]
