"""Bitcoin-NG block types: key blocks and microblocks (Section 4).

A **key block** is a Bitcoin-style proof-of-work block that elects its
miner leader; "unlike Bitcoin, a key block contains a public key that
will be used in the subsequent microblocks".

A **microblock** "contains ledger entries and a header.  The header
contains the reference to the previous block, the current GMT time, a
cryptographic hash of its ledger entries, and a cryptographic signature
of the header.  The signature uses the private key that matches the
public key in the latest key block in the chain."  Microblocks carry no
proof of work and therefore no chain weight.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import cached_property

from ..bitcoin.blocks import HEADER_SIZE, SyntheticPayload, TxPayload
from ..crypto.hashing import sha256d, tagged_hash
from ..crypto.keys import PrivateKey, PublicKey
from ..crypto.pow import meets_target, target_from_compact, work_from_target
from ..ledger.transactions import Transaction

# A compressed public key adds 33 bytes to the Bitcoin header.
KEY_HEADER_SIZE = HEADER_SIZE + 33

# Microblock header: 32 prev + 8 time + 32 root + 64 signature.
MICRO_HEADER_SIZE = 136


class InvalidNGBlock(Exception):
    """Raised when a key block or microblock fails validity checks."""


@dataclass(frozen=True)
class KeyBlockHeader:
    """Proof-of-work header carrying the epoch public key."""

    prev_hash: bytes
    payload_root: bytes
    timestamp: float
    bits: int
    nonce: int
    leader_pubkey: bytes  # 33-byte compressed secp256k1 point

    def serialize(self) -> bytes:
        return (
            self.prev_hash
            + self.payload_root
            + struct.pack("<dIQ", self.timestamp, self.bits, self.nonce)
            + self.leader_pubkey
        )

    @cached_property
    def hash(self) -> bytes:
        return tagged_hash("repro/ng-keyblock", self.serialize())

    @property
    def target(self) -> int:
        return target_from_compact(self.bits)

    @property
    def work(self) -> int:
        return work_from_target(self.target)

    def meets_pow(self) -> bool:
        return meets_target(self.hash, self.target)


@dataclass(frozen=True)
class KeyBlock:
    """A leader-election block: header + coinbase paying the fee split."""

    header: KeyBlockHeader
    coinbase: Transaction

    @property
    def hash(self) -> bytes:
        return self.header.hash

    @property
    def size(self) -> int:
        """Key blocks are small — header plus coinbase only."""
        return KEY_HEADER_SIZE + self.coinbase.size

    @property
    def miner_hint(self) -> int:
        tag = self.coinbase.padding
        if len(tag) < 4:
            return -1
        return struct.unpack("<i", tag[:4])[0]

    def __repr__(self) -> str:
        return (
            f"<KeyBlock {self.hash.hex()[:8]} "
            f"prev={self.header.prev_hash.hex()[:8]}>"
        )


@dataclass(frozen=True)
class MicroblockHeader:
    """The signed microblock header."""

    prev_hash: bytes
    timestamp: float
    entries_root: bytes

    def signing_payload(self) -> bytes:
        """The bytes the leader signs."""
        body = self.prev_hash + struct.pack("<d", self.timestamp) + self.entries_root
        return tagged_hash("repro/ng-microblock-sig", body)

    @cached_property
    def hash(self) -> bytes:
        body = self.prev_hash + struct.pack("<d", self.timestamp) + self.entries_root
        return tagged_hash("repro/ng-microblock", body)


@dataclass(frozen=True)
class Microblock:
    """Ledger entries signed by the epoch leader; carries no weight."""

    header: MicroblockHeader
    signature: bytes
    payload: TxPayload | SyntheticPayload

    @property
    def hash(self) -> bytes:
        return self.header.hash

    @property
    def size(self) -> int:
        return MICRO_HEADER_SIZE + self.payload.payload_bytes

    @property
    def n_tx(self) -> int:
        return self.payload.n_tx

    def verify_signature(self, leader_pubkey: bytes) -> bool:
        """Check the header signature under the epoch's public key."""
        try:
            pubkey = PublicKey.from_bytes(leader_pubkey)
        except Exception:
            return False
        return pubkey.verify(self.header.signing_payload(), self.signature)

    def __repr__(self) -> str:
        return (
            f"<Microblock {self.hash.hex()[:8]} "
            f"prev={self.header.prev_hash.hex()[:8]} n_tx={self.n_tx}>"
        )


def build_key_block(
    prev_hash: bytes,
    timestamp: float,
    bits: int,
    leader_pubkey: bytes,
    coinbase: Transaction,
    nonce: int = 0,
) -> KeyBlock:
    """Assemble a key block (unmined; nonce as given)."""
    if len(leader_pubkey) != 33:
        raise InvalidNGBlock("leader public key must be 33 bytes compressed")
    header = KeyBlockHeader(
        prev_hash=prev_hash,
        payload_root=sha256d(coinbase.serialize()),
        timestamp=timestamp,
        bits=bits,
        nonce=nonce,
        leader_pubkey=leader_pubkey,
    )
    return KeyBlock(header, coinbase)


def build_microblock(
    prev_hash: bytes,
    timestamp: float,
    payload: TxPayload | SyntheticPayload,
    leader_key: PrivateKey,
) -> Microblock:
    """Assemble and sign a microblock with the leader's private key."""
    header = MicroblockHeader(prev_hash, timestamp, payload.root())
    signature = leader_key.sign(header.signing_payload())
    return Microblock(header, signature, payload)


def mine_key_block(block: KeyBlock, max_iterations: int = 10_000_000) -> KeyBlock:
    """Grind nonces until the key block header meets its target."""
    header = block.header
    for nonce in range(max_iterations):
        candidate = KeyBlockHeader(
            header.prev_hash,
            header.payload_root,
            header.timestamp,
            header.bits,
            nonce,
            header.leader_pubkey,
        )
        if candidate.meets_pow():
            return KeyBlock(candidate, block.coinbase)
    raise InvalidNGBlock(f"no valid nonce in {max_iterations} iterations")


def check_key_block(block: KeyBlock, require_pow: bool = True) -> None:
    """Contextless key block validity."""
    if len(block.header.leader_pubkey) != 33:
        raise InvalidNGBlock("malformed leader public key")
    if block.header.payload_root != sha256d(block.coinbase.serialize()):
        raise InvalidNGBlock("coinbase commitment mismatch")
    if not block.coinbase.is_coinbase:
        raise InvalidNGBlock("key block payload must be a coinbase")
    if require_pow and not block.header.meets_pow():
        raise InvalidNGBlock("key block does not meet its target")
    # Reject an obviously un-parsable key so later signature checks are
    # meaningful.
    try:
        PublicKey.from_bytes(block.header.leader_pubkey)
    except Exception as exc:
        raise InvalidNGBlock(f"leader public key undecodable: {exc}") from exc


def check_microblock_structure(
    micro: Microblock, max_bytes: int
) -> None:
    """Contextless microblock validity (signature needs chain context)."""
    if micro.header.entries_root != micro.payload.root():
        raise InvalidNGBlock("entries root does not match payload")
    if micro.size > max_bytes:
        raise InvalidNGBlock(
            f"microblock size {micro.size} exceeds cap {max_bytes}"
        )
