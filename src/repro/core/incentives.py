"""Closed-form incentive analysis of the fee split (Section 5.1).

The paper bounds the leader's fee fraction ``r`` by two deviation
strategies for an attacker controlling a fraction ``alpha`` of mining
power:

* **Transaction inclusion** — a leader tries to earn 100% of a fee by
  mining secretly on an unpublished microblock::

      alpha * 1 + (1 - alpha) * alpha * (1 - r)  <  r
      →  r  >  1 - (1 - alpha) / (1 + alpha - alpha²)

* **Longest chain extension** — a miner skips a fee-bearing microblock
  and re-places the transaction in its own::

      r + alpha * (1 - r)  <  1 - r
      →  r  <  (1 - alpha) / (2 - alpha)

At alpha = 1/4 this yields 37% < r < 43%, so the protocol's 40% is
safe.  Under an optimal (rushing-free) network the relevant alpha is
1/3 and the window is empty — Bitcoin-NG is *less* resilient than
Bitcoin there, as the paper concedes.
"""

from __future__ import annotations

from dataclasses import dataclass

# Bound on Byzantine mining power from the model (Section 2).
BYZANTINE_BOUND = 0.25

# Selfish-mining-free bound under an optimal network (Section 5.1).
OPTIMAL_NETWORK_BOUND = 1.0 / 3.0


def _check_alpha(alpha: float) -> None:
    if not 0 <= alpha < 1:
        raise ValueError(f"attacker fraction must be in [0, 1), got {alpha}")


def _check_fraction(r: float) -> None:
    if not 0 <= r <= 1:
        raise ValueError(f"fee fraction must be in [0, 1], got {r}")


def min_leader_fraction(alpha: float) -> float:
    """Lower bound on r from the transaction-inclusion deviation."""
    _check_alpha(alpha)
    return 1.0 - (1.0 - alpha) / (1.0 + alpha - alpha * alpha)


def max_leader_fraction(alpha: float) -> float:
    """Upper bound on r from the longest-chain-extension deviation."""
    _check_alpha(alpha)
    return (1.0 - alpha) / (2.0 - alpha)


def inclusion_deviation_revenue(alpha: float, r: float) -> float:
    """Expected fee share of the secret-microblock strategy.

    "First, the leader creates a microblock with the transaction, but
    does not publish it. ... If the leader succeeds in mining the
    subsequent key block, he obtains 100% of the transaction fees.
    Otherwise, he waits until the transaction is placed in a microblock
    by another miner and tries to mine on top of it."
    """
    _check_alpha(alpha)
    _check_fraction(r)
    return alpha * 1.0 + (1.0 - alpha) * alpha * (1.0 - r)


def inclusion_honest_revenue(r: float) -> float:
    """Fee share of a leader who publishes the microblock as prescribed."""
    _check_fraction(r)
    return r


def extension_deviation_revenue(alpha: float, r: float) -> float:
    """Expected fee share of mining *around* a fee-bearing microblock."""
    _check_alpha(alpha)
    _check_fraction(r)
    return r + alpha * (1.0 - r)


def extension_honest_revenue(r: float) -> float:
    """Fee share of a miner extending the transaction's microblock."""
    _check_fraction(r)
    return 1.0 - r


@dataclass(frozen=True)
class IncentiveWindow:
    """The feasible range for the leader's fee fraction at a given alpha."""

    alpha: float
    lower: float
    upper: float

    @property
    def feasible(self) -> bool:
        return self.lower < self.upper

    def contains(self, r: float) -> bool:
        return self.lower < r < self.upper

    @property
    def width(self) -> float:
        return max(0.0, self.upper - self.lower)


def incentive_window(alpha: float) -> IncentiveWindow:
    """Both bounds together; the paper's headline numbers come from
    ``incentive_window(0.25)`` ≈ (0.368, 0.429)."""
    return IncentiveWindow(
        alpha=alpha,
        lower=min_leader_fraction(alpha),
        upper=max_leader_fraction(alpha),
    )


def is_incentive_compatible(alpha: float, r: float) -> bool:
    """True when neither deviation beats honest behaviour at (alpha, r)."""
    return (
        inclusion_deviation_revenue(alpha, r) < inclusion_honest_revenue(r)
        and extension_deviation_revenue(alpha, r) < extension_honest_revenue(r)
    )


def critical_alpha(r: float, precision: float = 1e-9) -> float:
    """Largest attacker fraction at which fee fraction ``r`` stays safe.

    Binary search over the two closed-form constraints; at the paper's
    r = 0.40 this lands a little above 1/4, which is why the Byzantine
    bound of the model is exactly where the incentives stop holding.
    """
    _check_fraction(r)
    low, high = 0.0, 0.999999
    if not is_incentive_compatible(low, r):
        return 0.0
    while high - low > precision:
        mid = (low + high) / 2
        if is_incentive_compatible(mid, r):
            low = mid
        else:
            high = mid
    return low
