"""Bitcoin-NG protocol parameters.

Defaults follow the paper: key blocks every 100 seconds in the
evaluation (Section 8.1), microblocks at up to one per 10 seconds,
a 40%/60% fee split between the current and next leader (Section 4.4),
a 5% poison bounty (Section 4.5), and 100-block coinbase maturity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ledger.transactions import COIN


@dataclass(frozen=True)
class NGParams:
    """All tunable constants of a Bitcoin-NG deployment."""

    # Leader election: average seconds between key blocks (the paper's
    # evaluation keeps "key block generation at one every 100 seconds").
    key_block_interval: float = 100.0

    # Maximum microblock rate: "the node is allowed to generate
    # microblocks at a set rate smaller than a predefined maximum".
    min_microblock_interval: float = 10.0

    # "The size of microblocks is bounded by a predefined maximum."
    max_microblock_bytes: int = 100_000

    # Fee split: "the current leader earns 40% of the fee, and the
    # subsequent leader earns 60%".  Section 5 derives 37% < r < 43%.
    leader_fee_fraction: float = 0.40

    # Poison transactions grant "a fraction of that compensation,
    # e.g., 5%" to the reporting leader.
    poison_bounty_fraction: float = 0.05

    # "Each key block entitles its generator a set amount."
    key_block_reward: int = 25 * COIN

    # "This transaction can only be spent after a maturity period of
    # 100 blocks."  Counted in key blocks.
    coinbase_maturity: int = 100

    # Allowed clock skew when judging "timestamp in the future".
    max_future_drift: float = 60.0

    def __post_init__(self) -> None:
        if self.key_block_interval <= 0:
            raise ValueError("key block interval must be positive")
        if self.min_microblock_interval < 0:
            raise ValueError("microblock interval cannot be negative")
        if not 0 <= self.leader_fee_fraction <= 1:
            raise ValueError("leader fee fraction must be in [0, 1]")
        if not 0 <= self.poison_bounty_fraction <= 1:
            raise ValueError("poison bounty fraction must be in [0, 1]")
        if self.max_microblock_bytes <= 0:
            raise ValueError("microblock size cap must be positive")
        if self.coinbase_maturity < 0:
            raise ValueError("maturity cannot be negative")

    @property
    def key_block_rate(self) -> float:
        """Key blocks per second."""
        return 1.0 / self.key_block_interval

    @property
    def microblock_rate(self) -> float:
        """Maximum microblocks per second."""
        if self.min_microblock_interval == 0:
            raise ValueError("no rate cap when the minimum interval is zero")
        return 1.0 / self.min_microblock_interval


# The configuration the paper's frequency experiments start from.
PAPER_EVALUATION_PARAMS = NGParams(
    key_block_interval=100.0,
    min_microblock_interval=10.0,
)
