"""Genesis construction for Bitcoin-NG networks.

"The first block, dubbed the genesis block, is defined as part of the
protocol."  For Bitcoin-NG the genesis is a key block: it seeds the
first epoch's leader key (a well-known throwaway key — nobody leads
until the first real key block) and optionally endows addresses with
spendable coins for library-mode examples and tests.
"""

from __future__ import annotations

from ..crypto.hashing import tagged_hash
from ..crypto.keys import PrivateKey
from ..ledger.transactions import OutPoint, TxOutput, make_coinbase
from ..ledger.utxo import UtxoSet
from .blocks import KeyBlock, build_key_block

# Deterministic, publicly known genesis leader key.
GENESIS_LEADER_KEY = PrivateKey.from_seed("repro/ng-genesis-leader")


def make_ng_genesis(
    timestamp: float = 0.0,
    bits: int = 0x207FFFFF,
    leader_key: PrivateKey | None = None,
) -> KeyBlock:
    """Build the protocol-defined first key block."""
    key = leader_key or GENESIS_LEADER_KEY
    coinbase = make_coinbase([(bytes(20), 0)], tag=b"ng-genesis")
    return build_key_block(
        prev_hash=bytes(32),
        timestamp=timestamp,
        bits=bits,
        leader_pubkey=key.public_key().to_bytes(),
        coinbase=coinbase,
    )


def seed_genesis_coins(
    utxo: UtxoSet, allocations: list[tuple[bytes, int]], salt: bytes = b"alloc"
) -> list[OutPoint]:
    """Endow addresses with genesis coins, returning their outpoints.

    Mirrors how the paper's testbed "initialize[d] the blockchain with
    artificial transactions" before each run.
    """
    outpoints = []
    for index, (pubkey_hash, value) in enumerate(allocations):
        txid = tagged_hash("repro/genesis-allocation", salt + bytes([index % 256, index // 256 % 256]))
        outpoint = OutPoint(txid, index)
        utxo.credit(TxOutput(value, pubkey_hash), outpoint, height=0)
        outpoints.append(outpoint)
    return outpoints
