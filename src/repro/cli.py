"""Command-line interface: run experiments without writing code.

Examples::

    python -m repro run --protocol bitcoin-ng --nodes 100 \
        --block-rate 0.1 --block-size 20000
    python -m repro sweep frequency --nodes 60
    python -m repro sweep size --nodes 60 --seeds 0 1
    python -m repro propagation --nodes 60
    python -m repro incentives --alpha 0.25
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    ExperimentConfig,
    Protocol,
    format_propagation_table,
    format_sweep_table,
    frequency_sweep,
    propagation_study,
    run_experiment,
    size_sweep,
)

_PROTOCOLS = {protocol.value: protocol for protocol in Protocol}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=100, help="network size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--blocks", type=int, default=60, help="target blocks per run"
    )


def _base_config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n_nodes=args.nodes,
        seed=args.seed,
        target_blocks=args.blocks,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    config = _base_config(args).with_(
        protocol=_PROTOCOLS[args.protocol],
        block_rate=args.block_rate,
        block_size_bytes=args.block_size,
        key_block_rate=args.key_block_rate,
    )
    if args.profile:
        from .profiling import profile_run

        print(profile_run(config, top=args.profile))
        return 0
    import time

    start = time.perf_counter()
    result, log = run_experiment(config)
    wall = max(time.perf_counter() - start, 1e-9)
    print(f"protocol:                {args.protocol}")
    print(f"blocks generated:        {result.blocks_generated}")
    print(f"main chain length:       {result.main_chain_length}")
    for name, value in sorted(result.as_row().items()):
        print(f"{name + ':':<25}{value:.4f}")
    print(f"events processed:        {result.events_processed}")
    print(f"events/sec:              {result.events_processed / wall:,.0f}")
    if args.save_trace:
        from .metrics import save_trace

        save_trace(log, args.save_trace)
        print(f"trace saved:             {args.save_trace}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import sweep_chart

    base = _base_config(args)
    seeds = tuple(args.seeds)
    if args.axis == "frequency":
        sweep = frequency_sweep(base, seeds=seeds, jobs=args.jobs)
    else:
        sweep = size_sweep(base, seeds=seeds, jobs=args.jobs)
    print(format_sweep_table(sweep))
    if args.chart:
        for metric in args.chart:
            print()
            print(sweep_chart(sweep, metric))
    return 0


def _cmd_propagation(args: argparse.Namespace) -> int:
    points = propagation_study(_base_config(args))
    print(format_propagation_table(points))
    return 0


def _cmd_incentives(args: argparse.Namespace) -> int:
    from .core.incentives import critical_alpha, incentive_window

    window = incentive_window(args.alpha)
    print(f"attacker fraction alpha: {args.alpha}")
    print(f"lower bound on r:        {window.lower:.4f}")
    print(f"upper bound on r:        {window.upper:.4f}")
    print(f"feasible:                {window.feasible}")
    print(f"paper's r = 0.40 safe:   {window.contains(0.40)}")
    print(f"critical alpha @ r=0.40: {critical_alpha(0.40):.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bitcoin-NG reproduction: simulations and analysis",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run one experiment")
    _add_common(run_parser)
    run_parser.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOLS),
        default="bitcoin-ng",
    )
    run_parser.add_argument("--block-rate", type=float, default=0.1)
    run_parser.add_argument("--block-size", type=int, default=20_000)
    run_parser.add_argument("--key-block-rate", type=float, default=0.01)
    run_parser.add_argument(
        "--save-trace",
        metavar="PATH",
        help="export the execution's observation log as JSON",
    )
    run_parser.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="TOP",
        help="run under cProfile and print the TOP hottest functions",
    )
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = commands.add_parser(
        "sweep", help="run a Figure 8 parameter sweep"
    )
    sweep_parser.add_argument("axis", choices=("frequency", "size"))
    _add_common(sweep_parser)
    sweep_parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0], help="seeds to average"
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep cells "
        "(default: REPRO_JOBS env or CPU count; 1 = serial)",
    )
    sweep_parser.add_argument(
        "--chart",
        nargs="+",
        metavar="METRIC",
        help="also render ASCII charts for these metrics",
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    prop_parser = commands.add_parser(
        "propagation", help="run the Figure 7 propagation study"
    )
    _add_common(prop_parser)
    prop_parser.set_defaults(handler=_cmd_propagation)

    inc_parser = commands.add_parser(
        "incentives", help="print the Section 5 fee-split window"
    )
    inc_parser.add_argument("--alpha", type=float, default=0.25)
    inc_parser.set_defaults(handler=_cmd_incentives)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
