"""Command-line interface: run experiments without writing code.

Examples::

    python -m repro run --protocol bitcoin-ng --nodes 100 \
        --block-rate 0.1 --block-size 20000
    python -m repro run --protocol bitcoin-ng --obs out/ --json
    python -m repro sweep frequency --nodes 60
    python -m repro sweep size --nodes 60 --seeds 0 1
    python -m repro propagation --nodes 60
    python -m repro incentives --alpha 0.25
    python -m repro trace summarize out/
    python -m repro trace timeline out/ --buckets 30
    python -m repro trace toptalkers out/ --top 10
    python -m repro lint src/ --json
    python -m repro lint --explain NG301
    python -m repro run --protocol bitcoin-ng --check
    python -m repro run --protocol bitcoin-ng --check=full
    python -m repro sweep frequency --check=audit
    python -m repro check diverge --protocol bitcoin-ng --nodes 30 --check
    python -m repro check record --out run.digests.jsonl
    python -m repro prof run --protocol bitcoin-ng --nodes 1000 --out prof/
    python -m repro prof report prof/bitcoin-ng-f0.2-b8000-seed0.prof.json
    python -m repro prof diff before.prof.json after.prof.json
    python -m repro sweep frequency --nodes 60 --progress
"""

from __future__ import annotations

import argparse
import os
import sys

from .experiments import (
    ExperimentConfig,
    Protocol,
    RunInstrumentation,
    format_propagation_table,
    format_sweep_table,
    frequency_sweep,
    propagation_study,
    resolve_check_mode,
    run_experiment,
    size_sweep,
)

_PROTOCOLS = {protocol.value: protocol for protocol in Protocol}

_CHECK_MODES = ("incremental", "full", "audit")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=100, help="network size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--blocks", type=int, default=60, help="target blocks per run"
    )


def _check_mode_requested(args: argparse.Namespace) -> str | None:
    """The requested check mode: --check[=MODE], or REPRO_CHECK.

    This is the single place the environment toggle is read (the CLI is
    a config entry point; see lint rule NG202) — it flows everywhere
    else as ``config.check``/``config.check_mode``.  ``REPRO_CHECK``
    accepts a mode name (``incremental``/``full``/``audit``) or any
    other truthy value for the default incremental mode.
    """
    return resolve_check_mode(
        getattr(args, "check", None), os.environ.get("REPRO_CHECK", "")
    )


def _instrumentation(args: argparse.Namespace) -> RunInstrumentation:
    """Parse the shared --check/--obs/--scenario surface once."""
    return RunInstrumentation.from_args(
        args, check_mode=_check_mode_requested(args)
    )


def _base_config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n_nodes=args.nodes,
        seed=args.seed,
        target_blocks=args.blocks,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    config = _instrumentation(args).apply(_base_config(args)).with_(
        protocol=_PROTOCOLS[args.protocol],
        block_rate=args.block_rate,
        block_size_bytes=args.block_size,
        key_block_rate=args.key_block_rate,
    )
    if args.key_blocks is not None:
        config = config.with_(target_key_blocks=args.key_blocks)
    if args.profile:
        from .profiling import profile_run

        print(profile_run(config, top=args.profile))
        return 0
    result, log = run_experiment(config)
    # Event rate over the simulate phase only: topology construction is
    # O(n^2) setup work and would dilute the number the dispatch loop
    # actually achieves.
    simulate_wall = max(result.wall_simulate_seconds, 1e-9)
    events_per_sec = result.events_processed / simulate_wall
    if args.json:
        import json

        payload: dict = {
            "protocol": args.protocol,
            "config": {
                "n_nodes": config.n_nodes,
                "seed": config.seed,
                "target_blocks": config.target_blocks,
                "target_key_blocks": config.target_key_blocks,
                "block_rate": config.block_rate,
                "block_size_bytes": config.block_size_bytes,
                "key_block_rate": config.key_block_rate,
            },
            "metrics": result.as_row(),
            "blocks_generated": result.blocks_generated,
            "main_chain_length": result.main_chain_length,
            "duration": result.duration,
            "events_processed": result.events_processed,
            "messages_delivered": result.messages_delivered,
            "wall_setup_seconds": result.wall_setup_seconds,
            "wall_simulate_seconds": result.wall_simulate_seconds,
            "events_per_sec": events_per_sec,
        }
        if config.scenario is not None:
            payload["scenario"] = config.scenario["name"]
            payload["faults_injected"] = result.faults_injected
        if config.check:
            payload["check_mode"] = config.check_mode
            payload["invariant_violations"] = len(result.violations)
            payload["violations"] = [
                violation.to_dict() for violation in result.violations
            ]
        if result.obs is not None:
            payload["obs"] = result.obs
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"protocol:                {args.protocol}")
        print(f"blocks generated:        {result.blocks_generated}")
        print(f"main chain length:       {result.main_chain_length}")
        for name, value in sorted(result.as_row().items()):
            print(f"{name + ':':<25}{value:.4f}")
        print(f"events processed:        {result.events_processed}")
        print(f"events/sec:              {events_per_sec:,.0f}")
        if config.scenario is not None:
            print(f"scenario:                {config.scenario['name']}")
            print(f"faults injected:         {result.faults_injected}")
        if config.check:
            print(f"check mode:              {config.check_mode}")
            print(f"invariant violations:    {len(result.violations)}")
            for violation in result.violations:
                print(f"  {violation.format()}")
        if result.obs is not None:
            print(f"obs trace:               {result.obs.get('trace_path')}")
            print(f"obs records:             {result.obs.get('trace_records')}")
    if args.save_trace:
        from .metrics import save_trace

        save_trace(log, args.save_trace)
        if not args.json:
            print(f"trace saved:             {args.save_trace}")
    if config.check and result.violations:
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import sweep_chart

    instrumentation = _instrumentation(args)
    base = instrumentation.apply(_base_config(args))
    scenario = instrumentation.scenario
    seeds = tuple(args.seeds)
    progress = None
    if args.progress:

        def progress(index: int, total: int, result) -> None:
            # Per-cell heartbeat from the pool workers, in completion
            # order, on stderr so piped table output stays clean.
            cell = result.config
            rate = result.events_processed / max(
                result.wall_simulate_seconds, 1e-9
            )
            protocol = getattr(cell.protocol, "value", str(cell.protocol))
            print(
                f"[{index + 1}/{total}] {protocol} "
                f"rate={cell.block_rate:g} size={cell.block_size_bytes} "
                f"seed={cell.seed}: {result.events_processed:,} events, "
                f"{rate:,.0f} ev/s",
                file=sys.stderr,
                flush=True,
            )

    if args.axis == "frequency":
        sweep = frequency_sweep(
            base, seeds=seeds, jobs=args.jobs, progress=progress
        )
    else:
        sweep = size_sweep(base, seeds=seeds, jobs=args.jobs, progress=progress)
    print(format_sweep_table(sweep))
    if args.obs:
        cells = sum(1 for p in sweep.points for r in p.results if r.obs)
        print(f"\nobs: {cells} per-cell traces + metric snapshots in {args.obs}")
    if scenario is not None:
        print(f"\nscenario: {scenario['name']} injected into every cell")
    if args.chart:
        for metric in args.chart:
            print()
            print(sweep_chart(sweep, metric))
    if base.check:
        total = sum(
            len(result.violations)
            for point in sweep.points
            for result in point.results
        )
        print(f"\ninvariant violations across all cells: {total}")
        if total:
            return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        find_traces,
        format_summary,
        format_timeline,
        format_toptalkers,
        load_records,
        summarize,
    )
    from .obs.trace import TraceError

    try:
        traces = find_traces(args.path)
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    first = True
    for path in traces:
        if not first:
            print()
        first = False
        try:
            records = load_records(path)
        except TraceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.trace_command == "summarize":
            print(format_summary(summarize(records), name=path.name))
        elif args.trace_command == "timeline":
            print(f"== {path.name} ==")
            print(format_timeline(records, buckets=args.buckets))
        else:
            print(f"== {path.name} ==")
            print(format_toptalkers(records, top=args.top))
    return 0


def _cmd_propagation(args: argparse.Namespace) -> int:
    # No --check flag here, but REPRO_CHECK still applies (it always has).
    mode = _check_mode_requested(args)
    config = _base_config(args)
    if mode is not None:
        config = config.with_(check=True, check_mode=mode)
    points = propagation_study(config)
    print(format_propagation_table(points))
    return 0


def _cmd_incentives(args: argparse.Namespace) -> int:
    from .core.incentives import critical_alpha, incentive_window

    window = incentive_window(args.alpha)
    print(f"attacker fraction alpha: {args.alpha}")
    print(f"lower bound on r:        {window.lower:.4f}")
    print(f"upper bound on r:        {window.upper:.4f}")
    print(f"feasible:                {window.feasible}")
    print(f"paper's r = 0.40 safe:   {window.contains(0.40)}")
    print(f"critical alpha @ r=0.40: {critical_alpha(0.40):.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bitcoin-NG reproduction: simulations and analysis",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run one experiment")
    _add_common(run_parser)
    run_parser.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOLS),
        default="bitcoin-ng",
    )
    run_parser.add_argument("--block-rate", type=float, default=0.1)
    run_parser.add_argument("--block-size", type=int, default=20_000)
    run_parser.add_argument("--key-block-rate", type=float, default=0.01)
    run_parser.add_argument(
        "--key-blocks",
        type=int,
        default=None,
        metavar="N",
        help="target key blocks per run (run duration is whichever of "
        "--blocks/--key-blocks takes longer at its rate; lower this "
        "for short large-network smokes)",
    )
    run_parser.add_argument(
        "--save-trace",
        metavar="PATH",
        help="export the execution's observation log as JSON",
    )
    run_parser.add_argument(
        "--obs",
        metavar="DIR",
        default=None,
        help="enable the observability layer and write the event trace "
        "and metric snapshot into DIR (analyze with `repro trace`)",
    )
    run_parser.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="inject faults from a scenario JSON file (repro.scenarios); "
        "fault events land in the --obs trace",
    )
    run_parser.add_argument(
        "--check",
        nargs="?",
        const="incremental",
        choices=_CHECK_MODES,
        default=None,
        metavar="MODE",
        help="checked mode: sweep protocol invariants (repro.sanitizer) "
        "during the run; violations are reported and exit nonzero. "
        "MODE is incremental (default: dirty-set sweeps + the verified-"
        "signature cache), full (the original sweep-everything cross-"
        "check path), or audit (incremental plus a periodic full-sweep "
        "audit).  Also enabled by REPRO_CHECK=1 or REPRO_CHECK=<mode>",
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: all metrics plus events/sec "
        "(timed over the simulate phase only)",
    )
    run_parser.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="TOP",
        help="run under cProfile and print the TOP hottest functions",
    )
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = commands.add_parser(
        "sweep", help="run a Figure 8 parameter sweep"
    )
    sweep_parser.add_argument("axis", choices=("frequency", "size"))
    _add_common(sweep_parser)
    sweep_parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0], help="seeds to average"
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep cells "
        "(default: REPRO_JOBS env or CPU count; 1 = serial)",
    )
    sweep_parser.add_argument(
        "--chart",
        nargs="+",
        metavar="METRIC",
        help="also render ASCII charts for these metrics",
    )
    sweep_parser.add_argument(
        "--obs",
        metavar="DIR",
        default=None,
        help="write a per-cell event trace and metric snapshot into DIR",
    )
    sweep_parser.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="inject the same fault scenario into every sweep cell",
    )
    sweep_parser.add_argument(
        "--check",
        nargs="?",
        const="incremental",
        choices=_CHECK_MODES,
        default=None,
        metavar="MODE",
        help="checked mode in every sweep cell; MODE as for `repro run` "
        "(also REPRO_CHECK=1 or REPRO_CHECK=<mode>)",
    )
    sweep_parser.add_argument(
        "--progress",
        action="store_true",
        help="print a per-cell heartbeat to stderr as pool workers "
        "finish (completion order; results stay in submission order)",
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    prop_parser = commands.add_parser(
        "propagation", help="run the Figure 7 propagation study"
    )
    _add_common(prop_parser)
    prop_parser.set_defaults(handler=_cmd_propagation)

    inc_parser = commands.add_parser(
        "incentives", help="print the Section 5 fee-split window"
    )
    inc_parser.add_argument("--alpha", type=float, default=0.25)
    inc_parser.set_defaults(handler=_cmd_incentives)

    trace_parser = commands.add_parser(
        "trace", help="analyze a saved observability trace offline"
    )
    trace_commands = trace_parser.add_subparsers(
        dest="trace_command", required=True
    )
    summarize_parser = trace_commands.add_parser(
        "summarize", help="aggregate counts, traffic, delays, and peaks"
    )
    summarize_parser.add_argument(
        "path", help="a .trace.jsonl file or a directory of them"
    )
    timeline_parser = trace_commands.add_parser(
        "timeline", help="bucketed activity over virtual time"
    )
    timeline_parser.add_argument(
        "path", help="a .trace.jsonl file or a directory of them"
    )
    timeline_parser.add_argument(
        "--buckets", type=int, default=20, help="number of time buckets"
    )
    talkers_parser = trace_commands.add_parser(
        "toptalkers", help="rank nodes by bytes sent"
    )
    talkers_parser.add_argument(
        "path", help="a .trace.jsonl file or a directory of them"
    )
    talkers_parser.add_argument(
        "--top", type=int, default=10, help="how many nodes to list"
    )
    for sub in (summarize_parser, timeline_parser, talkers_parser):
        sub.set_defaults(handler=_cmd_trace)

    from .lint.cli import add_lint_parser

    add_lint_parser(commands)

    from .sanitizer.cli import add_check_parser

    add_check_parser(commands)

    from .prof.cli import add_prof_parser

    add_prof_parser(commands)

    from .mutate.cli import add_mutate_parser

    add_mutate_parser(commands)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Piping long output (e.g. `repro trace ... | head`) closes
        # stdout early; exit quietly like any well-behaved filter.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
