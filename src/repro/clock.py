"""The sanctioned wall-clock access point.

Everything inside a simulation runs on *virtual* time
(:attr:`repro.net.simulator.Simulator.now`); real wall-clock reads are
only legitimate for performance accounting — how long setup or the
dispatch loop took.  Scattering ``time.perf_counter()`` calls through
the tree makes it impossible to audit that no wall-clock value ever
leaks into simulation state, so every wall-clock read goes through this
one module and ``repro lint`` (rule NG201, see
``docs/static-analysis.md``) flags any other callsite.
"""

from __future__ import annotations

import time


def wall_clock() -> float:
    """A monotonic wall-clock reading in seconds, for perf accounting.

    The value is only meaningful as a difference between two readings;
    it must never feed simulation state, RNG seeds, or event times.
    """
    return time.perf_counter()
