"""The Bitcoin full node.

Combines the block tree, UTXO state, and mempool behind the gossip
layer.  Two operating modes, selected by what the mining controller puts
in blocks:

* **library mode** — blocks carry real transactions taken from the
  mempool by fee rate; connects maintain the UTXO set with undo data so
  reorgs roll state back correctly.
* **experiment mode** — blocks carry :class:`SyntheticPayload` (the
  paper's artificial identical transactions); state tracking is skipped,
  matching the testbed's "no transaction propagation" setup.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..crypto.hashing import hash160
from ..crypto.keys import PrivateKey
from ..ledger.errors import LedgerError
from ..ledger.mempool import Mempool
from ..ledger.transactions import COIN, Transaction
from ..ledger.utxo import UndoRecord, UtxoSet
from ..ledger.validation import compute_fee, validate_spend
from ..metrics.collector import BlockInfo, ObservationLog
from ..net.gossip import GossipNode, RelayMode, StoredObject
from ..obs.trace import short_hash
from ..net.network import Network
from ..net.simulator import Simulator
from .blocks import (
    Block,
    InvalidBlock,
    SyntheticPayload,
    TxPayload,
    build_block,
    check_block,
)
from .chain import BlockTree, Reorg, TieBreak

# Default block subsidy (25 BTC, the 2015 value).
DEFAULT_BLOCK_REWARD = 25 * COIN


@dataclass
class BlockPolicy:
    """What a miner puts into the blocks it creates."""

    max_block_bytes: int = 1_000_000
    synthetic: bool = True
    synthetic_tx_size: int = 476
    bits: int = 0x207FFFFF
    reward: int = DEFAULT_BLOCK_REWARD

    def synthetic_tx_count(self) -> int:
        """Fill the block to its size cap with artificial transactions."""
        return max(0, self.max_block_bytes // self.synthetic_tx_size)


class BitcoinNode(GossipNode):
    """A miner/relay node running the Bitcoin blockchain protocol."""

    KIND = "block"

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        genesis: Block,
        log: ObservationLog | None = None,
        policy: BlockPolicy | None = None,
        tie_break: TieBreak = TieBreak.FIRST_SEEN,
        relay_mode: RelayMode = RelayMode.INV,
        require_pow: bool = False,
        check_signatures: bool = True,
        verification_seconds_per_byte: float = 0.0,
        key: PrivateKey | None = None,
    ) -> None:
        super().__init__(
            node_id,
            sim,
            network,
            relay_mode=relay_mode,
            verification_seconds_per_byte=verification_seconds_per_byte,
        )
        self.log = log
        self.policy = policy or BlockPolicy()
        self.require_pow = require_pow
        self.check_signatures = check_signatures
        self.key = key or PrivateKey.from_seed(f"bitcoin-node-{node_id}")
        self.tree = BlockTree(genesis, tie_break=tie_break, rng=sim.rng)
        self.utxo = UtxoSet()
        self.mempool = Mempool()
        self._undo: dict[bytes, list[UndoRecord]] = {}
        self._block_counter = 0
        self.blocks_mined = 0
        self.blocks_rejected = 0
        registry = network.obs.registry
        self._c_gen = registry.counter(
            "node_blocks_generated", "blocks created, by kind", ("kind",)
        )
        self._c_tip = registry.counter(
            "node_tip_changes", "main-chain tip movements across all nodes"
        )
        if log is not None:
            log.record_tip(node_id, genesis.hash, sim.now)

    # -- mining ----------------------------------------------------------

    def generate_block(self) -> Block:
        """Create a block on the current tip and inject it into gossip.

        Called by the mining controller when this miner wins a
        proof-of-work event (the paper's in-situ controller analogue).
        """
        tip = self.tree.tip
        if self.policy.synthetic:
            payload: TxPayload | SyntheticPayload = SyntheticPayload(
                n_tx=self.policy.synthetic_tx_count(),
                tx_size=self.policy.synthetic_tx_size,
                salt=struct.pack("<iI", self.node_id, self._block_counter) + tip,
            )
            reward = self.policy.reward
        else:
            selected = self.mempool.select(self.policy.max_block_bytes)
            height = self.tree.height_of(tip) + 1
            fees = sum(
                compute_fee(tx, self.utxo, height) for tx in selected
            )
            payload = TxPayload(tuple(selected))
            reward = self.policy.reward + fees
        self._block_counter += 1
        block = build_block(
            prev_hash=tip,
            payload=payload,
            timestamp=self.sim.now,
            bits=self.policy.bits,
            miner_id=self.node_id,
            reward=reward,
            reward_pubkey_hash=self._payout_hash(),
        )
        self.blocks_mined += 1
        if self.log is not None:
            self.log.record_generation(
                BlockInfo(
                    hash=block.hash,
                    parent=tip,
                    miner=self.node_id,
                    gen_time=self.sim.now,
                    work=block.header.work,
                    kind=self.KIND,
                    n_tx=block.n_tx,
                    size=block.size,
                )
            )
            self.log.record_arrival(self.node_id, block.hash, self.sim.now)
        self._c_gen.labels(kind=self.KIND).inc()
        if self._tracer is not None:
            self._tracer.emit(
                "block_gen",
                self.sim.now,
                hash=short_hash(block.hash),
                parent=short_hash(tip),
                kind=self.KIND,
                miner=self.node_id,
                size=block.size,
                n_tx=block.n_tx,
            )
        self.announce(block.hash, self.KIND, block, block.size)
        return block

    def _payout_hash(self) -> bytes:
        return hash160(self.key.public_key().to_bytes())

    # -- transaction entry points -----------------------------------------

    def submit_transaction(self, tx: Transaction) -> None:
        """Accept a locally submitted transaction and gossip it."""
        height = self.tree.height_of(self.tree.tip) + 1
        fee = validate_spend(
            tx, self.utxo, height, check_signatures=self.check_signatures
        )
        self.mempool.add(tx, fee)
        self.announce(tx.txid, "tx", tx, tx.size)

    def _accept_relayed_transaction(self, tx: Transaction) -> None:
        """Admit a gossiped transaction if it validates; drop otherwise."""
        height = self.tree.height_of(self.tree.tip) + 1
        try:
            fee = validate_spend(
                tx, self.utxo, height, check_signatures=self.check_signatures
            )
            self.mempool.add(tx, fee)
        except LedgerError:
            return

    # -- gossip delivery ---------------------------------------------------

    def deliver(self, obj: StoredObject, sender: int | None):
        if obj.kind == "tx":
            if sender is not None:
                self._accept_relayed_transaction(obj.data)
            return None
        if obj.kind != self.KIND:
            return False  # unknown object kinds are not relayed
        block: Block = obj.data
        if sender is not None:
            if self.log is not None:
                self.log.record_arrival(self.node_id, block.hash, self.sim.now)
            if self._tracer is not None:
                self._tracer.emit(
                    "block_arrival",
                    self.sim.now,
                    node=self.node_id,
                    hash=short_hash(block.hash),
                    kind=self.KIND,
                )
        if sender is not None:
            try:
                check_block(block, require_pow=self.require_pow)
            except InvalidBlock:
                self.blocks_rejected += 1
                return False
        reorgs = self.tree.add_block(block, self.sim.now)
        parent_hash = block.header.prev_hash
        if (
            sender is not None
            and block.hash not in self.tree
            and parent_hash not in self.tree
        ):
            # Orphan: backfill the gap from whoever sent this block.
            self.request_object(sender, parent_hash)
        for reorg in reorgs:
            self._apply_reorg(reorg)
        if reorgs:
            if self.log is not None:
                self.log.record_tip(self.node_id, self.tree.tip, self.sim.now)
            self._c_tip.inc()
            if self._tracer is not None:
                self._tracer.emit(
                    "tip_change",
                    self.sim.now,
                    node=self.node_id,
                    tip=short_hash(self.tree.tip),
                    height=self.tree.height_of(self.tree.tip),
                )

    # -- state management ----------------------------------------------------

    def _apply_reorg(self, reorg: Reorg) -> None:
        for block_hash in reorg.disconnected:
            self._disconnect_block(block_hash)
        for block_hash in reorg.connected:
            self._connect_block(block_hash)

    def _connect_block(self, block_hash: bytes) -> None:
        record = self.tree.record(block_hash)
        block = record.block
        if not isinstance(block.payload, TxPayload):
            return
        undo_records: list[UndoRecord] = []
        height = record.height
        undo_records.append(self.utxo.apply(block.coinbase, height))
        for tx in block.payload.transactions:
            try:
                validate_spend(
                    tx, self.utxo, height, check_signatures=self.check_signatures
                )
            except LedgerError:
                # Unwind the partial connect, then surface the failure.
                for done in reversed(undo_records):
                    self.utxo.undo(done)
                raise InvalidBlock(
                    f"block {block_hash.hex()[:8]} contains an invalid spend"
                )
            undo_records.append(self.utxo.apply(tx, height))
            self.mempool.evict_conflicts(tx)
        self._undo[block_hash] = undo_records

    def _disconnect_block(self, block_hash: bytes) -> None:
        undo_records = self._undo.pop(block_hash, None)
        if undo_records is None:
            return
        record = self.tree.record(block_hash)
        block = record.block
        for undo in reversed(undo_records):
            self.utxo.undo(undo)
        if isinstance(block.payload, TxPayload):
            # Returned transactions compete for inclusion again.
            height = record.height
            for tx in block.payload.transactions:
                try:
                    fee = compute_fee(tx, self.utxo, height)
                    self.mempool.add(tx, fee)
                except LedgerError:
                    continue

    # -- introspection ------------------------------------------------------

    def best_object_id(self) -> bytes | None:
        return self.tree.tip

    @property
    def tip(self) -> bytes:
        return self.tree.tip

    @property
    def height(self) -> int:
        return self.tree.height_of(self.tree.tip)

    def balance_of(self, pubkey_hash: bytes) -> int:
        return self.utxo.balance(pubkey_hash)
