"""The Bitcoin baseline protocol: blocks, heaviest-chain tree, full node."""

from .blocks import (
    ARTIFICIAL_TX_SIZE,
    HEADER_SIZE,
    Block,
    BlockHeader,
    InvalidBlock,
    SyntheticPayload,
    TxPayload,
    build_block,
    check_block,
    make_genesis,
    mine,
)
from .chain import BlockRecord, BlockTree, Reorg, TieBreak
from .node import DEFAULT_BLOCK_REWARD, BitcoinNode, BlockPolicy

__all__ = [
    "ARTIFICIAL_TX_SIZE",
    "DEFAULT_BLOCK_REWARD",
    "HEADER_SIZE",
    "BitcoinNode",
    "Block",
    "BlockHeader",
    "BlockPolicy",
    "BlockRecord",
    "BlockTree",
    "InvalidBlock",
    "Reorg",
    "SyntheticPayload",
    "TieBreak",
    "TxPayload",
    "build_block",
    "check_block",
    "make_genesis",
    "mine",
]
