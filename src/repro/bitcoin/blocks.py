"""Bitcoin blocks: headers, payloads, and validity rules.

"A valid block contains (1) a solution to a cryptopuzzle involving the
hash of the previous block, (2) the hash (specifically, the Merkle root)
of the transactions in the current block, which have to be valid, and
(3) a special transaction, called the coinbase" (Section 3).

Payloads come in two flavours sharing one interface:

* :class:`TxPayload` — real validated transactions (library mode).
* :class:`SyntheticPayload` — the paper's experiment mode, where blocks
  carry a count of identically-sized artificial transactions whose
  content is irrelevant to consensus dynamics.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import cached_property

from ..crypto.hashing import sha256d, tagged_hash
from ..crypto.merkle import merkle_root
from ..crypto.pow import meets_target, target_from_compact, work_from_target
from ..ledger.transactions import Transaction, make_coinbase

# Serialized header size, as in Bitcoin.
HEADER_SIZE = 80

# The artificial transaction size used throughout the paper's experiments:
# "The transactions are of identical size; the operational Bitcoin system
# as of today, at 1MB blocks every 10 minutes, has a bandwidth of 3.5 such
# transactions per second" → 1 MB / (600 s * 3.5 tx/s) ≈ 476 bytes.
ARTIFICIAL_TX_SIZE = 476


class InvalidBlock(Exception):
    """Raised when a block fails consensus validity checks."""


@dataclass(frozen=True)
class TxPayload:
    """Block contents as real transactions (coinbase excluded)."""

    transactions: tuple[Transaction, ...]

    @property
    def n_tx(self) -> int:
        return len(self.transactions)

    @cached_property
    def payload_bytes(self) -> int:
        return sum(tx.size for tx in self.transactions)

    @cached_property
    def entry_hashes(self) -> list[bytes]:
        return [tx.txid for tx in self.transactions]

    def root(self) -> bytes:
        return merkle_root(self.entry_hashes)


@dataclass(frozen=True)
class SyntheticPayload:
    """Experiment-mode contents: N artificial transactions of fixed size.

    ``salt`` makes distinct blocks commit to distinct roots even with
    identical counts, standing in for the unique txids of real payloads.
    """

    n_tx: int
    tx_size: int = ARTIFICIAL_TX_SIZE
    salt: bytes = b""

    def __post_init__(self) -> None:
        if self.n_tx < 0 or self.tx_size <= 0:
            raise InvalidBlock("synthetic payload with bad dimensions")

    @property
    def payload_bytes(self) -> int:
        return self.n_tx * self.tx_size

    def root(self) -> bytes:
        body = struct.pack("<II", self.n_tx, self.tx_size) + self.salt
        return tagged_hash("repro/synthetic-payload", body)


@dataclass(frozen=True)
class BlockHeader:
    """The 80-byte committed header, hashed for proof of work."""

    prev_hash: bytes
    payload_root: bytes
    timestamp: float
    bits: int
    nonce: int

    def serialize(self) -> bytes:
        return (
            self.prev_hash
            + self.payload_root
            + struct.pack("<dIQ", self.timestamp, self.bits, self.nonce)
        )

    @cached_property
    def hash(self) -> bytes:
        return sha256d(self.serialize())

    @property
    def target(self) -> int:
        return target_from_compact(self.bits)

    @property
    def work(self) -> int:
        return work_from_target(self.target)

    def meets_pow(self) -> bool:
        return meets_target(self.hash, self.target)


@dataclass(frozen=True)
class Block:
    """A full block: header, coinbase, and payload."""

    header: BlockHeader
    coinbase: Transaction
    payload: TxPayload | SyntheticPayload

    @property
    def hash(self) -> bytes:
        return self.header.hash

    @property
    def n_tx(self) -> int:
        return self.payload.n_tx

    @property
    def size(self) -> int:
        """Total on-wire size in bytes."""
        return HEADER_SIZE + self.coinbase.size + self.payload.payload_bytes

    @property
    def miner_hint(self) -> int:
        """Miner id embedded in the coinbase tag (simulation attribution).

        The paper attributed blocks to pools via voluntarily-published
        coinbase markers; we do the same with a 4-byte id.
        """
        tag = self.coinbase.padding
        if len(tag) < 4:
            return -1
        return struct.unpack("<i", tag[:4])[0]

    def __repr__(self) -> str:
        return (
            f"<Block {self.hash.hex()[:8]} prev={self.header.prev_hash.hex()[:8]} "
            f"n_tx={self.n_tx} size={self.size}>"
        )


def build_block(
    prev_hash: bytes,
    payload: TxPayload | SyntheticPayload,
    timestamp: float,
    bits: int,
    miner_id: int,
    reward: int,
    reward_pubkey_hash: bytes | None = None,
    nonce: int = 0,
) -> Block:
    """Assemble a block (unmined: the nonce is whatever was passed)."""
    tag = struct.pack("<i", miner_id) + struct.pack("<d", timestamp)
    payout_hash = reward_pubkey_hash or bytes(20)
    coinbase = make_coinbase([(payout_hash, reward)], tag=tag)
    header = BlockHeader(prev_hash, payload.root(), timestamp, bits, nonce)
    return Block(header, coinbase, payload)


def mine(block: Block, max_iterations: int = 10_000_000) -> Block:
    """Grind nonces until the header meets its target.

    Only practical at test-grade targets; simulations use the scheduler
    instead, exactly as the paper's regression-test mode skipped PoW.
    """
    header = block.header
    for nonce in range(max_iterations):
        candidate = BlockHeader(
            header.prev_hash, header.payload_root, header.timestamp, header.bits, nonce
        )
        if candidate.meets_pow():
            return Block(candidate, block.coinbase, block.payload)
    raise InvalidBlock(f"no valid nonce found in {max_iterations} iterations")


def check_block(block: Block, require_pow: bool = True) -> None:
    """Contextless validity: PoW, payload commitment, coinbase shape.

    ``require_pow=False`` reproduces regression-test mode, where "the
    client skips the block difficulty validation".
    """
    if block.header.payload_root != block.payload.root():
        raise InvalidBlock("payload root does not match header commitment")
    if not block.coinbase.is_coinbase:
        raise InvalidBlock("first transaction must be a coinbase")
    if require_pow and not block.header.meets_pow():
        raise InvalidBlock("header hash does not meet target")
    if isinstance(block.payload, TxPayload):
        for tx in block.payload.transactions:
            if tx.is_coinbase:
                raise InvalidBlock("payload contains a second coinbase")


def make_genesis(
    n_tx: int = 0, timestamp: float = 0.0, bits: int = 0x207FFFFF
) -> Block:
    """The protocol-defined first block."""
    payload = SyntheticPayload(n_tx, salt=b"genesis")
    return build_block(
        prev_hash=bytes(32),
        payload=payload,
        timestamp=timestamp,
        bits=bits,
        miner_id=-1,
        reward=0,
    )
