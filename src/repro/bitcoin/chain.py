"""The Bitcoin block tree and heaviest-chain fork choice.

"To resolve forks ... the winning chain is the heaviest one, that is,
the one that required (in expectancy) the most mining power to generate.
All miners add blocks to the heaviest chain of which they know, with
random tie-breaking" (Section 3).  The operational client instead keeps
the first branch it heard of (footnote 2); both policies are provided.

The tree tracks cumulative work, computes reorganization paths, buffers
orphans whose parents have not arrived yet, and reports pruned branches
for the time-to-prune metric.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from .blocks import Block, InvalidBlock


class TieBreak(enum.Enum):
    """Policy when two branches have exactly equal cumulative work."""

    FIRST_SEEN = "first-seen"  # operational Bitcoin client
    RANDOM = "random"  # the paper's (and [21]'s) recommendation


@dataclass
class BlockRecord:
    """A block plus its position in the tree."""

    block: Block
    height: int
    cumulative_work: int
    arrival_time: float
    children: list[bytes] = field(default_factory=list)

    @property
    def hash(self) -> bytes:
        return self.block.hash

    @property
    def parent_hash(self) -> bytes:
        return self.block.header.prev_hash


@dataclass(frozen=True)
class Reorg:
    """A tip change: blocks leaving and entering the main chain.

    ``disconnected`` is ordered tip-first (the order state must be
    unwound); ``connected`` is ordered fork-point-first (the order state
    must be applied).
    """

    old_tip: bytes
    new_tip: bytes
    disconnected: tuple[bytes, ...]
    connected: tuple[bytes, ...]

    @property
    def is_extension(self) -> bool:
        """True when the tip simply advanced without unwinding."""
        return not self.disconnected


class BlockTree:
    """One node's view of all blocks it knows, with fork choice."""

    def __init__(
        self,
        genesis: Block,
        tie_break: TieBreak = TieBreak.FIRST_SEEN,
        rng: random.Random | None = None,
    ) -> None:
        self._records: dict[bytes, BlockRecord] = {}
        self._orphans: dict[bytes, list[tuple[Block, float]]] = {}
        self.tie_break = tie_break
        self.rng = rng or random.Random(0)
        self.genesis_hash = genesis.hash
        record = BlockRecord(genesis, height=0, cumulative_work=0, arrival_time=0.0)
        self._records[genesis.hash] = record
        self._tip = genesis.hash

    # -- queries --------------------------------------------------------

    def __contains__(self, block_hash: bytes) -> bool:
        return block_hash in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def tip(self) -> bytes:
        return self._tip

    @property
    def tip_record(self) -> BlockRecord:
        return self._records[self._tip]

    def record(self, block_hash: bytes) -> BlockRecord:
        return self._records[block_hash]

    def get(self, block_hash: bytes) -> BlockRecord | None:
        return self._records.get(block_hash)

    def height_of(self, block_hash: bytes) -> int:
        return self._records[block_hash].height

    def work_of(self, block_hash: bytes) -> int:
        return self._records[block_hash].cumulative_work

    def main_chain(self, tip: bytes | None = None) -> list[bytes]:
        """Hashes from genesis to ``tip`` (default: current tip)."""
        chain: list[bytes] = []
        cursor = tip if tip is not None else self._tip
        while True:
            record = self._records[cursor]
            chain.append(cursor)
            if cursor == self.genesis_hash:
                break
            cursor = record.parent_hash
        chain.reverse()
        return chain

    def is_in_main_chain(self, block_hash: bytes) -> bool:
        """True when the block is an ancestor-or-equal of the tip."""
        record = self._records.get(block_hash)
        if record is None:
            return False
        cursor = self._records[self._tip]
        while cursor.height > record.height:
            cursor = self._records[cursor.parent_hash]
        return cursor.hash == block_hash

    def find_fork_point(self, a: bytes, b: bytes) -> bytes:
        """Lowest common ancestor of two blocks."""
        ra, rb = self._records[a], self._records[b]
        while ra.height > rb.height:
            ra = self._records[ra.parent_hash]
        while rb.height > ra.height:
            rb = self._records[rb.parent_hash]
        while ra.hash != rb.hash:
            ra = self._records[ra.parent_hash]
            rb = self._records[rb.parent_hash]
        return ra.hash

    def leaves(self) -> list[bytes]:
        """All blocks without children — the heads of every branch."""
        return [h for h, record in self._records.items() if not record.children]

    def pruned_blocks(self) -> list[bytes]:
        """All known blocks not on the current main chain."""
        main = set(self.main_chain())
        return [h for h in self._records if h not in main]

    # -- mutation -------------------------------------------------------

    def add_block(self, block: Block, arrival_time: float) -> list[Reorg]:
        """Insert a block (and any orphans it unlocks); return tip changes.

        Unknown-parent blocks are buffered and connected when the parent
        arrives, so out-of-order gossip delivery is handled here rather
        than by every caller.
        """
        if block.hash in self._records:
            return []
        parent = self._records.get(block.header.prev_hash)
        if parent is None:
            self._orphans.setdefault(block.header.prev_hash, []).append(
                (block, arrival_time)
            )
            return []
        reorgs = [self._connect(block, parent, arrival_time)]
        # Adopt any orphans waiting on this block, recursively.
        pending = [block.hash]
        while pending:
            parent_hash = pending.pop()
            for orphan, orphan_time in self._orphans.pop(parent_hash, []):
                reorg = self._connect(
                    orphan, self._records[parent_hash], max(orphan_time, arrival_time)
                )
                reorgs.append(reorg)
                pending.append(orphan.hash)
        return [r for r in reorgs if r is not None]

    def _connect(
        self, block: Block, parent: BlockRecord, arrival_time: float
    ) -> Reorg | None:
        record = BlockRecord(
            block,
            height=parent.height + 1,
            cumulative_work=parent.cumulative_work + block.header.work,
            arrival_time=arrival_time,
        )
        self._records[block.hash] = record
        parent.children.append(block.hash)
        return self._maybe_switch_tip(record)

    def _maybe_switch_tip(self, candidate: BlockRecord) -> Reorg | None:
        current = self._records[self._tip]
        if candidate.cumulative_work < current.cumulative_work:
            return None
        if candidate.cumulative_work == current.cumulative_work:
            if candidate.hash == current.hash:
                return None
            if self.tie_break is TieBreak.FIRST_SEEN:
                return None
            if self.rng.random() < 0.5:
                return None
        return self._switch_tip(candidate.hash)

    def _switch_tip(self, new_tip: bytes) -> Reorg:
        old_tip = self._tip
        fork = self.find_fork_point(old_tip, new_tip)
        disconnected = []
        cursor = old_tip
        while cursor != fork:
            disconnected.append(cursor)
            cursor = self._records[cursor].parent_hash
        connected = []
        cursor = new_tip
        while cursor != fork:
            connected.append(cursor)
            cursor = self._records[cursor].parent_hash
        connected.reverse()
        self._tip = new_tip
        return Reorg(old_tip, new_tip, tuple(disconnected), tuple(connected))

    def orphan_count(self) -> int:
        return sum(len(waiting) for waiting in self._orphans.values())

    def assert_consistent(self) -> None:
        """Structural invariants, used by property-based tests."""
        for block_hash, record in self._records.items():
            if block_hash == self.genesis_hash:
                continue
            parent = self._records.get(record.parent_hash)
            if parent is None:
                raise InvalidBlock("dangling parent pointer in tree")
            if record.height != parent.height + 1:
                raise InvalidBlock("height does not increment from parent")
            expected = parent.cumulative_work + record.block.header.work
            if record.cumulative_work != expected:
                raise InvalidBlock("cumulative work mismatch")
            if block_hash not in parent.children:
                raise InvalidBlock("child not registered with parent")
        tip_work = self._records[self._tip].cumulative_work
        best = max(r.cumulative_work for r in self._records.values())
        if tip_work != best:
            raise InvalidBlock("tip is not a heaviest block")
