"""Security studies: selfish mining, double spends, censorship, fees."""

from .censorship import (
    PowerDropOutcome,
    expected_censorship_wait_blocks,
    expected_censorship_wait_time,
    power_drop_comparison,
    simulate_censorship_wait,
)
from .doublespend import DoubleSpendReport, run_doublespend_scenario
from .eclipse import EclipseReport, run_eclipse_scenario
from .fee_strategies import (
    ForkCompetitionOutcome,
    StrategyOutcome,
    fork_fee_competition,
    profitable_window,
    simulate_extension_strategy,
    simulate_inclusion_strategy,
)
from .selfish import (
    SelfishOutcome,
    leadership_retention_probability,
    revenue_curve,
    selfish_threshold,
    simulate_selfish_mining,
    simulate_weighted_micro_takeover,
)

__all__ = [
    "DoubleSpendReport",
    "EclipseReport",
    "ForkCompetitionOutcome",
    "PowerDropOutcome",
    "SelfishOutcome",
    "StrategyOutcome",
    "expected_censorship_wait_blocks",
    "expected_censorship_wait_time",
    "fork_fee_competition",
    "leadership_retention_probability",
    "power_drop_comparison",
    "profitable_window",
    "revenue_curve",
    "run_doublespend_scenario",
    "run_eclipse_scenario",
    "selfish_threshold",
    "simulate_censorship_wait",
    "simulate_extension_strategy",
    "simulate_inclusion_strategy",
    "simulate_selfish_mining",
    "simulate_weighted_micro_takeover",
]
