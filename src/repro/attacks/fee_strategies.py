"""Monte-Carlo validation of the Section 5 fee-split analysis.

The closed forms in :mod:`repro.core.incentives` come from two
single-transaction deviation strategies.  Here each strategy is played
out as a random process so the algebra can be checked empirically, and
Appendix B's fee-competition argument (branches copy each other's
transactions, cancelling bribe advantages) is modelled as well.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class StrategyOutcome:
    """Empirical revenue of a deviation vs honest play."""

    alpha: float
    leader_fraction: float
    deviation_revenue: float
    honest_revenue: float
    trials: int

    @property
    def deviation_profitable(self) -> bool:
        return self.deviation_revenue > self.honest_revenue


def simulate_inclusion_strategy(
    alpha: float,
    leader_fraction: float,
    n_trials: int = 200_000,
    seed: int = 0,
) -> StrategyOutcome:
    """The secret-microblock strategy (Section 5.1, first inequality).

    A leader holding a fee-bearing transaction mines on a *secret*
    microblock containing it.  With probability α it wins the next key
    block and earns 100% of the fee; otherwise the transaction is placed
    by another leader and the attacker earns the next-leader share
    (1 − r) only if it mines the following key block (probability α).
    Honest play earns r.
    """
    _check(alpha, leader_fraction)
    rng = random.Random(seed)
    total = 0.0
    for _ in range(n_trials):
        if rng.random() < alpha:
            total += 1.0  # won the race: the whole fee
        elif rng.random() < alpha:
            total += 1.0 - leader_fraction  # mined after the re-placement
    return StrategyOutcome(
        alpha=alpha,
        leader_fraction=leader_fraction,
        deviation_revenue=total / n_trials,
        honest_revenue=leader_fraction,
        trials=n_trials,
    )


def simulate_extension_strategy(
    alpha: float,
    leader_fraction: float,
    n_trials: int = 200_000,
    seed: int = 0,
) -> StrategyOutcome:
    """The mine-around strategy (Section 5.1, second inequality).

    A miner skips the microblock holding the transaction, re-places the
    transaction in its own microblock (earning r) and with probability α
    also wins the subsequent key block (earning 1 − r more).  Honest
    play — mining on the existing microblock — earns the next-leader
    share 1 − r.
    """
    _check(alpha, leader_fraction)
    rng = random.Random(seed)
    total = 0.0
    for _ in range(n_trials):
        total += leader_fraction
        if rng.random() < alpha:
            total += 1.0 - leader_fraction
    return StrategyOutcome(
        alpha=alpha,
        leader_fraction=leader_fraction,
        deviation_revenue=total / n_trials,
        honest_revenue=1.0 - leader_fraction,
        trials=n_trials,
    )


def _check(alpha: float, leader_fraction: float) -> None:
    if not 0 <= alpha < 1:
        raise ValueError("alpha must be in [0, 1)")
    if not 0 <= leader_fraction <= 1:
        raise ValueError("leader fraction must be in [0, 1]")


def profitable_window(
    alpha: float,
    fractions: tuple[float, ...] = tuple(i / 100 for i in range(0, 101, 2)),
    n_trials: int = 50_000,
    seed: int = 0,
) -> tuple[float, float]:
    """Empirical (lower, upper) bounds on a safe leader fraction.

    Scans r and returns the range where *neither* deviation is
    profitable — the Monte-Carlo image of the closed-form window.
    """
    safe = [
        r
        for r in fractions
        if not simulate_inclusion_strategy(
            alpha, r, n_trials, seed
        ).deviation_profitable
        and not simulate_extension_strategy(
            alpha, r, n_trials, seed + 1
        ).deviation_profitable
    ]
    if not safe:
        return (float("nan"), float("nan"))
    return (min(safe), max(safe))


# -- Appendix B: fee competition on a key-block fork ----------------------


@dataclass(frozen=True)
class ForkCompetitionOutcome:
    """Fee totals on two competing branches after transaction copying."""

    attacker_branch_fees: int
    competitor_branch_fees: int

    @property
    def advantage_eliminated(self) -> bool:
        return self.attacker_branch_fees == self.competitor_branch_fees


def fork_fee_competition(
    base_fees: tuple[int, ...],
    attacker_bribe: int,
) -> ForkCompetitionOutcome:
    """Appendix B's argument, concretely.

    An attacker on one side of a key-block fork adds a large bribe
    transaction to attract miners.  "Each branch may copy the
    transactions placed in the microblocks of the competing branch, and
    so even if an attacker is motivated to place significant fees due to
    external incentives, its competitor will copy those same
    transactions and remove the attacker's advantage."
    """
    if attacker_bribe < 0 or any(fee < 0 for fee in base_fees):
        raise ValueError("fees cannot be negative")
    attacker_branch = sum(base_fees) + attacker_bribe
    # The competitor copies everything visible on the attacker's branch,
    # the bribe included — the fee totals equalize.
    competitor_branch = sum(base_fees) + attacker_bribe
    return ForkCompetitionOutcome(attacker_branch, competitor_branch)
