"""Selfish mining: why the model bounds attackers at 1/4 (Section 2).

"proof-of-work blockchains, Bitcoin-NG included, are vulnerable to
selfish mining by attackers larger than 1/4 of the network [21]."

This module implements the Eyal–Sirer selfish mining strategy as a
Monte-Carlo simulation over the key-block race, plus the closed-form
profitability threshold, and the ablation DESIGN.md calls out: what
happens if microblocks *did* carry weight (Section 5.1 argues they must
not, or withholding becomes strictly stronger).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


def selfish_threshold(gamma: float) -> float:
    """Profitability threshold α(γ) from Eyal–Sirer.

    γ is the fraction of honest miners that mine on the attacker's
    branch during a tie (the attacker's "rushing" ability).  γ = 0
    gives 1/3; γ = 1 gives 0; the conservative γ = 1/2 point is ~1/4 —
    the bound the paper adopts.
    """
    if not 0 <= gamma <= 1:
        raise ValueError("gamma must be in [0, 1]")
    return (1.0 - gamma) / (3.0 - 2.0 * gamma)


@dataclass(frozen=True)
class SelfishOutcome:
    """Result of one selfish-mining simulation."""

    alpha: float
    gamma: float
    blocks_simulated: int
    attacker_main_blocks: int
    honest_main_blocks: int

    @property
    def attacker_revenue_share(self) -> float:
        total = self.attacker_main_blocks + self.honest_main_blocks
        if total == 0:
            return 0.0
        return self.attacker_main_blocks / total

    @property
    def relative_gain(self) -> float:
        """Revenue share minus the honest-mining share α."""
        return self.attacker_revenue_share - self.alpha


def simulate_selfish_mining(
    alpha: float,
    gamma: float = 0.5,
    n_blocks: int = 100_000,
    seed: int = 0,
) -> SelfishOutcome:
    """Monte-Carlo of the Eyal–Sirer state machine.

    The attacker withholds found blocks and publishes judiciously; state
    is its private lead over the public chain, with the special "tie
    race" state after a forced 1-1 publication.
    """
    if not 0 < alpha < 0.5:
        raise ValueError("alpha must be in (0, 0.5)")
    if not 0 <= gamma <= 1:
        raise ValueError("gamma must be in [0, 1]")
    rng = random.Random(seed)
    lead = 0  # private chain length minus public chain length
    tie_race = False  # two branches of equal length are public
    attacker_blocks = 0
    honest_blocks = 0
    for _ in range(n_blocks):
        attacker_found = rng.random() < alpha
        if attacker_found:
            if tie_race:
                # Attacker extends its tie branch and wins both blocks.
                attacker_blocks += 2
                tie_race = False
                lead = 0
            else:
                lead += 1
        else:
            if tie_race:
                # An honest block lands during the race.
                if rng.random() < gamma:
                    # On the attacker's branch: attacker's tie block wins.
                    attacker_blocks += 1
                    honest_blocks += 1
                else:
                    honest_blocks += 2
                tie_race = False
                lead = 0
            elif lead == 0:
                honest_blocks += 1
            elif lead == 1:
                # Honest catches up; attacker publishes — a tie race.
                tie_race = True
                lead = 0
            elif lead == 2:
                # Attacker publishes everything and takes the lead.
                attacker_blocks += 2
                lead = 0
            else:
                # Far ahead: release one block, keep the lead.
                attacker_blocks += 1
                lead -= 1
    # Settle any remaining private lead.
    attacker_blocks += max(0, lead)
    return SelfishOutcome(
        alpha=alpha,
        gamma=gamma,
        blocks_simulated=n_blocks,
        attacker_main_blocks=attacker_blocks,
        honest_main_blocks=honest_blocks,
    )


def revenue_curve(
    gamma: float,
    alphas: tuple[float, ...] = (0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4),
    n_blocks: int = 100_000,
    seed: int = 0,
) -> list[SelfishOutcome]:
    """Revenue share across attacker sizes — the threshold study."""
    return [
        simulate_selfish_mining(alpha, gamma, n_blocks, seed + i)
        for i, alpha in enumerate(alphas)
    ]


# -- weighted-microblock ablation ---------------------------------------


def leadership_retention_probability(
    micro_weight_fraction: float,
    key_block_interval: float,
    microblock_interval: float,
) -> float:
    """P(a leader outweighs the next key block with microblocks alone).

    The ablation: if a microblock carried ``micro_weight_fraction`` of a
    key block's weight, a leader ignoring a competing key block regains
    the heaviest chain after 1/fraction microblock intervals.  The next
    honest key block arrives Exp(key interval)-distributed, so the
    leader wins with probability exp(−t_catchup / key_interval) —
    positive for *any* positive microblock weight, with **zero** mining
    power.  With weight 0 (Bitcoin-NG's rule) the probability is 0.
    """
    if micro_weight_fraction < 0:
        raise ValueError("weight fraction cannot be negative")
    if key_block_interval <= 0 or microblock_interval <= 0:
        raise ValueError("intervals must be positive")
    if micro_weight_fraction == 0:
        return 0.0
    catchup_time = (1.0 / micro_weight_fraction) * microblock_interval
    return math.exp(-catchup_time / key_block_interval)


def simulate_weighted_micro_takeover(
    micro_weight_fraction: float,
    key_block_interval: float,
    microblock_interval: float,
    n_trials: int = 20_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo counterpart of :func:`leadership_retention_probability`.

    Each trial: an honest key block just displaced the (malicious)
    leader; the leader keeps emitting weighted microblocks on its own
    branch.  It wins if it accumulates one key block's worth of weight
    before the *next* honest key block lands.
    """
    if micro_weight_fraction <= 0:
        return 0.0
    rng = random.Random(seed)
    catchup_time = (1.0 / micro_weight_fraction) * microblock_interval
    wins = 0
    for _ in range(n_trials):
        next_honest_key = rng.expovariate(1.0 / key_block_interval)
        if next_honest_key > catchup_time:
            wins += 1
    return wins / n_trials
