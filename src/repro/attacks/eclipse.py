"""Eclipse attacks: isolating a victim behind attacker-controlled peers.

The paper's network section cites Heilman et al.'s eclipse attacks on
Bitcoin's peer-to-peer layer as the reason the real topology is kept
hidden.  This module plays the classic eclipse + double-spend against
our protocol stack: the attacker monopolizes a victim's connections,
feeds it a private fork containing a payment to the victim, and after
the victim accepts it, reconnects the victim to the honest (heavier)
network — pruning the payment.

The defence knob is the same confirmation depth the wallet's
:class:`~repro.wallet.confirmation.ConfirmationPolicy` exposes: an
eclipsed attacker with a small power share falls behind the honest
chain, so requiring more burial makes the fake payment visibly stall.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bitcoin.blocks import make_genesis
from ..bitcoin.node import BitcoinNode, BlockPolicy
from ..net.latency import constant_histogram
from ..net.network import Message, Network
from ..net.partitions import PartitionController
from ..net.simulator import Simulator
from ..net.topology import complete_topology


@dataclass(frozen=True)
class EclipseReport:
    """What the scenario demonstrates."""

    victim_accepted_fake_chain: bool
    fake_depth_reached: int
    honest_chain_heavier: bool
    payment_pruned_after_heal: bool
    honest_height: int
    fake_height: int


def run_eclipse_scenario(
    n_honest: int = 5,
    attacker_blocks: int = 2,
    honest_blocks: int = 4,
    seed: int = 0,
) -> EclipseReport:
    """Eclipse a victim, feed it a fake chain, heal, observe the reorg.

    Node layout: 0..n_honest-1 honest miners, ``n_honest`` = attacker,
    ``n_honest + 1`` = victim.  All pairs connected; the partition
    controller cuts everything from the victim except the attacker.
    """
    if attacker_blocks >= honest_blocks:
        raise ValueError(
            "scenario needs the honest chain to outgrow the attacker's"
        )
    n_nodes = n_honest + 2
    attacker = n_honest
    victim = n_honest + 1
    sim = Simulator(seed=seed)
    network = Network(
        sim, complete_topology(n_nodes), constant_histogram(0.05), 1e6
    )
    genesis = make_genesis()
    policy = BlockPolicy(max_block_bytes=2000)
    nodes = [
        BitcoinNode(i, sim, network, genesis, policy=policy)
        for i in range(n_nodes)
    ]
    partition = PartitionController(network)
    # The attacker also cuts itself off from the honest network so its
    # private chain stays private.
    partition.isolate(victim, except_peers={attacker})
    for peer in network.neighbors(attacker):
        if peer != victim:
            network.block_link(attacker, peer)

    # Attacker mines the fake chain straight to the victim.
    for _ in range(attacker_blocks):
        nodes[attacker].generate_block()
        sim.run()
    fake_tip = nodes[attacker].tip
    victim_accepted = nodes[victim].tip == fake_tip
    fake_depth = nodes[victim].height

    # Meanwhile the honest majority mines on.
    for i in range(honest_blocks):
        nodes[i % n_honest].generate_block()
        sim.run()
    honest_tip = nodes[0].tip
    honest_height = nodes[0].height

    # Heal: the victim reconnects and hears the heavier chain via a
    # re-announcement from any honest peer.
    partition.heal()
    for peer in network.neighbors(attacker):
        network.unblock_link(attacker, peer)
    for block_hash in nodes[0].tree.main_chain()[1:]:
        stored = nodes[0].get_object(block_hash)
        assert stored is not None
        network.send(0, victim, Message("object", stored, stored.size))
    sim.run()

    return EclipseReport(
        victim_accepted_fake_chain=victim_accepted,
        fake_depth_reached=fake_depth,
        honest_chain_heavier=honest_height > fake_depth,
        payment_pruned_after_heal=(
            nodes[victim].tip == honest_tip
            and not nodes[victim].tree.is_in_main_chain(fake_tip)
        ),
        honest_height=honest_height,
        fake_height=fake_depth,
    )
