"""Analytical models: fork rates, chain growth, throughput bounds."""

from .forks import (
    bitcoin_fork_probability,
    chain_growth_bounds,
    effective_throughput,
    expected_mining_power_utilization,
    expected_pruned_microblocks_per_key_block,
    ng_keyblock_fork_probability,
    ng_microblock_prune_probability,
)

__all__ = [
    "bitcoin_fork_probability",
    "chain_growth_bounds",
    "effective_throughput",
    "expected_mining_power_utilization",
    "expected_pruned_microblocks_per_key_block",
    "ng_keyblock_fork_probability",
    "ng_microblock_prune_probability",
]
