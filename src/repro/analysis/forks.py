"""Closed-form fork models for Nakamoto-consensus chains.

The paper's evaluation measures fork effects empirically; this module
provides the matching first-order analytics so simulation results can
be sanity-checked (and so parameter choices can be reasoned about
without running experiments):

* Bitcoin forks when a second block is mined during the propagation
  window of the first — exponential inter-block times give
  ``P(fork) = 1 − exp(−T_prop / T_block)``.
* Bitcoin-NG microblocks are pruned when a key block is mined during
  *their* propagation window (Figure 2); key blocks are Poisson with
  interval ``T_key``, so each microblock is pruned with probability
  ``1 − exp(−T_prop / T_key)`` — independent of the microblock rate,
  which is why NG scales.
"""

from __future__ import annotations

import math


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def bitcoin_fork_probability(
    block_interval: float, propagation_delay: float
) -> float:
    """P(a competing block is mined within one propagation window)."""
    _check_positive(
        block_interval=block_interval, propagation_delay=propagation_delay
    )
    return 1.0 - math.exp(-propagation_delay / block_interval)


def expected_mining_power_utilization(
    block_interval: float, propagation_delay: float
) -> float:
    """First-order utilization estimate: the non-forking fraction.

    Each fork wastes (at least) one block's work; at fork probability p
    the main chain keeps roughly a 1−p fraction of generated work.  The
    estimate is optimistic under heavy contention (fork cascades), which
    is exactly what the Figure 8 experiments show.
    """
    return 1.0 - bitcoin_fork_probability(block_interval, propagation_delay)


def ng_microblock_prune_probability(
    key_block_interval: float, propagation_delay: float
) -> float:
    """P(a given microblock is pruned by a leader switch) — Figure 2.

    A microblock is orphaned when a key block is mined on one of its
    ancestors before it reaches that miner; with Poisson key blocks the
    exposure window is one propagation delay.  Note the microblock
    *rate* does not appear: higher microblock frequency does not raise
    the per-microblock risk, the core of NG's scalability argument.
    """
    _check_positive(
        key_block_interval=key_block_interval,
        propagation_delay=propagation_delay,
    )
    return 1.0 - math.exp(-propagation_delay / key_block_interval)


def ng_keyblock_fork_probability(
    key_block_interval: float, propagation_delay: float
) -> float:
    """P(competing key blocks) — Figure 3's rare-but-long forks.

    Same form as Bitcoin's fork probability but at the key-block
    interval, and key blocks are small so their effective propagation
    delay is the latency floor, not the bandwidth-bound block time.
    """
    return bitcoin_fork_probability(key_block_interval, propagation_delay)


def expected_pruned_microblocks_per_key_block(
    microblock_interval: float, propagation_delay: float
) -> float:
    """How many trailing microblocks a leader switch prunes on average.

    The new key block misses microblocks issued during its propagation:
    ``T_prop / T_micro`` of them in expectation.
    """
    _check_positive(
        microblock_interval=microblock_interval,
        propagation_delay=propagation_delay,
    )
    return propagation_delay / microblock_interval


def chain_growth_bounds(
    block_rate: float, propagation_delay: float
) -> tuple[float, float]:
    """(lower, upper) bounds on main-chain growth, after [46].

    Sompolinsky & Zohar: with total block rate λ and network diameter
    delay D, the main chain grows at least λ/(1 + λD) and at most λ
    blocks per second.  The lower bound is tight when every fork wastes
    a full propagation window.
    """
    _check_positive(block_rate=block_rate, propagation_delay=propagation_delay)
    lower = block_rate / (1.0 + block_rate * propagation_delay)
    return lower, block_rate


def effective_throughput(
    block_interval: float,
    block_size: int,
    tx_size: int,
    propagation_delay: float,
) -> float:
    """Main-chain transactions per second, fork losses included."""
    _check_positive(block_interval=block_interval)
    if block_size <= 0 or tx_size <= 0:
        raise ValueError("sizes must be positive")
    txs_per_block = block_size // tx_size
    keep = expected_mining_power_utilization(
        block_interval, propagation_delay
    )
    return keep * txs_per_block / block_interval
