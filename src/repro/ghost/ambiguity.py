"""Appendix A: no single GHOST node may know the main chain.

The paper constructs three nodes, each seeing the chain 0→1→2→3→4 plus
*one* of three sibling branches 2′→3′, 2′→3″, 2′→3‴.  Locally each node
computes subtree(2) = 3 blocks > subtree(2′) = 2 blocks and follows the
chain through block 4 — yet globally subtree(2′) = 4 blocks wins, so
every node is wrong and none can know it.  This module reproduces the
exact construction and the checks the appendix argues from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bitcoin.blocks import Block, SyntheticPayload, build_block
from ..bitcoin.chain import TieBreak
from .chain import GhostTree


def _block(prev: Block, label: str) -> Block:
    """A unit-work block whose salt encodes the appendix's label."""
    return build_block(
        prev_hash=prev.hash,
        payload=SyntheticPayload(n_tx=0, salt=label.encode("utf-8")),
        timestamp=0.0,
        bits=0x207FFFFF,
        miner_id=0,
        reward=0,
    )


@dataclass(frozen=True)
class AppendixAScenario:
    """The full block set of Figure 9 plus each node's partial view."""

    blocks: dict[str, Block]
    global_tree: GhostTree
    node_views: tuple[GhostTree, GhostTree, GhostTree]

    def global_main_chain_labels(self) -> list[str]:
        by_hash = {block.hash: label for label, block in self.blocks.items()}
        return [by_hash[h] for h in self.global_tree.main_chain()]

    def view_main_chain_labels(self, node: int) -> list[str]:
        by_hash = {block.hash: label for label, block in self.blocks.items()}
        return [by_hash[h] for h in self.node_views[node].main_chain()]


def build_appendix_a() -> AppendixAScenario:
    """Construct Figure 9's trees: the global one and the three views."""
    genesis = build_block(
        prev_hash=bytes(32),
        payload=SyntheticPayload(n_tx=0, salt=b"0"),
        timestamp=0.0,
        bits=0x207FFFFF,
        miner_id=-1,
        reward=0,
    )
    b1 = _block(genesis, "1")
    b2 = _block(b1, "2")
    b3 = _block(b2, "3")
    b4 = _block(b3, "4")
    b2p = _block(b1, "2'")
    b3p = _block(b2p, "3'")
    b3pp = _block(b2p, "3''")
    b3ppp = _block(b2p, "3'''")
    blocks = {
        "0": genesis,
        "1": b1,
        "2": b2,
        "3": b3,
        "4": b4,
        "2'": b2p,
        "3'": b3p,
        "3''": b3pp,
        "3'''": b3ppp,
    }

    def tree_with(labels: list[str]) -> GhostTree:
        tree = GhostTree(genesis, tie_break=TieBreak.FIRST_SEEN)
        for label in labels:
            tree.add_block(blocks[label], arrival_time=0.0)
        return tree

    common = ["1", "2", "3", "4", "2'"]
    global_tree = tree_with(common + ["3'", "3''", "3'''"])
    views = (
        tree_with(common + ["3'"]),
        tree_with(common + ["3''"]),
        tree_with(common + ["3'''"]),
    )
    return AppendixAScenario(blocks, global_tree, views)


def no_view_matches_global(scenario: AppendixAScenario) -> bool:
    """The appendix's claim: every partial view picks the wrong chain."""
    global_chain = scenario.global_main_chain_labels()
    return all(
        scenario.view_main_chain_labels(node) != global_chain
        for node in range(3)
    )
