"""A GHOST node: Bitcoin block format, heaviest-subtree fork choice.

Per the paper's evaluation of GHOST (Section 9), nodes propagate *all*
blocks — pruned-branch blocks still influence fork choice, so peers must
learn them.  The gossip base class relays everything accepted, which is
exactly that behaviour.
"""

from __future__ import annotations

import struct

from ..bitcoin.blocks import (
    Block,
    InvalidBlock,
    SyntheticPayload,
    build_block,
    check_block,
)
from ..bitcoin.chain import TieBreak
from ..bitcoin.node import DEFAULT_BLOCK_REWARD, BlockPolicy
from ..metrics.collector import BlockInfo, ObservationLog
from ..net.gossip import GossipNode, RelayMode, StoredObject
from ..net.network import Network
from ..net.simulator import Simulator
from ..obs.trace import short_hash
from .chain import GhostTree


class GhostNode(GossipNode):
    """A miner/relay node running the GHOST selection rule."""

    KIND = "block"

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        genesis: Block,
        log: ObservationLog | None = None,
        policy: BlockPolicy | None = None,
        tie_break: TieBreak = TieBreak.FIRST_SEEN,
        relay_mode: RelayMode = RelayMode.INV,
        require_pow: bool = False,
        verification_seconds_per_byte: float = 0.0,
    ) -> None:
        super().__init__(
            node_id,
            sim,
            network,
            relay_mode=relay_mode,
            verification_seconds_per_byte=verification_seconds_per_byte,
        )
        self.log = log
        self.policy = policy or BlockPolicy()
        self.require_pow = require_pow
        self.tree = GhostTree(genesis, tie_break=tie_break, rng=sim.rng)
        self._block_counter = 0
        self.blocks_mined = 0
        self.blocks_rejected = 0
        registry = network.obs.registry
        self._c_gen = registry.counter(
            "node_blocks_generated", "blocks created, by kind", ("kind",)
        )
        self._c_tip = registry.counter(
            "node_tip_changes", "main-chain tip movements across all nodes"
        )
        if log is not None:
            log.record_tip(node_id, genesis.hash, sim.now)

    def generate_block(self) -> Block:
        """Mine a block on the GHOST-selected tip and gossip it."""
        tip = self.tree.tip
        payload = SyntheticPayload(
            n_tx=self.policy.synthetic_tx_count(),
            tx_size=self.policy.synthetic_tx_size,
            salt=struct.pack("<iI", self.node_id, self._block_counter) + tip,
        )
        self._block_counter += 1
        block = build_block(
            prev_hash=tip,
            payload=payload,
            timestamp=self.sim.now,
            bits=self.policy.bits,
            miner_id=self.node_id,
            reward=DEFAULT_BLOCK_REWARD,
        )
        self.blocks_mined += 1
        if self.log is not None:
            self.log.record_generation(
                BlockInfo(
                    hash=block.hash,
                    parent=tip,
                    miner=self.node_id,
                    gen_time=self.sim.now,
                    work=block.header.work,
                    kind=self.KIND,
                    n_tx=block.n_tx,
                    size=block.size,
                )
            )
            self.log.record_arrival(self.node_id, block.hash, self.sim.now)
        self._c_gen.labels(kind=self.KIND).inc()
        if self._tracer is not None:
            self._tracer.emit(
                "block_gen",
                self.sim.now,
                hash=short_hash(block.hash),
                parent=short_hash(tip),
                kind=self.KIND,
                miner=self.node_id,
                size=block.size,
                n_tx=block.n_tx,
            )
        self.announce(block.hash, self.KIND, block, block.size)
        return block

    def deliver(self, obj: StoredObject, sender: int | None):
        if obj.kind != self.KIND:
            return False  # unknown object kinds are not relayed
        block: Block = obj.data
        if sender is not None:
            if self.log is not None:
                self.log.record_arrival(self.node_id, block.hash, self.sim.now)
            if self._tracer is not None:
                self._tracer.emit(
                    "block_arrival",
                    self.sim.now,
                    node=self.node_id,
                    hash=short_hash(block.hash),
                    kind=self.KIND,
                )
        if sender is not None:
            try:
                check_block(block, require_pow=self.require_pow)
            except InvalidBlock:
                self.blocks_rejected += 1
                return False
        reorgs = self.tree.add_block(block, self.sim.now)
        if reorgs:
            if self.log is not None:
                self.log.record_tip(self.node_id, self.tree.tip, self.sim.now)
            self._c_tip.inc()
            if self._tracer is not None:
                self._tracer.emit(
                    "tip_change",
                    self.sim.now,
                    node=self.node_id,
                    tip=short_hash(self.tree.tip),
                )

    def best_object_id(self) -> bytes | None:
        return self.tree.tip

    @property
    def tip(self) -> bytes:
        return self.tree.tip
