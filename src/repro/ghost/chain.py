"""GHOST: the Greedy Heaviest-Observed Sub-Tree fork choice.

"While in Bitcoin the chain with the most work ... is the main chain,
with GHOST, at a fork, a node chooses the side whose sub-tree contains
more work (accumulated over all sub-tree blocks)" (Section 9,
Sompolinsky & Zohar [45]).

The tree maintains per-block *subtree work* incrementally: adding a
block bumps every ancestor's subtree weight, and the main chain is read
by greedily descending into the heaviest subtree from the genesis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..bitcoin.blocks import Block, InvalidBlock
from ..bitcoin.chain import Reorg, TieBreak


@dataclass
class GhostRecord:
    """A block plus GHOST-specific bookkeeping."""

    block: Block
    height: int
    own_work: int
    subtree_work: int
    arrival_time: float
    # Chain work along the path from genesis.  GHOST chooses tips by
    # subtree work, not this — it exists so protocol-agnostic tooling
    # (state digests, invariant checkers) can read one weight field
    # across every tree implementation.
    cumulative_work: int = 0
    children: list[bytes] = field(default_factory=list)

    @property
    def hash(self) -> bytes:
        return self.block.hash

    @property
    def parent_hash(self) -> bytes:
        return self.block.header.prev_hash


class GhostTree:
    """One node's view under the GHOST chain selection rule."""

    def __init__(
        self,
        genesis: Block,
        tie_break: TieBreak = TieBreak.FIRST_SEEN,
        rng: random.Random | None = None,
    ) -> None:
        self._records: dict[bytes, GhostRecord] = {}
        self._orphans: dict[bytes, list[tuple[Block, float]]] = {}
        self.tie_break = tie_break
        self.rng = rng or random.Random(0)
        self.genesis_hash = genesis.hash
        self._records[genesis.hash] = GhostRecord(
            genesis, height=0, own_work=0, subtree_work=0, arrival_time=0.0
        )
        self._tip = genesis.hash

    # -- queries --------------------------------------------------------

    def __contains__(self, block_hash: bytes) -> bool:
        return block_hash in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def tip(self) -> bytes:
        return self._tip

    @property
    def tip_record(self) -> GhostRecord:
        return self._records[self._tip]

    def record(self, block_hash: bytes) -> GhostRecord:
        return self._records[block_hash]

    def get(self, block_hash: bytes) -> GhostRecord | None:
        return self._records.get(block_hash)

    def height_of(self, block_hash: bytes) -> int:
        return self._records[block_hash].height

    def subtree_work(self, block_hash: bytes) -> int:
        return self._records[block_hash].subtree_work

    def main_chain(self, tip: bytes | None = None) -> list[bytes]:
        chain = []
        cursor = tip if tip is not None else self._tip
        while True:
            chain.append(cursor)
            if cursor == self.genesis_hash:
                break
            cursor = self._records[cursor].parent_hash
        chain.reverse()
        return chain

    def best_tip(self) -> bytes:
        """Greedy heaviest-subtree descent from the genesis."""
        cursor = self._records[self.genesis_hash]
        while cursor.children:
            best_children = []
            best_weight = -1
            for child_hash in cursor.children:
                child = self._records[child_hash]
                if child.subtree_work > best_weight:
                    best_weight = child.subtree_work
                    best_children = [child]
                elif child.subtree_work == best_weight:
                    best_children.append(child)
            if len(best_children) == 1 or self.tie_break is TieBreak.FIRST_SEEN:
                # FIRST_SEEN: children are in arrival order; keep the first.
                cursor = best_children[0]
            else:
                cursor = self.rng.choice(best_children)
        return cursor.hash

    # -- mutation -------------------------------------------------------

    def add_block(self, block: Block, arrival_time: float) -> list[Reorg]:
        """Insert a block (buffering orphans); return tip changes."""
        if block.hash in self._records:
            return []
        if block.header.prev_hash not in self._records:
            self._orphans.setdefault(block.header.prev_hash, []).append(
                (block, arrival_time)
            )
            return []
        reorgs = [self._connect(block, arrival_time)]
        pending = [block.hash]
        while pending:
            parent_hash = pending.pop()
            for orphan, orphan_time in self._orphans.pop(parent_hash, []):
                reorgs.append(
                    self._connect(orphan, max(orphan_time, arrival_time))
                )
                pending.append(orphan.hash)
        return [r for r in reorgs if r is not None]

    def _connect(self, block: Block, arrival_time: float) -> Reorg | None:
        parent = self._records[block.header.prev_hash]
        work = block.header.work
        record = GhostRecord(
            block,
            height=parent.height + 1,
            own_work=work,
            subtree_work=work,
            arrival_time=arrival_time,
            cumulative_work=parent.cumulative_work + work,
        )
        self._records[block.hash] = record
        parent.children.append(block.hash)
        # Credit the new work to every ancestor's subtree.
        cursor = parent
        while True:
            cursor.subtree_work += work
            if cursor.hash == self.genesis_hash:
                break
            cursor = self._records[cursor.parent_hash]
        new_tip = self.best_tip()
        if new_tip == self._tip:
            return None
        return self._switch_tip(new_tip)

    def _switch_tip(self, new_tip: bytes) -> Reorg:
        old_tip = self._tip
        # Lowest common ancestor walk.
        ra, rb = self._records[old_tip], self._records[new_tip]
        while ra.height > rb.height:
            ra = self._records[ra.parent_hash]
        while rb.height > ra.height:
            rb = self._records[rb.parent_hash]
        while ra.hash != rb.hash:
            ra = self._records[ra.parent_hash]
            rb = self._records[rb.parent_hash]
        fork = ra.hash
        disconnected = []
        cursor = old_tip
        while cursor != fork:
            disconnected.append(cursor)
            cursor = self._records[cursor].parent_hash
        connected = []
        cursor = new_tip
        while cursor != fork:
            connected.append(cursor)
            cursor = self._records[cursor].parent_hash
        connected.reverse()
        self._tip = new_tip
        return Reorg(old_tip, new_tip, tuple(disconnected), tuple(connected))

    def assert_consistent(self) -> None:
        """Subtree weights must equal the sum over descendants."""

        def subtree_sum(block_hash: bytes) -> int:
            record = self._records[block_hash]
            return record.own_work + sum(
                subtree_sum(child) for child in record.children
            )

        for block_hash, record in self._records.items():
            if subtree_sum(block_hash) != record.subtree_work:
                raise InvalidBlock("subtree work out of sync")
        if self._tip != self.best_tip():
            raise InvalidBlock("tip diverges from GHOST descent")
