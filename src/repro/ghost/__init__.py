"""GHOST baseline: heaviest-subtree fork choice (Sompolinsky & Zohar)."""

from .ambiguity import (
    AppendixAScenario,
    build_appendix_a,
    no_view_matches_global,
)
from .chain import GhostRecord, GhostTree
from .node import GhostNode

__all__ = [
    "AppendixAScenario",
    "GhostNode",
    "GhostRecord",
    "GhostTree",
    "build_appendix_a",
    "no_view_matches_global",
]
