"""Hash primitives used throughout the protocol stack.

Bitcoin and Bitcoin-NG identify blocks and transactions by the double
SHA-256 of their serialized form.  This module wraps those primitives and
adds *tagged* hashing, which namespaces hashes by purpose so that, e.g., a
microblock header can never collide with a transaction id.
"""

from __future__ import annotations

import hashlib

# Number of bytes in every digest this module produces.
DIGEST_SIZE = 32


def sha256(data: bytes) -> bytes:
    """Return the single SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256d(data: bytes) -> bytes:
    """Return the double SHA-256 digest of ``data``.

    This is Bitcoin's standard block/transaction hash.
    """
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


def hash160(data: bytes) -> bytes:
    """Return RIPEMD160(SHA256(data)), Bitcoin's address hash.

    Falls back to a truncated double-SHA256 when the local OpenSSL build
    does not provide ripemd160; the fallback preserves the 20-byte size
    and collision resistance needed by the ledger.
    """
    inner = hashlib.sha256(data).digest()
    try:
        ripemd = hashlib.new("ripemd160")
    except ValueError:
        return sha256d(inner)[:20]
    ripemd.update(inner)
    return ripemd.digest()


def tagged_hash(tag: str, data: bytes) -> bytes:
    """Return a domain-separated SHA-256 hash.

    The tag is hashed and prefixed twice, following the BIP-340
    construction, so hashes computed for one purpose (say, a key-block
    header) cannot be reinterpreted as hashes for another (a microblock
    signature payload).
    """
    tag_digest = sha256(tag.encode("utf-8"))
    return sha256(tag_digest + tag_digest + data)


def hash_to_int(digest: bytes) -> int:
    """Interpret a digest as a big-endian unsigned integer.

    Proof-of-work compares this integer against the target.
    """
    return int.from_bytes(digest, "big")
