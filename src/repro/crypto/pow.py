"""Proof-of-work targets, compact encoding, and work accounting.

A block is valid when the integer value of its header hash is below the
target.  Chain weight ("the most work done, aggregated over all key
blocks") is the sum of per-block work, where work = 2^256 / (target + 1),
matching Bitcoin Core's accounting.

The compact "bits" encoding is Bitcoin's 4-byte floating point format; we
implement it for round-trip fidelity with real headers.
"""

from __future__ import annotations

# The maximum possible target (difficulty 1 in this codebase).
MAX_TARGET = 2**256 - 1

# Bitcoin mainnet's genesis target, kept for realistic difficulty numbers.
GENESIS_TARGET = 0x00000000FFFF0000000000000000000000000000000000000000000000000000


class InvalidTarget(Exception):
    """Raised for targets outside (0, MAX_TARGET]."""


def check_target(target: int) -> None:
    """Validate a target value, raising :class:`InvalidTarget` if bad."""
    if not 0 < target <= MAX_TARGET:
        raise InvalidTarget(f"target {target:#x} out of range")


def meets_target(header_hash: bytes, target: int) -> bool:
    """Return True when the hash satisfies the proof-of-work condition."""
    check_target(target)
    return int.from_bytes(header_hash, "big") <= target


def work_from_target(target: int) -> int:
    """Return the expected number of hashes needed to meet ``target``."""
    check_target(target)
    return (2**256) // (target + 1)


def target_from_compact(bits: int) -> int:
    """Decode Bitcoin's compact 'nBits' representation into a target."""
    exponent = bits >> 24
    mantissa = bits & 0x007FFFFF
    if bits & 0x00800000:
        raise InvalidTarget("negative compact target")
    if exponent <= 3:
        target = mantissa >> (8 * (3 - exponent))
    else:
        target = mantissa << (8 * (exponent - 3))
    if target == 0:
        raise InvalidTarget("zero compact target")
    check_target(target)
    return target


def compact_from_target(target: int) -> int:
    """Encode a target in compact 'nBits' form (lossy, like Bitcoin)."""
    check_target(target)
    size = (target.bit_length() + 7) // 8
    if size <= 3:
        mantissa = target << (8 * (3 - size))
    else:
        mantissa = target >> (8 * (size - 3))
    if mantissa & 0x00800000:
        mantissa >>= 8
        size += 1
    return (size << 24) | mantissa


def difficulty_from_target(target: int, reference: int = GENESIS_TARGET) -> float:
    """Express a target as a difficulty relative to ``reference``."""
    check_target(target)
    return reference / target


def scale_target(target: int, factor: float, clamp: float = 4.0) -> int:
    """Scale a target by ``factor``, clamping per Bitcoin's retarget rule.

    Bitcoin bounds each adjustment to a factor of 4 in either direction to
    stop difficulty oscillation attacks; ``clamp`` exposes that bound.
    """
    check_target(target)
    if factor <= 0:
        raise ValueError("scale factor must be positive")
    factor = min(max(factor, 1.0 / clamp), clamp)
    scaled = int(target * factor)
    return max(1, min(scaled, MAX_TARGET))
