"""Pure-Python ECDSA over secp256k1.

The operational Bitcoin client signs with OpenSSL; this reproduction
implements the same curve from scratch so the library has no binary
dependencies.  Signing is deterministic (RFC 6979 style, via HMAC-SHA256)
so test vectors are stable and simulations are reproducible.

Performance note: a sign or verify costs on the order of a millisecond in
CPython, which mirrors the paper's observation that signature checking
adds "several milliseconds per microblock".  Experiments may disable
verification exactly as the paper's testbed did.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

# secp256k1 domain parameters (SEC 2).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


class InvalidSignature(Exception):
    """Raised when a signature fails verification."""


class InvalidPoint(Exception):
    """Raised when bytes do not decode to a curve point."""


@dataclass(frozen=True)
class Point:
    """An affine point on secp256k1; ``None`` coordinates encode infinity."""

    x: int | None
    y: int | None

    def is_infinity(self) -> bool:
        return self.x is None


INFINITY = Point(None, None)
G = Point(GX, GY)


def is_on_curve(point: Point) -> bool:
    """Return True if the point satisfies y^2 = x^3 + 7 (mod p)."""
    if point.is_infinity():
        return True
    assert point.x is not None and point.y is not None
    return (point.y * point.y - point.x * point.x * point.x - B) % P == 0


def point_add(p1: Point, p2: Point) -> Point:
    """Add two curve points using the affine group law."""
    if p1.is_infinity():
        return p2
    if p2.is_infinity():
        return p1
    assert p1.x is not None and p1.y is not None
    assert p2.x is not None and p2.y is not None
    if p1.x == p2.x and (p1.y + p2.y) % P == 0:
        return INFINITY
    if p1 == p2:
        slope = (3 * p1.x * p1.x) * pow(2 * p1.y, P - 2, P) % P
    else:
        slope = (p2.y - p1.y) * pow(p2.x - p1.x, P - 2, P) % P
    x3 = (slope * slope - p1.x - p2.x) % P
    y3 = (slope * (p1.x - x3) - p1.y) % P
    return Point(x3, y3)


# -- Jacobian-coordinate fast path -------------------------------------
#
# Affine addition needs a modular inversion per step, which dominates the
# cost of scalar multiplication in CPython.  Jacobian projective
# coordinates defer the inversion to a single final step, making
# sign/verify roughly an order of magnitude faster.  (x, y, z) represents
# the affine point (x/z², y/z³).

_JacPoint = tuple[int, int, int]
_JAC_INFINITY: _JacPoint = (0, 1, 0)


def _to_jacobian(point: Point) -> _JacPoint:
    if point.is_infinity():
        return _JAC_INFINITY
    assert point.x is not None and point.y is not None
    return (point.x, point.y, 1)


def _from_jacobian(point: _JacPoint) -> Point:
    x, y, z = point
    if z == 0:
        return INFINITY
    z_inv = pow(z, P - 2, P)
    z_inv2 = z_inv * z_inv % P
    return Point(x * z_inv2 % P, y * z_inv2 * z_inv % P)


def _jac_double(point: _JacPoint) -> _JacPoint:
    x, y, z = point
    if z == 0 or y == 0:
        return _JAC_INFINITY
    ysq = y * y % P
    s = 4 * x * ysq % P
    m = 3 * x * x % P  # curve a = 0
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _jac_add(p1: _JacPoint, p2: _JacPoint) -> _JacPoint:
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2 * z2z2 % P
    s2 = y2 * z1 * z1z1 % P
    if u1 == u2:
        if s1 != s2:
            return _JAC_INFINITY
        return _jac_double(p1)
    h = (u2 - u1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - s1) % P
    v = u1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = 2 * h * z1 * z2 % P
    return (nx, ny, nz)


# Fixed-base acceleration for the generator: a 4-bit windowed table
# ``_G_TABLE[w][d] = d * 16^w * G`` lets k·G run with ~64 additions and
# no doublings.  Built lazily on first use (costs ~1k point ops once).
_G_WINDOW_BITS = 4
_G_WINDOWS = 64  # 256 / 4
_G_TABLE: list[list[_JacPoint]] | None = None


def _build_g_table() -> list[list[_JacPoint]]:
    table: list[list[_JacPoint]] = []
    base = _to_jacobian(G)
    for _ in range(_G_WINDOWS):
        row = [_JAC_INFINITY]
        current = _JAC_INFINITY
        for _ in range((1 << _G_WINDOW_BITS) - 1):
            current = _jac_add(current, base)
            row.append(current)
        table.append(row)
        for _ in range(_G_WINDOW_BITS):
            base = _jac_double(base)
    return table


def _mul_g(k: int) -> _JacPoint:
    global _G_TABLE
    if _G_TABLE is None:
        _G_TABLE = _build_g_table()
    result = _JAC_INFINITY
    window = 0
    while k:
        digit = k & 0xF
        if digit:
            result = _jac_add(result, _G_TABLE[window][digit])
        k >>= 4
        window += 1
    return result


def _mul_generic(k: int, point: Point) -> _JacPoint:
    result = _JAC_INFINITY
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jac_add(result, addend)
        addend = _jac_double(addend)
        k >>= 1
    return result


def point_mul(k: int, point: Point = G) -> Point:
    """Return ``k * point``; the generator uses a precomputed table."""
    if k % N == 0 or point.is_infinity():
        return INFINITY
    k = k % N
    if point == G:
        return _from_jacobian(_mul_g(k))
    return _from_jacobian(_mul_generic(k, point))


def point_to_bytes(point: Point) -> bytes:
    """Serialize a point in 33-byte compressed SEC form."""
    if point.is_infinity():
        raise InvalidPoint("cannot serialize the point at infinity")
    assert point.x is not None and point.y is not None
    prefix = b"\x03" if point.y & 1 else b"\x02"
    return prefix + point.x.to_bytes(32, "big")


def point_from_bytes(data: bytes) -> Point:
    """Parse a 33-byte compressed SEC point, validating curve membership."""
    if len(data) != 33 or data[0] not in (2, 3):
        raise InvalidPoint(f"bad compressed point encoding ({len(data)} bytes)")
    x = int.from_bytes(data[1:], "big")
    if x >= P:
        raise InvalidPoint("x coordinate out of field range")
    y_squared = (pow(x, 3, P) + B) % P
    y = pow(y_squared, (P + 1) // 4, P)
    if (y * y) % P != y_squared:
        raise InvalidPoint("x coordinate is not on the curve")
    if (y & 1) != (data[0] & 1):
        y = P - y
    return Point(x, y)


def _rfc6979_nonce(secret: int, msg_hash: bytes) -> int:
    """Derive a deterministic nonce k from the key and message hash."""
    key_bytes = secret.to_bytes(32, "big")
    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac.new(k, v + b"\x00" + key_bytes + msg_hash, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + key_bytes + msg_hash, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = int.from_bytes(v, "big")
        if 1 <= candidate < N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def sign(secret: int, msg_hash: bytes) -> tuple[int, int]:
    """Produce an ECDSA signature (r, s) over a 32-byte message hash.

    The ``s`` value is canonicalized to the low half of the group order,
    matching Bitcoin's low-S rule, so signatures are non-malleable.
    """
    if not 1 <= secret < N:
        raise ValueError("secret key out of range")
    if len(msg_hash) != 32:
        raise ValueError("message hash must be 32 bytes")
    z = int.from_bytes(msg_hash, "big")
    k = _rfc6979_nonce(secret, msg_hash)
    while True:
        point = point_mul(k)
        assert point.x is not None
        r = point.x % N
        if r == 0:
            k = (k + 1) % N or 1
            continue
        s = (z + r * secret) * pow(k, N - 2, N) % N
        if s == 0:
            k = (k + 1) % N or 1
            continue
        if s > N // 2:
            s = N - s
        return r, s


def verify(public: Point, msg_hash: bytes, signature: tuple[int, int]) -> bool:
    """Return True iff ``signature`` is valid for ``msg_hash`` under ``public``."""
    if len(msg_hash) != 32:
        raise ValueError("message hash must be 32 bytes")
    r, s = signature
    if not (1 <= r < N and 1 <= s < N):
        return False
    if public.is_infinity() or not is_on_curve(public):
        return False
    z = int.from_bytes(msg_hash, "big")
    s_inv = pow(s, N - 2, N)
    u1 = z * s_inv % N
    u2 = r * s_inv % N
    # Stay in Jacobian coordinates until the single final inversion.
    jac = _jac_add(_mul_g(u1), _mul_generic(u2, public))
    point = _from_jacobian(jac)
    if point.is_infinity():
        return False
    assert point.x is not None
    return point.x % N == r


def signature_to_bytes(signature: tuple[int, int]) -> bytes:
    """Serialize (r, s) as a fixed 64-byte compact signature."""
    r, s = signature
    return r.to_bytes(32, "big") + s.to_bytes(32, "big")


def signature_from_bytes(data: bytes) -> tuple[int, int]:
    """Parse a 64-byte compact signature into (r, s)."""
    if len(data) != 64:
        raise InvalidSignature(f"compact signature must be 64 bytes, got {len(data)}")
    return int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big")
