"""Key pairs and addresses.

A Bitcoin-NG key block "contains a public key that will be used in the
subsequent microblocks"; nodes also own coins through addresses.  This
module provides both: deterministic key generation (seeded, so network
simulations are reproducible), signing/verification wrappers, and
base58check addresses derived from the public key hash.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from . import ecdsa
from .hashing import hash160, sha256d

_BASE58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

# Version byte for pay-to-pubkey-hash addresses (Bitcoin mainnet).
ADDRESS_VERSION = 0x00


class BadAddress(Exception):
    """Raised when an address string fails to decode or checksum."""


def base58check_encode(version: int, payload: bytes) -> str:
    """Encode version byte + payload with a 4-byte double-SHA checksum."""
    raw = bytes([version]) + payload
    raw += sha256d(raw)[:4]
    number = int.from_bytes(raw, "big")
    encoded = ""
    while number:
        number, digit = divmod(number, 58)
        encoded = _BASE58_ALPHABET[digit] + encoded
    # Preserve leading zero bytes as '1' characters.
    for byte in raw:
        if byte == 0:
            encoded = "1" + encoded
        else:
            break
    return encoded


def base58check_decode(encoded: str) -> tuple[int, bytes]:
    """Decode a base58check string to (version, payload); raises BadAddress."""
    number = 0
    for char in encoded:
        digit = _BASE58_ALPHABET.find(char)
        if digit < 0:
            raise BadAddress(f"invalid base58 character {char!r}")
        number = number * 58 + digit
    raw = number.to_bytes((number.bit_length() + 7) // 8, "big")
    pad = 0
    for char in encoded:
        if char == "1":
            pad += 1
        else:
            break
    raw = b"\x00" * pad + raw
    if len(raw) < 5:
        raise BadAddress("decoded payload too short")
    body, checksum = raw[:-4], raw[-4:]
    if sha256d(body)[:4] != checksum:
        raise BadAddress("checksum mismatch")
    return body[0], body[1:]


@dataclass(frozen=True)
class PublicKey:
    """A secp256k1 public key with address and verification helpers."""

    point: ecdsa.Point

    def to_bytes(self) -> bytes:
        return ecdsa.point_to_bytes(self.point)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        return cls(ecdsa.point_from_bytes(data))

    def address(self) -> str:
        """Return the base58check P2PKH-style address for this key."""
        return base58check_encode(ADDRESS_VERSION, hash160(self.to_bytes()))

    def verify(self, msg_hash: bytes, signature: bytes) -> bool:
        """Verify a 64-byte compact signature over a 32-byte hash."""
        try:
            parsed = ecdsa.signature_from_bytes(signature)
        except ecdsa.InvalidSignature:
            return False
        return ecdsa.verify(self.point, msg_hash, parsed)


@dataclass(frozen=True)
class PrivateKey:
    """A secp256k1 private key.

    Use :meth:`from_seed` for deterministic keys in simulations.
    """

    secret: int

    def __post_init__(self) -> None:
        if not 1 <= self.secret < ecdsa.N:
            raise ValueError("private key scalar out of range")

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "PrivateKey":
        """Derive a key deterministically from an arbitrary seed."""
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        digest = hashlib.sha256(b"repro/keygen:" + seed).digest()
        secret = int.from_bytes(digest, "big") % (ecdsa.N - 1) + 1
        return cls(secret)

    def public_key(self) -> PublicKey:
        return PublicKey(ecdsa.point_mul(self.secret))

    def sign(self, msg_hash: bytes) -> bytes:
        """Sign a 32-byte hash, returning a 64-byte compact signature."""
        return ecdsa.signature_to_bytes(ecdsa.sign(self.secret, msg_hash))


def address_from_pubkey_hash(pubkey_hash: bytes) -> str:
    """Build an address directly from a 20-byte public key hash."""
    if len(pubkey_hash) != 20:
        raise BadAddress("public key hash must be 20 bytes")
    return base58check_encode(ADDRESS_VERSION, pubkey_hash)


def pubkey_hash_from_address(address: str) -> bytes:
    """Extract the 20-byte public key hash from an address."""
    version, payload = base58check_decode(address)
    if version != ADDRESS_VERSION:
        raise BadAddress(f"unexpected address version {version}")
    if len(payload) != 20:
        raise BadAddress("address payload must be 20 bytes")
    return payload
