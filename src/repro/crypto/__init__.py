"""Cryptographic substrate: hashing, Merkle trees, ECDSA keys, proof of work.

Everything the protocols need is implemented here from scratch — the
library has no binary crypto dependency.  See :mod:`repro.crypto.ecdsa`
for the secp256k1 implementation and :mod:`repro.crypto.pow` for target
arithmetic.
"""

from .hashing import DIGEST_SIZE, hash160, hash_to_int, sha256, sha256d, tagged_hash
from .keys import (
    BadAddress,
    PrivateKey,
    PublicKey,
    address_from_pubkey_hash,
    base58check_decode,
    base58check_encode,
    pubkey_hash_from_address,
)
from .merkle import EMPTY_ROOT, merkle_proof, merkle_root, verify_proof
from .pow import (
    GENESIS_TARGET,
    MAX_TARGET,
    InvalidTarget,
    compact_from_target,
    difficulty_from_target,
    meets_target,
    scale_target,
    target_from_compact,
    work_from_target,
)

__all__ = [
    "DIGEST_SIZE",
    "EMPTY_ROOT",
    "GENESIS_TARGET",
    "MAX_TARGET",
    "BadAddress",
    "InvalidTarget",
    "PrivateKey",
    "PublicKey",
    "address_from_pubkey_hash",
    "base58check_decode",
    "base58check_encode",
    "compact_from_target",
    "difficulty_from_target",
    "hash160",
    "hash_to_int",
    "merkle_proof",
    "merkle_root",
    "meets_target",
    "pubkey_hash_from_address",
    "scale_target",
    "sha256",
    "sha256d",
    "tagged_hash",
    "target_from_compact",
    "verify_proof",
    "work_from_target",
]
