"""Merkle trees over transaction/entry hashes.

Blocks commit to their contents through the Merkle root of the entry
hashes, exactly as in Bitcoin.  Bitcoin-NG microblock headers carry "a
cryptographic hash of its ledger entries"; we use the same Merkle
construction for both protocols so entry-inclusion proofs work uniformly.

The tree duplicates the final hash of an odd level, matching Bitcoin's
(historically quirky) rule.  ``merkle_proof``/``verify_proof`` provide
logarithmic inclusion proofs for light-client style checks.
"""

from __future__ import annotations

from .hashing import sha256d

# Root used for a block that commits to no entries at all.
EMPTY_ROOT = b"\x00" * 32


def merkle_root(leaves: list[bytes]) -> bytes:
    """Compute the Merkle root of a list of 32-byte leaf hashes."""
    if not leaves:
        return EMPTY_ROOT
    level = list(leaves)
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            sha256d(level[i] + level[i + 1]) for i in range(0, len(level), 2)
        ]
    return level[0]


def merkle_proof(leaves: list[bytes], index: int) -> list[tuple[bytes, bool]]:
    """Build an inclusion proof for ``leaves[index]``.

    Returns a list of (sibling_hash, sibling_is_right) pairs from leaf to
    root.  An empty list proves membership in a single-leaf tree.
    """
    if not 0 <= index < len(leaves):
        raise IndexError(f"leaf index {index} out of range for {len(leaves)} leaves")
    proof: list[tuple[bytes, bool]] = []
    level = list(leaves)
    position = index
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        if position % 2 == 0:
            proof.append((level[position + 1], True))
        else:
            proof.append((level[position - 1], False))
        level = [
            sha256d(level[i] + level[i + 1]) for i in range(0, len(level), 2)
        ]
        position //= 2
    return proof


def verify_proof(
    leaf: bytes, proof: list[tuple[bytes, bool]], root: bytes
) -> bool:
    """Check that ``leaf`` hashes up to ``root`` via ``proof``."""
    current = leaf
    for sibling, sibling_is_right in proof:
        if sibling_is_right:
            current = sha256d(current + sibling)
        else:
            current = sha256d(sibling + current)
    return current == root
