"""Block propagation study: Figure 7.

"We perform experiments with different block sizes while changing the
block frequency so that the transaction-per-second load is constant.
Figure 7 shows a linear relation between the block size and the
propagation time, similar to the linear relation measured in the
Bitcoin operational network by Decker and Wattenhofer."

A block's propagation sample at a node is the delay between its
generation and that node's first sight of it; per size we report the
25/50/75th percentiles across all (block, node) samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.collector import ObservationLog
from .config import ExperimentConfig, Protocol
from .runner import run_experiment

# The x-axis of Figure 7.
PROPAGATION_SIZE_POINTS = (20_000, 40_000, 60_000, 80_000, 100_000)

# Constant transaction load maintained across sizes (tx/s).
CONSTANT_LOAD_TX_RATE = 3.5


@dataclass(frozen=True)
class PropagationPoint:
    """Latency percentiles for one block size."""

    block_size: int
    p25: float
    p50: float
    p75: float
    samples: int


def propagation_samples(log: ObservationLog) -> list[float]:
    """Generation-to-arrival delays for every (block, node) pair."""
    samples = []
    for info in log.index.all_blocks():
        for node in range(log.n_nodes):
            if node == info.miner:
                continue
            arrival = log.arrival_time(node, info.hash)
            if arrival is not None:
                samples.append(arrival - info.gen_time)
    return samples


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        raise ValueError("no samples")
    position = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[position]


def propagation_study(
    base: ExperimentConfig | None = None,
    sizes: tuple[int, ...] = PROPAGATION_SIZE_POINTS,
) -> list[PropagationPoint]:
    """Run Figure 7: propagation percentiles per block size.

    The block rate is adjusted per size to hold the transaction load
    constant, exactly as the paper describes.
    """
    base = base or ExperimentConfig()
    points = []
    for size in sizes:
        txs_per_block = max(1, size // base.tx_size)
        rate = CONSTANT_LOAD_TX_RATE / txs_per_block
        config = base.with_(
            protocol=Protocol.BITCOIN,
            block_size_bytes=size,
            block_rate=rate,
        )
        _, log = run_experiment(config)
        ordered = sorted(propagation_samples(log))
        points.append(
            PropagationPoint(
                block_size=size,
                p25=_percentile(ordered, 0.25),
                p50=_percentile(ordered, 0.50),
                p75=_percentile(ordered, 0.75),
                samples=len(ordered),
            )
        )
    return points


def linear_fit(points: list[PropagationPoint]) -> tuple[float, float, float]:
    """Least-squares fit of median latency vs size: (slope, intercept, R²).

    The paper's claim is qualitative linearity; the benchmark asserts a
    high coefficient of determination.
    """
    if len(points) < 2:
        raise ValueError("need at least two points")
    xs = [float(p.block_size) for p in points]
    ys = [p.p50 for p in points]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    ss_xx = sum((x - mean_x) ** 2 for x in xs)
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return slope, intercept, r_squared
