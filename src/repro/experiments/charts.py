"""ASCII charts: render sweep series in the terminal.

No plotting dependencies are available offline, so the harness renders
its Figure 8 panels as text — one character column per x position
bucket, one symbol per series.  Crude, but enough to *see* the
crossovers the paper plots.
"""

from __future__ import annotations

import math

from .sweeps import SweepResult

# Symbols assigned to series in order.
SERIES_SYMBOLS = "oxs*+#"


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
    title: str = "",
) -> str:
    """Plot labelled (x, y) series on a character grid.

    Series share axes; y is always linear, x optionally logarithmic
    (the figures' frequency/size axes are log-scaled).
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_x and min(xs) <= 0:
        raise ValueError("log x-axis needs positive x values")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_high == y_low:
        y_high = y_low + 1.0
    if x_high == x_low:
        x_high = x_low + 1.0

    def x_column(x: float) -> int:
        if log_x:
            position = (math.log(x) - math.log(x_low)) / (
                math.log(x_high) - math.log(x_low)
            )
        else:
            position = (x - x_low) / (x_high - x_low)
        return min(int(position * (width - 1)), width - 1)

    def y_row(y: float) -> int:
        position = (y - y_low) / (y_high - y_low)
        return height - 1 - min(int(position * (height - 1)), height - 1)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (label, pts) in enumerate(series.items()):
        symbol = SERIES_SYMBOLS[index % len(SERIES_SYMBOLS)]
        legend.append(f"{symbol} = {label}")
        for x, y in pts:
            row, column = y_row(y), x_column(x)
            current = grid[row][column]
            # Overlapping series show as '@'.
            grid[row][column] = symbol if current == " " else "@"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:>10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_low:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    axis_label = (
        f"{' ' * 12}{x_low:<.3g}{' ' * max(1, width - 16)}{x_high:>.3g}"
    )
    lines.append(axis_label)
    lines.append(" " * 12 + "   ".join(legend))
    return "\n".join(lines)


def sweep_chart(
    sweep: SweepResult, metric: str, width: int = 60, height: int = 14
) -> str:
    """One Figure 8 panel: both protocols' series for one metric."""
    series: dict[str, list[tuple[float, float]]] = {}
    for point in sweep.points:
        label = point.protocol.value
        series.setdefault(label, []).append((point.x, point.mean(metric)))
    for pts in series.values():
        pts.sort()
    return ascii_chart(
        series,
        width=width,
        height=height,
        log_x=True,
        title=f"{metric} vs {sweep.x_label}",
    )
