"""Experiment configuration.

Captures everything Section 7 fixes about the testbed: node count,
topology degree, latency histogram, pairwise bandwidth, the mining-power
distribution, and the per-protocol block parameters the two sweeps vary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..bitcoin.blocks import ARTIFICIAL_TX_SIZE
from ..mining.power import PAPER_EXPONENT
from ..net.gossip import RelayMode
from ..net.links import DEFAULT_BANDWIDTH_BPS


class Protocol(enum.Enum):
    """Which consensus protocol an experiment runs."""

    BITCOIN = "bitcoin"
    BITCOIN_NG = "bitcoin-ng"
    GHOST = "ghost"


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's full parameterization."""

    protocol: Protocol = Protocol.BITCOIN
    # Testbed shape (the paper used 1000 nodes; the default here is
    # sized for laptop benchmarks — raise it for fidelity runs).
    n_nodes: int = 100
    min_degree: int = 5
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    latency_seed: int = 2015
    power_exponent: float = PAPER_EXPONENT
    seed: int = 0
    relay_mode: RelayMode = RelayMode.INV

    # Block parameters.
    block_rate: float = 1.0 / 600.0  # Bitcoin blocks or NG microblocks /s
    block_size_bytes: int = 1_000_000  # Bitcoin block or NG microblock size
    tx_size: int = ARTIFICIAL_TX_SIZE
    key_block_rate: float = 1.0 / 100.0  # NG only

    # Run length: the paper runs "for 50-100 Bitcoin blocks or
    # Bitcoin-NG microblocks" per execution.
    target_blocks: int = 60
    # For Bitcoin-NG, additionally run long enough for this many key
    # blocks, so fairness/utilization (computed over key blocks) have a
    # meaningful sample even at high microblock frequencies.
    target_key_blocks: int = 20
    # Extra settle time (in propagation terms) after mining stops.
    cooldown: float = 30.0

    # Verification cost model (seconds per payload byte); nonzero makes
    # large blocks slower to relay, as the paper observed.
    verification_seconds_per_byte: float = 0.0

    # Section 9 future work: resolve key-block forks with the GHOST
    # heaviest-subtree rule instead of the heaviest chain (NG only).
    ng_ghost_fork_choice: bool = False

    # Observability (repro.obs).  Setting ``obs_dir`` enables the full
    # instrumentation layer — metric registry, JSONL event trace, and
    # periodic samplers — writing per-run files into that directory.
    # Living on the config means observability round-trips through
    # process-pool sweep workers: each worker rebuilds its own
    # instrumentation and writes files named by the cell's slug.
    obs_dir: str | None = None
    # Sampler period in virtual seconds (None → ~100 points per run).
    obs_sample_period: float | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.block_rate <= 0 or self.key_block_rate <= 0:
            raise ValueError("rates must be positive")
        if self.block_size_bytes <= 0 or self.tx_size <= 0:
            raise ValueError("sizes must be positive")
        if self.target_blocks < 1:
            raise ValueError("need at least one block")

    @property
    def duration(self) -> float:
        """Mining time needed to produce ``target_blocks`` on average.

        Bitcoin-NG runs also cover ``target_key_blocks`` key blocks.
        """
        base = self.target_blocks / self.block_rate
        if self.protocol is Protocol.BITCOIN_NG:
            return max(base, self.target_key_blocks / self.key_block_rate)
        return base

    @property
    def txs_per_block(self) -> int:
        return max(0, self.block_size_bytes // self.tx_size)

    def with_(self, **overrides: object) -> "ExperimentConfig":
        """A modified copy (dataclasses.replace with a shorter name)."""
        import dataclasses

        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


def constant_throughput_block_size(
    block_rate: float,
    target_tx_rate: float = 3.5,
    tx_size: int = ARTIFICIAL_TX_SIZE,
) -> int:
    """Block size holding payload throughput at the operational rate.

    The frequency sweep chooses "the block size (microblock size for
    Bitcoin-NG) such that the payload throughput is identical to that of
    Bitcoin's operational system, that is, one 1MB block every 10
    minutes" — i.e. ~3.5 tx/s regardless of frequency.
    """
    txs_per_block = max(1, round(target_tx_rate / block_rate))
    return txs_per_block * tx_size
