"""Experiment configuration.

Captures everything Section 7 fixes about the testbed: node count,
topology degree, latency histogram, pairwise bandwidth, the mining-power
distribution, and the per-protocol block parameters the two sweeps vary.
Also the two run-shaping extensions: the observability directory
(:mod:`repro.obs`) and the fault-injection scenario
(:mod:`repro.scenarios`) — both live on the config so they round-trip
through process-pool sweep workers like any other axis.

Configs are value objects: derive variants with :meth:`with_`, and
serialize with :meth:`to_dict` / :meth:`from_dict` — never poke
attributes (the dataclass is frozen precisely so nothing can).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..bitcoin.blocks import ARTIFICIAL_TX_SIZE
from ..mining.power import PAPER_EXPONENT
from ..net.gossip import RelayMode
from ..net.links import DEFAULT_BANDWIDTH_BPS

# Re-exported for backward compatibility: the enum moved to
# repro.protocols with the adapter registry it now belongs to.
from ..protocols import Protocol

__all__ = [
    "ExperimentConfig",
    "Protocol",
    "constant_throughput_block_size",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's full parameterization."""

    protocol: Protocol | str = Protocol.BITCOIN
    # Testbed shape (the paper used 1000 nodes; the default here is
    # sized for laptop benchmarks — raise it for fidelity runs).
    n_nodes: int = 100
    min_degree: int = 5
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    latency_seed: int = 2015
    power_exponent: float = PAPER_EXPONENT
    seed: int = 0
    relay_mode: RelayMode = RelayMode.INV

    # Block parameters.
    block_rate: float = 1.0 / 600.0  # Bitcoin blocks or NG microblocks /s
    block_size_bytes: int = 1_000_000  # Bitcoin block or NG microblock size
    tx_size: int = ARTIFICIAL_TX_SIZE
    key_block_rate: float = 1.0 / 100.0  # NG only
    # Satoshis of entry fee each synthetic transaction carries (NG
    # only).  Zero — the paper's testbed setting — leaves the 40%/60%
    # remuneration machinery computing empty splits; nonzero makes key
    # block coinbases carry real fee shares, which the fee-split
    # invariant (INV102) and the mutation probe key on.
    fee_per_tx: int = 0

    # Run length: the paper runs "for 50-100 Bitcoin blocks or
    # Bitcoin-NG microblocks" per execution.
    target_blocks: int = 60
    # For Bitcoin-NG, additionally run long enough for this many key
    # blocks, so fairness/utilization (computed over key blocks) have a
    # meaningful sample even at high microblock frequencies.
    target_key_blocks: int = 20
    # Extra settle time (in propagation terms) after mining stops.
    cooldown: float = 30.0

    # Verification cost model (seconds per payload byte); nonzero makes
    # large blocks slower to relay, as the paper observed.
    verification_seconds_per_byte: float = 0.0

    # Section 9 future work: resolve key-block forks with the GHOST
    # heaviest-subtree rule instead of the heaviest chain (NG only).
    ng_ghost_fork_choice: bool = False

    # Observability (repro.obs).  Setting ``obs_dir`` enables the full
    # instrumentation layer — metric registry, JSONL event trace, and
    # periodic samplers — writing per-run files into that directory.
    # Living on the config means observability round-trips through
    # process-pool sweep workers: each worker rebuilds its own
    # instrumentation and writes files named by the cell's slug.
    obs_dir: str | None = None
    # Sampler period in virtual seconds (None → ~100 points per run).
    obs_sample_period: float | None = None

    # Checked mode (repro.sanitizer).  When True, the run installs the
    # protocol's invariant checkers (via the adapter registry) and
    # sweeps node state every ``check_stride`` simulator events.
    # Checked runs are bit-identical to unchecked runs — checkers only
    # read state — and violations land on ``ExperimentResult.violations``.
    # ``check_mode`` picks the sweep strategy: "incremental" (dirty-set
    # tracking + the verified-signature cache), "full" (the original
    # sweep-everything strategy, uncached — the independent cross-check
    # path), or "audit" (incremental plus a periodic full-sweep audit
    # asserting the incremental path missed nothing).
    check: bool = False
    check_mode: str = "incremental"
    check_stride: int = 64

    # Fault injection (repro.scenarios): a validated, schema-versioned
    # scenario dict, or None for a bare run.  Stored normalized, so two
    # configs built from equivalent specs compare equal; ``None`` and
    # an empty fault list both mean "inject nothing" and are
    # bit-identical to a bare run.
    scenario: dict | None = None

    def __post_init__(self) -> None:
        if isinstance(self.protocol, str):
            # Accept the wire name for the built-ins; unknown strings
            # pass through for externally registered protocol adapters.
            try:
                object.__setattr__(self, "protocol", Protocol(self.protocol))
            except ValueError:
                pass
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.block_rate <= 0 or self.key_block_rate <= 0:
            raise ValueError("rates must be positive")
        if self.block_size_bytes <= 0 or self.tx_size <= 0:
            raise ValueError("sizes must be positive")
        if self.fee_per_tx < 0:
            raise ValueError("fee_per_tx must be non-negative")
        if self.target_blocks < 1:
            raise ValueError("need at least one block")
        if self.check_stride < 1:
            raise ValueError("check_stride must be at least 1")
        if self.check_mode not in ("incremental", "full", "audit"):
            raise ValueError(
                "check_mode must be 'incremental', 'full', or 'audit'"
            )
        if self.scenario is not None:
            from ..scenarios.spec import validate_scenario

            object.__setattr__(
                self, "scenario", validate_scenario(self.scenario)
            )

    @property
    def duration(self) -> float:
        """Mining time needed to produce ``target_blocks`` on average.

        Bitcoin-NG runs also cover ``target_key_blocks`` key blocks.
        """
        base = self.target_blocks / self.block_rate
        if self.protocol is Protocol.BITCOIN_NG:
            return max(base, self.target_key_blocks / self.key_block_rate)
        return base

    @property
    def txs_per_block(self) -> int:
        return max(0, self.block_size_bytes // self.tx_size)

    def with_(self, **overrides: object) -> "ExperimentConfig":
        """A modified copy (dataclasses.replace with a shorter name)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-friendly dict: enums become their wire-name strings.

        Round-trips exactly through :meth:`from_dict` —
        ``ExperimentConfig.from_dict(config.to_dict()) == config``.
        """
        data = dataclasses.asdict(self)
        data["protocol"] = (
            self.protocol.value
            if isinstance(self.protocol, Protocol)
            else self.protocol
        )
        data["relay_mode"] = self.relay_mode.value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output (or hand-written
        JSON).  Unknown keys are an error — a typo should fail loudly,
        not silently run the defaults."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig fields: {sorted(unknown)}"
            )
        kwargs = dict(data)
        relay_mode = kwargs.get("relay_mode")
        if isinstance(relay_mode, str):
            kwargs["relay_mode"] = RelayMode(relay_mode)
        return cls(**kwargs)


def constant_throughput_block_size(
    block_rate: float,
    target_tx_rate: float = 3.5,
    tx_size: int = ARTIFICIAL_TX_SIZE,
) -> int:
    """Block size holding payload throughput at the operational rate.

    The frequency sweep chooses "the block size (microblock size for
    Bitcoin-NG) such that the payload throughput is identical to that of
    Bitcoin's operational system, that is, one 1MB block every 10
    minutes" — i.e. ~3.5 tx/s regardless of frequency.
    """
    txs_per_block = max(1, round(target_tx_rate / block_rate))
    return txs_per_block * tx_size
