"""Difficulty dynamics under mining power variation (Section 5.2).

"Whichever adjustment rate is chosen, these protocols are all sensitive
to sudden mining power drops ...  since the difficulty is high, the
remaining miners will need a longer time to generate the next block,
potentially orders of magnitude longer."

This module simulates the full control loop: blocks arrive with
exponential intervals at a rate set by (current power / difficulty),
and an :class:`~repro.mining.difficulty.EpochRetargeter` adjusts the
difficulty every window.  Power drops/surges are injected on a
schedule, producing the stall-and-recover block-interval time series
the paper describes — and against which Bitcoin-NG's constant-rate
microblock serialization is contrasted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class PowerEvent:
    """At ``time``, total mining power becomes ``power`` (relative)."""

    time: float
    power: float


@dataclass
class DifficultyTrace:
    """The simulated time series."""

    block_times: list[float] = field(default_factory=list)
    difficulties: list[float] = field(default_factory=list)  # per block
    powers: list[float] = field(default_factory=list)  # per block

    def intervals(self) -> list[float]:
        return [
            b - a for a, b in zip(self.block_times, self.block_times[1:])
        ]

    def mean_interval(self, start: float, end: float) -> float:
        """Mean inter-block time among blocks in [start, end)."""
        times = [t for t in self.block_times if start <= t < end]
        if len(times) < 2:
            return float("inf")
        return (times[-1] - times[0]) / (len(times) - 1)


def simulate_difficulty_dynamics(
    target_interval: float,
    window: int,
    duration: float,
    power_schedule: list[PowerEvent],
    clamp: float = 4.0,
    seed: int = 0,
) -> DifficultyTrace:
    """Run the block-production / retargeting control loop.

    Difficulty is expressed as the expected time (seconds) one unit of
    power needs per block; the instantaneous block rate is
    ``power / difficulty``.  Retargeting multiplies difficulty by
    (target window duration / observed window duration), clamped.
    """
    if target_interval <= 0 or duration <= 0 or window < 1:
        raise ValueError("target interval, duration, window must be positive")
    if any(event.power <= 0 for event in power_schedule):
        raise ValueError("power must stay positive")
    rng = random.Random(seed)
    schedule = sorted(power_schedule, key=lambda e: e.time)
    power = 1.0
    difficulty = target_interval  # calibrated for power 1.0
    trace = DifficultyTrace()
    now = 0.0
    window_start_time = 0.0
    blocks_in_window = 0
    pending = list(schedule)
    while now < duration:
        # Apply any power change that occurs before the next block.
        rate = power / difficulty
        interval = rng.expovariate(rate)
        next_block = now + interval
        if pending and pending[0].time <= next_block:
            event = pending.pop(0)
            now = event.time
            power = event.power
            continue
        now = next_block
        if now >= duration:
            break
        trace.block_times.append(now)
        trace.difficulties.append(difficulty)
        trace.powers.append(power)
        blocks_in_window += 1
        if blocks_in_window == window:
            observed = now - window_start_time
            expected = target_interval * window
            # ``difficulty`` is seconds-per-block: blocks arriving too
            # fast (observed < expected) must *raise* it.
            factor = expected / observed
            factor = min(max(factor, 1.0 / clamp), clamp)
            difficulty *= factor
            window_start_time = now
            blocks_in_window = 0
    return trace


@dataclass(frozen=True)
class PowerDropReport:
    """Summary of a drop experiment for tests and benchmarks."""

    interval_before: float
    interval_during_stall: float
    interval_after_recovery: float
    blocks_to_recover: int

    @property
    def stall_factor(self) -> float:
        return self.interval_during_stall / self.interval_before


def run_power_drop(
    target_interval: float = 10.0,
    window: int = 20,
    drop_to: float = 0.25,
    drop_at_windows: int = 10,
    recover_windows: int = 30,
    seed: int = 0,
) -> PowerDropReport:
    """The canonical Section 5.2 scenario, summarized.

    Mines steadily, drops power to ``drop_to`` after ``drop_at_windows``
    retarget windows, and keeps going while difficulty adapts.
    """
    drop_time = target_interval * window * drop_at_windows
    duration = drop_time + target_interval * window * recover_windows / drop_to
    trace = simulate_difficulty_dynamics(
        target_interval=target_interval,
        window=window,
        duration=duration,
        power_schedule=[PowerEvent(drop_time, drop_to)],
        seed=seed,
    )
    before = trace.mean_interval(0.0, drop_time)
    # The stall: from the drop until difficulty first falls below the
    # pre-drop level times drop_to (fully adapted).
    adapted_difficulty = target_interval * drop_to * 1.10  # 10% slack
    recovery_index = None
    for index, time in enumerate(trace.block_times):
        if time <= drop_time:
            continue
        if trace.difficulties[index] <= adapted_difficulty:
            recovery_index = index
            break
    if recovery_index is None:
        recovery_index = len(trace.block_times) - 1
    recovery_time = trace.block_times[recovery_index]
    during = trace.mean_interval(drop_time, recovery_time)
    after = trace.mean_interval(recovery_time, trace.block_times[-1] + 1)
    drop_block = sum(1 for t in trace.block_times if t <= drop_time)
    return PowerDropReport(
        interval_before=before,
        interval_during_stall=during,
        interval_after_recovery=after,
        blocks_to_recover=recovery_index - drop_block,
    )
