"""Parameter sweeps: Figures 8a and 8b.

**Frequency sweep (Figure 8a)** — "For Bitcoin, we vary the frequency
of block generation ...  For Bitcoin-NG, keeping the key block
generation at one every 100 seconds, we vary the frequency of
microblock generation.  For each frequency, we choose the block size
... such that the payload throughput is identical to that of Bitcoin's
operational system, that is, one 1MB block every 10 minutes."

**Size sweep (Figure 8b)** — "We use high frequencies to observe the
systems' limits, setting Bitcoin's block frequency to 1/10sec and
Bitcoin-NG's microblock frequency to 1/10sec and key block frequency to
1/100sec", with block sizes 1280 B – 80 kB.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .config import ExperimentConfig, Protocol, constant_throughput_block_size
from .parallel import run_many
from .runner import ExperimentResult

# The x-axis of Figure 8a: block / microblock frequencies in 1/sec.
FREQUENCY_POINTS = (0.01, 0.0316, 0.1, 0.316, 1.0)

# The x-axis of Figure 8b: block / microblock sizes in bytes.
SIZE_POINTS = (1280, 2500, 5000, 10_000, 20_000, 40_000, 80_000)


@dataclass(frozen=True)
class SweepPoint:
    """One (x, protocol) cell of a sweep, possibly averaged over seeds."""

    x: float
    protocol: Protocol
    results: tuple[ExperimentResult, ...]

    def mean(self, metric: str) -> float:
        values = [getattr(r, metric) for r in self.results]
        return sum(values) / len(values)

    def extremes(self, metric: str) -> tuple[float, float]:
        values = [getattr(r, metric) for r in self.results]
        return min(values), max(values)


@dataclass
class SweepResult:
    """A full sweep: points per protocol per x value."""

    name: str
    x_label: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, protocol: Protocol) -> list[SweepPoint]:
        return [p for p in self.points if p.protocol is protocol]


def _run_grid(
    sweep: SweepResult,
    cells: list[tuple[float, Protocol, list[ExperimentConfig]]],
    jobs: int | None,
    progress=None,
) -> SweepResult:
    """Dispatch every cell's configs through the parallel executor.

    The flat config list preserves grid order, and ``run_many`` returns
    results in submission order, so regrouping by cell is a plain slice
    — identical output whatever the worker count.  ``progress`` (see
    :meth:`~repro.experiments.parallel.SweepExecutor.map`) fires once
    per finished cell, in completion order.
    """
    flat = [config for _, _, configs in cells for config in configs]
    results = run_many(flat, jobs=jobs, progress=progress)
    cursor = 0
    for x, protocol, configs in cells:
        chunk = tuple(results[cursor : cursor + len(configs)])
        cursor += len(configs)
        sweep.points.append(SweepPoint(x, protocol, chunk))
    return sweep


def frequency_sweep(
    base: ExperimentConfig | None = None,
    frequencies: tuple[float, ...] = FREQUENCY_POINTS,
    protocols: tuple[Protocol, ...] = (Protocol.BITCOIN, Protocol.BITCOIN_NG),
    seeds: tuple[int, ...] = (0,),
    jobs: int | None = None,
    progress=None,
) -> SweepResult:
    """Figure 8a: vary block (Bitcoin) / microblock (NG) frequency.

    Payload throughput is held at the operational 3.5 tx/s by sizing
    blocks inversely to frequency, exactly as in the paper.  Cells run
    across ``jobs`` worker processes (default: ``REPRO_JOBS`` or the
    CPU count); results are identical to a serial run.
    """
    base = base or ExperimentConfig()
    sweep = SweepResult(name="figure-8a", x_label="block frequency [1/sec]")
    cells = []
    for frequency in frequencies:
        size = constant_throughput_block_size(frequency, tx_size=base.tx_size)
        for protocol in protocols:
            configs = [
                base.with_(
                    protocol=protocol,
                    block_rate=frequency,
                    block_size_bytes=size,
                    seed=seed,
                )
                for seed in seeds
            ]
            cells.append((frequency, protocol, configs))
    return _run_grid(sweep, cells, jobs, progress=progress)


def size_sweep(
    base: ExperimentConfig | None = None,
    sizes: tuple[int, ...] = SIZE_POINTS,
    protocols: tuple[Protocol, ...] = (Protocol.BITCOIN, Protocol.BITCOIN_NG),
    seeds: tuple[int, ...] = (0,),
    block_rate: float = 1.0 / 10.0,
    key_block_rate: float = 1.0 / 100.0,
    jobs: int | None = None,
    progress=None,
) -> SweepResult:
    """Figure 8b: vary block / microblock size at high, fixed frequency."""
    base = base or ExperimentConfig()
    sweep = SweepResult(name="figure-8b", x_label="block size [byte]")
    cells = []
    for size in sizes:
        for protocol in protocols:
            configs = [
                base.with_(
                    protocol=protocol,
                    block_rate=block_rate,
                    key_block_rate=key_block_rate,
                    block_size_bytes=size,
                    seed=seed,
                )
                for seed in seeds
            ]
            cells.append((float(size), protocol, configs))
    return _run_grid(sweep, cells, jobs, progress=progress)


def log_spaced(low: float, high: float, count: int) -> list[float]:
    """Log-spaced sweep values, matching the figures' log x-axes."""
    if low <= 0 or high <= low or count < 2:
        raise ValueError("need 0 < low < high and count >= 2")
    step = (math.log(high) - math.log(low)) / (count - 1)
    return [math.exp(math.log(low) + i * step) for i in range(count)]
