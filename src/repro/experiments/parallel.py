"""Parallel experiment dispatch.

The paper's evaluation grid — {protocol} × {frequency or size} × {seed}
on the testbed — is embarrassingly parallel: every cell is an
independent seeded simulation.  :class:`SweepExecutor` fans cells out
over a :class:`~concurrent.futures.ProcessPoolExecutor` (separate
processes, since a simulation run is pure-Python CPU work the GIL would
serialize) and returns results in submission order, so a parallel sweep
is bit-identical to a serial one regardless of which worker finishes
first.

Worker count resolution, in priority order: an explicit ``jobs``
argument, the ``REPRO_JOBS`` environment variable, then the machine's
CPU count.  Requests beyond the CPUs actually available to this process
are clamped (and logged): simulation workers are pure CPU, so
oversubscribing cores only adds scheduler thrash — a 4-worker sweep on
a 1-CPU container used to run *slower* than serial.  ``jobs=1``
short-circuits to plain in-process execution — no pool, no pickling —
which keeps debugging and single-core machines simple.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Iterable, Sequence, TypeVar

from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment

# Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs usable by *this process* (affinity-aware, container-aware).

    ``os.cpu_count()`` reports the machine; a cgroup/affinity-limited
    process may own far fewer.  Falls back to the machine count where
    affinity masks do not exist (macOS, Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None = None, *, clamp: bool = True) -> int:
    """Resolve a worker count: ``jobs`` arg > ``REPRO_JOBS`` > CPU count.

    With ``clamp`` (the default), a request exceeding the CPUs available
    to this process is reduced to that limit and the clamp is logged —
    pure-CPU simulation workers gain nothing from oversubscription.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            jobs = int(env)
        else:
            jobs = available_cpus()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if clamp:
        cpus = available_cpus()
        if jobs > cpus:
            logger.info(
                "clamping %d requested sweep workers to %d available CPU%s",
                jobs,
                cpus,
                "" if cpus == 1 else "s",
            )
            jobs = cpus
    return jobs


def _run_one(config: ExperimentConfig) -> ExperimentResult:
    """Top-level worker entry point (must be picklable for the pool).

    Only the :class:`ExperimentResult` crosses the process boundary;
    the observation log (every block arrival at every node) stays in
    the worker, keeping the pickling cost per cell trivial.
    Observability round-trips too: a config with ``obs_dir`` set makes
    the worker rebuild its own instrumentation, write the cell's trace
    and metrics files (named by the cell's slug, so workers never
    collide), and return the metric snapshot on ``result.obs``.
    """
    result, _log = run_experiment(config)
    return result


class SweepExecutor:
    """Runs experiment configurations across a process pool.

    Deterministic by construction: results are returned in the order
    the configurations were given, independent of completion order, and
    each cell's simulation is seeded by its own config — so
    ``SweepExecutor(jobs=n).map(cs) == SweepExecutor(jobs=1).map(cs)``
    for any ``n``.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = resolve_jobs(jobs)

    def map_tasks(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Callable[[int, int, Any], None] | None = None,
    ) -> list[R]:
        """Run ``fn`` over every item; results come back in input order.

        The generic fan-out under :meth:`map`, also used by the
        mutation engine to evaluate mutants in parallel.  ``fn`` must be
        a top-level (picklable) callable and each item's work must be
        independent; determinism then holds by construction, since
        results are reordered to submission order regardless of which
        worker finishes first.

        ``progress`` is a per-item heartbeat: called as
        ``progress(index, total, result)`` with the item's *submission*
        index the moment that item finishes — in completion order under
        a pool, so a long run shows life as workers report in.  The
        callback only observes, so it cannot affect determinism.
        """
        ordered: Sequence[T] = list(items)
        workers = min(self.jobs, len(ordered))
        if workers <= 1:
            results = []
            for index, item in enumerate(ordered):
                result = fn(item)
                if progress is not None:
                    progress(index, len(ordered), result)
                results.append(result)
            return results
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, item) for item in ordered]
            if progress is not None:
                index_of = {future: i for i, future in enumerate(futures)}
                for future in as_completed(futures):
                    progress(index_of[future], len(ordered), future.result())
            return [future.result() for future in futures]

    def map(
        self,
        configs: Iterable[ExperimentConfig],
        progress: Callable[[int, int, ExperimentResult], None] | None = None,
    ) -> list[ExperimentResult]:
        """Run every config; results come back in input order."""
        return self.map_tasks(_run_one, configs, progress)


def run_many(
    configs: Iterable[ExperimentConfig],
    jobs: int | None = None,
    progress: Callable[[int, int, ExperimentResult], None] | None = None,
) -> list[ExperimentResult]:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    return SweepExecutor(jobs).map(configs, progress=progress)
