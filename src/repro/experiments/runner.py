"""The experiment runner: build a network, run a protocol, measure.

Mirrors the paper's methodology end to end: a random ≥5-degree graph
with histogram latencies and ~100 kbit/s pair bandwidth, mining replaced
by an exponential scheduler with pool-shaped power, mempools effectively
pre-seeded (payloads are the artificial identical transactions), a run
of 50–100 blocks, and the six Section 6 metrics computed afterwards.

The runner is protocol-agnostic: node construction and lifecycle hooks
live behind the :class:`~repro.protocols.ProtocolAdapter` registry, so
adding a protocol means registering an adapter — not editing this file.
Fault injection (:mod:`repro.scenarios`) rides on ``config.scenario``
and is wired here when present; a bare run never touches the engine.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field

from ..clock import wall_clock
from ..metrics import (
    ObservationLog,
    consensus_delay,
    fairness,
    mining_power_utilization,
    time_to_prune,
    time_to_win,
    transaction_frequency,
)
from ..mining.power import exponential_shares
from ..net.latency import default_histogram
from ..net.network import Network
from ..net.simulator import Simulator
from ..net.topology import random_topology
from ..obs.facade import Observability
from ..protocols import get_adapter, protocol_name
from .config import ExperimentConfig, Protocol

__all__ = [
    "ExperimentResult",
    "build_network",
    "run_experiment",
    "Protocol",
]


@dataclass(frozen=True)
class ExperimentResult:
    """The six paper metrics plus execution counters for one run."""

    config: ExperimentConfig
    consensus_delay: float
    fairness: float
    mining_power_utilization: float
    time_to_prune: float
    time_to_win: float
    transaction_frequency: float
    blocks_generated: int
    main_chain_length: int
    duration: float
    # Execution counters (perf accounting, not paper metrics).
    events_processed: int = 0
    messages_delivered: int = 0
    # Faults the scenario engine actually fired (0 for bare runs).
    faults_injected: int = 0
    # Invariant violations the sanitizer found (empty unless
    # config.check).  This is the one canonical surface: a tuple of
    # frozen ViolationRecords that participates in equality and pickles
    # through sweep workers.  The old integer field is a deprecated
    # property below — use ``len(result.violations)``.
    violations: tuple = field(default=(), repr=False)
    # Wall-clock phases and the observability snapshot.  Excluded from
    # equality: wall time is machine noise, and the snapshot must not
    # break the parallel-equals-serial determinism guarantee.
    wall_setup_seconds: float = field(default=0.0, compare=False)
    wall_simulate_seconds: float = field(default=0.0, compare=False)
    obs: dict | None = field(default=None, compare=False, repr=False)

    @property
    def invariant_violations(self) -> int:
        """Deprecated: the violation count.  Use ``len(result.violations)``.

        Kept so external callers of the old dual surface keep working;
        the JSON emitted by ``repro run --json`` still carries an
        ``invariant_violations`` count key, which is unaffected.
        """
        warnings.warn(
            "ExperimentResult.invariant_violations is deprecated; "
            "use len(result.violations)",
            DeprecationWarning,
            stacklevel=2,
        )
        return len(self.violations)

    def as_row(self) -> dict[str, float]:
        """Flat numeric dict, convenient for table printing."""
        return {
            "consensus_delay": self.consensus_delay,
            "fairness": self.fairness,
            "mining_power_utilization": self.mining_power_utilization,
            "time_to_prune": self.time_to_prune,
            "time_to_win": self.time_to_win,
            "transaction_frequency": self.transaction_frequency,
        }


def build_network(
    config: ExperimentConfig, sim: Simulator, obs=None
) -> Network:
    """The Section 7 network: random graph + histogram latencies."""
    topo_rng = random.Random(config.seed * 7919 + 13)
    topology = random_topology(
        config.n_nodes, min_degree=config.min_degree, rng=topo_rng
    )
    histogram = default_histogram(seed=config.latency_seed)
    latency_rng = random.Random(config.seed * 104729 + 29)
    return Network(
        sim,
        topology,
        histogram,
        bandwidth_bps=config.bandwidth_bps,
        latency_rng=latency_rng,
        obs=obs,
    )


def run_experiment(
    config: ExperimentConfig, obs=None, sanitizer=None, profiler=None
) -> tuple[ExperimentResult, ObservationLog]:
    """Run one full experiment and compute all metrics.

    ``obs`` overrides the observability wiring (tests inject in-memory
    sinks this way); by default it is built from the config —
    :data:`~repro.obs.facade.NULL_OBS` unless ``config.obs_dir`` is
    set.  ``sanitizer`` overrides the checked-mode wiring the same way:
    pass a prepared :class:`~repro.sanitizer.runtime.SanitizerRuntime`
    (digest recording does this), or leave it to be built from the
    protocol adapter's checker set when ``config.check`` is on.
    ``profiler`` (a :class:`~repro.prof.runtime.ProfilerRuntime`)
    claims the simulator's profiler slot, taps the trace stream for
    epoch spans, and — combined with ``config.check`` — times each
    invariant checker; it observes wall time only, so a profiled run is
    bit-identical to a bare one.  Setup (topology, links, nodes) and
    simulation are timed separately so event-rate figures cover only
    the simulate phase.
    """
    setup_started = wall_clock()
    adapter = get_adapter(config.protocol)
    sim = Simulator(seed=config.seed)
    if obs is None:
        obs = Observability.from_config(config)
    if profiler is not None:
        obs = profiler.wrap_observability(obs)
    if sanitizer is None and config.check:
        from .instrumentation import RunInstrumentation

        sanitizer = RunInstrumentation.from_config(config).build_sanitizer(
            adapter, tracer=obs.tracer, profiler=profiler
        )
    network = build_network(config, sim, obs=obs)
    log = ObservationLog(config.n_nodes)
    shares = exponential_shares(config.n_nodes, config.power_exponent)
    nodes, scheduler = adapter.build_nodes(config, sim, network, log, shares)
    horizon = config.duration + config.cooldown
    meta = {
        "protocol": protocol_name(config.protocol),
        "n_nodes": config.n_nodes,
        "seed": config.seed,
        "block_rate": config.block_rate,
        "block_size_bytes": config.block_size_bytes,
    }
    if config.scenario is not None:
        meta["scenario"] = config.scenario.get("name", "unnamed")
    obs.install(sim, network, nodes, horizon, meta=meta)
    if sanitizer is not None:
        sanitizer.install(sim, nodes)
    engine = None
    if config.scenario is not None:
        from ..scenarios.engine import ScenarioEngine

        engine = ScenarioEngine(
            config.scenario,
            sim=sim,
            network=network,
            nodes=nodes,
            adapter=adapter,
            scheduler=scheduler,
            shares=shares,
            seed=config.seed,
            tracer=obs.tracer,
        )
        engine.install()
    if profiler is not None:
        profiler.install(sim, config.n_nodes)
    wall_setup = wall_clock() - setup_started
    simulate_started = wall_clock()
    scheduler.start()
    sim.run(until=config.duration)
    scheduler.stop()
    sim.run(until=horizon)
    wall_simulate = wall_clock() - simulate_started
    if sanitizer is not None:
        sanitizer.finalize()
    log.finalize(horizon)
    snapshot = obs.finalize(network=network, end_time=horizon)
    result = ExperimentResult(
        config=config,
        consensus_delay=consensus_delay(log),
        fairness=fairness(log, power_shares=shares),
        mining_power_utilization=mining_power_utilization(log),
        time_to_prune=time_to_prune(log),
        time_to_win=time_to_win(log),
        transaction_frequency=transaction_frequency(log),
        blocks_generated=len(log.index),
        main_chain_length=len(log.main_chain()),
        duration=log.duration,
        events_processed=sim.events_processed,
        messages_delivered=network.messages_delivered,
        faults_injected=engine.faults_fired if engine is not None else 0,
        violations=(
            tuple(sanitizer.violations) if sanitizer is not None else ()
        ),
        wall_setup_seconds=wall_setup,
        wall_simulate_seconds=wall_simulate,
        obs=snapshot,
    )
    return result, log
