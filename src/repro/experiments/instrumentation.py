"""One options object for the run-shaping instrumentation surface.

``repro run`` and ``repro sweep`` (and the ``repro check`` / ``repro
prof`` subcommands) share the same instrumentation flags: ``--check``
(with its mode), ``--obs``, and ``--scenario``.  Before this module each
subcommand parsed and wired them ad hoc; :class:`RunInstrumentation`
parses them **once** (:meth:`RunInstrumentation.from_args`), stamps them
onto an :class:`~repro.experiments.config.ExperimentConfig`
(:meth:`RunInstrumentation.apply`), and builds the sanitizer runtime
(:meth:`RunInstrumentation.build_sanitizer`) in one place.

Everything round-trips through the config: ``SweepExecutor`` workers
receive the config in a subprocess and rebuild identical instrumentation
from it (:meth:`RunInstrumentation.from_config`), which is how a sweep
cell in a pool worker ends up checked/observed exactly like a serial
run.  The CLI flags themselves are unchanged — they are thin aliases
into this object now.

No environment variables are read here: ``REPRO_CHECK`` is resolved in
:mod:`repro.cli`, the one config entry point (lint rule NG202), and
arrives as an already-resolved mode string.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from .config import ExperimentConfig

#: ``config.check_mode`` values and what they mean for the sanitizer
#: runtime; "audit" runs incremental sweeps plus the periodic
#: full-sweep cross-check.
CHECK_MODES = ("incremental", "full", "audit")


def resolve_check_mode(
    flag_value: str | None, env_value: str = ""
) -> str | None:
    """The requested check mode, or ``None`` for an unchecked run.

    ``flag_value`` is the ``--check`` argument (``None`` absent, a mode
    string present); ``env_value`` is the raw ``REPRO_CHECK`` contents —
    empty/``0`` off, a mode name for that mode, any other truthy value
    for the default incremental mode.
    """
    if flag_value is not None:
        return flag_value
    if env_value in ("", "0"):
        return None
    if env_value in CHECK_MODES:
        return env_value
    return "incremental"


@dataclass(frozen=True)
class RunInstrumentation:
    """Parsed instrumentation options for one run (or every sweep cell)."""

    check: bool = False
    check_mode: str = "incremental"
    check_stride: int = 64
    obs_dir: str | None = None
    scenario: dict | None = None

    @classmethod
    def from_args(
        cls,
        args: argparse.Namespace,
        *,
        check_mode: str | None = None,
    ) -> "RunInstrumentation":
        """Parse the shared flag surface from an argparse namespace.

        ``check_mode`` is the already-resolved mode (flag + environment,
        see :func:`resolve_check_mode`) or ``None`` for unchecked.
        Missing attributes simply leave their option off, so subcommands
        that expose only part of the surface work unchanged.
        """
        scenario = None
        scenario_path = getattr(args, "scenario", None)
        if scenario_path is not None:
            from ..scenarios import ScenarioError, load_scenario

            try:
                scenario = load_scenario(scenario_path)
            except ScenarioError as exc:
                raise SystemExit(f"error: {exc}")
        stride = getattr(args, "check_stride", None)
        return cls(
            check=check_mode is not None,
            check_mode=check_mode if check_mode is not None else "incremental",
            check_stride=stride if stride is not None else 64,
            obs_dir=getattr(args, "obs", None),
            scenario=scenario,
        )

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "RunInstrumentation":
        """The instrumentation a config describes (worker-side rebuild)."""
        return cls(
            check=config.check,
            check_mode=config.check_mode,
            check_stride=config.check_stride,
            obs_dir=config.obs_dir,
            scenario=config.scenario,
        )

    def apply(self, config: ExperimentConfig) -> ExperimentConfig:
        """Stamp these options onto a config (the single wiring point)."""
        return config.with_(
            check=self.check,
            check_mode=self.check_mode,
            check_stride=self.check_stride,
            obs_dir=self.obs_dir,
            scenario=self.scenario,
        )

    def build_sanitizer(
        self,
        adapter: object = None,
        *,
        tracer: object = None,
        profiler: object = None,
        digest_stride: int = 0,
    ):
        """The run's :class:`~repro.sanitizer.runtime.SanitizerRuntime`.

        ``None`` when neither checking nor digest capture is requested.
        ``adapter`` supplies the protocol's checker set (skipped for
        digest-only runs); legacy adapters whose ``invariant_checkers``
        takes no mode argument still work — they are called bare and
        their checkers run through the incremental runtime's default
        hooks.
        """
        if not self.check and digest_stride <= 0:
            return None
        from ..sanitizer.runtime import SanitizerRuntime

        mode = self.check_mode
        if not getattr(adapter, "supports_incremental_check", True):
            # The adapter opted its checkers out of incremental sweeps:
            # run them the way they were written, as full sweeps.
            mode = "full"
        checkers = ()
        if self.check and adapter is not None:
            checkers = adapter_checkers(adapter, mode)
        return SanitizerRuntime(
            checkers,
            stride=self.check_stride,
            mode=mode,
            tracer=tracer,
            digest_stride=digest_stride,
            profiler=profiler,
        )


def adapter_checkers(adapter: object, check_mode: str) -> list:
    """An adapter's checker set for a run mode, with the legacy fallback.

    ``check_mode`` "audit" still builds incremental checkers — the audit
    machinery itself constructs the independent uncached replicas.
    Adapters registered before the mode parameter existed (or declaring
    ``supports_incremental_check = False``) are called without it.
    """
    factory_mode = "full" if check_mode == "full" else "incremental"
    if not getattr(adapter, "supports_incremental_check", True):
        factory_mode = "full"
    try:
        return adapter.invariant_checkers(mode=factory_mode)  # type: ignore[attr-defined]
    except TypeError:
        return adapter.invariant_checkers()  # type: ignore[attr-defined]
