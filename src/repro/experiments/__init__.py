"""Experiment harness: configurations, runner, sweeps, and reporting."""

from .charts import ascii_chart, sweep_chart
from .config import (
    ExperimentConfig,
    Protocol,
    constant_throughput_block_size,
)
from .difficulty_dynamics import (
    DifficultyTrace,
    PowerDropReport,
    PowerEvent,
    run_power_drop,
    simulate_difficulty_dynamics,
)
from .propagation import (
    CONSTANT_LOAD_TX_RATE,
    PROPAGATION_SIZE_POINTS,
    PropagationPoint,
    linear_fit,
    propagation_samples,
    propagation_study,
)
from .instrumentation import RunInstrumentation, resolve_check_mode
from .parallel import JOBS_ENV_VAR, SweepExecutor, resolve_jobs, run_many
from .reporting import (
    METRIC_COLUMNS,
    crossover_summary,
    format_propagation_table,
    format_series,
    format_sweep_table,
)
from .runner import ExperimentResult, build_network, run_experiment
from .sweeps import (
    FREQUENCY_POINTS,
    SIZE_POINTS,
    SweepPoint,
    SweepResult,
    frequency_sweep,
    log_spaced,
    size_sweep,
)

__all__ = [
    "CONSTANT_LOAD_TX_RATE",
    "FREQUENCY_POINTS",
    "JOBS_ENV_VAR",
    "SweepExecutor",
    "resolve_jobs",
    "run_many",
    "METRIC_COLUMNS",
    "PROPAGATION_SIZE_POINTS",
    "SIZE_POINTS",
    "DifficultyTrace",
    "ExperimentConfig",
    "ExperimentResult",
    "PowerDropReport",
    "PowerEvent",
    "PropagationPoint",
    "Protocol",
    "RunInstrumentation",
    "resolve_check_mode",
    "run_power_drop",
    "simulate_difficulty_dynamics",
    "SweepPoint",
    "SweepResult",
    "ascii_chart",
    "build_network",
    "sweep_chart",
    "constant_throughput_block_size",
    "crossover_summary",
    "format_propagation_table",
    "format_series",
    "format_sweep_table",
    "frequency_sweep",
    "linear_fit",
    "log_spaced",
    "propagation_samples",
    "propagation_study",
    "run_experiment",
    "size_sweep",
]
