"""Plain-text reporting of sweep and study results.

The benchmarks print the same rows/series the paper's figures plot, so
`pytest benchmarks/ --benchmark-only` output can be compared against
the paper shape by shape.
"""

from __future__ import annotations

from .config import Protocol
from .propagation import PropagationPoint
from .sweeps import SweepResult

# Figure 8's six panels, as (attribute, printable header) pairs.
METRIC_COLUMNS = (
    ("time_to_prune", "TTPrune[s]"),
    ("time_to_win", "TTWin[s]"),
    ("mining_power_utilization", "PowerUtil"),
    ("fairness", "Fairness"),
    ("consensus_delay", "ConsDelay[s]"),
    ("transaction_frequency", "TxFreq[1/s]"),
)


def format_sweep_table(sweep: SweepResult) -> str:
    """One row per (x, protocol) with all six metrics."""
    header = [f"{sweep.x_label:>24}", f"{'protocol':>12}"]
    header.extend(f"{label:>13}" for _, label in METRIC_COLUMNS)
    lines = ["".join(header)]
    for point in sweep.points:
        row = [f"{point.x:>24.4g}", f"{point.protocol.value:>12}"]
        for attribute, _ in METRIC_COLUMNS:
            row.append(f"{point.mean(attribute):>13.4g}")
        lines.append("".join(row))
    return "\n".join(lines)


def format_series(sweep: SweepResult, metric: str) -> str:
    """One metric's two series side by side, like one Figure 8 panel."""
    protocols = sorted({p.protocol for p in sweep.points}, key=lambda p: p.value)
    lines = [
        f"{sweep.x_label:>24}"
        + "".join(f"{protocol.value:>14}" for protocol in protocols)
    ]
    xs = sorted({p.x for p in sweep.points})
    by_key = {(p.x, p.protocol): p for p in sweep.points}
    for x in xs:
        row = [f"{x:>24.4g}"]
        for protocol in protocols:
            point = by_key.get((x, protocol))
            row.append(
                f"{point.mean(metric):>14.4g}" if point else f"{'-':>14}"
            )
        lines.append("".join(row))
    return "\n".join(lines)


def format_propagation_table(points: list[PropagationPoint]) -> str:
    """Figure 7 as rows of size → latency percentiles."""
    lines = [
        f"{'size[B]':>10}{'p25[s]':>10}{'p50[s]':>10}{'p75[s]':>10}{'samples':>10}"
    ]
    for point in points:
        lines.append(
            f"{point.block_size:>10}{point.p25:>10.3f}{point.p50:>10.3f}"
            f"{point.p75:>10.3f}{point.samples:>10}"
        )
    return "\n".join(lines)


def crossover_summary(sweep: SweepResult, metric: str, lower_is_better: bool = True) -> str:
    """Who wins at each x — the "shape" comparison the repro targets."""
    bitcoin = {p.x: p.mean(metric) for p in sweep.series(Protocol.BITCOIN)}
    ng = {p.x: p.mean(metric) for p in sweep.series(Protocol.BITCOIN_NG)}
    lines = []
    for x in sorted(set(bitcoin) & set(ng)):
        if lower_is_better:
            winner = "bitcoin-ng" if ng[x] <= bitcoin[x] else "bitcoin"
        else:
            winner = "bitcoin-ng" if ng[x] >= bitcoin[x] else "bitcoin"
        lines.append(f"{metric} @ x={x:g}: {winner}")
    return "\n".join(lines)
