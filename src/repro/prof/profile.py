"""The profile artifact: schema-versioned attribution of one run's wall time.

A :class:`Profile` is what ``repro prof run`` writes and what ``repro
prof report``/``diff`` read back: where the wall-clock seconds of one
experiment went, bucketed into named *phases* (heap pop, per-handler
dispatch, sanitizer sweeps, the profiled loop's own residual), plus
per-node totals, per-INV1xx-checker costs, and the run's NG epoch
spans.  Everything is wall-clock *accounting* — virtual time, RNG
state, and event order are untouched, so a profiled run is bit-identical
to a bare one (pinned in ``tests/test_determinism.py``).

The JSON layout is append-only within a schema version: new fields may
appear, removals or meaning changes bump ``PROFILE_VERSION``.  The
folded-stack export (:func:`to_folded`) is one ``frame;frame count``
line per phase with integer microsecond counts — the input format of
standard flamegraph renderers (flamegraph.pl, inferno, speedscope).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

PROFILE_VERSION = 1

# Phases synthesized by the profiler itself (not handler-derived).
PHASE_HEAPPOP = "heappop"
PHASE_DISPATCH = "dispatch"
PHASE_SANITIZE = "sanitize"


class ProfileError(Exception):
    """Raised when a profile file cannot be read or understood."""


@dataclass
class PhaseStat:
    """Accumulated cost of one named phase."""

    calls: int = 0
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {"calls": self.calls, "seconds": round(self.seconds, 9)}

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseStat":
        return cls(calls=int(data["calls"]), seconds=float(data["seconds"]))

    @property
    def us_per_call(self) -> float:
        if not self.calls:
            return 0.0
        return self.seconds / self.calls * 1e6


@dataclass
class EpochSpan:
    """One NG leader epoch: key block -> microblock stream -> handover.

    ``closed`` is False for epochs still open when the run ended (the
    last leader never observes its own loss of leadership).
    """

    leader: int
    key_block: str
    start: float
    end: float
    micros: int = 0
    closed: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "leader": self.leader,
            "key_block": self.key_block,
            "start": round(self.start, 9),
            "end": round(self.end, 9),
            "micros": self.micros,
            "closed": self.closed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EpochSpan":
        return cls(
            leader=int(data["leader"]),
            key_block=str(data.get("key_block", "")),
            start=float(data["start"]),
            end=float(data["end"]),
            micros=int(data.get("micros", 0)),
            closed=bool(data.get("closed", True)),
        )


@dataclass
class Profile:
    """One run's complete wall-time attribution."""

    meta: dict = field(default_factory=dict)
    wall_setup_seconds: float = 0.0
    wall_simulate_seconds: float = 0.0
    loop_wall_seconds: float = 0.0
    events_processed: int = 0
    phases: dict[str, PhaseStat] = field(default_factory=dict)
    checkers: dict[str, PhaseStat] = field(default_factory=dict)
    # Per-node handler cost, indexed by node id: [calls, seconds].
    nodes: list[list] = field(default_factory=list)
    spans: list[EpochSpan] = field(default_factory=list)

    # -- derived -------------------------------------------------------------

    @property
    def attributed_seconds(self) -> float:
        """Seconds the profiler placed into named phases.

        By construction this equals the profiled loop's wall time: the
        ``dispatch`` phase absorbs the loop residual (profiler
        self-cost, branch overhead), so nothing measured goes missing.
        """
        return sum(stat.seconds for stat in self.phases.values())

    @property
    def coverage(self) -> float:
        """Fraction of the simulate wall attributed to named phases.

        The gap is work outside the dispatch loop — scheduler start and
        stop, the between-``run()`` seam — so on real runs this sits
        near 1.0 (the acceptance bound is >= 0.95 at 1000 nodes).
        """
        if self.wall_simulate_seconds <= 0:
            return 0.0
        return min(self.attributed_seconds / self.wall_simulate_seconds, 1.0)

    def top_phases(self, top: int | None = None) -> list[tuple[str, PhaseStat]]:
        ranked = sorted(
            self.phases.items(), key=lambda item: (-item[1].seconds, item[0])
        )
        return ranked if top is None else ranked[:top]

    def top_nodes(self, top: int = 5) -> list[tuple[int, int, float]]:
        """``(node_id, calls, seconds)`` triples, costliest first."""
        ranked = sorted(
            (
                (node, int(calls), float(seconds))
                for node, (calls, seconds) in enumerate(self.nodes)
                if calls
            ),
            key=lambda item: (-item[2], item[0]),
        )
        return ranked[:top]

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "profile_version": PROFILE_VERSION,
            "meta": self.meta,
            "wall_setup_seconds": round(self.wall_setup_seconds, 9),
            "wall_simulate_seconds": round(self.wall_simulate_seconds, 9),
            "loop_wall_seconds": round(self.loop_wall_seconds, 9),
            "events_processed": self.events_processed,
            "attributed_seconds": round(self.attributed_seconds, 9),
            "coverage": round(self.coverage, 6),
            "phases": {
                name: stat.to_dict() for name, stat in sorted(self.phases.items())
            },
            "checkers": {
                code: stat.to_dict()
                for code, stat in sorted(self.checkers.items())
            },
            "nodes": [
                [int(calls), round(float(seconds), 9)]
                for calls, seconds in self.nodes
            ],
            "spans": [span.to_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Profile":
        version = data.get("profile_version")
        if version != PROFILE_VERSION:
            raise ProfileError(
                f"unsupported profile version {version!r} "
                f"(this tree reads version {PROFILE_VERSION})"
            )
        return cls(
            meta=dict(data.get("meta", {})),
            wall_setup_seconds=float(data.get("wall_setup_seconds", 0.0)),
            wall_simulate_seconds=float(data.get("wall_simulate_seconds", 0.0)),
            loop_wall_seconds=float(data.get("loop_wall_seconds", 0.0)),
            events_processed=int(data.get("events_processed", 0)),
            phases={
                name: PhaseStat.from_dict(stat)
                for name, stat in data.get("phases", {}).items()
            },
            checkers={
                code: PhaseStat.from_dict(stat)
                for code, stat in data.get("checkers", {}).items()
            },
            nodes=[
                [int(calls), float(seconds)]
                for calls, seconds in data.get("nodes", [])
            ],
            spans=[EpochSpan.from_dict(s) for s in data.get("spans", [])],
        )

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target


def load_profile(path: str | Path) -> Profile:
    """Read a ``.prof.json`` file back into a :class:`Profile`."""
    target = Path(path)
    try:
        data = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ProfileError(f"cannot read {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{target}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProfileError(f"{target}: expected a JSON object")
    return Profile.from_dict(data)


def to_folded(profile: Profile) -> str:
    """The folded-stack flamegraph export: ``frame;frame count`` lines.

    Counts are integer microseconds.  The simulate-phase stacks hang off
    a root ``simulate`` frame (with sanitizer sweeps one level deeper,
    split per checker); setup is its own root.  Feed the result to any
    folded-stack renderer, e.g. ``flamegraph.pl run.folded > run.svg``.
    """
    lines: list[str] = []

    def emit(frames: list[str], seconds: float) -> None:
        micros = round(seconds * 1e6)
        if micros > 0:
            lines.append(f"{';'.join(frames)} {micros}")

    emit(["setup"], profile.wall_setup_seconds)
    checker_total = sum(stat.seconds for stat in profile.checkers.values())
    for name, stat in sorted(profile.phases.items()):
        if name == PHASE_SANITIZE and profile.checkers:
            for code, cstat in sorted(profile.checkers.items()):
                emit(["simulate", PHASE_SANITIZE, code], cstat.seconds)
            # Sweep machinery not inside any one checker call (chain
            # walking, dedupe bookkeeping, digest captures).
            emit(
                ["simulate", PHASE_SANITIZE, "(sweep)"],
                stat.seconds - checker_total,
            )
        else:
            emit(["simulate", name], stat.seconds)
    return "\n".join(lines) + "\n" if lines else ""
