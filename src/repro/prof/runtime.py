"""The profiler runtime: hot-loop phase attribution and epoch spans.

:class:`ProfilerRuntime` plugs into the simulator's profiler slot (a
second ``None``-checked slot beside the sanitizer probe — see
:meth:`repro.net.simulator.Simulator.set_profiler`).  The profiled
dispatch loop hands it three wall-clock readings per event; everything
else — callback classification, per-phase and per-node accumulation,
NG epoch span tracking — happens here, out of the bare loop entirely.

Design constraints, in priority order:

* **Zero perturbation.**  The runtime never schedules events, never
  draws randomness, never touches node state.  All it consumes is the
  event object already dispatched and wall-clock deltas from
  :func:`repro.clock.wall_clock`.  Profiled runs are bit-identical to
  bare runs, including ``events_processed`` (pinned in
  ``tests/test_determinism.py``).
* **Cheap attribution.**  Callbacks are classified once per distinct
  function (a dict keyed on the underlying function object, built
  lazily), so the steady-state per-event cost is two dict probes and
  float adds — the loop's own wall-clock reads dominate.
* **No layer coupling.**  Classification matches ``__qualname__``
  strings, so the profiler never imports protocol modules and unknown
  callbacks (custom adapters, tests) degrade to an ``other:`` phase
  rather than breaking.

Epoch spans ride the existing trace stream: a :class:`TapTracer`
interposes on the run's tracer (or on ``None`` for un-instrumented
runs), watches ``epoch_start``/``epoch_end``/``block_gen`` records, and
folds them into key-block → microblock-stream → handover spans.  Closed
spans are re-emitted as schema-v1 ``prof_span`` records when a real
trace sink is attached.
"""

from __future__ import annotations

from ..clock import wall_clock
from .profile import (
    PHASE_DISPATCH,
    PHASE_HEAPPOP,
    PHASE_SANITIZE,
    EpochSpan,
    PhaseStat,
    Profile,
)

# Classification tags: how to derive (phase, node) from a callback.
_TAG_STATIC = 0  # fixed phase string, no node attribution
_TAG_NODE = 1  # fixed phase string, node = callback.__self__.node_id
_TAG_SAMPLER = 2  # phase = "obs:" + sampler class name
_TAG_DELIVER = 3  # phase by message kind (and object kind), node = dst

# Known hot callbacks by qualified name.  Anything else lands in
# "other:<qualname>" — visible in reports rather than silently dropped.
_KNOWN_CALLBACKS: dict[str, tuple[str | None, int]] = {
    "Network._deliver": (None, _TAG_DELIVER),
    "MiningScheduler._fire": ("mining:block", _TAG_STATIC),
    "NGNode._maybe_generate_microblock": ("mining:microblock", _TAG_NODE),
    "GossipNode._on_request_timeout": ("gossip:timeout", _TAG_NODE),
    "GossipNode._accept": ("gossip:verify", _TAG_NODE),
    "PeriodicSampler._fire": (None, _TAG_SAMPLER),
}


class TapTracer:
    """A tracer interposer feeding epoch events to the profiler.

    Forwards every record to the wrapped tracer (when there is one) so
    instrumented runs keep their full trace, and mirrors the records the
    span tracker cares about into the :class:`ProfilerRuntime`.  With no
    inner tracer (a bare ``--prof`` run) it is the *only* tracer in the
    system: nodes emit epoch/block records through it, the profiler sees
    them, and nothing is written anywhere.
    """

    __slots__ = ("inner", "profiler")

    def __init__(self, inner, profiler: "ProfilerRuntime") -> None:
        self.inner = inner
        self.profiler = profiler

    @property
    def records_written(self) -> int:
        return self.inner.records_written if self.inner is not None else 0

    def emit(self, ev: str, t: float, **fields) -> None:
        if ev == "epoch_start" or ev == "epoch_end" or ev == "block_gen":
            self.profiler.observe_trace(ev, t, fields)
        if self.inner is not None:
            self.inner.emit(ev, t, **fields)

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()


class ProfObservability:
    """An :class:`~repro.obs.facade.Observability` wrapper adding the tap.

    Mimics the facade surface the runner, network, and nodes read
    (``registry``/``tracer``/``enabled``/``install``/``finalize``) while
    swapping the tracer for a :class:`TapTracer`.  ``enabled`` follows
    the base facade, so wrapping ``NULL_OBS`` keeps the network's
    per-send instrumentation off (bit-identical hot path) while nodes —
    which guard only on ``tracer is not None`` — still feed epoch
    records to the span tracker.
    """

    def __init__(self, base, profiler: "ProfilerRuntime") -> None:
        self.base = base
        self.enabled = base.enabled
        self.registry = base.registry
        self.tracer = TapTracer(base.tracer, profiler)
        self.samplers = base.samplers

    def install(self, sim, network, nodes, horizon, meta=None) -> None:
        self.base.install(sim, network, nodes, horizon, meta=meta)
        self.samplers = self.base.samplers

    def finalize(self, network=None, extra=None, end_time=0.0):
        return self.base.finalize(
            network=network, extra=extra, end_time=end_time
        )


class ProfilerRuntime:
    """Accumulates phase/node/checker attribution for one experiment."""

    def __init__(self) -> None:
        # Phase name -> [calls, seconds].  Plain lists: the two-element
        # mutation pattern is the cheapest accumulator CPython offers.
        self._phases: dict[str, list] = {}
        # Underlying function object -> (phase | None, tag).
        self._by_func: dict[object, tuple[str | None, int]] = {}
        # (message kind, object kind | None) -> interned phase string.
        self._deliver_phases: dict[tuple[str, str | None], str] = {}
        self._node_calls: list[int] = []
        self._node_seconds: list[float] = []
        self._pop_calls = 0
        self._pop_seconds = 0.0
        self._probe_calls = 0
        self._probe_seconds = 0.0
        self._checkers: dict[str, list] = {}
        self._loop_wall = 0.0
        self._loop_mark: float | None = None
        # Span tracking: leader id -> open EpochSpan.
        self._open_spans: dict[int, EpochSpan] = {}
        self.spans: list[EpochSpan] = []
        self._span_sink = None  # inner tracer for prof_span emission

    # -- wiring --------------------------------------------------------------

    def install(self, sim, n_nodes: int) -> None:
        """Claim the simulator's profiler slot and size per-node arrays."""
        self._node_calls = [0] * n_nodes
        self._node_seconds = [0.0] * n_nodes
        sim.set_profiler(self)

    def wrap_observability(self, obs) -> ProfObservability:
        """Interpose the span tap on a run's observability facade."""
        wrapper = ProfObservability(obs, self)
        self._span_sink = obs.tracer
        return wrapper

    # -- hot-loop callbacks (invoked by Simulator._run_profiled) -------------

    def loop_started(self) -> None:
        self._loop_mark = wall_clock()

    def loop_ended(self) -> None:
        if self._loop_mark is not None:
            self._loop_wall += wall_clock() - self._loop_mark
            self._loop_mark = None

    def record(
        self, event, pop_seconds: float, callback_seconds: float
    ) -> None:
        """Attribute one dispatched event's pop and callback cost."""
        self._pop_calls += 1
        self._pop_seconds += pop_seconds
        callback = event.callback
        func = getattr(callback, "__func__", callback)
        classified = self._by_func.get(func)
        if classified is None:
            qualname = getattr(func, "__qualname__", None) or repr(func)
            classified = _KNOWN_CALLBACKS.get(qualname)
            if classified is None:
                classified = ("other:" + qualname, _TAG_STATIC)
            self._by_func[func] = classified
        phase, tag = classified
        node = -1
        if tag == _TAG_DELIVER:
            args = event.args
            message = args[2]
            kind = message.kind
            if kind == "object":
                key = (kind, message.payload.kind)
            elif kind == "inv":
                key = (kind, message.payload[1])
            else:
                key = (kind, None)
            phase = self._deliver_phases.get(key)
            if phase is None:
                phase = "deliver:" + (
                    key[0] if key[1] is None else f"{key[0]}:{key[1]}"
                )
                self._deliver_phases[key] = phase
            node = args[1]
        elif tag == _TAG_NODE:
            node = getattr(callback.__self__, "node_id", -1)
        elif tag == _TAG_SAMPLER:
            phase = "obs:" + type(callback.__self__).__name__
        stat = self._phases.get(phase)
        if stat is None:
            stat = self._phases[phase] = [0, 0.0]
        stat[0] += 1
        stat[1] += callback_seconds
        if 0 <= node < len(self._node_calls):
            self._node_calls[node] += 1
            self._node_seconds[node] += callback_seconds

    def record_probe(self, seconds: float) -> None:
        """One sanitizer probe invocation (sweep or countdown no-op)."""
        self._probe_calls += 1
        self._probe_seconds += seconds

    # -- sanitizer attribution (invoked by SanitizerRuntime._sweep) ----------

    def record_checker(self, code: str, seconds: float) -> None:
        """One checker call's cost, keyed by invariant code (INV1xx)."""
        stat = self._checkers.get(code)
        if stat is None:
            stat = self._checkers[code] = [0, 0.0]
        stat[0] += 1
        stat[1] += seconds

    # -- epoch spans (invoked by TapTracer) ----------------------------------

    def observe_trace(self, ev: str, t: float, fields: dict) -> None:
        if ev == "epoch_start":
            leader = fields.get("leader", -1)
            stale = self._open_spans.pop(leader, None)
            if stale is not None:
                # The leader regained leadership without observing loss
                # (e.g. a fork resolved back); close the earlier span at
                # the new epoch's start.
                self._close_span(stale, t, closed=True)
            self._open_spans[leader] = EpochSpan(
                leader=leader,
                key_block=str(fields.get("key_block", "")),
                start=t,
                end=t,
            )
        elif ev == "epoch_end":
            span = self._open_spans.pop(fields.get("leader", -1), None)
            if span is not None:
                self._close_span(span, t, closed=True)
        elif ev == "block_gen" and fields.get("kind") == "micro":
            span = self._open_spans.get(fields.get("miner", -1))
            if span is not None:
                span.micros += 1

    def _close_span(
        self, span: EpochSpan, end: float, closed: bool, emit: bool = True
    ) -> None:
        span.end = end
        span.closed = closed
        self.spans.append(span)
        if emit and self._span_sink is not None:
            self._span_sink.emit(
                "prof_span",
                end,
                leader=span.leader,
                key_block=span.key_block,
                start=round(span.start, 6),
                micros=span.micros,
                closed=closed,
            )

    # -- assembly ------------------------------------------------------------

    def build_profile(
        self,
        meta: dict,
        wall_setup: float,
        wall_simulate: float,
        events: int,
        end_time: float = 0.0,
    ) -> Profile:
        """Fold everything accumulated into a :class:`Profile`.

        Open epoch spans (the run ended mid-epoch) are closed at
        ``end_time`` with ``closed=False`` — into the profile only, not
        the trace: the run's tracer is already sealed with
        ``trace_end`` by the time the profile is assembled, and an emit
        here would lazily reopen (and truncate) the finished trace
        file.  The ``dispatch`` phase
        absorbs the profiled loop's residual wall time — heap scanning,
        cancelled-event skips, and the profiler's own bookkeeping — so
        the phase table always sums to the measured loop wall.
        """
        for leader in sorted(self._open_spans):
            span = self._open_spans.pop(leader)
            self._close_span(
                span, max(end_time, span.start), closed=False, emit=False
            )
        phases = {
            name: PhaseStat(calls=stat[0], seconds=stat[1])
            for name, stat in self._phases.items()
        }
        phases[PHASE_HEAPPOP] = PhaseStat(
            calls=self._pop_calls, seconds=self._pop_seconds
        )
        if self._probe_calls:
            phases[PHASE_SANITIZE] = PhaseStat(
                calls=self._probe_calls, seconds=self._probe_seconds
            )
        accounted = sum(stat.seconds for stat in phases.values())
        phases[PHASE_DISPATCH] = PhaseStat(
            calls=events, seconds=max(self._loop_wall - accounted, 0.0)
        )
        return Profile(
            meta=dict(meta),
            wall_setup_seconds=wall_setup,
            wall_simulate_seconds=wall_simulate,
            loop_wall_seconds=self._loop_wall,
            events_processed=events,
            phases=phases,
            checkers={
                code: PhaseStat(calls=stat[0], seconds=stat[1])
                for code, stat in self._checkers.items()
            },
            nodes=[
                [calls, seconds]
                for calls, seconds in zip(self._node_calls, self._node_seconds)
            ],
            spans=list(self.spans),
        )
