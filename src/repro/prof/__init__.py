"""Deterministic hot-path profiling: phase attribution and epoch spans.

The measurement layer for performance work on the simulation stack.
See ``docs/profiling.md`` for usage; the short version::

    from repro.experiments import ExperimentConfig
    from repro.prof import profile_experiment

    result, log, profile = profile_experiment(ExperimentConfig())
    print(profile.phases["heappop"].seconds)

Or from the shell::

    python -m repro prof run --protocol bitcoin-ng --nodes 1000 --out prof/
    python -m repro prof report prof/<slug>.prof.json
    python -m repro prof diff before.prof.json after.prof.json

Profiling never perturbs results: profiled runs are bit-identical to
bare runs (``tests/test_determinism.py``) and the disabled path is one
``None``-check per simulator event (``benchmarks/test_perf_regression``).
"""

from .profile import (
    PHASE_DISPATCH,
    PHASE_HEAPPOP,
    PHASE_SANITIZE,
    PROFILE_VERSION,
    EpochSpan,
    PhaseStat,
    Profile,
    ProfileError,
    load_profile,
    to_folded,
)
from .report import (
    DEFAULT_MIN_DELTA,
    DEFAULT_THRESHOLD,
    compare_profiles,
    format_diff,
    format_report,
)
from .runtime import ProfilerRuntime, ProfObservability, TapTracer

__all__ = [
    "DEFAULT_MIN_DELTA",
    "DEFAULT_THRESHOLD",
    "EpochSpan",
    "PHASE_DISPATCH",
    "PHASE_HEAPPOP",
    "PHASE_SANITIZE",
    "PROFILE_VERSION",
    "PhaseStat",
    "Profile",
    "ProfileError",
    "ProfilerRuntime",
    "ProfObservability",
    "TapTracer",
    "compare_profiles",
    "format_diff",
    "format_report",
    "load_profile",
    "profile_experiment",
    "to_folded",
]


def profile_experiment(config, profiler: ProfilerRuntime | None = None):
    """Run one profiled experiment: ``(result, log, profile)``.

    The convenience entry point the CLI, benchmarks, and tests share.
    ``profiler`` may be injected pre-built (to wire extra taps); by
    default a fresh :class:`ProfilerRuntime` is used.  The experiment
    itself is bit-identical to an unprofiled ``run_experiment(config)``.
    """
    from ..experiments.runner import run_experiment
    from ..obs.facade import config_slug
    from ..protocols import protocol_name

    if profiler is None:
        profiler = ProfilerRuntime()
    result, log = run_experiment(config, profiler=profiler)
    meta = {
        "slug": config_slug(config),
        "protocol": protocol_name(config.protocol),
        "n_nodes": config.n_nodes,
        "seed": config.seed,
        "block_rate": config.block_rate,
        "block_size_bytes": config.block_size_bytes,
        "key_block_rate": config.key_block_rate,
        "check": config.check,
    }
    profile = profiler.build_profile(
        meta=meta,
        wall_setup=result.wall_setup_seconds,
        wall_simulate=result.wall_simulate_seconds,
        events=result.events_processed,
        end_time=config.duration + config.cooldown,
    )
    return result, log, profile
