"""The ``repro prof`` subcommands: profile, report, compare.

``repro prof run`` profiles one experiment and writes two artifacts
into ``--out``: ``<slug>.prof.json`` (the schema-versioned profile) and
``<slug>.folded`` (folded stacks for flamegraph renderers), then prints
the attribution report.  ``repro prof report`` re-renders a saved
profile; ``repro prof diff`` compares two and flags phase-level
regressions (exit 1 when any phase got both ``--threshold`` relatively
and ``--min-delta`` seconds absolutely slower).

Exit codes: 0 ok, 1 regression flagged (diff only), 2 usage/input error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    from ..protocols import Protocol

    parser.add_argument(
        "--protocol",
        choices=sorted(protocol.value for protocol in Protocol),
        default="bitcoin-ng",
    )
    parser.add_argument("--nodes", type=int, default=60, help="network size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--blocks", type=int, default=60, help="target blocks per run"
    )
    parser.add_argument(
        "--key-blocks",
        type=int,
        default=None,
        metavar="N",
        help="target key blocks per run (caps duration at scale)",
    )
    parser.add_argument("--block-rate", type=float, default=0.2)
    parser.add_argument("--block-size", type=int, default=8_000)
    parser.add_argument("--key-block-rate", type=float, default=0.02)
    parser.add_argument(
        "--check",
        nargs="?",
        const="incremental",
        choices=("incremental", "full", "audit"),
        default=None,
        metavar="MODE",
        help="profile a checked run too: per-INV1xx-checker attribution "
        "(MODE as for `repro run --check`; default incremental)",
    )
    parser.add_argument(
        "--stride",
        type=int,
        default=64,
        help="sanitizer sweep stride when --check is on",
    )
    parser.add_argument(
        "--obs",
        metavar="DIR",
        default=None,
        help="also capture a full observability trace into DIR; closed "
        "epoch spans are emitted into it as prof_span records",
    )


def _config_from_args(args: argparse.Namespace):
    from ..experiments import ExperimentConfig

    config = ExperimentConfig(
        protocol=args.protocol,
        n_nodes=args.nodes,
        seed=args.seed,
        target_blocks=args.blocks,
        block_rate=args.block_rate,
        block_size_bytes=args.block_size,
        key_block_rate=args.key_block_rate,
        check=args.check is not None,
        check_mode=args.check if args.check is not None else "incremental",
        check_stride=args.stride,
        obs_dir=args.obs,
    )
    if args.key_blocks is not None:
        config = config.with_(target_key_blocks=args.key_blocks)
    return config


def cmd_run(args: argparse.Namespace) -> int:
    from . import profile_experiment, to_folded
    from .report import format_report

    config = _config_from_args(args)
    result, _log, profile = profile_experiment(config)
    out_dir = Path(args.out)
    slug = profile.meta.get("slug", "run")
    profile_path = profile.save(out_dir / f"{slug}.prof.json")
    folded_path = out_dir / f"{slug}.folded"
    folded_path.write_text(to_folded(profile), encoding="utf-8")
    print(format_report(profile, top=args.top))
    print()
    print(f"profile written:     {profile_path}")
    print(f"folded stacks:       {folded_path}")
    if config.check and result.violations:
        print(
            f"invariant violations: {len(result.violations)}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .profile import ProfileError, load_profile
    from .report import format_report

    try:
        profile = load_profile(args.file)
    except ProfileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(profile, top=args.top))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from .profile import ProfileError, load_profile
    from .report import compare_profiles, format_diff

    try:
        profile_a = load_profile(args.file_a)
        profile_b = load_profile(args.file_b)
    except ProfileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        format_diff(
            profile_a,
            profile_b,
            label_a=args.file_a,
            label_b=args.file_b,
            threshold=args.threshold,
            min_delta=args.min_delta,
        )
    )
    rows = compare_profiles(
        profile_a, profile_b, threshold=args.threshold, min_delta=args.min_delta
    )
    return 1 if any(row["regression"] for row in rows) else 0


def add_prof_parser(commands: argparse._SubParsersAction) -> None:
    """Register the ``prof`` command group on the main CLI."""
    from .report import DEFAULT_MIN_DELTA, DEFAULT_THRESHOLD

    prof_parser = commands.add_parser(
        "prof",
        help="deterministic hot-path profiling: attribution and flamegraphs",
    )
    prof_commands = prof_parser.add_subparsers(
        dest="prof_command", required=True
    )

    run_parser = prof_commands.add_parser(
        "run", help="profile one experiment and write profile + folded stacks"
    )
    _add_run_options(run_parser)
    run_parser.add_argument(
        "--out",
        metavar="DIR",
        default="prof-out",
        help="directory for <slug>.prof.json and <slug>.folded",
    )
    run_parser.add_argument(
        "--top", type=int, default=20, help="rows per report table"
    )
    run_parser.set_defaults(handler=cmd_run)

    report_parser = prof_commands.add_parser(
        "report", help="render the attribution table of a saved profile"
    )
    report_parser.add_argument("file", help="a .prof.json file")
    report_parser.add_argument(
        "--top", type=int, default=20, help="rows per report table"
    )
    report_parser.set_defaults(handler=cmd_report)

    diff_parser = prof_commands.add_parser(
        "diff", help="compare two profiles and flag phase regressions"
    )
    diff_parser.add_argument("file_a", help="baseline .prof.json")
    diff_parser.add_argument("file_b", help="candidate .prof.json")
    diff_parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative slowdown that flags a phase (default 0.25 = +25%%)",
    )
    diff_parser.add_argument(
        "--min-delta",
        type=float,
        default=DEFAULT_MIN_DELTA,
        help="absolute slowdown floor in seconds (default 0.010)",
    )
    diff_parser.set_defaults(handler=cmd_diff)
