"""Rendering profiles: the attribution table and the regression diff.

Pure functions from :class:`~repro.prof.profile.Profile` objects to
text, so saved ``.prof.json`` files can be reported and compared long
after (and far from) the run that produced them.  Output formats are
pinned by golden tests in ``tests/test_prof.py`` — change them there
first.
"""

from __future__ import annotations

from .profile import PHASE_SANITIZE, Profile

# A diff flags a phase when it got BOTH this much relatively slower and
# this much absolutely slower — the absolute floor keeps microsecond
# phases from screaming on timer noise.
DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_DELTA = 0.010


def _pct(seconds: float, total: float) -> str:
    if total <= 0:
        return "   -  "
    return f"{seconds / total:6.1%}"


def format_report(profile: Profile, top: int = 20) -> str:
    """The attribution table: top phases, checkers, nodes, epoch stats."""
    lines: list[str] = []
    name = profile.meta.get("slug", "run")
    lines.append(f"== profile: {name} ==")
    run_meta = {
        k: v
        for k, v in sorted(profile.meta.items())
        if k not in ("slug",)
    }
    if run_meta:
        meta = ", ".join(f"{k}={v}" for k, v in run_meta.items())
        lines.append(f"run:                 {meta}")
    lines.append(f"events processed:    {profile.events_processed:,}")
    lines.append(f"wall setup:          {profile.wall_setup_seconds:.3f} s")
    lines.append(f"wall simulate:       {profile.wall_simulate_seconds:.3f} s")
    lines.append(
        f"attributed:          {profile.attributed_seconds:.3f} s "
        f"({profile.coverage:.1%} of simulate wall)"
    )
    total = profile.wall_simulate_seconds
    if profile.phases:
        lines.append("")
        lines.append(
            f"{'phase':<32}{'seconds':>9}  {'%':>6}  {'calls':>10}  "
            f"{'us/call':>8}"
        )
        ranked = profile.top_phases()
        shown = ranked[:top]
        for phase, stat in shown:
            lines.append(
                f"{phase:<32}{stat.seconds:>9.3f}  {_pct(stat.seconds, total)}"
                f"  {stat.calls:>10,}  {stat.us_per_call:>8.1f}"
            )
        hidden = ranked[top:]
        if hidden:
            hidden_seconds = sum(stat.seconds for _, stat in hidden)
            lines.append(
                f"({len(hidden)} more phase"
                f"{'s' if len(hidden) != 1 else ''} totalling "
                f"{hidden_seconds:.3f} s)"
            )
    if profile.checkers:
        lines.append("")
        lines.append(
            f"{'sanitizer checker':<32}{'seconds':>9}  {'%':>6}  {'calls':>10}"
        )
        ranked_checkers = sorted(
            profile.checkers.items(),
            key=lambda item: (-item[1].seconds, item[0]),
        )
        for code, stat in ranked_checkers[:top]:
            lines.append(
                f"{code:<32}{stat.seconds:>9.3f}  {_pct(stat.seconds, total)}"
                f"  {stat.calls:>10,}"
            )
        sweep = profile.phases.get(PHASE_SANITIZE)
        if sweep is not None:
            checker_total = sum(
                stat.seconds for stat in profile.checkers.values()
            )
            lines.append(
                f"{'(sweep machinery)':<32}"
                f"{max(sweep.seconds - checker_total, 0.0):>9.3f}  "
                f"{_pct(max(sweep.seconds - checker_total, 0.0), total)}"
            )
    hot_nodes = profile.top_nodes(top=5)
    if hot_nodes:
        lines.append("")
        lines.append(f"{'hottest nodes':<32}{'seconds':>9}  {'%':>6}  {'events':>10}")
        for node, calls, seconds in hot_nodes:
            lines.append(
                f"{'node ' + str(node):<32}{seconds:>9.3f}  "
                f"{_pct(seconds, total)}  {calls:>10,}"
            )
    if profile.spans:
        closed = [span for span in profile.spans if span.closed]
        open_count = len(profile.spans) - len(closed)
        mean_duration = (
            sum(span.duration for span in closed) / len(closed)
            if closed
            else 0.0
        )
        mean_micros = (
            sum(span.micros for span in closed) / len(closed)
            if closed
            else 0.0
        )
        lines.append("")
        suffix = f" ({open_count} open at run end)" if open_count else ""
        lines.append(
            f"epochs:              {len(profile.spans)} spans, "
            f"mean {mean_duration:.1f} s, "
            f"mean {mean_micros:.1f} microblocks{suffix}"
        )
    return "\n".join(lines)


def compare_profiles(
    a: Profile,
    b: Profile,
    threshold: float = DEFAULT_THRESHOLD,
    min_delta: float = DEFAULT_MIN_DELTA,
) -> list[dict]:
    """Per-phase comparison rows, sorted by regression size.

    Each row: ``{"phase", "a", "b", "delta", "ratio", "regression"}``.
    A phase regresses when it is both ``threshold`` relatively and
    ``min_delta`` seconds absolutely slower in ``b``.
    """
    names = set(a.phases) | set(b.phases)
    rows = []
    for name in names:
        sec_a = a.phases[name].seconds if name in a.phases else 0.0
        sec_b = b.phases[name].seconds if name in b.phases else 0.0
        delta = sec_b - sec_a
        ratio = sec_b / sec_a if sec_a > 0 else float("inf")
        rows.append(
            {
                "phase": name,
                "a": sec_a,
                "b": sec_b,
                "delta": delta,
                "ratio": ratio,
                "regression": delta >= min_delta
                and sec_b > sec_a * (1.0 + threshold),
            }
        )
    rows.sort(key=lambda row: (-row["delta"], row["phase"]))
    return rows


def format_diff(
    a: Profile,
    b: Profile,
    label_a: str = "A",
    label_b: str = "B",
    threshold: float = DEFAULT_THRESHOLD,
    min_delta: float = DEFAULT_MIN_DELTA,
) -> str:
    """The phase-level diff table, regressions flagged with ``***``."""
    rows = compare_profiles(a, b, threshold=threshold, min_delta=min_delta)
    lines = ["== profile diff =="]
    lines.append(
        f"A: {label_a}  "
        f"(simulate {a.wall_simulate_seconds:.3f} s, "
        f"{a.events_processed:,} events)"
    )
    lines.append(
        f"B: {label_b}  "
        f"(simulate {b.wall_simulate_seconds:.3f} s, "
        f"{b.events_processed:,} events)"
    )
    lines.append("")
    lines.append(
        f"{'phase':<32}{'A sec':>9}  {'B sec':>9}  {'delta':>9}  {'ratio':>7}"
    )
    for row in rows:
        ratio = (
            f"{row['ratio']:.2f}x" if row["ratio"] != float("inf") else "new"
        )
        flag = "  ***" if row["regression"] else ""
        lines.append(
            f"{row['phase']:<32}{row['a']:>9.3f}  {row['b']:>9.3f}  "
            f"{row['delta']:>+9.3f}  {ratio:>7}{flag}"
        )
    flagged = sum(1 for row in rows if row["regression"])
    lines.append("")
    lines.append(
        f"flagged {flagged} regression{'s' if flagged != 1 else ''} "
        f"(>= +{threshold:.0%} and >= +{min_delta:.3f} s)"
    )
    return "\n".join(lines)
