"""Mining power utilization (Section 6).

"The mining power utilization is the ratio between the mining power
that secures the system and the total mining power.  Mining power
wasted on work that does not appear on the blockchain accounts for the
difference."  Operationally (Section 8): "the proportion between the
aggregate work of the main chain blocks and all blocks.  In Bitcoin-NG,
difficulty is only accrued in key blocks, so microblock forks do not
reduce mining power utilization."
"""

from __future__ import annotations

from .collector import ObservationLog


def mining_power_utilization(log: ObservationLog) -> float:
    """Main-chain work over total generated work."""
    total_work = 0
    for info in log.index.all_blocks():
        total_work += info.work
    if total_work == 0:
        raise ValueError("no proof-of-work blocks recorded")
    main_work = sum(log.index.info(h).work for h in log.main_chain())
    return main_work / total_work


def wasted_work_fraction(log: ObservationLog) -> float:
    """The complement — work on pruned branches."""
    return 1.0 - mining_power_utilization(log)
