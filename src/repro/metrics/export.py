"""Observation-log export/import: persist executions for later analysis.

An :class:`~repro.metrics.collector.ObservationLog` captures everything
the metrics need; exporting it as JSON lets experiments be archived,
diffed across code versions, or analyzed with external tooling without
re-running the simulation.  Hashes are hex-encoded; the format is
versioned for forward compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path

from .collector import BlockInfo, ObservationLog

FORMAT_VERSION = 1


class TraceFormatError(Exception):
    """Raised when an imported trace cannot be understood."""


def log_to_dict(log: ObservationLog) -> dict:
    """Serializable representation of a finalized observation log."""
    return {
        "version": FORMAT_VERSION,
        "n_nodes": log.n_nodes,
        "start_time": log.start_time,
        "end_time": log.end_time,
        "blocks": [
            {
                "hash": info.hash.hex(),
                "parent": info.parent.hex(),
                "miner": info.miner,
                "gen_time": info.gen_time,
                "work": info.work,
                "kind": info.kind,
                "n_tx": info.n_tx,
                "size": info.size,
            }
            for info in log.index.all_blocks()
        ],
        "arrivals": [
            {h.hex(): t for h, t in node_arrivals.items()}
            for node_arrivals in log.arrivals
        ],
        "tips": [
            {
                "times": history.times,
                "tips": [h.hex() for h in history.tips],
            }
            for history in log.tip_histories
        ],
    }


def log_from_dict(data: dict) -> ObservationLog:
    """Rebuild an observation log exported by :func:`log_to_dict`."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(f"unsupported trace version {version!r}")
    try:
        log = ObservationLog(int(data["n_nodes"]))
        log.start_time = float(data["start_time"])
        for entry in data["blocks"]:
            log.index.add(
                BlockInfo(
                    hash=bytes.fromhex(entry["hash"]),
                    parent=bytes.fromhex(entry["parent"]),
                    miner=int(entry["miner"]),
                    gen_time=float(entry["gen_time"]),
                    work=int(entry["work"]),
                    kind=str(entry["kind"]),
                    n_tx=int(entry["n_tx"]),
                    size=int(entry["size"]),
                )
            )
        for node, node_arrivals in enumerate(data["arrivals"]):
            for hex_hash, time in node_arrivals.items():
                log.record_arrival(node, bytes.fromhex(hex_hash), float(time))
        for node, history in enumerate(data["tips"]):
            for time, hex_hash in zip(history["times"], history["tips"]):
                log.record_tip(node, bytes.fromhex(hex_hash), float(time))
        log.finalize(float(data["end_time"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(f"malformed trace: {exc}") from exc
    return log


def save_trace(log: ObservationLog, path: str | Path) -> None:
    """Write a finalized log as JSON."""
    Path(path).write_text(json.dumps(log_to_dict(log)), encoding="utf-8")


def load_trace(path: str | Path) -> ObservationLog:
    """Read a log written by :func:`save_trace`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"not valid JSON: {exc}") from exc
    return log_from_dict(data)
