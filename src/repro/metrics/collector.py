"""Observation infrastructure for the paper's metrics (Section 6).

Every experiment wires one :class:`ObservationLog` into all protocol
nodes.  Nodes report three kinds of events:

* **generation** — a block was created (globally unique per block);
* **arrival** — a node first learned of a block;
* **tip change** — a node's main-chain tip moved.

The metric calculators in the sibling modules are pure functions over
this log, so the same infrastructure serves Bitcoin, GHOST, and
Bitcoin-NG without protocol-specific code.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BlockInfo:
    """Global facts about one generated block."""

    hash: bytes
    parent: bytes
    miner: int
    gen_time: float
    work: int
    kind: str  # "block" (Bitcoin/GHOST), "key", or "micro" (Bitcoin-NG)
    n_tx: int
    size: int


class BlockIndex:
    """Registry of every block generated during an execution."""

    def __init__(self) -> None:
        self._infos: dict[bytes, BlockInfo] = {}
        self._heights: dict[bytes, int] = {}
        self._cum_work: dict[bytes, int] = {}
        self._chain_cache: dict[bytes, tuple[bytes, ...]] = {}

    def __contains__(self, block_hash: bytes) -> bool:
        return block_hash in self._infos

    def __len__(self) -> int:
        return len(self._infos)

    def add(self, info: BlockInfo) -> None:
        if info.hash in self._infos:
            raise ValueError("duplicate block generation recorded")
        self._infos[info.hash] = info
        if info.parent in self._heights:
            self._heights[info.hash] = self._heights[info.parent] + 1
            self._cum_work[info.hash] = self._cum_work[info.parent] + info.work
        else:
            # A root (genesis or the first block recorded).
            self._heights[info.hash] = 0
            self._cum_work[info.hash] = info.work

    def info(self, block_hash: bytes) -> BlockInfo:
        return self._infos[block_hash]

    def get(self, block_hash: bytes) -> BlockInfo | None:
        return self._infos.get(block_hash)

    def height(self, block_hash: bytes) -> int:
        return self._heights[block_hash]

    def cumulative_work(self, block_hash: bytes) -> int:
        """Work up to a block; 0 for unrecorded roots (the genesis)."""
        return self._cum_work.get(block_hash, 0)

    def all_blocks(self) -> list[BlockInfo]:
        return list(self._infos.values())

    def chain(self, tip: bytes) -> tuple[bytes, ...]:
        """Ancestor chain ending at ``tip`` (inclusive), memoized.

        Only blocks present in the index appear; the recorded root of
        the execution is the first element.
        """
        cached = self._chain_cache.get(tip)
        if cached is not None:
            return cached
        path: list[bytes] = []
        cursor: bytes | None = tip
        while cursor is not None and cursor in self._infos:
            cached = self._chain_cache.get(cursor)
            if cached is not None:
                path.reverse()
                full = cached + tuple(path)
                self._chain_cache[tip] = full
                return full
            path.append(cursor)
            cursor = self._infos[cursor].parent
        path.reverse()
        full = tuple(path)
        self._chain_cache[tip] = full
        return full

    def is_ancestor(self, ancestor: bytes, descendant: bytes) -> bool:
        """True if ``ancestor`` lies on the chain ending at ``descendant``."""
        if ancestor == descendant:
            return True
        target_height = self._heights.get(ancestor)
        if target_height is None:
            return False
        cursor = descendant
        while cursor in self._infos and self._heights[cursor] > target_height:
            cursor = self._infos[cursor].parent
        return cursor == ancestor


@dataclass
class TipHistory:
    """One node's tip over time, queryable at any instant."""

    times: list[float] = field(default_factory=list)
    tips: list[bytes] = field(default_factory=list)

    def record(self, time: float, tip: bytes) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("tip history must be recorded in time order")
        self.times.append(time)
        self.tips.append(tip)

    def tip_at(self, time: float) -> bytes | None:
        """The tip in force at ``time`` (None before the first record)."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            return None
        return self.tips[index]


class ObservationLog:
    """All events of one execution, shared by every node."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self.index = BlockIndex()
        self.arrivals: list[dict[bytes, float]] = [{} for _ in range(n_nodes)]
        self.tip_histories: list[TipHistory] = [TipHistory() for _ in range(n_nodes)]
        self.start_time = 0.0
        self.end_time = 0.0

    def record_generation(self, info: BlockInfo) -> None:
        self.index.add(info)
        # The generating node knows its block immediately; its arrival is
        # recorded by the node itself via record_arrival.

    def record_arrival(self, node: int, block_hash: bytes, time: float) -> None:
        """First time ``node`` learned of ``block_hash``; later calls ignored."""
        self.arrivals[node].setdefault(block_hash, time)

    def record_tip(self, node: int, tip: bytes, time: float) -> None:
        self.tip_histories[node].record(time, tip)

    def arrival_time(self, node: int, block_hash: bytes) -> float | None:
        return self.arrivals[node].get(block_hash)

    def finalize(self, end_time: float) -> None:
        """Mark the end of the observation window."""
        self.end_time = end_time

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def final_consensus_tip(self) -> bytes:
        """The tip most nodes hold at the end — "the" main chain.

        Ties broken by cumulative work then hash, deterministically.
        """
        votes: dict[bytes, int] = {}
        for history in self.tip_histories:
            tip = history.tip_at(self.end_time)
            if tip is not None:
                votes[tip] = votes.get(tip, 0) + 1
        if not votes:
            raise ValueError("no tips recorded")
        return max(
            votes,
            key=lambda h: (votes[h], self.index.cumulative_work(h), h),
        )

    def main_chain(self) -> tuple[bytes, ...]:
        """The final consensus chain (see :meth:`final_consensus_tip`)."""
        return self.index.chain(self.final_consensus_tip())
