"""The paper's evaluation metrics (Section 6) over observation logs."""

from .collector import BlockIndex, BlockInfo, ObservationLog, TipHistory
from .consensus_delay import consensus_delay, point_consensus_delay
from .export import (
    TraceFormatError,
    load_trace,
    log_from_dict,
    log_to_dict,
    save_trace,
)
from .fairness import fairness
from .prune import (
    prune_samples,
    time_to_prune,
    time_to_win,
    win_samples,
)
from .throughput import (
    OPERATIONAL_BITCOIN_TX_RATE,
    block_rate,
    goodput_bytes,
    transaction_frequency,
)
from .utilization import mining_power_utilization, wasted_work_fraction

__all__ = [
    "OPERATIONAL_BITCOIN_TX_RATE",
    "BlockIndex",
    "BlockInfo",
    "ObservationLog",
    "TipHistory",
    "TraceFormatError",
    "block_rate",
    "load_trace",
    "log_from_dict",
    "log_to_dict",
    "save_trace",
    "consensus_delay",
    "fairness",
    "goodput_bytes",
    "mining_power_utilization",
    "point_consensus_delay",
    "prune_samples",
    "time_to_prune",
    "time_to_win",
    "transaction_frequency",
    "wasted_work_fraction",
    "win_samples",
]
