"""Consensus delay: the (ε, δ) metric of Section 6.

"Given a time t and a ratio 0 < ε ≤ 1, the ε point consensus delay is
the smallest time difference Δ such that at least ε·|N| of the nodes at
time t report the same state machine transition prefix up to time
t − Δ."  The (ε, δ) consensus delay is then the δ-percentile of point
delays over the execution.  The paper's evaluation takes (90%, 90%).

A node's reported prefix up to τ is fully determined by the *last* block
in its main chain generated at or before τ (hash chains share all
ancestors), so agreement on the prefix is agreement on that head block.
"""

from __future__ import annotations

import bisect
import math

from .collector import ObservationLog


def _chain_schedule(
    log: ObservationLog, tip: bytes
) -> tuple[list[float], list[bytes]]:
    """(generation times, hashes) along a chain, in chain order.

    Generation times are non-decreasing along any chain because every
    block is generated after its parent.
    """
    chain = log.index.chain(tip)
    times = [log.index.info(h).gen_time for h in chain]
    return times, list(chain)


def point_consensus_delay(
    log: ObservationLog, t: float, epsilon: float = 0.9
) -> float:
    """The ε point-consensus delay at time ``t`` (Figure 4's Δ)."""
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must be in (0, 1]")
    threshold = math.ceil(epsilon * log.n_nodes)
    schedules = []
    candidate_times: set[float] = set()
    for history in log.tip_histories:
        tip = history.tip_at(t)
        if tip is None:
            schedules.append(([], []))
            continue
        times, hashes = _chain_schedule(log, tip)
        schedules.append((times, hashes))
        for gen_time in times:
            if gen_time <= t:
                candidate_times.add(gen_time)
    # Heads only change at block generation times, so scanning those
    # (descending) plus t itself is exhaustive.
    for tau in sorted(candidate_times | {t}, reverse=True):
        if tau > t:
            continue
        heads: dict[bytes | None, int] = {}
        for times, hashes in schedules:
            index = bisect.bisect_right(times, tau) - 1
            head = hashes[index] if index >= 0 else None
            heads[head] = heads.get(head, 0) + 1
        if heads and max(heads.values()) >= threshold:
            return t - tau
    # All nodes trivially agree on the empty prefix before genesis.
    return t


def consensus_delay(
    log: ObservationLog,
    epsilon: float = 0.9,
    delta: float = 0.9,
    n_samples: int = 40,
    warmup_fraction: float = 0.1,
) -> float:
    """The (ε, δ) consensus delay over the execution.

    Samples point-consensus delays at evenly spaced times (skipping an
    initial warm-up where the chain is still trivially short) and takes
    the δ-percentile.
    """
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    if n_samples < 1:
        raise ValueError("need at least one sample")
    start = log.start_time + warmup_fraction * log.duration
    end = log.end_time
    if end <= start:
        raise ValueError("empty observation window")
    step = (end - start) / n_samples
    samples = sorted(
        point_consensus_delay(log, start + (i + 1) * step, epsilon)
        for i in range(n_samples)
    )
    position = min(int(delta * len(samples)), len(samples) - 1)
    return samples[position]
