"""Subjective time to prune and time to win (Section 6, Figure 5).

**Time to prune** — "the δ-percentile of the difference between the
time a node learns about such a transition and the time it learns that
this transition has not occurred."  Operationally (Section 8): "For
each node and for each branch, we measure the time it took for the node
to prune this branch.  This is the time between the receipt of the
first branch block and the receipt of the main chain block that is
longer than this branch."

**Time to win** — "the δ percentile of the difference between the
first time a node believes a never-to-be-pruned-transition has occurred
and the last time a (different) node disagrees."  Operationally: "the
90th percentile of the time from the generation of each main-chain
block to the last time another miner generates a block that is not its
descendant."
"""

from __future__ import annotations

import bisect
from collections import defaultdict

from .collector import ObservationLog


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    position = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[position]


def _branches(log: ObservationLog) -> dict[bytes, list[bytes]]:
    """Group pruned blocks into branches keyed by their branch root.

    A branch root is the first block off the final main chain; every
    pruned block belongs to the branch of its lowest off-chain ancestor.
    """
    main = set(log.main_chain())
    roots: dict[bytes, bytes] = {}

    def root_of(block_hash: bytes) -> bytes:
        cached = roots.get(block_hash)
        if cached is not None:
            return cached
        info = log.index.get(block_hash)
        if info is None or info.parent in main or info.parent not in log.index:
            roots[block_hash] = block_hash
            return block_hash
        root = root_of(info.parent)
        roots[block_hash] = root
        return root

    branches: dict[bytes, list[bytes]] = defaultdict(list)
    for info in log.index.all_blocks():
        if info.hash in main:
            continue
        branches[root_of(info.hash)].append(info.hash)
    return dict(branches)


def prune_samples(log: ObservationLog) -> list[float]:
    """All (node, branch) prune delays observed in the execution."""
    main_chain = log.main_chain()
    branches = _branches(log)
    if not branches:
        return []
    samples: list[float] = []
    main_work = [log.index.cumulative_work(h) for h in main_chain]
    for node in range(log.n_nodes):
        arrivals = log.arrivals[node]
        # Suffix-minimum arrival time of main-chain blocks at or beyond
        # each chain position, so "first main block heavier than W" is a
        # binary search plus lookup.
        suffix_min: list[float] = [float("inf")] * (len(main_chain) + 1)
        for i in range(len(main_chain) - 1, -1, -1):
            arrival = arrivals.get(main_chain[i], float("inf"))
            suffix_min[i] = min(arrival, suffix_min[i + 1])
        for branch_blocks in branches.values():
            received = [h for h in branch_blocks if h in arrivals]
            if not received:
                continue
            first_receipt = min(arrivals[h] for h in received)
            branch_weight = max(
                log.index.cumulative_work(h) for h in received
            )
            # First main-chain position strictly heavier than the branch.
            position = bisect.bisect_right(main_work, branch_weight)
            prune_time = suffix_min[position]
            if prune_time == float("inf"):
                continue  # censored: run ended before this node pruned
            if prune_time < first_receipt:
                # The node already held a heavier main block when the
                # branch arrived; it never adopted it — prune delay 0.
                samples.append(0.0)
            else:
                samples.append(prune_time - first_receipt)
    return samples


def time_to_prune(log: ObservationLog, delta: float = 0.9) -> float:
    """δ-percentile prune delay; 0.0 when the execution had no forks."""
    samples = prune_samples(log)
    if not samples:
        return 0.0
    return _percentile(samples, delta)


def win_samples(log: ObservationLog) -> list[float]:
    """Time-to-win for every main-chain block."""
    main_chain = log.main_chain()
    main_set = set(main_chain)
    heights = {h: i for i, h in enumerate(main_chain)}
    # For each pruned block, the height of its last main-chain ancestor:
    # it competes with (is not a descendant of) every main block above.
    competitors: list[tuple[int, float]] = []
    for info in log.index.all_blocks():
        if info.hash in main_set:
            continue
        cursor = info.hash
        while cursor not in main_set:
            parent = log.index.get(cursor)
            if parent is None:
                break
            cursor = parent.parent
        fork_height = heights.get(cursor, -1)
        competitors.append((fork_height, info.gen_time))
    samples = []
    for block_hash in main_chain:
        info = log.index.info(block_hash)
        height = heights[block_hash]
        last_disagreement = 0.0
        for fork_height, gen_time in competitors:
            if fork_height < height and gen_time > info.gen_time:
                last_disagreement = max(
                    last_disagreement, gen_time - info.gen_time
                )
        samples.append(last_disagreement)
    return samples


def time_to_win(log: ObservationLog, delta: float = 0.9) -> float:
    """δ-percentile time to win; 0.0 with no competing blocks."""
    samples = win_samples(log)
    if not samples:
        return 0.0
    return _percentile(samples, delta)
