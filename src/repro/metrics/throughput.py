"""Throughput metrics: transaction frequency and goodput.

The paper plots "Transaction Frequency" — transactions serialized into
the main chain per second — against the operational Bitcoin rate of
3.5 tx/s (1 MB blocks every 10 minutes at ~476-byte transactions).
"""

from __future__ import annotations

from .collector import ObservationLog

# The operational Bitcoin reference line drawn in Figure 8.
OPERATIONAL_BITCOIN_TX_RATE = 3.5


def transaction_frequency(log: ObservationLog) -> float:
    """Main-chain transactions per second over the observation window."""
    if log.duration <= 0:
        raise ValueError("empty observation window")
    total_tx = sum(log.index.info(h).n_tx for h in log.main_chain())
    return total_tx / log.duration


def goodput_bytes(log: ObservationLog) -> float:
    """Main-chain payload bytes per second."""
    if log.duration <= 0:
        raise ValueError("empty observation window")
    total = sum(log.index.info(h).size for h in log.main_chain())
    return total / log.duration


def block_rate(log: ObservationLog, kind: str | None = None) -> float:
    """Generated blocks per second, optionally filtered by kind."""
    if log.duration <= 0:
        raise ValueError("empty observation window")
    count = sum(
        1
        for info in log.index.all_blocks()
        if kind is None or info.kind == kind
    )
    return count / log.duration
