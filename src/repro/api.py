"""repro.api — the stable public facade.

One import surface for everything a script, notebook, or downstream
package should need.  Internal module layout may shift between
releases; the names re-exported here will not.  ``examples/`` imports
exclusively from this module.

Groups
------
Experiments
    :class:`ExperimentConfig`, :class:`Protocol`, :func:`run_experiment`,
    :class:`ExperimentResult`, the frequency/size sweeps, and
    :func:`constant_throughput_block_size`.
Instrumentation
    :class:`RunInstrumentation` — the one options object for checked
    (``--check``), traced (``--obs``), and fault-injected
    (``--scenario``) runs; shared by ``repro run``, ``repro sweep``,
    and sweep workers.
Protocol adapters
    :class:`ProtocolAdapter` plus the registry
    (:func:`register_adapter` / :func:`unregister_adapter` /
    :func:`get_adapter` / :func:`registered_protocols`) — implement and
    register an adapter to plug a new protocol into every experiment.
Sanitizer
    :class:`SanitizerRuntime` and the per-protocol checker factories
    (:func:`ng_checkers`, :func:`chain_checkers`, :func:`ghost_checkers`),
    each accepting ``mode="incremental" | "full"``.
Profiler
    :class:`ProfilerRuntime` and :func:`profile_experiment`.

Quickstart
----------
>>> from repro.api import ExperimentConfig, Protocol, run_experiment
>>> config = ExperimentConfig(protocol=Protocol.BITCOIN_NG, n_nodes=50,
...                           block_rate=0.1, block_size_bytes=20_000,
...                           target_blocks=40)
>>> result, log = run_experiment(config)
>>> 0 <= result.mining_power_utilization <= 1
True
"""

from .experiments import (
    ExperimentConfig,
    ExperimentResult,
    PowerEvent,
    Protocol,
    RunInstrumentation,
    SweepPoint,
    SweepResult,
    build_network,
    constant_throughput_block_size,
    format_series,
    format_sweep_table,
    frequency_sweep,
    run_experiment,
    run_power_drop,
    simulate_difficulty_dynamics,
    size_sweep,
)
from .prof import ProfilerRuntime, profile_experiment
from .protocols import (
    ProtocolAdapter,
    get_adapter,
    register_adapter,
    registered_protocols,
    unregister_adapter,
)
from .sanitizer import (
    SanitizerRuntime,
    chain_checkers,
    ghost_checkers,
    ng_checkers,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "PowerEvent",
    "ProfilerRuntime",
    "Protocol",
    "ProtocolAdapter",
    "RunInstrumentation",
    "SanitizerRuntime",
    "SweepPoint",
    "SweepResult",
    "build_network",
    "chain_checkers",
    "constant_throughput_block_size",
    "format_series",
    "format_sweep_table",
    "frequency_sweep",
    "get_adapter",
    "ghost_checkers",
    "ng_checkers",
    "profile_experiment",
    "register_adapter",
    "registered_protocols",
    "run_experiment",
    "run_power_drop",
    "simulate_difficulty_dynamics",
    "size_sweep",
    "unregister_adapter",
]
