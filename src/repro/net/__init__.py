"""Network substrate: event simulation, topology, links, and gossip."""

from .events import Event, EventQueue
from .gossip import GETDATA_SIZE, INV_SIZE, GossipNode, RelayMode, StoredObject
from .interning import ObjectIdTable
from .latency import LatencyHistogram, constant_histogram, default_histogram
from .links import DEFAULT_BANDWIDTH_BPS, Link, LinkView
from .network import Message, Network
from .partitions import PartitionController
from .simulator import Simulator
from .topology import Topology, complete_topology, random_topology, ring_topology

__all__ = [
    "DEFAULT_BANDWIDTH_BPS",
    "GETDATA_SIZE",
    "INV_SIZE",
    "Event",
    "EventQueue",
    "GossipNode",
    "LatencyHistogram",
    "Link",
    "LinkView",
    "Message",
    "Network",
    "ObjectIdTable",
    "PartitionController",
    "RelayMode",
    "Simulator",
    "StoredObject",
    "Topology",
    "complete_topology",
    "constant_histogram",
    "default_histogram",
    "random_topology",
    "ring_topology",
]
