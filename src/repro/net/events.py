"""Deterministic discrete-event queue.

Events fire in (time, sequence) order; the sequence number makes
simultaneous events deterministic, so a seeded simulation always replays
identically — a property every experiment and test in this repository
relies on.

The heap stores plain ``(time, sequence, event)`` tuples rather than
rich comparable objects: ``heapq`` then compares floats and ints in C
instead of calling a generated dataclass ``__lt__`` per sift step, which
is the single hottest comparison site in a million-event run.  The
:class:`Event` handle returned by :meth:`EventQueue.push` still carries
the callback and supports cancellation, so the public API is unchanged.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class Event:
    """A scheduled callback handle; never compared, only carried."""

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True

    def fire(self) -> Any:
        """Invoke the callback with its bound arguments."""
        return self.callback(*self.args)


class EventQueue:
    """A min-heap of ``(time, sequence, Event)`` tuples, stably ordered."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Passing the arguments here (rather than closing over them in a
        lambda) avoids one closure allocation per scheduled message on
        the simulator's hottest path.
        """
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, sequence, callback, args)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def push_batch(
        self,
        times: list[float],
        callback: Callable[..., Any],
        args_list: list[tuple[Any, ...]],
    ) -> list[Event]:
        """Schedule one ``callback(*args)`` per ``(time, args)`` pair.

        Sequence numbers are assigned in list order, exactly as if
        :meth:`push` had been called once per entry — a batched relay
        fan-out is therefore indistinguishable from per-neighbor
        scheduling.  Batching hoists the heap/sequence lookups out of
        the loop and returns the :class:`Event` slab in list order.
        """
        if times and min(times) < 0:
            raise ValueError("cannot schedule events at negative times")
        heap = self._heap
        heappush = heapq.heappush
        sequence = self._sequence
        slab = []
        append = slab.append
        for time, args in zip(times, args_list):
            event = Event(time, sequence, callback, args)
            heappush(heap, (time, sequence, event))
            sequence += 1
            append(event)
        self._sequence = sequence
        return slab

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None when empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    def pop_due(self, limit: float | None = None) -> Event | None:
        """Pop the next live event at or before ``limit``.

        Cancelled heads are purged as they surface.  Returns None when
        the queue is empty or the next live event lies beyond ``limit``
        (in which case it stays queued); ``limit=None`` means no bound.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heapq.heappop(heap)
                continue
            if limit is not None and head[0] > limit:
                return None
            heapq.heappop(heap)
            return head[2]
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
