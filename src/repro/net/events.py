"""Deterministic discrete-event queue.

Events fire in (time, sequence) order; the sequence number makes
simultaneous events deterministic, so a seeded simulation always replays
identically — a property every experiment and test in this repository
relies on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback; comparison ignores the callback itself."""

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects with stable ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute ``time``."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        event = Event(time, self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
