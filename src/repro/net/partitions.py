"""Network partitions: split the topology into isolated groups and heal.

Used by robustness tests and the eclipse-attack study: a partition cuts
every edge crossing group boundaries, each side keeps mining its own
chain, and healing lets the heaviest-chain rule merge history — the
scenario behind the paper's coinbase-maturity rule ("to avoid
non-mergeable transactions following a fork").
"""

from __future__ import annotations

from .network import Network


class PartitionController:
    """Applies and removes group partitions on a :class:`Network`."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._cut_links: list[tuple[int, int]] = []

    @property
    def active(self) -> bool:
        return bool(self._cut_links)

    def split(self, groups: list[set[int]]) -> int:
        """Partition nodes into ``groups``; returns cut edge count.

        Every topology edge whose endpoints land in different groups is
        blocked.  Nodes in no group form an implicit extra group.
        Raises if a node appears in two groups or a split is active.
        """
        if self.active:
            raise RuntimeError("a partition is already active; heal() first")
        assignment: dict[int, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in assignment:
                    raise ValueError(f"node {node} is in two groups")
                assignment[node] = index
        implicit = len(groups)
        cut = 0
        # Sorted edge order keeps _cut_links (and any tracing hung off
        # block_link) independent of edge-set hash layout.
        for a, b in self.network.topology.sorted_edges():
            if assignment.get(a, implicit) != assignment.get(b, implicit):
                self.network.block_link(a, b)
                self._cut_links.append((a, b))
                cut += 1
        return cut

    def isolate(self, victim: int, except_peers: set[int] | None = None) -> int:
        """Cut all of ``victim``'s links except to ``except_peers``.

        The eclipse-attack primitive: the victim can only talk to the
        attacker's nodes.
        """
        if self.active:
            raise RuntimeError("a partition is already active; heal() first")
        keep = except_peers or set()
        cut = 0
        for peer in self.network.neighbors(victim):
            if peer in keep:
                continue
            self.network.block_link(victim, peer)
            self._cut_links.append((victim, peer))
            cut += 1
        return cut

    def heal(self) -> None:
        """Remove every cut; traffic flows again (history then merges)."""
        for a, b in self._cut_links:
            self.network.unblock_link(a, b)
        self._cut_links.clear()
