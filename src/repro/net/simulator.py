"""The simulation clock and scheduler.

A :class:`Simulator` owns virtual time, a deterministic event queue, and
a seeded random source.  Everything else in the stack — links, gossip,
mining, protocol nodes — schedules work through it, so a whole 1000-node
experiment is one single-threaded, perfectly reproducible event loop.
This mirrors the methodology of Shadow-Bitcoin [Miller & Jansen 2015]
cited by the paper, trading the paper's wall-clock emulation for
determinism.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from .events import Event, EventQueue


class Simulator:
    """Discrete-event simulation core."""

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self.rng = random.Random(seed)
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return self._queue.push(time, callback)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events in order until the queue empties.

        ``until`` bounds virtual time (events beyond it stay queued);
        ``max_events`` bounds work, guarding against runaway feedback
        loops in experimental protocol code.
        """
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                return
            next_time = self._queue.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            event = self._queue.pop()
            if event is None:
                return
            self._now = event.time
            event.callback()
            processed += 1
            self._events_processed += 1

    def exponential(self, rate: float) -> float:
        """Sample an exponential interval with the given rate (1/mean)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self.rng.expovariate(rate)
