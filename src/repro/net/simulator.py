"""The simulation clock and scheduler.

A :class:`Simulator` owns virtual time, a deterministic event queue, and
a seeded random source.  Everything else in the stack — links, gossip,
mining, protocol nodes — schedules work through it, so a whole 1000-node
experiment is one single-threaded, perfectly reproducible event loop.
This mirrors the methodology of Shadow-Bitcoin [Miller & Jansen 2015]
cited by the paper, trading the paper's wall-clock emulation for
determinism.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Protocol

from ..clock import wall_clock
from .events import Event, EventQueue


class DispatchProfiler(Protocol):
    """What the profiled dispatch loop needs from a profiler.

    Structural typing keeps :mod:`repro.net` free of any import of the
    profiling layer (:mod:`repro.prof` implements this protocol); the
    simulator only ever hands over the event it just dispatched plus
    wall-clock deltas, so a profiler cannot perturb the simulation.
    """

    def loop_started(self) -> None: ...

    def loop_ended(self) -> None: ...

    def record(
        self, event: Event, pop_seconds: float, callback_seconds: float
    ) -> None: ...

    def record_probe(self, seconds: float) -> None: ...


class Simulator:
    """Discrete-event simulation core."""

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self.rng = random.Random(seed)
        self._events_processed = 0
        self._probe: Callable[[], None] | None = None
        self._prof: DispatchProfiler | None = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def set_probe(self, probe: Callable[[], None] | None) -> None:
        """Install (or clear) an after-each-event observation hook.

        The probe runs after every dispatched event's callback.  It must
        be a pure observer: scheduling events, drawing from ``rng``, or
        mutating node state from a probe breaks the guarantee that
        probed runs are bit-identical to bare runs.  The disabled path
        costs one local load and ``None`` check per event (bounded in
        ``benchmarks/test_perf_regression.py``).
        """
        self._probe = probe

    def set_profiler(self, prof: DispatchProfiler | None) -> None:
        """Install (or clear) the hot-loop wall-time profiler.

        Like :meth:`set_probe`, the profiler is a pure observer: it
        receives each dispatched event and wall-clock deltas, never the
        simulation RNG or queue, so profiled runs stay bit-identical to
        bare runs — including ``events_processed``.  With a profiler
        installed, :meth:`run` branches into a separate timed loop; the
        bare loop is untouched, so the disabled path costs exactly one
        ``None``-check per :meth:`run` call (bounded per-event in
        ``benchmarks/test_perf_regression.py``).
        """
        self._prof = prof

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time.

        This is the hottest call in the simulator (one per message per
        link), so the queue push is inlined rather than delegated.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        queue = self._queue
        time = self._now + delay
        sequence = queue._sequence
        queue._sequence = sequence + 1
        event = Event(time, sequence, callback, args)
        heapq.heappush(queue._heap, (time, sequence, event))
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        queue = self._queue
        sequence = queue._sequence
        queue._sequence = sequence + 1
        event = Event(time, sequence, callback, args)
        heapq.heappush(queue._heap, (time, sequence, event))
        return event

    def schedule_batch(
        self,
        times: list[float],
        callback: Callable[..., Any],
        args_list: list[tuple[Any, ...]],
    ) -> list[Event]:
        """Schedule one ``callback(*args)`` per ``(time, args)`` pair.

        Equivalent to calling :meth:`schedule_at` once per entry (same
        sequence-number order, so dispatch order is unchanged), but the
        per-event heap bookkeeping is hoisted into one queue call — the
        relay fan-out in :class:`~repro.net.network.Network` books a
        whole neighborhood this way.
        """
        if times and min(times) < self._now:
            raise ValueError(
                f"cannot schedule in the past ({min(times)} < {self._now})"
            )
        return self._queue.push_batch(times, callback, args_list)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events in order until the queue empties.

        ``until`` bounds virtual time (events beyond it stay queued);
        ``max_events`` bounds work, guarding against runaway feedback
        loops in experimental protocol code.

        The dispatch loop works on the queue's heap directly: one
        method call and one closure per event is exactly the overhead
        profiling shows dominating a million-event run.  Callbacks
        scheduling new events append to the same heap list, so holding
        the reference across iterations is safe.
        """
        prof = self._prof
        if prof is not None:
            self._run_profiled(until, max_events, prof)
            return
        heap = self._queue._heap
        heappop = heapq.heappop
        probe = self._probe
        processed = 0
        try:
            while heap and (max_events is None or processed < max_events):
                time, _seq, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    continue
                if until is not None and time > until:
                    self._now = until
                    return
                heappop(heap)
                self._now = time
                args = event.args
                if args:
                    event.callback(*args)
                else:
                    event.callback()
                processed += 1
                if probe is not None:
                    probe()
        finally:
            self._events_processed += processed

    def _run_profiled(
        self,
        until: float | None,
        max_events: int | None,
        prof: DispatchProfiler,
    ) -> None:
        """The dispatch loop with wall-time attribution around each event.

        Mirrors :meth:`run` exactly — same pop order, same callback
        invocation, same probe placement — with three extra wall-clock
        reads per event (pop, callback, probe boundaries).  Keeping this
        a separate loop means the bare path never pays for the reads,
        and keeping the reads *here* (not in the profiler) means the
        attribution excludes the profiler's own classification cost,
        which lands in the loop residual instead.
        """
        heap = self._queue._heap
        heappop = heapq.heappop
        probe = self._probe
        clock = wall_clock
        record = prof.record
        record_probe = prof.record_probe
        processed = 0
        prof.loop_started()
        mark = clock()
        try:
            while heap and (max_events is None or processed < max_events):
                time, _seq, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    continue
                if until is not None and time > until:
                    self._now = until
                    return
                heappop(heap)
                popped = clock()
                self._now = time
                args = event.args
                if args:
                    event.callback(*args)
                else:
                    event.callback()
                done = clock()
                record(event, popped - mark, done - popped)
                processed += 1
                if probe is not None:
                    before = clock()
                    probe()
                    record_probe(clock() - before)
                mark = clock()
        finally:
            self._events_processed += processed
            prof.loop_ended()

    def exponential(self, rate: float) -> float:
        """Sample an exponential interval with the given rate (1/mean)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self.rng.expovariate(rate)
