"""Point-to-point links with latency and bandwidth.

The paper's testbed sets "about 100kbit/sec among each pair of nodes"
with latencies drawn from a measured histogram.  A bulk message
crossing a link experiences serialization delay (size / bandwidth) —
queued FIFO behind earlier bulk messages on the same directed link —
plus fixed propagation latency.  This is what produces the paper's
Figure 7 linear growth of block propagation time with block size.

Small control messages (an inv, a getdata, a ~200-byte key block)
*interleave* with bulk transfers instead of queuing behind them, the
way packets share a real TCP link: a key block does not wait out an
80 kB microblock mid-flight.  Without this, strict FIFO would starve
Bitcoin-NG's leader election at exactly the high-bandwidth extreme the
protocol is designed for — an artifact no real network exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Paper's setting: ~100 kbit/s between each pair of nodes.
DEFAULT_BANDWIDTH_BPS = 100_000 / 8  # bytes per second

# Messages at or below one MTU interleave with bulk traffic.
SMALL_MESSAGE_CUTOFF = 1500


@dataclass(slots=True)
class Link:
    """One *directed* link; each direction queues independently."""

    latency: float
    bandwidth: float = DEFAULT_BANDWIDTH_BPS
    interleave_cutoff: int = SMALL_MESSAGE_CUTOFF
    busy_until: float = field(default=0.0)
    bytes_sent: int = field(default=0)
    messages_sent: int = field(default=0)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency cannot be negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.interleave_cutoff < 0:
            raise ValueError("interleave cutoff cannot be negative")

    def transfer(self, now: float, size_bytes: int) -> float:
        """Book a transfer starting at ``now``; return the arrival time.

        Bulk messages serialize after any still-queued earlier bulk
        message (FIFO); small messages interleave, paying only their
        own serialization.  The last byte arrives one propagation
        latency after serialization completes.
        """
        if size_bytes < 0:
            raise ValueError("negative message size")
        serialization = size_bytes / self.bandwidth
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        if size_bytes <= self.interleave_cutoff:
            # Packet-level interleaving: no head-of-line blocking, and
            # the negligible capacity used is not charged to the queue.
            return now + serialization + self.latency
        start = max(now, self.busy_until)
        self.busy_until = start + serialization
        return self.busy_until + self.latency

    def queue_delay(self, now: float) -> float:
        """Seconds a message sent now would wait before serializing."""
        return max(0.0, self.busy_until - now)
