"""Point-to-point links with latency and bandwidth.

The paper's testbed sets "about 100kbit/sec among each pair of nodes"
with latencies drawn from a measured histogram.  A bulk message
crossing a link experiences serialization delay (size / bandwidth) —
queued FIFO behind earlier bulk messages on the same directed link —
plus fixed propagation latency.  This is what produces the paper's
Figure 7 linear growth of block propagation time with block size.

Small control messages (an inv, a getdata, a ~200-byte key block)
*interleave* with bulk transfers instead of queuing behind them, the
way packets share a real TCP link: a key block does not wait out an
80 kB microblock mid-flight.  Without this, strict FIFO would starve
Bitcoin-NG's leader election at exactly the high-bandwidth extreme the
protocol is designed for — an artifact no real network exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .network import Network

# Paper's setting: ~100 kbit/s between each pair of nodes.
DEFAULT_BANDWIDTH_BPS = 100_000 / 8  # bytes per second

# Messages at or below one MTU interleave with bulk traffic.
SMALL_MESSAGE_CUTOFF = 1500


@dataclass(slots=True)
class Link:
    """One *directed* link; each direction queues independently."""

    latency: float
    bandwidth: float = DEFAULT_BANDWIDTH_BPS
    interleave_cutoff: int = SMALL_MESSAGE_CUTOFF
    busy_until: float = field(default=0.0)
    bytes_sent: int = field(default=0)
    messages_sent: int = field(default=0)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency cannot be negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.interleave_cutoff < 0:
            raise ValueError("interleave cutoff cannot be negative")

    def transfer(self, now: float, size_bytes: int) -> float:
        """Book a transfer starting at ``now``; return the arrival time.

        Bulk messages serialize after any still-queued earlier bulk
        message (FIFO); small messages interleave, paying only their
        own serialization.  The last byte arrives one propagation
        latency after serialization completes.
        """
        if size_bytes < 0:
            raise ValueError("negative message size")
        serialization = size_bytes / self.bandwidth
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        if size_bytes <= self.interleave_cutoff:
            # Packet-level interleaving: no head-of-line blocking, and
            # the negligible capacity used is not charged to the queue.
            return now + serialization + self.latency
        start = max(now, self.busy_until)
        self.busy_until = start + serialization
        return self.busy_until + self.latency

    def queue_delay(self, now: float) -> float:
        """Seconds a message sent now would wait before serializing."""
        return max(0.0, self.busy_until - now)


class LinkView:
    """A :class:`Link`-shaped window onto one directed edge of a
    :class:`~repro.net.network.Network`'s struct-of-arrays core.

    The network keeps per-link state in flat arrays indexed by edge id;
    this facade re-exposes the old per-link object API (attribute reads
    and writes, :meth:`transfer`, :meth:`queue_delay`) so link
    degradation, fault injection, and tests keep working unchanged.
    Views are cheap, transient handles: reads and writes go straight
    through to the owning network's arrays.
    """

    __slots__ = ("_net", "_eid")

    def __init__(self, net: Network, eid: int) -> None:
        self._net = net
        self._eid = eid

    @property
    def latency(self) -> float:
        return self._net._lat[self._eid]

    @latency.setter
    def latency(self, value: float) -> None:
        self._net._lat[self._eid] = value

    @property
    def bandwidth(self) -> float:
        return self._net._bw[self._eid]

    @bandwidth.setter
    def bandwidth(self, value: float) -> None:
        self._net._bw[self._eid] = value

    @property
    def busy_until(self) -> float:
        return self._net._busy[self._eid]

    @busy_until.setter
    def busy_until(self, value: float) -> None:
        self._net._busy[self._eid] = value

    @property
    def bytes_sent(self) -> int:
        return self._net._bytes[self._eid]

    @property
    def messages_sent(self) -> int:
        return self._net._msgs[self._eid]

    @property
    def interleave_cutoff(self) -> int:
        return self._net._interleave_cutoff

    def transfer(self, now: float, size_bytes: int) -> float:
        """Book a transfer starting at ``now``; same rules as
        :meth:`Link.transfer`, applied to the network's arrays."""
        if size_bytes < 0:
            raise ValueError("negative message size")
        net = self._net
        eid = self._eid
        serialization = size_bytes / net._bw[eid]
        net._bytes[eid] += size_bytes
        net._msgs[eid] += 1
        if size_bytes <= net._interleave_cutoff:
            return now + serialization + net._lat[eid]
        start = max(now, net._busy[eid])
        busy = start + serialization
        net._busy[eid] = busy
        return busy + net._lat[eid]

    def queue_delay(self, now: float) -> float:
        """Seconds a message sent now would wait before serializing."""
        return max(0.0, self._net._busy[self._eid] - now)
