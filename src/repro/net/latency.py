"""Pairwise latency model.

The paper measured latencies "to all visible Bitcoin nodes from a single
vantage point on April 7th, 2015, and created a latency histogram", then
drew each pair's latency from it.  We cannot replay that proprietary
measurement, so :func:`default_histogram` synthesizes a histogram with
the same character: a log-normal body (median ≈ 110 ms) with a heavy
tail out to ~400 ms, consistent with published Bitcoin network
measurements (Decker & Wattenhofer 2013).  Experiments sample per-pair
latencies from the histogram exactly as the paper did; any histogram
with similar quantiles exercises the same propagation code path.
"""

from __future__ import annotations

import bisect
import math
import random


class LatencyHistogram:
    """An empirical latency distribution sampled per node pair."""

    def __init__(self, bin_edges: list[float], counts: list[int]) -> None:
        if len(bin_edges) != len(counts) + 1:
            raise ValueError("need one more bin edge than count")
        if any(count < 0 for count in counts):
            raise ValueError("negative histogram count")
        if sum(counts) == 0:
            raise ValueError("histogram is empty")
        if any(b2 <= b1 for b1, b2 in zip(bin_edges, bin_edges[1:])):
            raise ValueError("bin edges must be strictly increasing")
        self.bin_edges = list(bin_edges)
        self.counts = list(counts)
        self._cumulative: list[int] = []
        total = 0
        for count in counts:
            total += count
            self._cumulative.append(total)
        self._total = total

    @classmethod
    def from_samples(cls, samples: list[float], n_bins: int = 50) -> "LatencyHistogram":
        """Build a histogram from raw latency measurements."""
        if not samples:
            raise ValueError("no samples")
        low, high = min(samples), max(samples)
        if high == low:
            high = low + 1e-6
        width = (high - low) / n_bins
        edges = [low + i * width for i in range(n_bins + 1)]
        counts = [0] * n_bins
        for value in samples:
            index = min(int((value - low) / width), n_bins - 1)
            counts[index] += 1
        return cls(edges, counts)

    def sample(self, rng: random.Random) -> float:
        """Draw one latency: pick a bin by mass, uniform within it."""
        pick = rng.randrange(self._total)
        index = bisect.bisect_right(self._cumulative, pick)
        low = self.bin_edges[index]
        high = self.bin_edges[index + 1]
        return rng.uniform(low, high)

    def sample_batch(self, rng: random.Random, count: int) -> list[float]:
        """Draw ``count`` latencies with the exact RNG stream of
        ``count`` successive :meth:`sample` calls.

        The k-th element consumes the same two RNG draws (``randrange``
        then ``uniform``) the k-th ``sample`` call would, so batched and
        per-call sampling are bit-identical — the network layer relies
        on this to fill its per-edge latency arrays without perturbing
        the pinned k-th-sorted-edge ↔ k-th-draw contract.  The win is
        hoisting the attribute lookups out of the per-edge loop.
        """
        randrange = rng.randrange
        uniform = rng.uniform
        bisect_right = bisect.bisect_right
        cumulative = self._cumulative
        edges = self.bin_edges
        total = self._total
        draws = []
        append = draws.append
        for _ in range(count):
            index = bisect_right(cumulative, randrange(total))
            append(uniform(edges[index], edges[index + 1]))
        return draws

    def quantile(self, q: float) -> float:
        """Approximate the q-quantile from bin mass."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        threshold = q * self._total
        index = bisect.bisect_left(self._cumulative, threshold)
        index = min(index, len(self.counts) - 1)
        return self.bin_edges[index + 1]

    def mean(self) -> float:
        """Mass-weighted mean using bin midpoints."""
        acc = 0.0
        for i, count in enumerate(self.counts):
            mid = (self.bin_edges[i] + self.bin_edges[i + 1]) / 2
            acc += mid * count
        return acc / self._total


def default_histogram(
    seed: int = 2015,
    n_samples: int = 5000,
    median_ms: float = 110.0,
    sigma: float = 0.55,
    floor_ms: float = 5.0,
    ceiling_ms: float = 400.0,
) -> LatencyHistogram:
    """Synthesize the substitute for the paper's measured histogram.

    Log-normal with the given median and shape, clipped to a realistic
    [floor, ceiling] range.  Returned latencies are in **seconds**.
    """
    rng = random.Random(seed)
    mu = math.log(median_ms)
    samples = []
    for _ in range(n_samples):
        value = math.exp(rng.gauss(mu, sigma))
        value = min(max(value, floor_ms), ceiling_ms)
        samples.append(value / 1000.0)
    return LatencyHistogram.from_samples(samples)


def constant_histogram(latency_s: float) -> LatencyHistogram:
    """Degenerate single-bin histogram, useful for analytical tests."""
    if latency_s <= 0:
        raise ValueError("latency must be positive")
    epsilon = latency_s * 1e-9
    return LatencyHistogram([latency_s - epsilon, latency_s + epsilon], [1])
