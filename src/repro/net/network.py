"""The simulated network: nodes, links, and message delivery.

Ties a :class:`~repro.net.topology.Topology` to per-direction
:class:`~repro.net.links.Link` objects whose latencies are drawn from a
:class:`~repro.net.latency.LatencyHistogram`, exactly as the paper's
testbed assigned pairwise latencies.  Supports churn (nodes going
offline and returning) and link partitions for robustness experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from ..obs.facade import NULL_OBS
from .latency import LatencyHistogram
from .links import DEFAULT_BANDWIDTH_BPS, Link
from .simulator import Simulator
from .topology import Topology


@dataclass(frozen=True, slots=True)
class Message:
    """A protocol message: a kind tag, opaque payload, and wire size."""

    kind: str
    payload: Any
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("message size cannot be negative")


class MessageHandler(Protocol):
    """Anything that can receive messages from the network."""

    def on_message(self, sender: int, message: Message) -> None: ...


class Network:
    """Delivers messages between attached nodes over simulated links."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency_histogram: LatencyHistogram,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        latency_rng: random.Random | None = None,
        obs: Any | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        # Observability: a single boolean guards the hot send path, so
        # the disabled default costs one attribute check per message.
        self.obs = obs if obs is not None else NULL_OBS
        self.tracer = self.obs.tracer
        self._obs_on = self.obs.enabled
        registry = self.obs.registry
        self._c_msgs = registry.counter(
            "net_messages_sent",
            "messages booked onto links, by wire kind",
            labelnames=("kind",),
        )
        self._c_bytes = registry.counter(
            "net_bytes_sent",
            "payload bytes booked onto links, by wire kind",
            labelnames=("kind",),
        )
        self._c_drops = registry.counter(
            "net_sends_dropped", "sends discarded by churn or partitions"
        )
        self._h_queue_delay = registry.histogram(
            "net_queue_delay_seconds",
            "sender-side serialization queueing delay of bulk messages",
        )
        self._adjacency = topology.neighbor_map()
        self._handlers: dict[int, MessageHandler] = {}
        self._offline: set[int] = set()
        self._blocked: set[frozenset[int]] = set()
        # Fault injection (repro.scenarios): probabilistic send loss and
        # link degradation.  Loss draws from a dedicated RNG so a zero
        # rate — the default — costs one truthiness check per send and
        # never touches any random stream.
        self._loss_rate = 0.0
        self._loss_rng: random.Random | None = None
        self._base_link_params: dict[tuple[int, int], tuple[float, float]] | None = None
        self._links: dict[tuple[int, int], Link] = {}
        self.messages_delivered = 0
        self.bytes_delivered = 0
        rng = latency_rng or sim.rng
        # Edges are drawn from the topology's *set* in sorted order:
        # each pair's latency is the k-th RNG draw for a fixed k, never
        # a function of hash layout or edge insertion order (NG301).
        for a, b in sorted(tuple(sorted(edge)) for edge in topology.edges):
            # One latency per pair (symmetric), independent queues per
            # direction — matching how pairwise latency was assigned.
            latency = latency_histogram.sample(rng)
            self._links[(a, b)] = Link(latency, bandwidth_bps)
            self._links[(b, a)] = Link(latency, bandwidth_bps)

    def attach(self, node_id: int, handler: MessageHandler) -> None:
        """Register the protocol node living at ``node_id``."""
        if not 0 <= node_id < self.topology.n_nodes:
            raise ValueError(f"unknown node id {node_id}")
        self._handlers[node_id] = handler

    def neighbors(self, node_id: int) -> list[int]:
        return self._adjacency[node_id]

    def link(self, src: int, dst: int) -> Link:
        """The directed link src→dst; raises KeyError if not adjacent."""
        return self._links[(src, dst)]

    def is_online(self, node_id: int) -> bool:
        return node_id not in self._offline

    def set_offline(self, node_id: int, offline: bool = True) -> None:
        """Take a node off the network (churn) or bring it back."""
        if offline:
            self._offline.add(node_id)
        else:
            self._offline.discard(node_id)

    def set_online(self, node_id: int, online: bool = True) -> None:
        """Readable inverse of :meth:`set_offline` (node lifecycle API)."""
        self.set_offline(node_id, offline=not online)

    # -- fault injection ----------------------------------------------------

    def set_loss(self, rate: float, rng: random.Random | None = None) -> None:
        """Drop each send independently with probability ``rate``.

        ``rng`` must be a stream dedicated to fault injection — the
        scenario engine's fault RNG — so that enabling loss never
        perturbs the simulation RNG sequence.  A zero rate disables
        loss (and the draws with it).
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        if rate > 0.0 and rng is None:
            raise ValueError("a fault RNG is required for nonzero loss")
        self._loss_rate = rate
        self._loss_rng = rng

    def degrade_links(
        self,
        latency_mult: float = 1.0,
        bandwidth_mult: float = 1.0,
        pairs: list[tuple[int, int]] | None = None,
    ) -> int:
        """Scale link parameters; returns the number of directed links hit.

        Multipliers apply to the *pristine* parameters (the values links
        were built with), so repeated degradations replace rather than
        compound.  ``pairs`` limits the change to both directions of the
        given adjacent pairs; by default every link degrades.
        """
        if latency_mult <= 0 or bandwidth_mult <= 0:
            raise ValueError("degradation multipliers must be > 0")
        if self._base_link_params is None:
            self._base_link_params = {
                key: (link.latency, link.bandwidth)
                for key, link in self._links.items()
            }
        base_params = self._base_link_params
        if pairs is None:
            keys = list(self._links)
        else:
            keys = []
            for a, b in pairs:
                if (a, b) not in self._links:
                    raise ValueError(f"nodes {a} and {b} are not adjacent")
                keys.append((a, b))
                keys.append((b, a))
        for key in keys:
            link = self._links[key]
            base_latency, base_bandwidth = base_params[key]
            link.latency = base_latency * latency_mult
            link.bandwidth = base_bandwidth * bandwidth_mult
        return len(keys)

    def restore_links(self) -> int:
        """Undo every degradation; returns the number of links touched."""
        if self._base_link_params is None:
            return 0
        for key, (latency, bandwidth) in self._base_link_params.items():
            link = self._links[key]
            link.latency = latency
            link.bandwidth = bandwidth
        return len(self._base_link_params)

    def block_link(self, a: int, b: int) -> None:
        """Drop all traffic between two adjacent nodes (partitioning)."""
        self._blocked.add(frozenset((a, b)))

    def unblock_link(self, a: int, b: int) -> None:
        self._blocked.discard(frozenset((a, b)))

    def link_blocked(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._blocked

    def send(self, src: int, dst: int, message: Message) -> None:
        """Queue ``message`` on the src→dst link; silently dropped if
        either endpoint is offline or the link is blocked (the sender
        cannot know)."""
        offline = self._offline
        if offline and (src in offline or dst in offline):
            if self._obs_on:
                self._record_drop(src, dst, message)
            return
        # The frozenset allocation is only paid while a partition is
        # actually active — the overwhelmingly common case is no blocks.
        if self._blocked and frozenset((src, dst)) in self._blocked:
            if self._obs_on:
                self._record_drop(src, dst, message)
            return
        # Probabilistic loss draws only while a lossy window is active,
        # and only from the dedicated fault RNG stream.
        if self._loss_rate:
            loss_rng = self._loss_rng
            assert loss_rng is not None  # set_loss pairs the rate with an RNG
            if loss_rng.random() < self._loss_rate:
                if self._obs_on:
                    self._record_drop(src, dst, message)
                return
        link = self._links.get((src, dst))
        if link is None:
            raise ValueError(f"nodes {src} and {dst} are not adjacent")
        now = self.sim.now
        if self._obs_on:
            # Queueing delay must be read before the transfer books the
            # link; interleaved small messages never queue.
            queue_delay = (
                link.queue_delay(now)
                if message.size > link.interleave_cutoff
                else 0.0
            )
            arrival = link.transfer(now, message.size)
            self._record_send(src, dst, message, queue_delay, arrival)
        else:
            arrival = link.transfer(now, message.size)
        self.sim.schedule_at(arrival, self._deliver, src, dst, message)

    def broadcast(self, src: int, message: Message) -> None:
        """Send to every neighbor of ``src``."""
        for peer in self._adjacency[src]:
            self.send(src, peer, message)

    def _deliver(self, src: int, dst: int, message: Message) -> None:
        if dst in self._offline:
            if self._obs_on:
                self._record_drop(src, dst, message)
            return
        handler = self._handlers.get(dst)
        if handler is None:
            return
        self.messages_delivered += 1
        self.bytes_delivered += message.size
        if self._obs_on and self.tracer is not None:
            self.tracer.emit(
                "deliver",
                self.sim.now,
                src=src,
                dst=dst,
                kind=message.kind,
                size=message.size,
            )
        handler.on_message(src, message)

    # -- observability ------------------------------------------------------

    def _record_send(
        self,
        src: int,
        dst: int,
        message: Message,
        queue_delay: float,
        arrival: float,
    ) -> None:
        kind = message.kind
        self._c_msgs.labels(kind=kind).inc()
        self._c_bytes.labels(kind=kind).inc(message.size)
        self._h_queue_delay.observe(queue_delay)
        if self.tracer is not None:
            self.tracer.emit(
                "send",
                self.sim.now,
                src=src,
                dst=dst,
                kind=kind,
                size=message.size,
                qd=round(queue_delay, 6),
                arr=round(arrival, 6),
            )

    def _record_drop(self, src: int, dst: int, message: Message) -> None:
        self._c_drops.inc()
        if self.tracer is not None:
            self.tracer.emit(
                "drop",
                self.sim.now,
                src=src,
                dst=dst,
                kind=message.kind,
                size=message.size,
            )

    def link_utilization(self, now: float) -> tuple[int, int, float]:
        """``(busy_links, total_links, queued_bytes)`` at instant ``now``.

        A link is busy while a booked bulk transfer has not finished
        serializing; its backlog in bytes is the remaining busy time
        times its bandwidth.  Used by the periodic link sampler.
        """
        busy = 0
        queued = 0.0
        for link in self._links.values():
            remaining = link.busy_until - now
            if remaining > 0:
                busy += 1
                queued += remaining * link.bandwidth
        return busy, len(self._links), queued

    def traffic_by_node(self) -> list[dict[str, int]]:
        """Per-node traffic totals from the per-link counters.

        Sums each directed link's ``bytes_sent``/``messages_sent`` into
        its endpoints: ``*_out`` at the source, ``*_in`` at the
        destination.  "In" counts bytes *booked toward* a node — sent,
        not necessarily delivered (churn can drop them in flight).
        """
        per_node = [
            {"bytes_out": 0, "bytes_in": 0, "messages_out": 0, "messages_in": 0}
            for _ in range(self.topology.n_nodes)
        ]
        for (src, dst), link in self._links.items():
            out = per_node[src]
            out["bytes_out"] += link.bytes_sent
            out["messages_out"] += link.messages_sent
            into = per_node[dst]
            into["bytes_in"] += link.bytes_sent
            into["messages_in"] += link.messages_sent
        return per_node

    def total_bytes_queued(self) -> int:
        """Bytes ever booked onto links (sent, not necessarily delivered)."""
        seen = 0
        for link in self._links.values():
            seen += link.bytes_sent
        return seen
