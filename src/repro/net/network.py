"""The simulated network: nodes, links, and message delivery.

Ties a :class:`~repro.net.topology.Topology` to simulated directed
links whose latencies are drawn from a
:class:`~repro.net.latency.LatencyHistogram`, exactly as the paper's
testbed assigned pairwise latencies.  Supports churn (nodes going
offline and returning) and link partitions for robustness experiments.

Link state lives in a struct-of-arrays core rather than a dict of
``Link`` objects: the topology's CSR adjacency assigns every directed
link a dense *edge id*, and per-link ``latency`` / ``bandwidth`` /
``busy_until`` / traffic counters are flat lists indexed by it.  A
1000-node, 5-degree run has ~10k directed links; touching three list
slots per send beats a tuple-keyed dict lookup plus attribute access on
a per-link object, and :meth:`Network.multicast` books a whole
neighborhood fan-out as one batched event-queue call.  The
:class:`~repro.net.links.LinkView` facade keeps the old per-link object
API (``net.link(a, b).latency`` etc.) working on top of the arrays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator, Protocol

from ..obs.facade import NULL_OBS
from .interning import ObjectIdTable
from .latency import LatencyHistogram
from .links import DEFAULT_BANDWIDTH_BPS, SMALL_MESSAGE_CUTOFF, LinkView
from .simulator import Simulator
from .topology import Topology


@dataclass(frozen=True, slots=True)
class Message:
    """A protocol message: a kind tag, opaque payload, and wire size."""

    kind: str
    payload: Any
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("message size cannot be negative")


class MessageHandler(Protocol):
    """Anything that can receive messages from the network."""

    def on_message(self, sender: int, message: Message) -> None: ...


class _LinkTable:
    """Read-only mapping view ``(src, dst) -> LinkView`` over the arrays.

    Preserves the dict-of-links API the seed exposed as ``_links``:
    iteration yields directed pairs, indexing returns a live view.
    """

    __slots__ = ("_net",)

    def __init__(self, net: "Network") -> None:
        self._net = net

    def __len__(self) -> int:
        return len(self._net._lat)

    def __contains__(self, key: object) -> bool:
        return key in self._net._eid

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(zip(self._net._edge_src, self._net._edge_dst))

    def __getitem__(self, key: tuple[int, int]) -> LinkView:
        return LinkView(self._net, self._net._eid[key])

    def get(
        self, key: tuple[int, int], default: LinkView | None = None
    ) -> LinkView | None:
        eid = self._net._eid.get(key)
        return default if eid is None else LinkView(self._net, eid)

    def keys(self) -> Iterator[tuple[int, int]]:
        return iter(self)

    def values(self) -> Iterator[LinkView]:
        net = self._net
        return (LinkView(net, eid) for eid in range(len(net._lat)))

    def items(self) -> Iterator[tuple[tuple[int, int], LinkView]]:
        net = self._net
        return (
            ((src, dst), LinkView(net, eid))
            for eid, (src, dst) in enumerate(
                zip(net._edge_src, net._edge_dst)
            )
        )


class Network:
    """Delivers messages between attached nodes over simulated links."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency_histogram: LatencyHistogram,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        latency_rng: random.Random | None = None,
        obs: Any | None = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.topology = topology
        # Observability: a single boolean guards the hot send path, so
        # the disabled default costs one attribute check per message.
        self.obs = obs if obs is not None else NULL_OBS
        self.tracer = self.obs.tracer
        self._obs_on = self.obs.enabled
        registry = self.obs.registry
        self._c_msgs = registry.counter(
            "net_messages_sent",
            "messages booked onto links, by wire kind",
            labelnames=("kind",),
        )
        self._c_bytes = registry.counter(
            "net_bytes_sent",
            "payload bytes booked onto links, by wire kind",
            labelnames=("kind",),
        )
        self._c_drops = registry.counter(
            "net_sends_dropped", "sends discarded by churn or partitions"
        )
        self._h_queue_delay = registry.histogram(
            "net_queue_delay_seconds",
            "sender-side serialization queueing delay of bulk messages",
        )
        self._adjacency = topology.neighbor_map()
        # Indexed by node id (None = nothing attached): delivery is the
        # single most frequent dispatch in a run, and a list index beats
        # a dict probe there.
        self._handlers: list[MessageHandler | None] = [None] * topology.n_nodes
        self._offline: set[int] = set()
        self._blocked: set[frozenset[int]] = set()
        # Fault injection (repro.scenarios): probabilistic send loss and
        # link degradation.  Loss draws from a dedicated RNG so a zero
        # rate — the default — costs one truthiness check per send and
        # never touches any random stream.
        self._loss_rate = 0.0
        self._loss_rng: random.Random | None = None
        self.messages_delivered = 0
        self.bytes_delivered = 0
        # One shared object-id interning table per run: every gossip
        # node attached to this network dedupes through it.
        self.object_ids: ObjectIdTable[bytes] = ObjectIdTable()

        # -- struct-of-arrays link core ---------------------------------
        # The CSR flat position of neighbor ``dst`` in ``src``'s row is
        # the directed edge id; all per-link state is indexed by it.
        indptr, indices = topology.csr()
        self._indptr = indptr
        self._indices = indices
        n_directed = len(indices)
        self._edge_dst = indices
        edge_src = [0] * n_directed
        eid_map: dict[tuple[int, int], int] = {}
        for node in range(topology.n_nodes):
            for eid in range(indptr[node], indptr[node + 1]):
                edge_src[eid] = node
                eid_map[(node, indices[eid])] = eid
        self._edge_src = edge_src
        self._eid = eid_map
        self._lat = [0.0] * n_directed
        self._bw = [bandwidth_bps] * n_directed
        self._busy = [0.0] * n_directed
        self._bytes = [0] * n_directed
        self._msgs = [0] * n_directed
        self._interleave_cutoff = SMALL_MESSAGE_CUTOFF
        # Pristine (latency, bandwidth) snapshot, taken lazily on the
        # first degradation so repeated degradations replace, never
        # compound.
        self._base_lat: list[float] | None = None
        self._base_bw: list[float] | None = None
        rng = latency_rng or sim.rng
        # Latencies are drawn for the topology's edge *set* in sorted
        # order: each pair's latency is the k-th RNG draw for a fixed k,
        # never a function of hash layout or edge insertion order
        # (NG301).  sample_batch consumes the identical RNG stream as
        # per-edge sample() calls, so the k-th-sorted-edge ↔ k-th-draw
        # contract pinned in tests/test_net_network.py holds.
        sorted_edges = topology.sorted_edges()
        draws = latency_histogram.sample_batch(rng, len(sorted_edges))
        lat = self._lat
        for (a, b), latency in zip(sorted_edges, draws):
            # One latency per pair (symmetric), independent queues per
            # direction — matching how pairwise latency was assigned.
            lat[eid_map[(a, b)]] = latency
            lat[eid_map[(b, a)]] = latency

    @property
    def _links(self) -> _LinkTable:
        """Dict-of-links compatibility view over the arrays."""
        return _LinkTable(self)

    def attach(self, node_id: int, handler: MessageHandler) -> None:
        """Register the protocol node living at ``node_id``."""
        if not 0 <= node_id < self.topology.n_nodes:
            raise ValueError(f"unknown node id {node_id}")
        self._handlers[node_id] = handler

    def neighbors(self, node_id: int) -> list[int]:
        return self._adjacency[node_id]

    def link(self, src: int, dst: int) -> LinkView:
        """The directed link src→dst; raises KeyError if not adjacent."""
        return LinkView(self, self._eid[(src, dst)])

    def is_online(self, node_id: int) -> bool:
        return node_id not in self._offline

    def set_offline(self, node_id: int, offline: bool = True) -> None:
        """Take a node off the network (churn) or bring it back."""
        if offline:
            self._offline.add(node_id)
        else:
            self._offline.discard(node_id)

    def set_online(self, node_id: int, online: bool = True) -> None:
        """Readable inverse of :meth:`set_offline` (node lifecycle API)."""
        self.set_offline(node_id, offline=not online)

    # -- fault injection ----------------------------------------------------

    def set_loss(self, rate: float, rng: random.Random | None = None) -> None:
        """Drop each send independently with probability ``rate``.

        ``rng`` must be a stream dedicated to fault injection — the
        scenario engine's fault RNG — so that enabling loss never
        perturbs the simulation RNG sequence.  A zero rate disables
        loss (and the draws with it).
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        if rate > 0.0 and rng is None:
            raise ValueError("a fault RNG is required for nonzero loss")
        self._loss_rate = rate
        self._loss_rng = rng

    def degrade_links(
        self,
        latency_mult: float = 1.0,
        bandwidth_mult: float = 1.0,
        pairs: list[tuple[int, int]] | None = None,
    ) -> int:
        """Scale link parameters; returns the number of directed links hit.

        Multipliers apply to the *pristine* parameters (the values links
        were built with), so repeated degradations replace rather than
        compound.  ``pairs`` limits the change to both directions of the
        given adjacent pairs; by default every link degrades.
        """
        if latency_mult <= 0 or bandwidth_mult <= 0:
            raise ValueError("degradation multipliers must be > 0")
        if self._base_lat is None or self._base_bw is None:
            self._base_lat = self._lat[:]
            self._base_bw = self._bw[:]
        base_lat = self._base_lat
        base_bw = self._base_bw
        if pairs is None:
            eids: list[int] | range = range(len(self._lat))
        else:
            eid_map = self._eid
            eids = []
            for a, b in pairs:
                forward = eid_map.get((a, b))
                if forward is None:
                    raise ValueError(f"nodes {a} and {b} are not adjacent")
                eids.append(forward)
                eids.append(eid_map[(b, a)])
        lat = self._lat
        bw = self._bw
        for eid in eids:
            lat[eid] = base_lat[eid] * latency_mult
            bw[eid] = base_bw[eid] * bandwidth_mult
        return len(eids)

    def restore_links(self) -> int:
        """Undo every degradation; returns the number of links touched."""
        if self._base_lat is None or self._base_bw is None:
            return 0
        self._lat[:] = self._base_lat
        self._bw[:] = self._base_bw
        return len(self._lat)

    def block_link(self, a: int, b: int) -> None:
        """Drop all traffic between two adjacent nodes (partitioning)."""
        self._blocked.add(frozenset((a, b)))

    def unblock_link(self, a: int, b: int) -> None:
        self._blocked.discard(frozenset((a, b)))

    def link_blocked(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._blocked

    def send(self, src: int, dst: int, message: Message) -> None:
        """Queue ``message`` on the src→dst link; silently dropped if
        either endpoint is offline or the link is blocked (the sender
        cannot know)."""
        offline = self._offline
        if offline and (src in offline or dst in offline):
            if self._obs_on:
                self._record_drop(src, dst, message)
            return
        # The frozenset allocation is only paid while a partition is
        # actually active — the overwhelmingly common case is no blocks.
        if self._blocked and frozenset((src, dst)) in self._blocked:
            if self._obs_on:
                self._record_drop(src, dst, message)
            return
        # Probabilistic loss draws only while a lossy window is active,
        # and only from the dedicated fault RNG stream.
        if self._loss_rate:
            loss_rng = self._loss_rng
            assert loss_rng is not None  # set_loss pairs the rate with an RNG
            if loss_rng.random() < self._loss_rate:
                if self._obs_on:
                    self._record_drop(src, dst, message)
                return
        eid = self._eid.get((src, dst))
        if eid is None:
            raise ValueError(f"nodes {src} and {dst} are not adjacent")
        now = self.sim.now
        size = message.size
        serialization = size / self._bw[eid]
        self._bytes[eid] += size
        self._msgs[eid] += 1
        if size <= self._interleave_cutoff:
            # Packet-level interleaving: no head-of-line blocking, and
            # the negligible capacity used is not charged to the queue.
            queue_delay = 0.0
            arrival = now + serialization + self._lat[eid]
        else:
            busy = self._busy[eid]
            # Queueing delay must be read before the transfer books the
            # link; interleaved small messages never queue.
            queue_delay = busy - now if busy > now else 0.0
            start = busy if busy > now else now
            busy = start + serialization
            self._busy[eid] = busy
            arrival = busy + self._lat[eid]
        if self._obs_on:
            self._record_send(src, dst, message, queue_delay, arrival)
        self.sim.schedule_at(arrival, self._deliver, src, dst, message)

    def multicast(self, src: int, message: Message, exclude: int = -1) -> None:
        """Send one shared ``message`` to every neighbor of ``src``
        except ``exclude``.

        Equivalent to calling :meth:`send` once per neighbor in sorted
        order — same per-peer drop checks, loss draws, link booking
        math, and event-sequence order — but the per-link state is
        touched directly by edge id and all deliveries are booked in
        one batched event-queue call.  This is the gossip relay fan-out,
        the hottest path in a large run.
        """
        indptr = self._indptr
        start, end = indptr[src], indptr[src + 1]
        if start == end:
            return
        indices = self._indices
        offline = self._offline
        blocked = self._blocked
        loss_rate = self._loss_rate
        obs_on = self._obs_on
        now = self.sim.now
        size = message.size
        lat = self._lat
        bw = self._bw
        busy_arr = self._busy
        bytes_arr = self._bytes
        msgs_arr = self._msgs
        small = size <= self._interleave_cutoff
        src_offline = bool(offline) and src in offline
        times: list[float] = []
        args_list: list[tuple[Any, ...]] = []
        book = times.append
        book_args = args_list.append
        for eid in range(start, end):
            dst = indices[eid]
            if dst == exclude:
                continue
            if src_offline or (offline and dst in offline):
                if obs_on:
                    self._record_drop(src, dst, message)
                continue
            if blocked and frozenset((src, dst)) in blocked:
                if obs_on:
                    self._record_drop(src, dst, message)
                continue
            if loss_rate:
                loss_rng = self._loss_rng
                assert loss_rng is not None
                if loss_rng.random() < loss_rate:
                    if obs_on:
                        self._record_drop(src, dst, message)
                    continue
            serialization = size / bw[eid]
            bytes_arr[eid] += size
            msgs_arr[eid] += 1
            if small:
                queue_delay = 0.0
                arrival = now + serialization + lat[eid]
            else:
                busy = busy_arr[eid]
                queue_delay = busy - now if busy > now else 0.0
                begin = busy if busy > now else now
                busy = begin + serialization
                busy_arr[eid] = busy
                arrival = busy + lat[eid]
            if obs_on:
                self._record_send(src, dst, message, queue_delay, arrival)
            book(arrival)
            book_args((src, dst, message))
        if times:
            self.sim.schedule_batch(times, self._deliver, args_list)

    def broadcast(self, src: int, message: Message) -> None:
        """Send to every neighbor of ``src``."""
        self.multicast(src, message)

    def _deliver(self, src: int, dst: int, message: Message) -> None:
        offline = self._offline
        if offline and dst in offline:
            if self._obs_on:
                self._record_drop(src, dst, message)
            return
        handler = self._handlers[dst]
        if handler is None:
            return
        self.messages_delivered += 1
        self.bytes_delivered += message.size
        if self._obs_on and self.tracer is not None:
            self.tracer.emit(
                "deliver",
                self.sim.now,
                src=src,
                dst=dst,
                kind=message.kind,
                size=message.size,
            )
        handler.on_message(src, message)

    # -- observability ------------------------------------------------------

    def _record_send(
        self,
        src: int,
        dst: int,
        message: Message,
        queue_delay: float,
        arrival: float,
    ) -> None:
        kind = message.kind
        self._c_msgs.labels(kind=kind).inc()
        self._c_bytes.labels(kind=kind).inc(message.size)
        self._h_queue_delay.observe(queue_delay)
        if self.tracer is not None:
            self.tracer.emit(
                "send",
                self.sim.now,
                src=src,
                dst=dst,
                kind=kind,
                size=message.size,
                qd=round(queue_delay, 6),
                arr=round(arrival, 6),
            )

    def _record_drop(self, src: int, dst: int, message: Message) -> None:
        self._c_drops.inc()
        if self.tracer is not None:
            self.tracer.emit(
                "drop",
                self.sim.now,
                src=src,
                dst=dst,
                kind=message.kind,
                size=message.size,
            )

    def link_utilization(self, now: float) -> tuple[int, int, float]:
        """``(busy_links, total_links, queued_bytes)`` at instant ``now``.

        A link is busy while a booked bulk transfer has not finished
        serializing; its backlog in bytes is the remaining busy time
        times its bandwidth.  Used by the periodic link sampler on
        every sample tick, so it walks the flat edge-id arrays in one
        lockstep ``zip`` — no edge-id indirection, no link objects.
        """
        busy_count = 0
        queued = 0.0
        for busy, bandwidth in zip(self._busy, self._bw):
            remaining = busy - now
            if remaining > 0:
                busy_count += 1
                queued += remaining * bandwidth
        return busy_count, len(self._busy), queued

    def traffic_by_node(self) -> list[dict[str, int]]:
        """Per-node traffic totals from the per-link counters.

        Sums each directed link's ``bytes_sent``/``messages_sent`` into
        its endpoints: ``*_out`` at the source, ``*_in`` at the
        destination.  "In" counts bytes *booked toward* a node — sent,
        not necessarily delivered (churn can drop them in flight).  One
        lockstep ``zip`` over the four parallel edge arrays: position
        *is* the edge id, so no per-edge index arithmetic survives.
        """
        per_node = [
            {"bytes_out": 0, "bytes_in": 0, "messages_out": 0, "messages_in": 0}
            for _ in range(self.topology.n_nodes)
        ]
        for src, dst, count, messages in zip(
            self._edge_src, self._edge_dst, self._bytes, self._msgs
        ):
            out = per_node[src]
            out["bytes_out"] += count
            out["messages_out"] += messages
            into = per_node[dst]
            into["bytes_in"] += count
            into["messages_in"] += messages
        return per_node

    def total_bytes_queued(self) -> int:
        """Bytes ever booked onto links (sent, not necessarily delivered)."""
        return sum(self._bytes)
