"""The simulated network: nodes, links, and message delivery.

Ties a :class:`~repro.net.topology.Topology` to per-direction
:class:`~repro.net.links.Link` objects whose latencies are drawn from a
:class:`~repro.net.latency.LatencyHistogram`, exactly as the paper's
testbed assigned pairwise latencies.  Supports churn (nodes going
offline and returning) and link partitions for robustness experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from .latency import LatencyHistogram
from .links import DEFAULT_BANDWIDTH_BPS, Link
from .simulator import Simulator
from .topology import Topology


@dataclass(frozen=True, slots=True)
class Message:
    """A protocol message: a kind tag, opaque payload, and wire size."""

    kind: str
    payload: Any
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("message size cannot be negative")


class MessageHandler(Protocol):
    """Anything that can receive messages from the network."""

    def on_message(self, sender: int, message: Message) -> None: ...


class Network:
    """Delivers messages between attached nodes over simulated links."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency_histogram: LatencyHistogram,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        latency_rng: random.Random | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self._adjacency = topology.neighbor_map()
        self._handlers: dict[int, MessageHandler] = {}
        self._offline: set[int] = set()
        self._blocked: set[frozenset[int]] = set()
        self._links: dict[tuple[int, int], Link] = {}
        self.messages_delivered = 0
        self.bytes_delivered = 0
        rng = latency_rng or sim.rng
        for edge in topology.edges:
            a, b = sorted(edge)
            # One latency per pair (symmetric), independent queues per
            # direction — matching how pairwise latency was assigned.
            latency = latency_histogram.sample(rng)
            self._links[(a, b)] = Link(latency, bandwidth_bps)
            self._links[(b, a)] = Link(latency, bandwidth_bps)

    def attach(self, node_id: int, handler: MessageHandler) -> None:
        """Register the protocol node living at ``node_id``."""
        if not 0 <= node_id < self.topology.n_nodes:
            raise ValueError(f"unknown node id {node_id}")
        self._handlers[node_id] = handler

    def neighbors(self, node_id: int) -> list[int]:
        return self._adjacency[node_id]

    def link(self, src: int, dst: int) -> Link:
        """The directed link src→dst; raises KeyError if not adjacent."""
        return self._links[(src, dst)]

    def is_online(self, node_id: int) -> bool:
        return node_id not in self._offline

    def set_offline(self, node_id: int, offline: bool = True) -> None:
        """Take a node off the network (churn) or bring it back."""
        if offline:
            self._offline.add(node_id)
        else:
            self._offline.discard(node_id)

    def block_link(self, a: int, b: int) -> None:
        """Drop all traffic between two adjacent nodes (partitioning)."""
        self._blocked.add(frozenset((a, b)))

    def unblock_link(self, a: int, b: int) -> None:
        self._blocked.discard(frozenset((a, b)))

    def link_blocked(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._blocked

    def send(self, src: int, dst: int, message: Message) -> None:
        """Queue ``message`` on the src→dst link; silently dropped if
        either endpoint is offline or the link is blocked (the sender
        cannot know)."""
        offline = self._offline
        if offline and (src in offline or dst in offline):
            return
        # The frozenset allocation is only paid while a partition is
        # actually active — the overwhelmingly common case is no blocks.
        if self._blocked and frozenset((src, dst)) in self._blocked:
            return
        link = self._links.get((src, dst))
        if link is None:
            raise ValueError(f"nodes {src} and {dst} are not adjacent")
        arrival = link.transfer(self.sim.now, message.size)
        self.sim.schedule_at(arrival, self._deliver, src, dst, message)

    def broadcast(self, src: int, message: Message) -> None:
        """Send to every neighbor of ``src``."""
        for peer in self._adjacency[src]:
            self.send(src, peer, message)

    def _deliver(self, src: int, dst: int, message: Message) -> None:
        if dst in self._offline:
            return
        handler = self._handlers.get(dst)
        if handler is None:
            return
        self.messages_delivered += 1
        self.bytes_delivered += message.size
        handler.on_message(src, message)

    def total_bytes_queued(self) -> int:
        """Bytes ever booked onto links (sent, not necessarily delivered)."""
        seen = 0
        for link in self._links.values():
            seen += link.bytes_sent
        return seen
